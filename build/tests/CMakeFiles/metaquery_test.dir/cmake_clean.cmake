file(REMOVE_RECURSE
  "CMakeFiles/metaquery_test.dir/metaquery_test.cc.o"
  "CMakeFiles/metaquery_test.dir/metaquery_test.cc.o.d"
  "metaquery_test"
  "metaquery_test.pdb"
  "metaquery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaquery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
