# Empty dependencies file for metaquery_test.
# This may be replaced when dependencies are built.
