file(REMOVE_RECURSE
  "CMakeFiles/page_formatter_test.dir/page_formatter_test.cc.o"
  "CMakeFiles/page_formatter_test.dir/page_formatter_test.cc.o.d"
  "page_formatter_test"
  "page_formatter_test.pdb"
  "page_formatter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_formatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
