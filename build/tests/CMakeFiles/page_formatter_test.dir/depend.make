# Empty dependencies file for page_formatter_test.
# This may be replaced when dependencies are built.
