file(REMOVE_RECURSE
  "CMakeFiles/carver_hardening_test.dir/carver_hardening_test.cc.o"
  "CMakeFiles/carver_hardening_test.dir/carver_hardening_test.cc.o.d"
  "carver_hardening_test"
  "carver_hardening_test.pdb"
  "carver_hardening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carver_hardening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
