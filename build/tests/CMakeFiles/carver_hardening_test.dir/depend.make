# Empty dependencies file for carver_hardening_test.
# This may be replaced when dependencies are built.
