# Empty dependencies file for engine_internals_test.
# This may be replaced when dependencies are built.
