# Empty dependencies file for antiforensics_test.
# This may be replaced when dependencies are built.
