file(REMOVE_RECURSE
  "CMakeFiles/antiforensics_test.dir/antiforensics_test.cc.o"
  "CMakeFiles/antiforensics_test.dir/antiforensics_test.cc.o.d"
  "antiforensics_test"
  "antiforensics_test.pdb"
  "antiforensics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antiforensics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
