file(REMOVE_RECURSE
  "CMakeFiles/detective_test.dir/detective_test.cc.o"
  "CMakeFiles/detective_test.dir/detective_test.cc.o.d"
  "detective_test"
  "detective_test.pdb"
  "detective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
