# Empty compiler generated dependencies file for detective_test.
# This may be replaced when dependencies are built.
