file(REMOVE_RECURSE
  "CMakeFiles/collector_fuzz_test.dir/collector_fuzz_test.cc.o"
  "CMakeFiles/collector_fuzz_test.dir/collector_fuzz_test.cc.o.d"
  "collector_fuzz_test"
  "collector_fuzz_test.pdb"
  "collector_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
