# Empty compiler generated dependencies file for carver_test.
# This may be replaced when dependencies are built.
