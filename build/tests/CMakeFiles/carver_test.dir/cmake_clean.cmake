file(REMOVE_RECURSE
  "CMakeFiles/carver_test.dir/carver_test.cc.o"
  "CMakeFiles/carver_test.dir/carver_test.cc.o.d"
  "carver_test"
  "carver_test.pdb"
  "carver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
