# Empty dependencies file for parameter_collector_test.
# This may be replaced when dependencies are built.
