file(REMOVE_RECURSE
  "CMakeFiles/parameter_collector_test.dir/parameter_collector_test.cc.o"
  "CMakeFiles/parameter_collector_test.dir/parameter_collector_test.cc.o.d"
  "parameter_collector_test"
  "parameter_collector_test.pdb"
  "parameter_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
