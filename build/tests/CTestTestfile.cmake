# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/page_formatter_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/carver_test[1]_include.cmake")
include("/root/repo/build/tests/parameter_collector_test[1]_include.cmake")
include("/root/repo/build/tests/metaquery_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/antiforensics_test[1]_include.cmake")
include("/root/repo/build/tests/detective_test[1]_include.cmake")
include("/root/repo/build/tests/auditor_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_test[1]_include.cmake")
include("/root/repo/build/tests/pli_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/engine_internals_test[1]_include.cmake")
include("/root/repo/build/tests/carver_hardening_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/collector_fuzz_test[1]_include.cmake")
