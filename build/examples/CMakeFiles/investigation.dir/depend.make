# Empty dependencies file for investigation.
# This may be replaced when dependencies are built.
