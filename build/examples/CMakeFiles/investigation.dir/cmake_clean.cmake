file(REMOVE_RECURSE
  "CMakeFiles/investigation.dir/investigation.cpp.o"
  "CMakeFiles/investigation.dir/investigation.cpp.o.d"
  "investigation"
  "investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
