file(REMOVE_RECURSE
  "CMakeFiles/steganography.dir/steganography.cpp.o"
  "CMakeFiles/steganography.dir/steganography.cpp.o.d"
  "steganography"
  "steganography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steganography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
