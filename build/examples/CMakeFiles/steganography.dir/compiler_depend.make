# Empty compiler generated dependencies file for steganography.
# This may be replaced when dependencies are built.
