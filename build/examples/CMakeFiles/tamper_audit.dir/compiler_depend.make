# Empty compiler generated dependencies file for tamper_audit.
# This may be replaced when dependencies are built.
