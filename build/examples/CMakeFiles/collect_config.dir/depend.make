# Empty dependencies file for collect_config.
# This may be replaced when dependencies are built.
