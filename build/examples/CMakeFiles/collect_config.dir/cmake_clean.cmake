file(REMOVE_RECURSE
  "CMakeFiles/collect_config.dir/collect_config.cpp.o"
  "CMakeFiles/collect_config.dir/collect_config.cpp.o.d"
  "collect_config"
  "collect_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collect_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
