file(REMOVE_RECURSE
  "CMakeFiles/dbfa_core.dir/artifacts.cc.o"
  "CMakeFiles/dbfa_core.dir/artifacts.cc.o.d"
  "CMakeFiles/dbfa_core.dir/carver.cc.o"
  "CMakeFiles/dbfa_core.dir/carver.cc.o.d"
  "CMakeFiles/dbfa_core.dir/config_io.cc.o"
  "CMakeFiles/dbfa_core.dir/config_io.cc.o.d"
  "CMakeFiles/dbfa_core.dir/page_builder.cc.o"
  "CMakeFiles/dbfa_core.dir/page_builder.cc.o.d"
  "CMakeFiles/dbfa_core.dir/parameter_collector.cc.o"
  "CMakeFiles/dbfa_core.dir/parameter_collector.cc.o.d"
  "libdbfa_core.a"
  "libdbfa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
