
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/artifacts.cc" "src/core/CMakeFiles/dbfa_core.dir/artifacts.cc.o" "gcc" "src/core/CMakeFiles/dbfa_core.dir/artifacts.cc.o.d"
  "/root/repo/src/core/carver.cc" "src/core/CMakeFiles/dbfa_core.dir/carver.cc.o" "gcc" "src/core/CMakeFiles/dbfa_core.dir/carver.cc.o.d"
  "/root/repo/src/core/config_io.cc" "src/core/CMakeFiles/dbfa_core.dir/config_io.cc.o" "gcc" "src/core/CMakeFiles/dbfa_core.dir/config_io.cc.o.d"
  "/root/repo/src/core/page_builder.cc" "src/core/CMakeFiles/dbfa_core.dir/page_builder.cc.o" "gcc" "src/core/CMakeFiles/dbfa_core.dir/page_builder.cc.o.d"
  "/root/repo/src/core/parameter_collector.cc" "src/core/CMakeFiles/dbfa_core.dir/parameter_collector.cc.o" "gcc" "src/core/CMakeFiles/dbfa_core.dir/parameter_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbfa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbfa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbfa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dbfa_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
