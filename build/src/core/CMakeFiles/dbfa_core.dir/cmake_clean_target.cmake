file(REMOVE_RECURSE
  "libdbfa_core.a"
)
