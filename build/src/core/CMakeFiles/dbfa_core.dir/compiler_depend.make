# Empty compiler generated dependencies file for dbfa_core.
# This may be replaced when dependencies are built.
