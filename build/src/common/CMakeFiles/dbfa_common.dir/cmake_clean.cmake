file(REMOVE_RECURSE
  "CMakeFiles/dbfa_common.dir/bytes.cc.o"
  "CMakeFiles/dbfa_common.dir/bytes.cc.o.d"
  "CMakeFiles/dbfa_common.dir/checksum.cc.o"
  "CMakeFiles/dbfa_common.dir/checksum.cc.o.d"
  "CMakeFiles/dbfa_common.dir/hexdump.cc.o"
  "CMakeFiles/dbfa_common.dir/hexdump.cc.o.d"
  "CMakeFiles/dbfa_common.dir/status.cc.o"
  "CMakeFiles/dbfa_common.dir/status.cc.o.d"
  "CMakeFiles/dbfa_common.dir/strings.cc.o"
  "CMakeFiles/dbfa_common.dir/strings.cc.o.d"
  "libdbfa_common.a"
  "libdbfa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
