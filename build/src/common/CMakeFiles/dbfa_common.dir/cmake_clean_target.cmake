file(REMOVE_RECURSE
  "libdbfa_common.a"
)
