# Empty compiler generated dependencies file for dbfa_common.
# This may be replaced when dependencies are built.
