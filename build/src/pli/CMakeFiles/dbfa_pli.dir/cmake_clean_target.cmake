file(REMOVE_RECURSE
  "libdbfa_pli.a"
)
