# Empty compiler generated dependencies file for dbfa_pli.
# This may be replaced when dependencies are built.
