file(REMOVE_RECURSE
  "CMakeFiles/dbfa_pli.dir/pli.cc.o"
  "CMakeFiles/dbfa_pli.dir/pli.cc.o.d"
  "CMakeFiles/dbfa_pli.dir/query_reorder.cc.o"
  "CMakeFiles/dbfa_pli.dir/query_reorder.cc.o.d"
  "libdbfa_pli.a"
  "libdbfa_pli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_pli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
