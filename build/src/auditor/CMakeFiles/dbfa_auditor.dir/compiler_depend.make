# Empty compiler generated dependencies file for dbfa_auditor.
# This may be replaced when dependencies are built.
