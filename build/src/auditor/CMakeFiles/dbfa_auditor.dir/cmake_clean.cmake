file(REMOVE_RECURSE
  "CMakeFiles/dbfa_auditor.dir/storage_auditor.cc.o"
  "CMakeFiles/dbfa_auditor.dir/storage_auditor.cc.o.d"
  "libdbfa_auditor.a"
  "libdbfa_auditor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_auditor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
