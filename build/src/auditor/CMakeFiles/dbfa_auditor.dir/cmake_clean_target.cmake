file(REMOVE_RECURSE
  "libdbfa_auditor.a"
)
