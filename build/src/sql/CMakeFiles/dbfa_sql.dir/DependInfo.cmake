
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/expr.cc" "src/sql/CMakeFiles/dbfa_sql.dir/expr.cc.o" "gcc" "src/sql/CMakeFiles/dbfa_sql.dir/expr.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/dbfa_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/dbfa_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/statement.cc" "src/sql/CMakeFiles/dbfa_sql.dir/statement.cc.o" "gcc" "src/sql/CMakeFiles/dbfa_sql.dir/statement.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/sql/CMakeFiles/dbfa_sql.dir/token.cc.o" "gcc" "src/sql/CMakeFiles/dbfa_sql.dir/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbfa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbfa_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
