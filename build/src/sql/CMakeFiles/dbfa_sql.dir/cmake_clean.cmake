file(REMOVE_RECURSE
  "CMakeFiles/dbfa_sql.dir/expr.cc.o"
  "CMakeFiles/dbfa_sql.dir/expr.cc.o.d"
  "CMakeFiles/dbfa_sql.dir/parser.cc.o"
  "CMakeFiles/dbfa_sql.dir/parser.cc.o.d"
  "CMakeFiles/dbfa_sql.dir/statement.cc.o"
  "CMakeFiles/dbfa_sql.dir/statement.cc.o.d"
  "CMakeFiles/dbfa_sql.dir/token.cc.o"
  "CMakeFiles/dbfa_sql.dir/token.cc.o.d"
  "libdbfa_sql.a"
  "libdbfa_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
