file(REMOVE_RECURSE
  "libdbfa_sql.a"
)
