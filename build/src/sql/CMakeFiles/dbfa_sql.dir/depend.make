# Empty dependencies file for dbfa_sql.
# This may be replaced when dependencies are built.
