file(REMOVE_RECURSE
  "CMakeFiles/dbfa_storage.dir/dialects.cc.o"
  "CMakeFiles/dbfa_storage.dir/dialects.cc.o.d"
  "CMakeFiles/dbfa_storage.dir/disk_image.cc.o"
  "CMakeFiles/dbfa_storage.dir/disk_image.cc.o.d"
  "CMakeFiles/dbfa_storage.dir/page_formatter.cc.o"
  "CMakeFiles/dbfa_storage.dir/page_formatter.cc.o.d"
  "CMakeFiles/dbfa_storage.dir/page_layout.cc.o"
  "CMakeFiles/dbfa_storage.dir/page_layout.cc.o.d"
  "CMakeFiles/dbfa_storage.dir/schema.cc.o"
  "CMakeFiles/dbfa_storage.dir/schema.cc.o.d"
  "CMakeFiles/dbfa_storage.dir/value.cc.o"
  "CMakeFiles/dbfa_storage.dir/value.cc.o.d"
  "libdbfa_storage.a"
  "libdbfa_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
