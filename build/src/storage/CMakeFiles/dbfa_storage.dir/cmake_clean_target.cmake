file(REMOVE_RECURSE
  "libdbfa_storage.a"
)
