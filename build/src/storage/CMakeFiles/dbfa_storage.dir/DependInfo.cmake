
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/dialects.cc" "src/storage/CMakeFiles/dbfa_storage.dir/dialects.cc.o" "gcc" "src/storage/CMakeFiles/dbfa_storage.dir/dialects.cc.o.d"
  "/root/repo/src/storage/disk_image.cc" "src/storage/CMakeFiles/dbfa_storage.dir/disk_image.cc.o" "gcc" "src/storage/CMakeFiles/dbfa_storage.dir/disk_image.cc.o.d"
  "/root/repo/src/storage/page_formatter.cc" "src/storage/CMakeFiles/dbfa_storage.dir/page_formatter.cc.o" "gcc" "src/storage/CMakeFiles/dbfa_storage.dir/page_formatter.cc.o.d"
  "/root/repo/src/storage/page_layout.cc" "src/storage/CMakeFiles/dbfa_storage.dir/page_layout.cc.o" "gcc" "src/storage/CMakeFiles/dbfa_storage.dir/page_layout.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/dbfa_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/dbfa_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/dbfa_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/dbfa_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbfa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
