# Empty compiler generated dependencies file for dbfa_storage.
# This may be replaced when dependencies are built.
