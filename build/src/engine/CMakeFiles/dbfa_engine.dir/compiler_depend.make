# Empty compiler generated dependencies file for dbfa_engine.
# This may be replaced when dependencies are built.
