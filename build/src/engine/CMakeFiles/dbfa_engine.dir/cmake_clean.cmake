file(REMOVE_RECURSE
  "CMakeFiles/dbfa_engine.dir/audit_log.cc.o"
  "CMakeFiles/dbfa_engine.dir/audit_log.cc.o.d"
  "CMakeFiles/dbfa_engine.dir/btree.cc.o"
  "CMakeFiles/dbfa_engine.dir/btree.cc.o.d"
  "CMakeFiles/dbfa_engine.dir/buffer_pool.cc.o"
  "CMakeFiles/dbfa_engine.dir/buffer_pool.cc.o.d"
  "CMakeFiles/dbfa_engine.dir/catalog.cc.o"
  "CMakeFiles/dbfa_engine.dir/catalog.cc.o.d"
  "CMakeFiles/dbfa_engine.dir/database.cc.o"
  "CMakeFiles/dbfa_engine.dir/database.cc.o.d"
  "CMakeFiles/dbfa_engine.dir/pager.cc.o"
  "CMakeFiles/dbfa_engine.dir/pager.cc.o.d"
  "CMakeFiles/dbfa_engine.dir/storage_file.cc.o"
  "CMakeFiles/dbfa_engine.dir/storage_file.cc.o.d"
  "CMakeFiles/dbfa_engine.dir/table_heap.cc.o"
  "CMakeFiles/dbfa_engine.dir/table_heap.cc.o.d"
  "libdbfa_engine.a"
  "libdbfa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
