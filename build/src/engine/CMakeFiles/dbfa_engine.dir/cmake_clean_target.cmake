file(REMOVE_RECURSE
  "libdbfa_engine.a"
)
