
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/audit_log.cc" "src/engine/CMakeFiles/dbfa_engine.dir/audit_log.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/audit_log.cc.o.d"
  "/root/repo/src/engine/btree.cc" "src/engine/CMakeFiles/dbfa_engine.dir/btree.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/btree.cc.o.d"
  "/root/repo/src/engine/buffer_pool.cc" "src/engine/CMakeFiles/dbfa_engine.dir/buffer_pool.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/buffer_pool.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/engine/CMakeFiles/dbfa_engine.dir/catalog.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/catalog.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/dbfa_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/pager.cc" "src/engine/CMakeFiles/dbfa_engine.dir/pager.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/pager.cc.o.d"
  "/root/repo/src/engine/storage_file.cc" "src/engine/CMakeFiles/dbfa_engine.dir/storage_file.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/storage_file.cc.o.d"
  "/root/repo/src/engine/table_heap.cc" "src/engine/CMakeFiles/dbfa_engine.dir/table_heap.cc.o" "gcc" "src/engine/CMakeFiles/dbfa_engine.dir/table_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbfa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbfa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dbfa_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
