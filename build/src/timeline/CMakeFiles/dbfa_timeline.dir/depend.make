# Empty dependencies file for dbfa_timeline.
# This may be replaced when dependencies are built.
