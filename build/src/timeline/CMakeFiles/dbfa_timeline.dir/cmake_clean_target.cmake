file(REMOVE_RECURSE
  "libdbfa_timeline.a"
)
