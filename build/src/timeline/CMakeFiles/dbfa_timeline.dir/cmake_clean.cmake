file(REMOVE_RECURSE
  "CMakeFiles/dbfa_timeline.dir/log_event_analyzer.cc.o"
  "CMakeFiles/dbfa_timeline.dir/log_event_analyzer.cc.o.d"
  "libdbfa_timeline.a"
  "libdbfa_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
