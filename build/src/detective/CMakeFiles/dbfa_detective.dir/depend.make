# Empty dependencies file for dbfa_detective.
# This may be replaced when dependencies are built.
