file(REMOVE_RECURSE
  "CMakeFiles/dbfa_detective.dir/confidence.cc.o"
  "CMakeFiles/dbfa_detective.dir/confidence.cc.o.d"
  "CMakeFiles/dbfa_detective.dir/dbdetective.cc.o"
  "CMakeFiles/dbfa_detective.dir/dbdetective.cc.o.d"
  "CMakeFiles/dbfa_detective.dir/evidence.cc.o"
  "CMakeFiles/dbfa_detective.dir/evidence.cc.o.d"
  "libdbfa_detective.a"
  "libdbfa_detective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_detective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
