file(REMOVE_RECURSE
  "libdbfa_detective.a"
)
