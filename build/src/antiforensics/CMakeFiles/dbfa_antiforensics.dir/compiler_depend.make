# Empty compiler generated dependencies file for dbfa_antiforensics.
# This may be replaced when dependencies are built.
