file(REMOVE_RECURSE
  "libdbfa_antiforensics.a"
)
