file(REMOVE_RECURSE
  "CMakeFiles/dbfa_antiforensics.dir/steganography.cc.o"
  "CMakeFiles/dbfa_antiforensics.dir/steganography.cc.o.d"
  "CMakeFiles/dbfa_antiforensics.dir/wiper.cc.o"
  "CMakeFiles/dbfa_antiforensics.dir/wiper.cc.o.d"
  "libdbfa_antiforensics.a"
  "libdbfa_antiforensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_antiforensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
