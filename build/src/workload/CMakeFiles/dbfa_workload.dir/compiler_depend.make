# Empty compiler generated dependencies file for dbfa_workload.
# This may be replaced when dependencies are built.
