file(REMOVE_RECURSE
  "libdbfa_workload.a"
)
