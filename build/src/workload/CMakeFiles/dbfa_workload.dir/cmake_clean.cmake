file(REMOVE_RECURSE
  "CMakeFiles/dbfa_workload.dir/ssbm.cc.o"
  "CMakeFiles/dbfa_workload.dir/ssbm.cc.o.d"
  "CMakeFiles/dbfa_workload.dir/synthetic.cc.o"
  "CMakeFiles/dbfa_workload.dir/synthetic.cc.o.d"
  "libdbfa_workload.a"
  "libdbfa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
