# CMake generated Testfile for 
# Source directory: /root/repo/src/metaquery
# Build directory: /root/repo/build/src/metaquery
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
