# Empty compiler generated dependencies file for dbfa_metaquery.
# This may be replaced when dependencies are built.
