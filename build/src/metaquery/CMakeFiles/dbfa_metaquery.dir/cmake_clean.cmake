file(REMOVE_RECURSE
  "CMakeFiles/dbfa_metaquery.dir/relation.cc.o"
  "CMakeFiles/dbfa_metaquery.dir/relation.cc.o.d"
  "CMakeFiles/dbfa_metaquery.dir/session.cc.o"
  "CMakeFiles/dbfa_metaquery.dir/session.cc.o.d"
  "libdbfa_metaquery.a"
  "libdbfa_metaquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_metaquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
