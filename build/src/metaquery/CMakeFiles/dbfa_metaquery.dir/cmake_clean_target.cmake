file(REMOVE_RECURSE
  "libdbfa_metaquery.a"
)
