# Empty compiler generated dependencies file for dbfa_detect.
# This may be replaced when dependencies are built.
