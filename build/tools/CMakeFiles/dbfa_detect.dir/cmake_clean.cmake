file(REMOVE_RECURSE
  "CMakeFiles/dbfa_detect.dir/dbfa_detect.cpp.o"
  "CMakeFiles/dbfa_detect.dir/dbfa_detect.cpp.o.d"
  "dbfa_detect"
  "dbfa_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
