file(REMOVE_RECURSE
  "CMakeFiles/dbfa_mkimage.dir/dbfa_mkimage.cpp.o"
  "CMakeFiles/dbfa_mkimage.dir/dbfa_mkimage.cpp.o.d"
  "dbfa_mkimage"
  "dbfa_mkimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_mkimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
