# Empty dependencies file for dbfa_mkimage.
# This may be replaced when dependencies are built.
