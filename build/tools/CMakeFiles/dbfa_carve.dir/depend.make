# Empty dependencies file for dbfa_carve.
# This may be replaced when dependencies are built.
