file(REMOVE_RECURSE
  "CMakeFiles/dbfa_carve.dir/dbfa_carve.cpp.o"
  "CMakeFiles/dbfa_carve.dir/dbfa_carve.cpp.o.d"
  "dbfa_carve"
  "dbfa_carve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_carve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
