file(REMOVE_RECURSE
  "CMakeFiles/dbfa_wipe.dir/dbfa_wipe.cpp.o"
  "CMakeFiles/dbfa_wipe.dir/dbfa_wipe.cpp.o.d"
  "dbfa_wipe"
  "dbfa_wipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_wipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
