# Empty dependencies file for dbfa_wipe.
# This may be replaced when dependencies are built.
