
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dbfa_audit.cpp" "tools/CMakeFiles/dbfa_audit.dir/dbfa_audit.cpp.o" "gcc" "tools/CMakeFiles/dbfa_audit.dir/dbfa_audit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/auditor/CMakeFiles/dbfa_auditor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbfa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dbfa_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbfa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbfa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
