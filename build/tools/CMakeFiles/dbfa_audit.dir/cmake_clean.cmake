file(REMOVE_RECURSE
  "CMakeFiles/dbfa_audit.dir/dbfa_audit.cpp.o"
  "CMakeFiles/dbfa_audit.dir/dbfa_audit.cpp.o.d"
  "dbfa_audit"
  "dbfa_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
