# Empty compiler generated dependencies file for dbfa_audit.
# This may be replaced when dependencies are built.
