file(REMOVE_RECURSE
  "CMakeFiles/dbfa_collect.dir/dbfa_collect.cpp.o"
  "CMakeFiles/dbfa_collect.dir/dbfa_collect.cpp.o.d"
  "dbfa_collect"
  "dbfa_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbfa_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
