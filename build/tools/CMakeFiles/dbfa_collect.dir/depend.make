# Empty dependencies file for dbfa_collect.
# This may be replaced when dependencies are built.
