file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_layouts.dir/bench_table2_layouts.cpp.o"
  "CMakeFiles/bench_table2_layouts.dir/bench_table2_layouts.cpp.o.d"
  "bench_table2_layouts"
  "bench_table2_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
