# Empty dependencies file for bench_cache_patterns.
# This may be replaced when dependencies are built.
