file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_patterns.dir/bench_cache_patterns.cpp.o"
  "CMakeFiles/bench_cache_patterns.dir/bench_cache_patterns.cpp.o.d"
  "bench_cache_patterns"
  "bench_cache_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
