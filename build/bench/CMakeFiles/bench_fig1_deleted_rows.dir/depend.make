# Empty dependencies file for bench_fig1_deleted_rows.
# This may be replaced when dependencies are built.
