file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_deleted_rows.dir/bench_fig1_deleted_rows.cpp.o"
  "CMakeFiles/bench_fig1_deleted_rows.dir/bench_fig1_deleted_rows.cpp.o.d"
  "bench_fig1_deleted_rows"
  "bench_fig1_deleted_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_deleted_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
