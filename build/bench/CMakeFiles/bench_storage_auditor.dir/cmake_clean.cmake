file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_auditor.dir/bench_storage_auditor.cpp.o"
  "CMakeFiles/bench_storage_auditor.dir/bench_storage_auditor.cpp.o.d"
  "bench_storage_auditor"
  "bench_storage_auditor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_auditor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
