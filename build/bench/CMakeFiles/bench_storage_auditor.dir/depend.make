# Empty dependencies file for bench_storage_auditor.
# This may be replaced when dependencies are built.
