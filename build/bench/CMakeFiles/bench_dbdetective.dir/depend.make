# Empty dependencies file for bench_dbdetective.
# This may be replaced when dependencies are built.
