file(REMOVE_RECURSE
  "CMakeFiles/bench_dbdetective.dir/bench_dbdetective.cpp.o"
  "CMakeFiles/bench_dbdetective.dir/bench_dbdetective.cpp.o.d"
  "bench_dbdetective"
  "bench_dbdetective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbdetective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
