file(REMOVE_RECURSE
  "CMakeFiles/bench_antiforensics.dir/bench_antiforensics.cpp.o"
  "CMakeFiles/bench_antiforensics.dir/bench_antiforensics.cpp.o.d"
  "bench_antiforensics"
  "bench_antiforensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_antiforensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
