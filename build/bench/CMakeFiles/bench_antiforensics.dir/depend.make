# Empty dependencies file for bench_antiforensics.
# This may be replaced when dependencies are built.
