
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_antiforensics.cpp" "bench/CMakeFiles/bench_antiforensics.dir/bench_antiforensics.cpp.o" "gcc" "bench/CMakeFiles/bench_antiforensics.dir/bench_antiforensics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/antiforensics/CMakeFiles/dbfa_antiforensics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbfa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metaquery/CMakeFiles/dbfa_metaquery.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbfa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dbfa_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbfa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbfa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
