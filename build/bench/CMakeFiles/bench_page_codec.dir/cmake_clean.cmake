file(REMOVE_RECURSE
  "CMakeFiles/bench_page_codec.dir/bench_page_codec.cpp.o"
  "CMakeFiles/bench_page_codec.dir/bench_page_codec.cpp.o.d"
  "bench_page_codec"
  "bench_page_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_page_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
