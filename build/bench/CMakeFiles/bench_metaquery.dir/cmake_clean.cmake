file(REMOVE_RECURSE
  "CMakeFiles/bench_metaquery.dir/bench_metaquery.cpp.o"
  "CMakeFiles/bench_metaquery.dir/bench_metaquery.cpp.o.d"
  "bench_metaquery"
  "bench_metaquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metaquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
