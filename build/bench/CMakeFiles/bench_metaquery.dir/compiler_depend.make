# Empty compiler generated dependencies file for bench_metaquery.
# This may be replaced when dependencies are built.
