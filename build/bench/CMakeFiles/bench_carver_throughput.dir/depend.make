# Empty dependencies file for bench_carver_throughput.
# This may be replaced when dependencies are built.
