file(REMOVE_RECURSE
  "CMakeFiles/bench_carver_throughput.dir/bench_carver_throughput.cpp.o"
  "CMakeFiles/bench_carver_throughput.dir/bench_carver_throughput.cpp.o.d"
  "bench_carver_throughput"
  "bench_carver_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_carver_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
