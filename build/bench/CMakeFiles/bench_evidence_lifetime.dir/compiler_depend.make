# Empty compiler generated dependencies file for bench_evidence_lifetime.
# This may be replaced when dependencies are built.
