file(REMOVE_RECURSE
  "CMakeFiles/bench_evidence_lifetime.dir/bench_evidence_lifetime.cpp.o"
  "CMakeFiles/bench_evidence_lifetime.dir/bench_evidence_lifetime.cpp.o.d"
  "bench_evidence_lifetime"
  "bench_evidence_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evidence_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
