file(REMOVE_RECURSE
  "CMakeFiles/bench_pli.dir/bench_pli.cpp.o"
  "CMakeFiles/bench_pli.dir/bench_pli.cpp.o.d"
  "bench_pli"
  "bench_pli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
