#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace dbfa {
namespace {

/// Minimal JSON string escaping for the stats document. Instance names and
/// error strings are the only free-form text; everything else is numeric.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LatencyJson(const LatencySummary& lat) {
  return StrFormat(
      "{\"count\": %llu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
      "\"max_ms\": %.3f}",
      static_cast<unsigned long long>(lat.count), lat.p50 * 1e3,
      lat.p95 * 1e3, lat.max * 1e3);
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  // Nearest-rank: ceil(p * N) as a 1-based rank.
  auto rank = [&](double p) {
    size_t r = static_cast<size_t>(
        std::ceil(p * static_cast<double>(samples.size())));
    if (r == 0) r = 1;
    return samples[r - 1];
  };
  out.p50 = rank(0.50);
  out.p95 = rank(0.95);
  out.max = samples.back();
  return out;
}

double ServeStats::ArtifactHitRate() const {
  uint64_t total = artifacts_reused + artifacts_carved;
  if (total == 0) return 0.0;
  return static_cast<double>(artifacts_reused) / static_cast<double>(total);
}

size_t ServeStats::MaxQueueHighWater() const {
  size_t max = 0;
  for (const ShardQueueStats& q : shard_queues) {
    max = std::max(max, q.high_water);
  }
  return max;
}

Status ServeStats::CheckInvariants() const {
  uint64_t pushed = 0;
  uint64_t popped = 0;
  uint64_t rejected = 0;
  for (size_t s = 0; s < shard_queues.size(); ++s) {
    const ShardQueueStats& q = shard_queues[s];
    pushed += q.pushed;
    popped += q.popped;
    rejected += q.rejected;
    if (q.high_water > queue_capacity) {
      return Status::Internal(
          StrFormat("shard %zu queue high-water %zu exceeds capacity %zu", s,
                    q.high_water, queue_capacity));
    }
    if (stopped && q.pushed != q.popped) {
      return Status::Internal(StrFormat(
          "shard %zu stranded %llu tasks after drain (pushed %llu popped %llu)",
          s, static_cast<unsigned long long>(q.pushed - q.popped),
          static_cast<unsigned long long>(q.pushed),
          static_cast<unsigned long long>(q.popped)));
    }
  }
  if (captures_submitted != pushed + rejected) {
    return Status::Internal(StrFormat(
        "submitted %llu != pushed %llu + rejected %llu",
        static_cast<unsigned long long>(captures_submitted),
        static_cast<unsigned long long>(pushed),
        static_cast<unsigned long long>(rejected)));
  }
  if (captures_rejected != rejected) {
    return Status::Internal(
        StrFormat("instance rejected %llu != queue rejected %llu",
                  static_cast<unsigned long long>(captures_rejected),
                  static_cast<unsigned long long>(rejected)));
  }
  if (stopped && captures_completed + captures_failed != popped) {
    return Status::Internal(StrFormat(
        "completed %llu + failed %llu != popped %llu",
        static_cast<unsigned long long>(captures_completed),
        static_cast<unsigned long long>(captures_failed),
        static_cast<unsigned long long>(popped)));
  }
  // Per-instance counters must sum to the global ones.
  uint64_t sum_submitted = 0;
  uint64_t sum_rejected = 0;
  uint64_t sum_completed = 0;
  uint64_t sum_failed = 0;
  uint64_t sum_findings = 0;
  uint64_t sum_resolved = 0;
  for (const InstanceServeStats& inst : instances) {
    sum_submitted += inst.captures_submitted;
    sum_rejected += inst.captures_rejected;
    sum_completed += inst.captures_completed;
    sum_failed += inst.captures_failed;
    sum_findings += inst.findings;
    sum_resolved += inst.findings_resolved;
  }
  if (sum_submitted != captures_submitted ||
      sum_rejected != captures_rejected ||
      sum_completed != captures_completed ||
      sum_failed != captures_failed || sum_findings != findings ||
      sum_resolved != findings_resolved) {
    return Status::Internal("per-instance totals disagree with global totals");
  }
  return Status::Ok();
}

std::string ServeStats::ToString() const {
  std::string out = StrFormat(
      "dbfa_serve: %zu instances, %zu shards (queue capacity %zu)%s\n",
      instances.size(), shards, queue_capacity, stopped ? ", stopped" : "");
  out += StrFormat(
      "  captures: %llu submitted, %llu completed, %llu rejected, %llu "
      "failed\n",
      static_cast<unsigned long long>(captures_submitted),
      static_cast<unsigned long long>(captures_completed),
      static_cast<unsigned long long>(captures_rejected),
      static_cast<unsigned long long>(captures_failed));
  out += StrFormat(
      "  snapshots: %llu ingested; pages %llu total / %llu reused (%.1f%%)\n",
      static_cast<unsigned long long>(snapshots),
      static_cast<unsigned long long>(pages_total),
      static_cast<unsigned long long>(pages_reused),
      pages_total == 0 ? 0.0
                       : 100.0 * static_cast<double>(pages_reused) /
                             static_cast<double>(pages_total));
  out += StrFormat(
      "  artifact cache: %llu reused / %llu carved (%.1f%% hit rate)\n",
      static_cast<unsigned long long>(artifacts_reused),
      static_cast<unsigned long long>(artifacts_carved),
      100.0 * ArtifactHitRate());
  out += StrFormat("  findings: %llu (%llu resolved)\n",
                   static_cast<unsigned long long>(findings),
                   static_cast<unsigned long long>(findings_resolved));
  out += StrFormat(
      "  ingest latency:  p50 %.2f ms  p95 %.2f ms  max %.2f ms (%zu "
      "samples)\n",
      ingest_latency.p50 * 1e3, ingest_latency.p95 * 1e3,
      ingest_latency.max * 1e3, ingest_latency.count);
  out += StrFormat(
      "  finding latency: p50 %.2f ms  p95 %.2f ms  max %.2f ms (%zu "
      "samples)\n",
      finding_latency.p50 * 1e3, finding_latency.p95 * 1e3,
      finding_latency.max * 1e3, finding_latency.count);
  for (size_t s = 0; s < shard_queues.size(); ++s) {
    const ShardQueueStats& q = shard_queues[s];
    out += StrFormat(
        "  shard %zu: pushed %llu, popped %llu, rejected %llu, high-water "
        "%zu, depth %zu\n",
        s, static_cast<unsigned long long>(q.pushed),
        static_cast<unsigned long long>(q.popped),
        static_cast<unsigned long long>(q.rejected), q.high_water, q.depth);
  }
  out += StrFormat("  invariants: %s\n", invariants.c_str());
  return out;
}

std::string ServeStats::ToJson() const {
  std::string out = "{\n";
  out += "  \"format\": \"dbfa-serve-stats v1\",\n";
  out += StrFormat("  \"shards\": %zu,\n", shards);
  out += StrFormat("  \"queue_capacity\": %zu,\n", queue_capacity);
  out += StrFormat("  \"stopped\": %s,\n", stopped ? "true" : "false");
  out += StrFormat("  \"captures_submitted\": %llu,\n",
                   static_cast<unsigned long long>(captures_submitted));
  out += StrFormat("  \"captures_rejected\": %llu,\n",
                   static_cast<unsigned long long>(captures_rejected));
  out += StrFormat("  \"captures_completed\": %llu,\n",
                   static_cast<unsigned long long>(captures_completed));
  out += StrFormat("  \"captures_failed\": %llu,\n",
                   static_cast<unsigned long long>(captures_failed));
  out += StrFormat("  \"snapshots\": %llu,\n",
                   static_cast<unsigned long long>(snapshots));
  out += StrFormat("  \"findings\": %llu,\n",
                   static_cast<unsigned long long>(findings));
  out += StrFormat("  \"findings_resolved\": %llu,\n",
                   static_cast<unsigned long long>(findings_resolved));
  out += StrFormat("  \"pages_total\": %llu,\n",
                   static_cast<unsigned long long>(pages_total));
  out += StrFormat("  \"pages_reused\": %llu,\n",
                   static_cast<unsigned long long>(pages_reused));
  out += StrFormat("  \"artifacts_reused\": %llu,\n",
                   static_cast<unsigned long long>(artifacts_reused));
  out += StrFormat("  \"artifacts_carved\": %llu,\n",
                   static_cast<unsigned long long>(artifacts_carved));
  out += StrFormat("  \"artifact_hit_rate\": %.4f,\n", ArtifactHitRate());
  out += StrFormat("  \"max_queue_high_water\": %zu,\n", MaxQueueHighWater());
  out += StrFormat("  \"ingest_latency\": %s,\n",
                   LatencyJson(ingest_latency).c_str());
  out += StrFormat("  \"finding_latency\": %s,\n",
                   LatencyJson(finding_latency).c_str());
  out += "  \"shard_queues\": [\n";
  for (size_t s = 0; s < shard_queues.size(); ++s) {
    const ShardQueueStats& q = shard_queues[s];
    out += StrFormat(
        "    {\"pushed\": %llu, \"popped\": %llu, \"rejected\": %llu, "
        "\"high_water\": %zu, \"depth\": %zu}%s\n",
        static_cast<unsigned long long>(q.pushed),
        static_cast<unsigned long long>(q.popped),
        static_cast<unsigned long long>(q.rejected), q.high_water, q.depth,
        s + 1 < shard_queues.size() ? "," : "");
  }
  out += "  ],\n";
  out += "  \"instances\": [\n";
  for (size_t i = 0; i < instances.size(); ++i) {
    const InstanceServeStats& inst = instances[i];
    out += StrFormat(
        "    {\"name\": \"%s\", \"submitted\": %llu, \"rejected\": %llu, "
        "\"completed\": %llu, \"failed\": %llu, \"snapshots\": %llu, "
        "\"findings\": %llu, \"findings_resolved\": %llu, "
        "\"pages_total\": %llu, \"pages_reused\": %llu, "
        "\"artifacts_reused\": %llu, \"artifacts_carved\": %llu, "
        "\"ingest_seconds\": %.6f, \"last_error\": \"%s\"}%s\n",
        JsonEscape(inst.name).c_str(),
        static_cast<unsigned long long>(inst.captures_submitted),
        static_cast<unsigned long long>(inst.captures_rejected),
        static_cast<unsigned long long>(inst.captures_completed),
        static_cast<unsigned long long>(inst.captures_failed),
        static_cast<unsigned long long>(inst.snapshots),
        static_cast<unsigned long long>(inst.findings),
        static_cast<unsigned long long>(inst.findings_resolved),
        static_cast<unsigned long long>(inst.pages_total),
        static_cast<unsigned long long>(inst.pages_reused),
        static_cast<unsigned long long>(inst.artifacts_reused),
        static_cast<unsigned long long>(inst.artifacts_carved),
        inst.ingest_seconds, JsonEscape(inst.last_error).c_str(),
        i + 1 < instances.size() ? "," : "");
  }
  out += "  ],\n";
  out += StrFormat("  \"invariants\": \"%s\"\n",
                   JsonEscape(invariants).c_str());
  out += "}\n";
  return out;
}

}  // namespace dbfa
