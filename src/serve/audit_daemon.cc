#include "serve/audit_daemon.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/strings.h"
#include "storage/value.h"

namespace dbfa {
namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::string ServeFinding::ToString() const {
  return StrFormat("%s\t%llu\t%s", instance.c_str(),
                   static_cast<unsigned long long>(snapshot_id),
                   mod.ToString().c_str());
}

AuditDaemon::AuditDaemon(ServeOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<AuditDaemon>> AuditDaemon::Start(ServeOptions options) {
  if (options.root.empty()) {
    return Status::InvalidArgument("dbfa_serve: root directory is required");
  }
  if (options.shards == 0) options.shards = 4;
  // Parallelism comes from the shards; nested per-repo pools would
  // oversubscribe the machine shards-fold.
  options.carve.num_threads = 1;

  std::error_code ec;
  std::filesystem::create_directories(options.root, ec);
  if (ec) {
    return Status::IoError(StrFormat("dbfa_serve: cannot create root %s: %s",
                                     options.root.c_str(),
                                     ec.message().c_str()));
  }

  std::unique_ptr<AuditDaemon> daemon(new AuditDaemon(std::move(options)));
  std::string feed_path =
      (std::filesystem::path(daemon->options_.root) / kFeedFile).string();
  // Open outside feed_mu_: no lock may wrap blocking file I/O it does not
  // have to (docs/lock_order.md). No worker exists yet, so publishing the
  // handle under the lock afterwards is race-free.
  std::FILE* feed = std::fopen(feed_path.c_str(), "ab");
  if (feed == nullptr) {
    return Status::IoError(
        StrFormat("dbfa_serve: cannot open feed %s", feed_path.c_str()));
  }
  {
    MutexLock lock(&daemon->feed_mu_);
    daemon->feed_ = feed;
  }
  for (size_t s = 0; s < daemon->options_.shards; ++s) {
    daemon->queues_.push_back(std::make_unique<BoundedQueue<CaptureTask>>(
        daemon->options_.queue_capacity));
  }
  daemon->pool_ = std::make_unique<ThreadPool>(daemon->options_.shards);
  for (size_t s = 0; s < daemon->options_.shards; ++s) {
    AuditDaemon* self = daemon.get();
    daemon->pool_->Submit([self, s] { self->ShardLoop(s); });
  }
  return daemon;
}

AuditDaemon::~AuditDaemon() {
  // dbfa-lint: allow(nodiscard-status): destructors cannot propagate; an
  // explicit Shutdown() call is how callers observe the final status.
  (void)Shutdown();
}

Result<size_t> AuditDaemon::AddInstance(std::string name,
                                        const CarverConfig& config) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("dbfa_serve: bad instance name '%s'", name.c_str()));
  }
  {
    MutexLock lock(&state_mu_);
    if (!accepting_) {
      return Status::FailedPrecondition("dbfa_serve: daemon is stopped");
    }
  }
  std::string dir = (std::filesystem::path(options_.root) / "instances" / name)
                        .string();
  MutexLock lock(&instances_mu_);
  for (const Instance& inst : instances_) {
    if (inst.name == name) {
      return Status::AlreadyExists(
          StrFormat("dbfa_serve: instance '%s' already registered",
                    name.c_str()));
    }
  }
  size_t id = instances_.size();
  Instance inst;
  inst.name = name;
  inst.dir = std::move(dir);
  inst.config = config;
  instances_.push_back(std::move(inst));
  {
    MutexLock stats_lock(&stats_mu_);
    InstanceServeStats stats;
    stats.name = std::move(name);
    instance_stats_.push_back(std::move(stats));
  }
  return id;
}

Status AuditDaemon::SubmitCapture(size_t instance, Bytes image,
                                  const AuditLog& log) {
  {
    MutexLock lock(&instances_mu_);
    if (instance >= instances_.size()) {
      return Status::InvalidArgument(
          StrFormat("dbfa_serve: unknown instance %zu", instance));
    }
  }
  {
    MutexLock lock(&state_mu_);
    if (!accepting_) {
      return Status::FailedPrecondition("dbfa_serve: daemon is stopped");
    }
    ++pending_;  // optimistic: rolled back on reject below
  }
  {
    MutexLock lock(&stats_mu_);
    ++instance_stats_[instance].captures_submitted;
  }

  CaptureTask task;
  task.instance = instance;
  task.image = std::move(image);
  task.log = log;
  task.submitted = Clock::now();

  BoundedQueue<CaptureTask>& queue = *queues_[instance % queues_.size()];
  QueuePush outcome = options_.block_on_full ? queue.Push(std::move(task))
                                             : queue.TryPush(std::move(task));
  switch (outcome) {
    case QueuePush::kAccepted:
      return Status::Ok();
    case QueuePush::kFull: {
      {
        MutexLock lock(&stats_mu_);
        ++instance_stats_[instance].captures_rejected;
      }
      FinishTask();
      return Status::Unavailable(StrFormat(
          "dbfa_serve: shard %zu queue full (capacity %zu), capture dropped",
          instance % queues_.size(), queue.capacity()));
    }
    case QueuePush::kClosed: {
      // Shutdown raced the intake check: the capture was never accepted
      // and is not a backpressure rejection — unwind the submit count.
      {
        MutexLock lock(&stats_mu_);
        --instance_stats_[instance].captures_submitted;
      }
      FinishTask();
      return Status::FailedPrecondition("dbfa_serve: daemon is stopped");
    }
  }
  return Status::Internal("dbfa_serve: unreachable push outcome");
}

void AuditDaemon::Drain() {
  MutexLock lock(&state_mu_);
  while (pending_ > 0) drained_.Wait(&state_mu_);
}

void AuditDaemon::FinishTask() {
  MutexLock lock(&state_mu_);
  --pending_;
  if (pending_ == 0) drained_.SignalAll();
}

void AuditDaemon::ShardLoop(size_t shard) {
  BoundedQueue<CaptureTask>& queue = *queues_[shard];
  CaptureTask task;
  while (queue.Pop(&task)) {
    Instance* inst = nullptr;
    {
      MutexLock lock(&instances_mu_);
      inst = &instances_[task.instance];  // stable: deque never relocates
    }
    Clock::time_point start = Clock::now();
    Status status = ProcessCapture(inst, &task);
    Clock::time_point end = Clock::now();
    {
      MutexLock lock(&stats_mu_);
      InstanceServeStats& stats = instance_stats_[task.instance];
      stats.ingest_seconds += SecondsBetween(start, end);
      if (status.ok()) {
        ++stats.captures_completed;
      } else {
        ++stats.captures_failed;
        stats.last_error = status.ToString();
      }
      ingest_latencies_.push_back(SecondsBetween(task.submitted, end));
    }
    task = CaptureTask();  // release the image before blocking on Pop
    FinishTask();
  }
}

Status AuditDaemon::ProcessCapture(Instance* inst, CaptureTask* task) {
  if (inst->repo == nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(inst->dir, ec);
    if (ec) {
      return Status::IoError(
          StrFormat("dbfa_serve: cannot create instance dir %s: %s",
                    inst->dir.c_str(), ec.message().c_str()));
    }
    DBFA_ASSIGN_OR_RETURN(
        inst->repo,
        SnapshotRepo::Create(inst->dir, inst->config, options_.carve));
  }
  DBFA_ASSIGN_OR_RETURN(IngestStats ingest,
                        inst->repo->Ingest(ByteView(task->image)));
  {
    MutexLock lock(&stats_mu_);
    InstanceServeStats& stats = instance_stats_[task->instance];
    ++stats.snapshots;
    stats.pages_total += ingest.pages_total;
    stats.pages_reused += ingest.pages_reused;
    stats.artifacts_reused += ingest.artifacts_reused;
    stats.artifacts_carved += ingest.artifacts_carved;
  }

  std::vector<UnattributedModification> mods;
  if (inst->last_ingested == 0) {
    // First capture: full Figure-4 match over the assembled carve.
    DBFA_ASSIGN_OR_RETURN(CarveResult carve,
                          inst->repo->AssembleCarve(ingest.snapshot_id));
    DbDetective detective(&carve, &task->log);
    DBFA_ASSIGN_OR_RETURN(mods, detective.FindUnattributedModifications());
  } else {
    // Later captures: re-match only records on pages the delta touched.
    DBFA_ASSIGN_OR_RETURN(
        IncrementalDetection inc,
        inst->repo->DetectIncremental(inst->last_ingested, ingest.snapshot_id,
                                      task->log));
    mods = std::move(inc.modifications);
  }
  inst->last_ingested = ingest.snapshot_id;
  EmitFindings(inst, task->instance, ingest.snapshot_id, mods,
               task->submitted);
  return Status::Ok();
}

void AuditDaemon::EmitFindings(
    Instance* inst, size_t instance_id, uint64_t snapshot_id,
    const std::vector<UnattributedModification>& mods,
    Clock::time_point submitted) {
  for (const UnattributedModification& mod : mods) {
    bool fresh;
    {
      // Dedup on the artifact's identity key: the same finding is emitted
      // at most once until ResolveFinding clears its entry.
      MutexLock lock(&dedup_mu_);
      fresh = inst->reported.insert(mod.Key()).second;
    }
    if (!fresh) continue;
    ServeFinding finding;
    finding.instance = inst->name;
    finding.snapshot_id = snapshot_id;
    finding.mod = mod;
    double latency = SecondsBetween(submitted, Clock::now());
    {
      // dbfa-lockcheck: allow(blocking-under-lock): feed_mu_ IS the feed's
      // serialization point — the append and the in-memory mirror must be
      // atomic together so Findings() order matches feed order. Leaf rank;
      // nothing is ever acquired under it.
      MutexLock lock(&feed_mu_);
      if (feed_ != nullptr) {
        std::string line = finding.ToString();
        line += '\n';
        std::fwrite(line.data(), 1, line.size(), feed_);
        std::fflush(feed_);
      }
      findings_.push_back(std::move(finding));
    }
    MutexLock lock(&stats_mu_);
    ++instance_stats_[instance_id].findings;
    finding_latencies_.push_back(latency);
  }
}

Status AuditDaemon::Shutdown() {
  {
    MutexLock lock(&state_mu_);
    if (stopped_) return shutdown_status_;
    accepting_ = false;
  }
  for (auto& queue : queues_) queue->Close();
  pool_.reset();  // joins the shard loops after they drain their queues
  // Detach the handle under the lock, close it outside: fclose flushes and
  // may block, and the workers that could race the handle are joined.
  std::FILE* feed = nullptr;
  {
    MutexLock lock(&feed_mu_);
    feed = feed_;
    feed_ = nullptr;
  }
  if (feed != nullptr) std::fclose(feed);
  ServeStats final_stats = Stats();
  final_stats.stopped = true;
  Status invariants = final_stats.CheckInvariants();
  final_stats.invariants =
      invariants.ok() ? "ok" : invariants.ToString();
  std::string stats_path =
      (std::filesystem::path(options_.root) / kStatsFile).string();
  Status write_status = Status::Ok();
  std::FILE* f = std::fopen(stats_path.c_str(), "wb");
  if (f == nullptr) {
    write_status = Status::IoError(
        StrFormat("dbfa_serve: cannot write %s", stats_path.c_str()));
  } else {
    std::string json = final_stats.ToJson();
    if (std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      write_status = Status::IoError(
          StrFormat("dbfa_serve: short write to %s", stats_path.c_str()));
    }
    std::fclose(f);
  }
  Status result = invariants.ok() ? write_status : invariants;
  MutexLock lock(&state_mu_);
  stopped_ = true;
  shutdown_status_ = result;
  return result;
}

ServeStats AuditDaemon::Stats() const {
  ServeStats out;
  out.shards = queues_.size();
  out.queue_capacity = queues_.empty() ? 0 : queues_[0]->capacity();
  {
    MutexLock lock(&state_mu_);
    out.stopped = stopped_;
  }
  for (const auto& queue : queues_) {
    ShardQueueStats q;
    q.pushed = queue->pushed();
    q.popped = queue->popped();
    q.rejected = queue->rejected();
    q.high_water = queue->high_water();
    q.depth = queue->size();
    out.shard_queues.push_back(q);
  }
  std::vector<double> ingest_samples;
  std::vector<double> finding_samples;
  {
    MutexLock lock(&stats_mu_);
    out.instances = instance_stats_;
    ingest_samples = ingest_latencies_;
    finding_samples = finding_latencies_;
  }
  for (const InstanceServeStats& inst : out.instances) {
    out.captures_submitted += inst.captures_submitted;
    out.captures_rejected += inst.captures_rejected;
    out.captures_completed += inst.captures_completed;
    out.captures_failed += inst.captures_failed;
    out.snapshots += inst.snapshots;
    out.findings += inst.findings;
    out.findings_resolved += inst.findings_resolved;
    out.pages_total += inst.pages_total;
    out.pages_reused += inst.pages_reused;
    out.artifacts_reused += inst.artifacts_reused;
    out.artifacts_carved += inst.artifacts_carved;
  }
  out.ingest_latency = SummarizeLatencies(std::move(ingest_samples));
  out.finding_latency = SummarizeLatencies(std::move(finding_samples));
  Status invariants = out.CheckInvariants();
  out.invariants = invariants.ok() ? "ok" : invariants.ToString();
  return out;
}

std::vector<ServeFinding> AuditDaemon::Findings() const {
  MutexLock lock(&feed_mu_);
  return findings_;
}

Result<bool> AuditDaemon::ResolveFinding(
    size_t instance, const UnattributedModification& finding) {
  Instance* inst = nullptr;
  {
    MutexLock lock(&instances_mu_);
    if (instance >= instances_.size()) {
      return Status::NotFound(
          StrFormat("dbfa_serve: no instance with id %zu", instance));
    }
    // deque: stable address; registration fields are immutable.
    inst = &instances_[instance];
  }
  bool cleared;
  {
    MutexLock lock(&dedup_mu_);
    cleared = inst->reported.erase(finding.Key()) > 0;
  }
  if (cleared) {
    MutexLock lock(&stats_mu_);
    ++instance_stats_[instance].findings_resolved;
  }
  return cleared;
}

}  // namespace dbfa
