// Counters and latency summaries for the continuous-audit daemon
// (docs/continuous_audit.md). One InstanceServeStats per supervised
// instance plus shard-queue counters roll up into a ServeStats snapshot,
// dumped human-readably (`dbfa_serve --status`) and as a machine-readable
// JSON stats file consumed by CI's serve-soak job and check_bench.
#ifndef DBFA_SERVE_SERVE_STATS_H_
#define DBFA_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbfa {

/// Percentile summary over a set of latency samples (seconds).
struct LatencySummary {
  size_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Summarizes `samples` (unsorted, seconds). Percentiles use the
/// nearest-rank rule; an empty set summarizes to all zeros.
LatencySummary SummarizeLatencies(std::vector<double> samples);

/// Per-instance accounting, updated by the owning shard worker after each
/// processed capture.
struct InstanceServeStats {
  std::string name;
  uint64_t captures_submitted = 0;
  uint64_t captures_rejected = 0;  // backpressure refusals
  uint64_t captures_completed = 0;
  uint64_t captures_failed = 0;  // ingest/detect returned an error
  uint64_t snapshots = 0;        // snapshots ingested into the repo
  uint64_t findings = 0;         // distinct findings emitted to the feed
  uint64_t findings_resolved = 0;  // dedup entries cleared via ResolveFinding
  uint64_t pages_total = 0;
  uint64_t pages_reused = 0;
  uint64_t artifacts_reused = 0;
  uint64_t artifacts_carved = 0;
  double ingest_seconds = 0.0;  // summed capture-processing wall time
  std::string last_error;       // most recent failure, empty when none
};

/// Per-shard queue counters, copied out of the BoundedQueues.
struct ShardQueueStats {
  uint64_t pushed = 0;
  uint64_t popped = 0;
  uint64_t rejected = 0;
  size_t high_water = 0;
  size_t depth = 0;  // at snapshot time
};

/// Point-in-time snapshot of the whole daemon.
struct ServeStats {
  size_t shards = 0;
  size_t queue_capacity = 0;
  bool stopped = false;

  uint64_t captures_submitted = 0;
  uint64_t captures_rejected = 0;
  uint64_t captures_completed = 0;
  uint64_t captures_failed = 0;
  uint64_t snapshots = 0;
  uint64_t findings = 0;
  uint64_t findings_resolved = 0;
  uint64_t pages_total = 0;
  uint64_t pages_reused = 0;
  uint64_t artifacts_reused = 0;
  uint64_t artifacts_carved = 0;

  std::vector<ShardQueueStats> shard_queues;
  LatencySummary ingest_latency;   // submit-side processing time per capture
  LatencySummary finding_latency;  // capture submit -> finding emitted
  std::vector<InstanceServeStats> instances;

  /// Result of CheckInvariants at snapshot time ("ok" or the violation).
  std::string invariants = "ok";

  /// Artifact-cache hit rate over the content passes; 0 when nothing ran.
  double ArtifactHitRate() const;
  /// Deepest any shard queue ever got.
  size_t MaxQueueHighWater() const;

  /// Queue/accounting invariants; only meaningful when the daemon is idle
  /// (drained or stopped):
  ///   submitted == rejected + sum(queue pushed)
  ///   pushed == popped per shard (nothing stranded)
  ///   completed + failed == sum(queue popped)
  ///   high_water <= queue_capacity per shard
  /// plus per-instance totals summing to the global counters.
  Status CheckInvariants() const;

  /// Multi-line human dump (the `--status` format).
  std::string ToString() const;
  /// Machine-readable JSON document ("dbfa-serve-stats v1").
  std::string ToJson() const;
};

}  // namespace dbfa

#endif  // DBFA_SERVE_SERVE_STATS_H_
