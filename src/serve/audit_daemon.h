// AuditDaemon: a long-running continuous-audit supervisor for a fleet of
// DBMS instances (docs/continuous_audit.md).
//
// The paper's workflow (PAPER.md III-A, Figure 4) audits one capture at a
// time; operationally, captures arrive continuously from many instances.
// The daemon turns the one-shot pipeline into a service: each submitted
// capture is ingested into the instance's SnapshotRepo (content-addressed,
// so warm captures cost only their delta), the delta is re-matched against
// the instance's audit log, and any unattributed modification is appended
// exactly once to an append-only findings feed.
//
// Concurrency model: instances are sharded over N bounded work queues
// (instance id mod N), one long-lived drain loop per shard on a ThreadPool.
// A given instance's captures are therefore processed in submission order
// by a single worker — per-instance repo state needs no locking — while
// distinct instances progress in parallel. The queue bound is the
// backpressure contract: a producer outrunning the fleet either gets an
// immediate Status::Unavailable (reject policy, default) or blocks until a
// slot frees (delay policy), so queued capture images can never hold more
// than shards * capacity images in memory.
#ifndef DBFA_SERVE_AUDIT_DAEMON_H_
#define DBFA_SERVE_AUDIT_DAEMON_H_

#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bounded_queue.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/carver.h"
#include "detective/dbdetective.h"
#include "engine/audit_log.h"
#include "serve/serve_stats.h"
#include "snapshot/snapshot_repo.h"

namespace dbfa {

struct ServeOptions {
  /// Daemon root directory; holds one SnapshotRepo per instance under
  /// instances/<name>/, the findings feed, and the stats JSON.
  std::string root;
  /// Work-queue shards == worker threads. 0 means 4.
  size_t shards = 4;
  /// Per-shard queue bound. 0 is clamped to 1 (see BoundedQueue).
  size_t queue_capacity = 64;
  /// Full-queue policy: false = reject (SubmitCapture returns
  /// Status::Unavailable immediately), true = delay (block for a slot).
  bool block_on_full = false;
  /// Carve options for every instance repository. num_threads is forced
  /// to 1: parallelism comes from the shards, not from nested pools.
  CarveOptions carve;
};

/// One entry of the findings feed.
struct ServeFinding {
  std::string instance;
  uint64_t snapshot_id = 0;  // snapshot whose ingest surfaced it
  UnattributedModification mod;

  /// The feed line format: "<instance>\t<snapshot>\t<modification>".
  std::string ToString() const;
};

class AuditDaemon {
 public:
  /// Creates the root directory and opens the findings feed (append mode:
  /// restarted daemons extend the feed, never rewrite it).
  static Result<std::unique_ptr<AuditDaemon>> Start(ServeOptions options);

  /// Stops the daemon if still running (best effort; errors from the
  /// implicit Stop are dropped — call Stop() explicitly to observe them).
  ~AuditDaemon();

  AuditDaemon(const AuditDaemon&) = delete;
  AuditDaemon& operator=(const AuditDaemon&) = delete;

  const ServeOptions& options() const { return options_; }

  /// Registers an instance and returns its id (dense, starting at 0). The
  /// instance's repository is created lazily by its shard worker on first
  /// capture, under instances/<name>/.
  Result<size_t> AddInstance(std::string name, const CarverConfig& config);

  /// Enqueues one capture (storage image + the audit log to match against;
  /// the log is copied, so the caller's keeps growing independently).
  /// Reject policy: Status::Unavailable when the instance's shard queue is
  /// full. Delay policy: blocks. kFailedPrecondition after Stop().
  Status SubmitCapture(size_t instance, Bytes image, const AuditLog& log);

  /// Blocks until every accepted capture has been fully processed.
  void Drain();

  /// Graceful shutdown: stops intake, drains every accepted in-flight
  /// capture, joins the workers, writes <root>/serve_stats.json, and
  /// returns the final invariant check. Idempotent; the first call's
  /// result is sticky.
  Status Shutdown();

  /// Point-in-time stats snapshot (safe while running; the invariant
  /// check is only meaningful once idle).
  ServeStats Stats() const;

  /// Findings emitted so far, in feed order.
  std::vector<ServeFinding> Findings() const;

  /// Remediation hook: marks `finding` handled for `instance` by clearing
  /// its dedup entry, so a recurrence in a later capture is re-reported
  /// (the feed keeps the original line; resolution never rewrites it).
  /// Returns whether a dedup entry was actually cleared; NotFound for an
  /// unknown instance id. Safe while the daemon is running.
  Result<bool> ResolveFinding(size_t instance,
                              const UnattributedModification& finding);

  static constexpr const char* kFeedFile = "findings.feed";
  static constexpr const char* kStatsFile = "serve_stats.json";

 private:
  using Clock = std::chrono::steady_clock;

  struct CaptureTask {
    size_t instance = 0;
    Bytes image;
    AuditLog log;
    Clock::time_point submitted;
  };

  /// Registration fields are immutable after AddInstance; the repo/
  /// detection state below them is touched only by the instance's shard
  /// worker (single-threaded by construction — see file comment).
  struct Instance {
    std::string name;
    std::string dir;
    CarverConfig config;

    std::unique_ptr<SnapshotRepo> repo;
    uint64_t last_ingested = 0;  // 0 = nothing ingested yet
    /// Dedup keys (UnattributedModification::Key) of emitted findings.
    /// Guarded by the daemon's dedup_mu_ — shard workers insert on emit,
    /// ResolveFinding erases from arbitrary threads. (A nested struct
    /// member cannot carry DBFA_GUARDED_BY on the outer class's mutex.)
    std::set<std::string> reported;
  };

  explicit AuditDaemon(ServeOptions options);

  void ShardLoop(size_t shard);
  /// Ingest + detect + emit for one capture. Returns the first error; the
  /// shard loop records it and keeps serving.
  Status ProcessCapture(Instance* inst, CaptureTask* task);
  void EmitFindings(Instance* inst, size_t instance_id, uint64_t snapshot_id,
                    const std::vector<UnattributedModification>& mods,
                    Clock::time_point submitted);
  void FinishTask();

  ServeOptions options_;
  std::vector<std::unique_ptr<BoundedQueue<CaptureTask>>> queues_;
  std::unique_ptr<ThreadPool> pool_;

  /// Lock order within the daemon (common/lock_rank.h, enforced by
  /// dbfa_lockcheck): state < instances < stats < dedup < feed. Only
  /// instances -> stats actually nests today (AddInstance publishes the
  /// instance's stats slot atomically with its registration); the rest of
  /// the order exists so any future nesting has one documented direction.
  mutable Mutex instances_mu_ DBFA_ACQUIRED_BEFORE(stats_mu_){
      "audit_daemon/instances", lock_rank::kAuditInstances};
  /// deque: growth never moves existing elements, so shard workers may
  /// hold an Instance* across queue waits while AddInstance appends.
  std::deque<Instance> instances_ DBFA_GUARDED_BY(instances_mu_);

  mutable Mutex state_mu_{"audit_daemon/state", lock_rank::kAuditState};
  bool accepting_ DBFA_GUARDED_BY(state_mu_) = true;
  bool stopped_ DBFA_GUARDED_BY(state_mu_) = false;
  Status shutdown_status_ DBFA_GUARDED_BY(state_mu_) = Status::Ok();
  /// Accepted-but-unfinished captures; Drain() waits for 0.
  size_t pending_ DBFA_GUARDED_BY(state_mu_) = 0;
  CondVar drained_;

  /// Guards every Instance::reported set (see that member's comment).
  /// Held alone: the emit path takes dedup -> feed -> stats sequentially,
  /// never nested.
  mutable Mutex dedup_mu_{"audit_daemon/dedup", lock_rank::kAuditDedup};

  mutable Mutex stats_mu_ DBFA_ACQUIRED_AFTER(instances_mu_){
      "audit_daemon/stats", lock_rank::kAuditStats};
  std::vector<InstanceServeStats> instance_stats_ DBFA_GUARDED_BY(stats_mu_);
  std::vector<double> ingest_latencies_ DBFA_GUARDED_BY(stats_mu_);
  std::vector<double> finding_latencies_ DBFA_GUARDED_BY(stats_mu_);

  mutable Mutex feed_mu_{"audit_daemon/feed", lock_rank::kAuditFeed};
  std::FILE* feed_ DBFA_GUARDED_BY(feed_mu_) = nullptr;
  std::vector<ServeFinding> findings_ DBFA_GUARDED_BY(feed_mu_);
};

}  // namespace dbfa

#endif  // DBFA_SERVE_AUDIT_DAEMON_H_
