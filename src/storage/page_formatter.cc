#include "storage/page_formatter.h"

#include <array>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstring>

#include "common/string_pool.h"
#include "common/strings.h"

namespace dbfa {
namespace {

constexpr uint16_t kSlotTombstoneBit = 0x8000;

/// Encodes a numeric Value into 8 bytes (two's-complement int64 or IEEE-754
/// double bits), endian-sensitive like the dialect's other fields.
void EncodeNumeric(uint8_t* out, const Value& v, bool big_endian) {
  uint64_t bits = 0;
  if (v.type() == ValueType::kDouble) {
    bits = std::bit_cast<uint64_t>(v.as_double());
  } else if (v.type() == ValueType::kInt) {
    bits = static_cast<uint64_t>(v.as_int());
  }
  WriteU64(out, bits, big_endian);
}

bool MostlyPrintable(ByteView b) {
  if (b.empty()) return false;
  size_t printable = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    if (std::isprint(b[i])) ++printable;
  }
  return printable * 10 >= b.size() * 9;  // >= 90%
}

bool BitmapGet(const uint8_t* bitmap, size_t i) {
  return (bitmap[i / 8] >> (i % 8)) & 1;
}

void BitmapSet(uint8_t* bitmap, size_t i) { bitmap[i / 8] |= 1 << (i % 8); }

}  // namespace

// ---- page lifecycle --------------------------------------------------------

void PageFormatter::InitPage(uint8_t* page, uint32_t page_id,
                             uint32_t object_id, PageType type) const {
  std::memset(page, 0, p_.page_size);
  CopyBytes(page + p_.magic_offset, p_.magic.data(), p_.magic.size());
  WriteU32(page + p_.page_id_offset, page_id, p_.big_endian);
  WriteU32(page + p_.object_id_offset, object_id, p_.big_endian);
  page[p_.page_type_offset] = static_cast<uint8_t>(type);
  SetRecordCount(page, 0);
  uint16_t boundary =
      p_.slot_placement == SlotPlacement::kFrontSlotsBackData
          ? static_cast<uint16_t>(p_.page_size)
          : p_.header_size;
  SetFreeBoundary(page, boundary);
  WriteU32(page + p_.next_page_offset, 0, p_.big_endian);
  WriteU64(page + p_.lsn_offset, 0, p_.big_endian);
  UpdateChecksum(page);
}

// ---- header accessors ------------------------------------------------------

bool PageFormatter::HasMagic(const uint8_t* page) const {
  return std::memcmp(page + p_.magic_offset, p_.magic.data(),
                     p_.magic.size()) == 0;
}

uint32_t PageFormatter::PageId(const uint8_t* page) const {
  return ReadU32(page + p_.page_id_offset, p_.big_endian);
}

uint32_t PageFormatter::ObjectId(const uint8_t* page) const {
  return ReadU32(page + p_.object_id_offset, p_.big_endian);
}

PageType PageFormatter::TypeOf(const uint8_t* page) const {
  return static_cast<PageType>(page[p_.page_type_offset]);
}

uint16_t PageFormatter::RecordCount(const uint8_t* page) const {
  return ReadU16(page + p_.record_count_offset, p_.big_endian);
}

uint16_t PageFormatter::FreeBoundary(const uint8_t* page) const {
  return ReadU16(page + p_.free_space_offset, p_.big_endian);
}

uint32_t PageFormatter::NextPage(const uint8_t* page) const {
  return ReadU32(page + p_.next_page_offset, p_.big_endian);
}

uint64_t PageFormatter::Lsn(const uint8_t* page) const {
  return ReadU64(page + p_.lsn_offset, p_.big_endian);
}

void PageFormatter::SetNextPage(uint8_t* page, uint32_t next) const {
  WriteU32(page + p_.next_page_offset, next, p_.big_endian);
}

void PageFormatter::SetLsn(uint8_t* page, uint64_t lsn) const {
  WriteU64(page + p_.lsn_offset, lsn, p_.big_endian);
}

void PageFormatter::SetType(uint8_t* page, PageType type) const {
  page[p_.page_type_offset] = static_cast<uint8_t>(type);
}

void PageFormatter::SetRecordCount(uint8_t* page, uint16_t n) const {
  WriteU16(page + p_.record_count_offset, n, p_.big_endian);
}

void PageFormatter::SetFreeBoundary(uint8_t* page, uint16_t b) const {
  WriteU16(page + p_.free_space_offset, b, p_.big_endian);
}

void PageFormatter::UpdateChecksum(uint8_t* page) const {
  size_t width = ChecksumWidth(p_.checksum_kind);
  if (width == 0) return;
  ChecksumStream stream(p_.checksum_kind);
  stream.Update(ByteView(page, p_.checksum_offset));
  stream.Update(ByteView(page + p_.checksum_offset + width,
                         p_.page_size - p_.checksum_offset - width));
  uint32_t sum = stream.Final();
  // Store in field width, dialect-endian.
  for (size_t i = 0; i < width; ++i) {
    size_t shift = p_.big_endian ? (width - 1 - i) * 8 : i * 8;
    page[p_.checksum_offset + i] = static_cast<uint8_t>(sum >> shift);
  }
}

bool PageFormatter::VerifyChecksum(const uint8_t* page) const {
  size_t width = ChecksumWidth(p_.checksum_kind);
  if (width == 0) return true;
  ChecksumStream stream(p_.checksum_kind);
  stream.Update(ByteView(page, p_.checksum_offset));
  stream.Update(ByteView(page + p_.checksum_offset + width,
                         p_.page_size - p_.checksum_offset - width));
  uint32_t expected = stream.Final();
  uint32_t stored = 0;
  for (size_t i = 0; i < width; ++i) {
    size_t shift = p_.big_endian ? (width - 1 - i) * 8 : i * 8;
    stored |= static_cast<uint32_t>(page[p_.checksum_offset + i]) << shift;
  }
  return stored == expected;
}

// ---- slot directory --------------------------------------------------------

uint8_t* PageFormatter::SlotAddress(uint8_t* page, uint16_t slot) const {
  if (p_.slot_placement == SlotPlacement::kFrontSlotsBackData) {
    return page + p_.header_size + static_cast<size_t>(slot) * p_.SlotEntrySize();
  }
  return page + p_.page_size -
         static_cast<size_t>(slot + 1) * p_.SlotEntrySize();
}

const uint8_t* PageFormatter::SlotAddress(const uint8_t* page,
                                          uint16_t slot) const {
  return SlotAddress(const_cast<uint8_t*>(page), slot);
}

bool PageFormatter::SlotInBounds(uint16_t slot) const {
  // Both placements keep slot `s` within [header_size, page_size) iff the
  // first s+1 entries fit between the header and the page end.
  return p_.header_size + (static_cast<size_t>(slot) + 1) * p_.SlotEntrySize() <=
         p_.page_size;
}

std::optional<SlotInfo> PageFormatter::GetSlot(const uint8_t* page,
                                               uint16_t slot) const {
  if (slot >= RecordCount(page)) return std::nullopt;
  if (!SlotInBounds(slot)) return std::nullopt;
  const uint8_t* entry = SlotAddress(page, slot);
  uint16_t raw = ReadU16(entry, p_.big_endian);
  SlotInfo info;
  info.tombstoned = (raw & kSlotTombstoneBit) != 0;
  info.offset = raw & ~kSlotTombstoneBit;
  info.length = p_.slot_has_length ? ReadU16(entry + 2, p_.big_endian) : 0;
  return info;
}

void PageFormatter::SetSlotTombstone(uint8_t* page, uint16_t slot,
                                     bool tombstoned) const {
  if (!SlotInBounds(slot)) return;
  uint8_t* entry = SlotAddress(page, slot);
  uint16_t raw = ReadU16(entry, p_.big_endian);
  if (tombstoned) {
    raw |= kSlotTombstoneBit;
  } else {
    raw &= ~kSlotTombstoneBit;
  }
  WriteU16(entry, raw, p_.big_endian);
}

size_t PageFormatter::FreeSpace(const uint8_t* page) const {
  uint16_t count = RecordCount(page);
  uint16_t boundary = FreeBoundary(page);
  size_t entry = p_.SlotEntrySize();
  // On a carved (hostile) page both fields are attacker-controlled: a
  // boundary past the page end or a slot directory larger than the page
  // would otherwise place the next record or slot entry out of bounds.
  // Reporting the page as full keeps every insertion in range.
  if (boundary > p_.page_size) return 0;
  if (p_.header_size + (count + 1ull) * entry > p_.page_size) return 0;
  if (p_.slot_placement == SlotPlacement::kFrontSlotsBackData) {
    size_t slots_end = p_.header_size + (count + 1ull) * entry;
    return boundary > slots_end ? boundary - slots_end : 0;
  }
  size_t slots_start = p_.page_size - (count + 1ull) * entry;
  return slots_start > boundary ? slots_start - boundary : 0;
}

Result<uint16_t> PageFormatter::InsertRecordBytes(uint8_t* page, ByteView rec,
                                                  int insert_pos) const {
  if (rec.size() > 0xFFFF) {
    return Status::InvalidArgument("record too large");
  }
  uint16_t count = RecordCount(page);
  if (FreeSpace(page) < rec.size()) {
    return Status::OutOfRange("page full");
  }
  uint16_t boundary = FreeBoundary(page);
  uint16_t rec_offset;
  if (p_.slot_placement == SlotPlacement::kFrontSlotsBackData) {
    rec_offset = static_cast<uint16_t>(boundary - rec.size());
    SetFreeBoundary(page, rec_offset);
  } else {
    rec_offset = boundary;
    SetFreeBoundary(page, static_cast<uint16_t>(boundary + rec.size()));
  }
  CopyBytes(page + rec_offset, rec.data(), rec.size());

  uint16_t pos = insert_pos < 0 ? count : static_cast<uint16_t>(insert_pos);
  if (pos > count) pos = count;
  // Shift slot entries [pos, count) one place toward the end.
  size_t entry = p_.SlotEntrySize();
  for (uint16_t i = count; i > pos; --i) {
    CopyBytes(SlotAddress(page, i), SlotAddress(page, i - 1), entry);
  }
  uint8_t* slot_entry = SlotAddress(page, pos);
  WriteU16(slot_entry, rec_offset, p_.big_endian);
  if (p_.slot_has_length) {
    WriteU16(slot_entry + 2, static_cast<uint16_t>(rec.size()), p_.big_endian);
  }
  SetRecordCount(page, static_cast<uint16_t>(count + 1));
  return pos;
}

// ---- record encode/decode ---------------------------------------------------

Result<Bytes> PageFormatter::EncodeRecord(const TableSchema& schema,
                                          const Record& r,
                                          uint64_t row_id) const {
  if (r.size() != schema.columns.size()) {
    return Status::InvalidArgument(
        StrFormat("record arity %zu != schema arity %zu", r.size(),
                  schema.columns.size()));
  }
  if (r.size() > 255) {
    return Status::InvalidArgument("at most 255 columns supported");
  }
  const uint8_t column_count = static_cast<uint8_t>(r.size());
  const uint8_t numeric_count =
      static_cast<uint8_t>(schema.NumericColumnCount());
  const size_t bitmap_len = (column_count + 7) / 8;

  Bytes out;
  out.reserve(64);
  out.push_back(p_.active_marker);
  out.push_back(0);  // flags
  if (p_.stores_row_id) {
    if (p_.row_id_varint) {
      AppendVarint(&out, row_id);
    } else {
      uint8_t buf[4];
      WriteU32(buf, static_cast<uint32_t>(row_id), p_.big_endian);
      AppendBytes(&out, buf, 4);
    }
  }
  out.push_back(column_count);
  out.push_back(numeric_count);

  size_t null_bitmap_pos = out.size();
  out.resize(out.size() + bitmap_len, 0);
  size_t type_bitmap_pos = 0;
  if (p_.string_mode == StringMode::kColumnDirectory) {
    type_bitmap_pos = out.size();
    out.resize(out.size() + bitmap_len, 0);
  }
  for (size_t i = 0; i < r.size(); ++i) {
    if (r[i].is_null()) BitmapSet(&out[null_bitmap_pos], i);
    if (p_.string_mode == StringMode::kColumnDirectory &&
        !IsNumeric(schema.columns[i].type)) {
      BitmapSet(&out[type_bitmap_pos], i);
    }
  }

  out.push_back(p_.data_marker_active);
  size_t record_len_pos = out.size();
  out.resize(out.size() + 2, 0);  // record_len placeholder

  if (p_.string_mode == StringMode::kInlineSizes) {
    for (size_t i = 0; i < r.size(); ++i) {
      const Value& v = r[i];
      if (v.is_null()) {
        uint8_t lb[2];
        WriteU16(lb, 0, p_.big_endian);
        AppendBytes(&out, lb, 2);
        continue;
      }
      if (v.type() == ValueType::kString) {
        const std::string_view s = v.as_string();
        if (s.size() > 0xFFFF) {
          return Status::InvalidArgument("string too long");
        }
        uint8_t lb[2];
        WriteU16(lb, static_cast<uint16_t>(s.size()), p_.big_endian);
        AppendBytes(&out, lb, 2);
        AppendBytes(&out, s.data(), s.size());
      } else {
        uint8_t buf[10];
        WriteU16(buf, 8, p_.big_endian);
        EncodeNumeric(buf + 2, v, p_.big_endian);
        AppendBytes(&out, buf, 10);
      }
    }
  } else {
    // Numeric section, declaration order restricted to numeric columns.
    for (size_t i = 0; i < r.size(); ++i) {
      if (!IsNumeric(schema.columns[i].type)) continue;
      uint8_t buf[8];
      EncodeNumeric(buf, r[i].is_null() ? Value::Int(0) : r[i],
                    p_.big_endian);
      AppendBytes(&out, buf, 8);
    }
    // String directory (offsets from record start), then string data.
    std::vector<size_t> string_cols;
    for (size_t i = 0; i < r.size(); ++i) {
      if (!IsNumeric(schema.columns[i].type)) string_cols.push_back(i);
    }
    size_t dir_pos = out.size();
    out.resize(out.size() + 2 * string_cols.size(), 0);
    for (size_t k = 0; k < string_cols.size(); ++k) {
      const Value& v = r[string_cols[k]];
      if (out.size() > 0xFFFF) {
        return Status::InvalidArgument("record too large");
      }
      WriteU16(&out[dir_pos + 2 * k], static_cast<uint16_t>(out.size()),
               p_.big_endian);
      if (!v.is_null() && v.type() == ValueType::kString) {
        const std::string_view s = v.as_string();
        AppendBytes(&out, s.data(), s.size());
      }
    }
  }

  if (out.size() > 0xFFFF) {
    return Status::InvalidArgument("record too large");
  }
  WriteU16(&out[record_len_pos], static_cast<uint16_t>(out.size()),
           p_.big_endian);
  return out;
}

Result<PageFormatter::RecordHeaderLayout> PageFormatter::ParseHeader(
    ByteView page, uint16_t offset, uint16_t* record_len) const {
  RecordHeaderLayout h;
  size_t pos = offset;
  auto need = [&](size_t n) { return pos + n <= page.size(); };
  if (!need(2)) return Status::Corruption("record header truncated");
  uint8_t marker = page[pos];
  if (marker != p_.active_marker && marker != p_.deleted_marker) {
    return Status::Corruption("bad row marker");
  }
  pos += 2;  // marker + flags
  if (p_.stores_row_id) {
    h.row_id_pos = pos;
    if (p_.row_id_varint) {
      size_t consumed = 0;
      auto v = DecodeVarint(page, pos, &consumed);
      if (!v.has_value()) return Status::Corruption("bad row id varint");
      h.row_id_len = consumed;
    } else {
      if (!need(4)) return Status::Corruption("record header truncated");
      h.row_id_len = 4;
    }
    pos += h.row_id_len;
  }
  if (!need(2)) return Status::Corruption("record header truncated");
  h.column_count = page[pos];
  h.numeric_count = page[pos + 1];
  pos += 2;
  if (h.column_count == 0 || h.numeric_count > h.column_count) {
    return Status::Corruption("implausible column counts");
  }
  size_t bitmap_len = (h.column_count + 7) / 8;
  if (!need(bitmap_len)) return Status::Corruption("record header truncated");
  h.null_bitmap = page.data() + pos;
  pos += bitmap_len;
  if (p_.string_mode == StringMode::kColumnDirectory) {
    if (!need(bitmap_len)) {
      return Status::Corruption("record header truncated");
    }
    h.type_bitmap = page.data() + pos;
    pos += bitmap_len;
  }
  if (!need(3)) return Status::Corruption("record header truncated");
  h.data_marker_pos = pos;
  uint8_t dm = page[pos];
  if (dm != p_.data_marker_active && dm != p_.data_marker_deleted) {
    return Status::Corruption("bad data marker");
  }
  pos += 1;
  h.record_len_pos = pos;
  uint16_t len = ReadU16(page.data() + pos, p_.big_endian);
  pos += 2;
  h.payload_pos = pos;
  if (len < pos - offset || offset + len > page.size()) {
    return Status::Corruption("implausible record length");
  }
  if (record_len != nullptr) *record_len = len;
  return h;
}

Result<ParsedRecord> PageFormatter::ParseRecordAt(ByteView page,
                                                  uint16_t offset) const {
  ParsedRecord rec;
  DBFA_RETURN_IF_ERROR(ParseRecordAt(page, offset, &rec));
  return rec;
}

Status PageFormatter::ParseRecordAt(ByteView page, uint16_t offset,
                                    ParsedRecord* out) const {
  uint16_t record_len = 0;
  DBFA_ASSIGN_OR_RETURN(RecordHeaderLayout h,
                        ParseHeader(page, offset, &record_len));
  ParsedRecord& rec = *out;
  rec.fields.clear();
  rec.row_id = 0;
  rec.offset = offset;
  rec.length = record_len;
  rec.row_marker_deleted = page[offset] == p_.deleted_marker;
  rec.data_marker_deleted = page[h.data_marker_pos] == p_.data_marker_deleted;
  rec.column_count = h.column_count;
  rec.numeric_count = h.numeric_count;
  if (p_.stores_row_id) {
    if (p_.row_id_varint) {
      rec.row_id = DecodeVarint(page, h.row_id_pos, nullptr).value_or(0);
    } else {
      rec.row_id = ReadU32(page.data() + h.row_id_pos, p_.big_endian);
    }
  }
  const size_t record_end = static_cast<size_t>(offset) + record_len;
  rec.fields.reserve(h.column_count);

  if (p_.string_mode == StringMode::kInlineSizes) {
    size_t pos = h.payload_pos;
    for (size_t i = 0; i < h.column_count; ++i) {
      if (pos + 2 > record_end) {
        return Status::Corruption("inline field truncated");
      }
      uint16_t len = ReadU16(page.data() + pos, p_.big_endian);
      pos += 2;
      if (pos + len > record_end) {
        return Status::Corruption("inline field exceeds record");
      }
      RawField f;
      f.is_null = BitmapGet(h.null_bitmap, i);
      f.bytes = ByteView(page.data() + pos, len);
      pos += len;
      rec.fields.push_back(std::move(f));
    }
  } else {
    if (h.numeric_count > h.column_count) {
      return Status::Corruption("numeric count exceeds column count");
    }
    size_t string_count =
        static_cast<size_t>(h.column_count) - h.numeric_count;
    size_t pos = h.payload_pos;
    size_t numeric_pos = pos;
    size_t dir_pos = pos + 8ull * h.numeric_count;
    if (dir_pos + 2 * string_count > record_end) {
      return Status::Corruption("directory record truncated");
    }
    // Read string offsets; they must be non-decreasing and inside the
    // record. Stack storage: column_count is a uint8_t, so at most 255
    // entries — no per-record heap allocation on the parse hot path.
    std::array<uint16_t, 255> offsets;
    for (size_t k = 0; k < string_count; ++k) {
      offsets[k] = ReadU16(page.data() + dir_pos + 2 * k, p_.big_endian);
      size_t abs = static_cast<size_t>(offset) + offsets[k];
      if (abs > record_end || (k > 0 && offsets[k] < offsets[k - 1])) {
        return Status::Corruption("bad string directory");
      }
    }
    size_t next_numeric = 0;
    size_t next_string = 0;
    for (size_t i = 0; i < h.column_count; ++i) {
      RawField f;
      f.is_null = BitmapGet(h.null_bitmap, i);
      bool is_string = h.type_bitmap != nullptr && BitmapGet(h.type_bitmap, i);
      f.is_string_hint = is_string;
      if (is_string) {
        if (next_string >= string_count) {
          return Status::Corruption("type bitmap disagrees with counts");
        }
        size_t begin = static_cast<size_t>(offset) + offsets[next_string];
        size_t end = next_string + 1 < string_count
                         ? static_cast<size_t>(offset) + offsets[next_string + 1]
                         : record_end;
        f.bytes = ByteView(page.data() + begin, end - begin);
        ++next_string;
      } else {
        if (next_numeric >= h.numeric_count) {
          return Status::Corruption("type bitmap disagrees with counts");
        }
        const uint8_t* np = page.data() + numeric_pos + 8 * next_numeric;
        f.bytes = ByteView(np, 8);
        ++next_numeric;
      }
      rec.fields.push_back(std::move(f));
    }
    if (next_numeric != h.numeric_count || next_string != string_count) {
      return Status::Corruption("type bitmap disagrees with counts");
    }
  }
  return Status::Ok();
}

bool PageFormatter::IsDeleted(const ParsedRecord& rec,
                              bool slot_tombstoned) const {
  switch (p_.delete_strategy) {
    case DeleteStrategy::kRowMarker:
      return rec.row_marker_deleted;
    case DeleteStrategy::kDataMarker:
      return rec.data_marker_deleted;
    case DeleteStrategy::kRowIdentifier:
      return rec.row_id == 0;
    case DeleteStrategy::kSlotTombstone:
      return slot_tombstoned;
  }
  return false;
}

Status PageFormatter::MarkDeleted(uint8_t* page, uint16_t slot) const {
  auto info = GetSlot(page, slot);
  if (!info.has_value()) {
    return Status::NotFound(StrFormat("slot %u out of range", slot));
  }
  switch (p_.delete_strategy) {
    case DeleteStrategy::kRowMarker:
      page[info->offset] = p_.deleted_marker;
      return Status::Ok();
    case DeleteStrategy::kDataMarker: {
      DBFA_ASSIGN_OR_RETURN(
          RecordHeaderLayout h,
          ParseHeader(ByteView(page, p_.page_size), info->offset, nullptr));
      page[h.data_marker_pos] = p_.data_marker_deleted;
      return Status::Ok();
    }
    case DeleteStrategy::kRowIdentifier: {
      DBFA_ASSIGN_OR_RETURN(
          RecordHeaderLayout h,
          ParseHeader(ByteView(page, p_.page_size), info->offset, nullptr));
      if (h.row_id_len == 0) {
        return Status::Internal("row-identifier delete without row ids");
      }
      // Overwrite with an encoding of 0 that occupies the same width.
      for (size_t i = 0; i + 1 < h.row_id_len; ++i) {
        page[h.row_id_pos + i] = p_.row_id_varint ? 0x80 : 0x00;
      }
      page[h.row_id_pos + h.row_id_len - 1] = 0x00;
      return Status::Ok();
    }
    case DeleteStrategy::kSlotTombstone:
      SetSlotTombstone(page, slot, true);
      return Status::Ok();
  }
  return Status::Internal("unknown delete strategy");
}

namespace {

// One string cell: interned into `pool` when decoding into a carve pool,
// an owning std::string otherwise.
Value MakeStringValue(ByteView bytes, StringPool* pool) {
  if (pool != nullptr) {
    return Value::InternedStr(pool->Intern(AsStringView(bytes)));
  }
  return Value::Str(std::string(AsStringView(bytes)));
}

}  // namespace

Result<Record> PageFormatter::DecodeTyped(const ParsedRecord& rec,
                                          const TableSchema& schema,
                                          StringPool* pool) const {
  if (rec.fields.size() != schema.columns.size()) {
    return Status::Corruption(
        StrFormat("carved arity %zu != schema arity %zu", rec.fields.size(),
                  schema.columns.size()));
  }
  Record out;
  out.reserve(rec.fields.size());
  for (size_t i = 0; i < rec.fields.size(); ++i) {
    const RawField& f = rec.fields[i];
    if (f.is_null) {
      out.push_back(Value::Null());
      continue;
    }
    switch (schema.columns[i].type) {
      case ColumnType::kInt: {
        if (f.bytes.size() != 8) {
          return Status::Corruption("INT field is not 8 bytes");
        }
        out.push_back(Value::Int(
            static_cast<int64_t>(ReadU64(f.bytes.data(), p_.big_endian))));
        break;
      }
      case ColumnType::kDouble: {
        if (f.bytes.size() != 8) {
          return Status::Corruption("DOUBLE field is not 8 bytes");
        }
        out.push_back(Value::Real(std::bit_cast<double>(
            ReadU64(f.bytes.data(), p_.big_endian))));
        break;
      }
      case ColumnType::kVarchar:
        out.push_back(MakeStringValue(f.bytes, pool));
        break;
    }
  }
  return out;
}

Record PageFormatter::DecodeUntyped(const ParsedRecord& rec,
                                    StringPool* pool) const {
  Record out;
  out.reserve(rec.fields.size());
  for (const RawField& f : rec.fields) {
    if (f.is_null) {
      out.push_back(Value::Null());
      continue;
    }
    bool treat_as_string = f.is_string_hint ||
                           (f.bytes.size() != 8 || MostlyPrintable(f.bytes));
    if (treat_as_string) {
      out.push_back(MakeStringValue(f.bytes, pool));
      continue;
    }
    uint64_t bits = ReadU64(f.bytes.data(), p_.big_endian);
    int64_t as_int = static_cast<int64_t>(bits);
    double as_double = std::bit_cast<double>(bits);
    // Prefer the int reading unless it is implausibly large while the double
    // reading is an ordinary magnitude.
    bool int_huge = as_int > (1ll << 52) || as_int < -(1ll << 52);
    bool double_sane = std::isfinite(as_double) && as_double != 0.0 &&
                       std::abs(as_double) >= 1e-9 &&
                       std::abs(as_double) <= 1e15;
    if (int_huge && double_sane) {
      out.push_back(Value::Real(as_double));
    } else {
      out.push_back(Value::Int(as_int));
    }
  }
  return out;
}

std::vector<ParsedRecord> PageFormatter::ScanRecordsRaw(ByteView page) const {
  std::vector<ParsedRecord> found;
  if (page.size() < p_.header_size) return found;
  size_t pos = p_.header_size;
  while (pos + 8 < page.size()) {
    uint8_t b = page[pos];
    if (b != p_.active_marker && b != p_.deleted_marker) {
      ++pos;
      continue;
    }
    auto rec = ParseRecordAt(page, static_cast<uint16_t>(pos));
    if (rec.ok() && rec->length >= 8) {
      size_t next = pos + rec->length;
      found.push_back(std::move(rec).value());
      pos = next;
    } else {
      ++pos;
    }
  }
  return found;
}

// ---- index entries -----------------------------------------------------------

void PageFormatter::AppendPointer(Bytes* out, RowPointer ptr) const {
  uint8_t buf[12];
  switch (p_.pointer_format) {
    case PointerFormat::kU32PageU16Slot:
      WriteU32(buf, ptr.page_id, false);
      WriteU16(buf + 4, ptr.slot, false);
      AppendBytes(out, buf, 6);
      return;
    case PointerFormat::kU32PageU16SlotBE:
      WriteU32(buf, ptr.page_id, true);
      WriteU16(buf + 4, ptr.slot, true);
      AppendBytes(out, buf, 6);
      return;
    case PointerFormat::kVarintPageSlot:
      AppendVarint(out, ptr.page_id);
      AppendVarint(out, ptr.slot);
      return;
    case PointerFormat::kU48Packed: {
      uint64_t packed = (static_cast<uint64_t>(ptr.page_id) << 16) | ptr.slot;
      for (int i = 0; i < 6; ++i) {
        out->push_back(static_cast<uint8_t>(packed >> (8 * i)));
      }
      return;
    }
  }
}

std::optional<RowPointer> PageFormatter::DecodePointer(
    ByteView data, size_t off, size_t* consumed) const {
  RowPointer ptr;
  switch (p_.pointer_format) {
    case PointerFormat::kU32PageU16Slot:
    case PointerFormat::kU32PageU16SlotBE: {
      bool be = p_.pointer_format == PointerFormat::kU32PageU16SlotBE;
      auto page = TryReadU32(data, off, be);
      auto slot = TryReadU16(data, off + 4, be);
      if (!page.has_value() || !slot.has_value()) return std::nullopt;
      ptr.page_id = *page;
      ptr.slot = *slot;
      if (consumed != nullptr) *consumed = 6;
      return ptr;
    }
    case PointerFormat::kVarintPageSlot: {
      size_t c1 = 0;
      size_t c2 = 0;
      auto page = DecodeVarint(data, off, &c1);
      if (!page.has_value()) return std::nullopt;
      auto slot = DecodeVarint(data, off + c1, &c2);
      if (!slot.has_value()) return std::nullopt;
      ptr.page_id = static_cast<uint32_t>(*page);
      ptr.slot = static_cast<uint16_t>(*slot);
      if (consumed != nullptr) *consumed = c1 + c2;
      return ptr;
    }
    case PointerFormat::kU48Packed: {
      if (off + 6 > data.size()) return std::nullopt;
      uint64_t packed = 0;
      for (int i = 0; i < 6; ++i) {
        packed |= static_cast<uint64_t>(data[off + i]) << (8 * i);
      }
      ptr.page_id = static_cast<uint32_t>(packed >> 16);
      ptr.slot = static_cast<uint16_t>(packed & 0xFFFF);
      if (consumed != nullptr) *consumed = 6;
      return ptr;
    }
  }
  return std::nullopt;
}

namespace {

// GCC 12 emits -Warray-bounds / -Wstringop-overread false positives when
// it inlines std::vector's growth path into EncodeLeafEntry (it mistakes a
// just-allocated 2-element backing store for the final copy's full source
// range). The bounds are locally provable: every append below passes the
// buffer's exact size. Clang (and clang-tidy) analyze this region with no
// suppression.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wstringop-overread"
#endif

void AppendKeyValues(Bytes* out, const std::vector<Value>& keys,
                     bool big_endian) {
  out->push_back(static_cast<uint8_t>(keys.size()));
  for (const Value& k : keys) {
    out->push_back(static_cast<uint8_t>(k.type()));
    if (k.is_null()) {
      uint8_t lb[2];
      WriteU16(lb, 0, big_endian);
      AppendBytes(out, lb, 2);
      continue;
    }
    if (k.type() == ValueType::kString) {
      const std::string_view s = k.as_string();
      uint8_t lb[2];
      WriteU16(lb, static_cast<uint16_t>(s.size()), big_endian);
      AppendBytes(out, lb, 2);
      AppendBytes(out, s.data(), s.size());
    } else {
      uint8_t buf[10];
      WriteU16(buf, 8, big_endian);
      EncodeNumeric(buf + 2, k, big_endian);
      AppendBytes(out, buf, 10);
    }
  }
}

}  // namespace

Bytes PageFormatter::EncodeLeafEntry(const std::vector<Value>& keys,
                                     RowPointer pointer) const {
  Bytes out;
  out.push_back(p_.index_entry_marker);
  out.push_back(0);  // flags
  size_t len_pos = out.size();
  out.resize(out.size() + 2, 0);
  AppendPointer(&out, pointer);
  AppendKeyValues(&out, keys, p_.big_endian);
  WriteU16(&out[len_pos], static_cast<uint16_t>(out.size()), p_.big_endian);
  return out;
}

Bytes PageFormatter::EncodeInternalEntry(const std::vector<Value>& keys,
                                         uint32_t child_page) const {
  return EncodeLeafEntry(keys, RowPointer{child_page, 0});
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

Result<ParsedIndexEntry> PageFormatter::ParseIndexEntryAt(
    ByteView page, uint16_t offset) const {
  size_t pos = offset;
  if (pos + 4 > page.size() || page[pos] != p_.index_entry_marker) {
    return Status::Corruption("bad index entry marker");
  }
  pos += 2;
  uint16_t entry_len = ReadU16(page.data() + pos, p_.big_endian);
  pos += 2;
  size_t entry_end = static_cast<size_t>(offset) + entry_len;
  if (entry_len < 6 || entry_end > page.size()) {
    return Status::Corruption("implausible index entry length");
  }
  ParsedIndexEntry entry;
  entry.offset = offset;
  entry.length = entry_len;
  size_t consumed = 0;
  auto ptr = DecodePointer(page, pos, &consumed);
  if (!ptr.has_value()) return Status::Corruption("bad index pointer");
  entry.pointer = *ptr;
  pos += consumed;
  if (pos >= entry_end) return Status::Corruption("index entry truncated");
  uint8_t key_count = page[pos++];
  entry.keys.reserve(key_count);
  for (uint8_t k = 0; k < key_count; ++k) {
    if (pos + 3 > entry_end) return Status::Corruption("index key truncated");
    uint8_t type_tag = page[pos++];
    uint16_t len = ReadU16(page.data() + pos, p_.big_endian);
    pos += 2;
    if (pos + len > entry_end) {
      return Status::Corruption("index key exceeds entry");
    }
    switch (static_cast<ValueType>(type_tag)) {
      case ValueType::kNull:
        entry.keys.push_back(Value::Null());
        break;
      case ValueType::kInt:
        if (len != 8) return Status::Corruption("index INT key not 8 bytes");
        entry.keys.push_back(Value::Int(
            static_cast<int64_t>(ReadU64(page.data() + pos, p_.big_endian))));
        break;
      case ValueType::kDouble:
        if (len != 8) {
          return Status::Corruption("index DOUBLE key not 8 bytes");
        }
        entry.keys.push_back(Value::Real(
            std::bit_cast<double>(ReadU64(page.data() + pos, p_.big_endian))));
        break;
      case ValueType::kString:
        entry.keys.push_back(Value::Str(std::string(
            page.data() + pos, page.data() + pos + len)));
        break;
      default:
        return Status::Corruption("bad index key type tag");
    }
    pos += len;
  }
  return entry;
}

}  // namespace dbfa
