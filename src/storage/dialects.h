// Built-in page-layout dialects.
//
// The paper generalizes the page layouts of IBM DB2, Oracle, Microsoft SQL
// Server, PostgreSQL, MySQL, SQLite, Firebird and Apache Derby. This repo
// cannot ship those engines, so each dialect here is a *structural
// emulation*: a parameter set reproducing the documented degrees of freedom
// (page size, slot placement, row-identifier storage, inline column sizes
// vs. column directory, delete-marking strategy per Figure 1, checksum
// algorithm, endianness, index pointer format). Names carry a "_like"
// suffix to make the emulation explicit.
#ifndef DBFA_STORAGE_DIALECTS_H_
#define DBFA_STORAGE_DIALECTS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page_layout.h"

namespace dbfa {

/// Names of all built-in dialects, in a stable order:
/// oracle_like, mysql_like, postgres_like, sqlite_like, db2_like,
/// sqlserver_like, firebird_like, derby_like.
const std::vector<std::string>& BuiltinDialectNames();

/// Returns the parameter set for a built-in dialect name.
Result<PageLayoutParams> GetDialect(const std::string& name);

/// All built-in parameter sets, in BuiltinDialectNames() order.
std::vector<PageLayoutParams> AllDialects();

}  // namespace dbfa

#endif  // DBFA_STORAGE_DIALECTS_H_
