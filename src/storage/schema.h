// Table schemas, including the constraints the anti-forensics module abuses
// (VARCHAR domain lengths, primary keys, foreign keys — Section II-D).
// Schemas serialize to a single line of text so they can live inside system
// catalog records and be recovered by the carver.
#ifndef DBFA_STORAGE_SCHEMA_H_
#define DBFA_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace dbfa {

/// Declared column type. kInt/kDouble are "numeric" for the purposes of the
/// column-directory page layouts (numbers stored apart from strings).
enum class ColumnType : uint8_t { kInt = 0, kDouble = 1, kVarchar = 2 };

const char* ColumnTypeName(ColumnType t);

/// Whether values of this column live in the numeric section of a
/// column-directory record.
inline bool IsNumeric(ColumnType t) { return t != ColumnType::kVarchar; }

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  /// Declared VARCHAR(n) domain bound; 0 means unbounded. Ignored for
  /// numeric columns.
  uint32_t max_length = 0;
  bool nullable = true;

  bool operator==(const Column&) const = default;
};

/// Declarative referential-integrity edge (LINEORDER.LO_CUSTKEY →
/// CUSTOMER.C_CUSTKEY in the SSBM workload).
struct ForeignKey {
  std::string column;
  std::string ref_table;
  std::string ref_column;

  bool operator==(const ForeignKey&) const = default;
};

struct TableSchema {
  std::string name;
  std::vector<Column> columns;
  std::vector<std::string> primary_key;  // column names, composite allowed
  std::vector<ForeignKey> foreign_keys;

  /// Index of the named column, or -1.
  int ColumnIndex(std::string_view column_name) const;

  size_t NumericColumnCount() const;

  /// True if `r` matches arity and per-column types (NULL always allowed at
  /// this level; nullability is checked by constraint validation).
  bool TypeCheck(const Record& r) const;

  /// Single-line serialization stored in catalog records.
  std::string Serialize() const;
  static Result<TableSchema> Deserialize(std::string_view text);

  bool operator==(const TableSchema&) const = default;
};

}  // namespace dbfa

#endif  // DBFA_STORAGE_SCHEMA_H_
