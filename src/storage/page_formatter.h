// Generic slotted-page codec driven by PageLayoutParams.
//
// One implementation serves all eight dialects: the parameters choose page
// size, header field placement, slot-directory placement, record framing,
// string-size representation, endianness, checksum algorithm, and the
// delete-marking strategy. This mirrors the paper's claim that row-store
// page layouts differ only in parameter values.
//
// Record wire format (field order; offsets vary with row-id width and
// column count):
//   row_marker    u8   active_marker / deleted_marker
//   flags         u8   reserved
//   row_id        u32 or varint            (only if stores_row_id)
//   column_count  u8
//   numeric_count u8
//   null_bitmap   ceil(n/8) bytes          bit i: column i IS NULL
//   type_bitmap   ceil(n/8) bytes          bit i: column i is a string
//                                          (kColumnDirectory mode only)
//   data_marker   u8   data_marker_active / data_marker_deleted
//   record_len    u16  total encoded length from row_marker
//   payload:
//     kInlineSizes:      per column: len u16 (NULL -> 0), value bytes;
//                        numbers occupy 8 bytes (endian-sensitive)
//     kColumnDirectory:  numeric section (numeric_count * 8 bytes), then
//                        string directory (u16 offset from record start per
//                        string column), then concatenated string bytes
//
// Index entry wire format:
//   entry_marker  u8
//   flags         u8   reserved
//   entry_len     u16
//   pointer            row pointer (leaf) / child page id (internal),
//                      encoded per PointerFormat
//   key_count     u8
//   per key:      type u8, len u16, bytes
#ifndef DBFA_STORAGE_PAGE_FORMATTER_H_
#define DBFA_STORAGE_PAGE_FORMATTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/page_layout.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace dbfa {

class StringPool;

/// Physical location of a record: page id within an object file + slot.
/// This is the "RowID reflects the physical location of a record including
/// its PageID" pseudo-column of Section III-C.
struct RowPointer {
  uint32_t page_id = 0;
  uint16_t slot = 0;

  bool operator==(const RowPointer&) const = default;
  bool operator<(const RowPointer& o) const {
    return page_id != o.page_id ? page_id < o.page_id : slot < o.slot;
  }
};

/// Slot directory entry as read from a page.
struct SlotInfo {
  uint16_t offset = 0;   // record start within the page
  uint16_t length = 0;   // 0 when the dialect does not store slot lengths
  bool tombstoned = false;  // high bit set (kSlotTombstone deletions)
};

/// One raw column value recovered from a record.
struct RawField {
  /// View into the parsed page — not a copy. Valid only while the page
  /// bytes outlive the ParsedRecord and stay unmodified; every decoder
  /// consumes fields before the page goes away (the carve content pass
  /// decodes record-at-a-time), which keeps record parsing free of
  /// per-cell heap allocations.
  ByteView bytes;
  bool is_null = false;
  bool is_string_hint = false;  // from the type bitmap (directory mode)
};

/// A record parsed from page bytes, before type resolution.
struct ParsedRecord {
  uint16_t offset = 0;
  uint16_t length = 0;
  bool row_marker_deleted = false;
  bool data_marker_deleted = false;
  uint64_t row_id = 0;  // 0 when absent or wiped (kRowIdentifier deletions)
  uint8_t column_count = 0;
  uint8_t numeric_count = 0;
  std::vector<RawField> fields;  // declaration order
};

/// An index entry parsed from an index page.
struct ParsedIndexEntry {
  uint16_t offset = 0;
  uint16_t length = 0;
  RowPointer pointer;        // leaf: row pointer; internal: {child_page, 0}
  std::vector<Value> keys;
};

/// Stateless page codec for one dialect. Thread-compatible.
class PageFormatter {
 public:
  explicit PageFormatter(const PageLayoutParams& params) : p_(params) {}

  const PageLayoutParams& params() const { return p_; }
  uint32_t page_size() const { return p_.page_size; }

  // ---- page lifecycle -----------------------------------------------------

  /// Formats `page` (page_size bytes) as an empty page of `type`.
  void InitPage(uint8_t* page, uint32_t page_id, uint32_t object_id,
                PageType type) const;

  // ---- header accessors ---------------------------------------------------

  bool HasMagic(const uint8_t* page) const;
  uint32_t PageId(const uint8_t* page) const;
  uint32_t ObjectId(const uint8_t* page) const;
  PageType TypeOf(const uint8_t* page) const;
  uint16_t RecordCount(const uint8_t* page) const;
  uint16_t FreeBoundary(const uint8_t* page) const;
  uint32_t NextPage(const uint8_t* page) const;
  uint64_t Lsn(const uint8_t* page) const;

  void SetNextPage(uint8_t* page, uint32_t next) const;
  void SetLsn(uint8_t* page, uint64_t lsn) const;
  void SetType(uint8_t* page, PageType type) const;

  /// Recomputes and stores the page checksum (over the page with the
  /// checksum field zeroed). No-op for ChecksumKind::kNone.
  void UpdateChecksum(uint8_t* page) const;
  /// True when the stored checksum matches (always true for kNone).
  bool VerifyChecksum(const uint8_t* page) const;

  // ---- slot directory -----------------------------------------------------

  std::optional<SlotInfo> GetSlot(const uint8_t* page, uint16_t slot) const;
  /// Marks/unmarks the tombstone bit of a slot.
  void SetSlotTombstone(uint8_t* page, uint16_t slot, bool tombstoned) const;
  /// Bytes available for one more record (slot entry accounted for).
  size_t FreeSpace(const uint8_t* page) const;

  // ---- record encode/decode ----------------------------------------------

  /// Encodes `r` (already type-checked against `schema`).
  Result<Bytes> EncodeRecord(const TableSchema& schema, const Record& r,
                             uint64_t row_id) const;

  /// Places encoded record bytes into the page, appending a slot entry at
  /// `insert_pos` (default: end; index pages pass a sort position). Returns
  /// the slot index, or kOutOfRange when the page is full.
  Result<uint16_t> InsertRecordBytes(uint8_t* page, ByteView rec,
                                     int insert_pos = -1) const;

  /// Applies the dialect's delete-marking strategy to `slot`.
  Status MarkDeleted(uint8_t* page, uint16_t slot) const;

  /// Parses the record starting at `offset`. Fails on malformed bytes.
  Result<ParsedRecord> ParseRecordAt(ByteView page, uint16_t offset) const;

  /// Scratch-reuse variant for per-record hot loops (the carve content
  /// pass): overwrites `*out`, reusing its `fields` capacity, so steady
  /// state parses allocate nothing. `*out` is unspecified on error.
  Status ParseRecordAt(ByteView page, uint16_t offset,
                       ParsedRecord* out) const;

  /// True when the dialect's delete strategy says this record is deleted.
  /// `slot_tombstoned` must come from the record's slot entry.
  bool IsDeleted(const ParsedRecord& rec, bool slot_tombstoned) const;

  /// Resolves raw fields to typed values using a known schema. When `pool`
  /// is non-null, string cells are interned into it (Value::InternedStr —
  /// no per-cell heap allocation, repeated values stored once); the pool
  /// must then outlive the returned Record.
  Result<Record> DecodeTyped(const ParsedRecord& rec, const TableSchema& schema,
                             StringPool* pool = nullptr) const;

  /// Best-effort type inference when no schema is available (printable runs
  /// become strings, 8-byte fields become integers). Same `pool` contract
  /// as DecodeTyped.
  Record DecodeUntyped(const ParsedRecord& rec,
                       StringPool* pool = nullptr) const;

  /// Scans the whole data region byte-by-byte for parseable records,
  /// ignoring the slot directory. Used for corrupted pages and for
  /// verifying wiping completeness.
  std::vector<ParsedRecord> ScanRecordsRaw(ByteView page) const;

  // ---- index entries ------------------------------------------------------

  Bytes EncodeLeafEntry(const std::vector<Value>& keys,
                        RowPointer pointer) const;
  Bytes EncodeInternalEntry(const std::vector<Value>& keys,
                            uint32_t child_page) const;
  Result<ParsedIndexEntry> ParseIndexEntryAt(ByteView page,
                                             uint16_t offset) const;

  /// Encodes/decodes a row pointer in the dialect's PointerFormat.
  void AppendPointer(Bytes* out, RowPointer ptr) const;
  std::optional<RowPointer> DecodePointer(ByteView data, size_t off,
                                          size_t* consumed) const;

 private:
  struct RecordHeaderLayout {
    size_t row_id_pos = 0;     // 0 when absent
    size_t row_id_len = 0;
    size_t data_marker_pos = 0;
    size_t record_len_pos = 0;
    size_t payload_pos = 0;
    uint8_t column_count = 0;
    uint8_t numeric_count = 0;
    const uint8_t* null_bitmap = nullptr;
    const uint8_t* type_bitmap = nullptr;  // directory mode only
  };

  /// Walks the record header at `offset`; validates markers and bounds.
  Result<RecordHeaderLayout> ParseHeader(ByteView page, uint16_t offset,
                                         uint16_t* record_len) const;

  uint8_t* SlotAddress(uint8_t* page, uint16_t slot) const;
  const uint8_t* SlotAddress(const uint8_t* page, uint16_t slot) const;
  /// True when slot entry `slot` lies fully inside the page. A carved page's
  /// record count is attacker-controlled, so every slot access must pass
  /// this check before touching SlotAddress.
  bool SlotInBounds(uint16_t slot) const;
  void SetRecordCount(uint8_t* page, uint16_t n) const;
  void SetFreeBoundary(uint8_t* page, uint16_t b) const;

  PageLayoutParams p_;
};

}  // namespace dbfa

#endif  // DBFA_STORAGE_PAGE_FORMATTER_H_
