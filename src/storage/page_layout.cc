#include "storage/page_layout.h"

#include "common/strings.h"

namespace dbfa {

const char* PageTypeName(PageType t) {
  switch (t) {
    case PageType::kData:
      return "data";
    case PageType::kIndexLeaf:
      return "index_leaf";
    case PageType::kIndexInternal:
      return "index_internal";
    case PageType::kFree:
      return "free";
  }
  return "unknown";
}

const char* SlotPlacementName(SlotPlacement p) {
  switch (p) {
    case SlotPlacement::kFrontSlotsBackData:
      return "front_slots_back_data";
    case SlotPlacement::kBackSlotsFrontData:
      return "back_slots_front_data";
  }
  return "unknown";
}

const char* StringModeName(StringMode m) {
  switch (m) {
    case StringMode::kInlineSizes:
      return "inline_sizes";
    case StringMode::kColumnDirectory:
      return "column_directory";
  }
  return "unknown";
}

const char* DeleteStrategyName(DeleteStrategy d) {
  switch (d) {
    case DeleteStrategy::kRowMarker:
      return "row_marker";
    case DeleteStrategy::kDataMarker:
      return "data_marker";
    case DeleteStrategy::kRowIdentifier:
      return "row_identifier";
    case DeleteStrategy::kSlotTombstone:
      return "slot_tombstone";
  }
  return "unknown";
}

const char* PointerFormatName(PointerFormat f) {
  switch (f) {
    case PointerFormat::kU32PageU16Slot:
      return "u32page_u16slot";
    case PointerFormat::kU32PageU16SlotBE:
      return "u32page_u16slot_be";
    case PointerFormat::kVarintPageSlot:
      return "varint_page_slot";
    case PointerFormat::kU48Packed:
      return "u48_packed";
  }
  return "unknown";
}

Status PageLayoutParams::Validate() const {
  // The upper bound is load-bearing: slot offsets, free boundaries and raw
  // record-scan positions all travel as uint16_t, so a page larger than
  // 32 KiB would let in-range 16-bit offsets alias out-of-page addresses.
  if (page_size < 512 || page_size > 32768 ||
      (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(StrFormat(
        "page_size %u must be a power of two in [512, 32768]", page_size));
  }
  if (magic.empty() || magic.size() > 4) {
    return Status::InvalidArgument("magic must be 1-4 bytes");
  }
  auto in_header = [&](uint16_t off, size_t width) {
    return static_cast<size_t>(off) + width <= header_size;
  };
  if (!in_header(magic_offset, magic.size()) ||
      !in_header(page_id_offset, 4) || !in_header(object_id_offset, 4) ||
      !in_header(page_type_offset, 1) || !in_header(record_count_offset, 2) ||
      !in_header(free_space_offset, 2) || !in_header(next_page_offset, 4) ||
      !in_header(lsn_offset, 8) ||
      !in_header(checksum_offset, ChecksumWidth(checksum_kind))) {
    return Status::InvalidArgument("header field exceeds header_size");
  }
  if (header_size >= page_size / 4) {
    return Status::InvalidArgument("header_size too large for page_size");
  }
  return Status::Ok();
}

bool PageLayoutParams::operator==(const PageLayoutParams& other) const {
  return dialect == other.dialect && page_size == other.page_size &&
         big_endian == other.big_endian &&
         magic_offset == other.magic_offset && magic == other.magic &&
         page_id_offset == other.page_id_offset &&
         object_id_offset == other.object_id_offset &&
         page_type_offset == other.page_type_offset &&
         record_count_offset == other.record_count_offset &&
         free_space_offset == other.free_space_offset &&
         next_page_offset == other.next_page_offset &&
         lsn_offset == other.lsn_offset &&
         checksum_offset == other.checksum_offset &&
         checksum_kind == other.checksum_kind &&
         header_size == other.header_size &&
         slot_placement == other.slot_placement &&
         slot_has_length == other.slot_has_length &&
         stores_row_id == other.stores_row_id &&
         row_id_varint == other.row_id_varint &&
         string_mode == other.string_mode &&
         delete_strategy == other.delete_strategy &&
         active_marker == other.active_marker &&
         deleted_marker == other.deleted_marker &&
         data_marker_active == other.data_marker_active &&
         data_marker_deleted == other.data_marker_deleted &&
         pointer_format == other.pointer_format &&
         index_entry_marker == other.index_entry_marker;
}

}  // namespace dbfa
