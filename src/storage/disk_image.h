// Disk images: the unstructured byte streams handed to the carver.
//
// A forensic image may contain several DBMS files (possibly from different
// DBMSes), non-database garbage between them, and corrupted regions. The
// builder records ground-truth extents so tests and benchmarks can score
// carving recall precisely.
#ifndef DBFA_STORAGE_DISK_IMAGE_H_
#define DBFA_STORAGE_DISK_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"

namespace dbfa {

/// A labeled extent within an image.
struct ImageExtent {
  std::string label;   // file name or "garbage"
  size_t offset = 0;
  size_t size = 0;
  bool is_garbage = false;
};

/// Assembles an image from files and garbage runs.
class DiskImageBuilder {
 public:
  DiskImageBuilder() = default;

  /// Appends DBMS file content (whole pages).
  void AppendFile(const std::string& name, const Bytes& content);

  /// Appends `size` bytes of pseudo-random garbage.
  void AppendGarbage(size_t size, Rng* rng);

  /// Appends `size` bytes of plausible text garbage (log-like ASCII), which
  /// stresses false-positive rejection harder than random bytes.
  void AppendTextGarbage(size_t size, Rng* rng);

  const Bytes& bytes() const { return bytes_; }
  const std::vector<ImageExtent>& extents() const { return extents_; }

  /// Moves the accumulated image out.
  Bytes TakeBytes() { return std::move(bytes_); }

 private:
  Bytes bytes_;
  std::vector<ImageExtent> extents_;
};

/// Writes an image to a file.
Status SaveImage(const std::string& path, ByteView image);

/// Reads a whole file into memory.
Result<Bytes> LoadImage(const std::string& path);

/// Overwrites `len` bytes at `offset` with random bytes (sector damage /
/// hostile tampering simulation).
void CorruptRegion(Bytes* image, size_t offset, size_t len, Rng* rng);

}  // namespace dbfa

#endif  // DBFA_STORAGE_DISK_IMAGE_H_
