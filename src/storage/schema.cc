#include "storage/schema.h"

#include "common/strings.h"

namespace dbfa {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kVarchar:
      return "VARCHAR";
  }
  return "?";
}

int TableSchema::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, column_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t TableSchema::NumericColumnCount() const {
  size_t n = 0;
  for (const Column& c : columns) {
    if (IsNumeric(c.type)) ++n;
  }
  return n;
}

bool TableSchema::TypeCheck(const Record& r) const {
  if (r.size() != columns.size()) return false;
  for (size_t i = 0; i < r.size(); ++i) {
    if (r[i].is_null()) continue;
    switch (columns[i].type) {
      case ColumnType::kInt:
        if (r[i].type() != ValueType::kInt) return false;
        break;
      case ColumnType::kDouble:
        if (r[i].type() != ValueType::kDouble &&
            r[i].type() != ValueType::kInt) {
          return false;
        }
        break;
      case ColumnType::kVarchar:
        if (r[i].type() != ValueType::kString) return false;
        break;
    }
  }
  return true;
}

// Format:
//   name|col,TYPE,maxlen,nullable;...|pk1,pk2|fkcol>tbl.col;...
// The '|' and ';' separators never occur in identifiers we accept.
std::string TableSchema::Serialize() const {
  std::string out = name;
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) out += ";";
    const Column& c = columns[i];
    out += StrFormat("%s,%s,%u,%d", c.name.c_str(), ColumnTypeName(c.type),
                     c.max_length, c.nullable ? 1 : 0);
  }
  out += "|";
  out += Join(primary_key, ",");
  out += "|";
  for (size_t i = 0; i < foreign_keys.size(); ++i) {
    if (i != 0) out += ";";
    const ForeignKey& fk = foreign_keys[i];
    out += fk.column + ">" + fk.ref_table + "." + fk.ref_column;
  }
  return out;
}

Result<TableSchema> TableSchema::Deserialize(std::string_view text) {
  std::vector<std::string> sections = Split(text, '|');
  if (sections.size() != 4) {
    return Status::Corruption("schema text must have 4 sections: " +
                              std::string(text));
  }
  TableSchema schema;
  schema.name = sections[0];
  if (schema.name.empty()) {
    return Status::Corruption("schema with empty table name");
  }
  for (const std::string& col_text : Split(sections[1], ';')) {
    if (col_text.empty()) continue;
    std::vector<std::string> f = Split(col_text, ',');
    if (f.size() != 4) {
      return Status::Corruption("bad column spec: " + col_text);
    }
    Column c;
    c.name = f[0];
    if (EqualsIgnoreCase(f[1], "INT")) {
      c.type = ColumnType::kInt;
    } else if (EqualsIgnoreCase(f[1], "DOUBLE")) {
      c.type = ColumnType::kDouble;
    } else if (EqualsIgnoreCase(f[1], "VARCHAR")) {
      c.type = ColumnType::kVarchar;
    } else {
      return Status::Corruption("bad column type: " + f[1]);
    }
    c.max_length = static_cast<uint32_t>(std::atoi(f[2].c_str()));
    c.nullable = f[3] == "1";
    schema.columns.push_back(std::move(c));
  }
  if (schema.columns.empty()) {
    return Status::Corruption("schema with no columns");
  }
  if (!sections[2].empty()) {
    schema.primary_key = Split(sections[2], ',');
  }
  for (const std::string& fk_text : Split(sections[3], ';')) {
    if (fk_text.empty()) continue;
    size_t gt = fk_text.find('>');
    size_t dot = fk_text.find('.', gt == std::string::npos ? 0 : gt);
    if (gt == std::string::npos || dot == std::string::npos) {
      return Status::Corruption("bad foreign key spec: " + fk_text);
    }
    ForeignKey fk;
    fk.column = fk_text.substr(0, gt);
    fk.ref_table = fk_text.substr(gt + 1, dot - gt - 1);
    fk.ref_column = fk_text.substr(dot + 1);
    schema.foreign_keys.push_back(std::move(fk));
  }
  return schema;
}

}  // namespace dbfa
