#include "storage/dialects.h"

#include <cassert>

namespace dbfa {
namespace {

// Emulates Oracle: 8 KiB little-endian pages, back-of-page slot directory,
// explicit row identifiers, inline string sizes, DELETE marks the row
// delimiter (Figure 1 page #1).
PageLayoutParams OracleLike() {
  PageLayoutParams p;
  p.dialect = "oracle_like";
  p.page_size = 8192;
  p.big_endian = false;
  p.magic_offset = 0;
  p.magic = {0x4F, 0x52, 0xA0};
  p.page_id_offset = 4;
  p.object_id_offset = 8;
  p.page_type_offset = 13;
  p.record_count_offset = 14;
  p.free_space_offset = 16;
  p.next_page_offset = 20;
  p.lsn_offset = 24;
  p.checksum_kind = ChecksumKind::kXor8;
  p.checksum_offset = 32;
  p.header_size = 48;
  p.slot_placement = SlotPlacement::kBackSlotsFrontData;
  p.slot_has_length = true;
  p.stores_row_id = true;
  p.row_id_varint = false;
  p.string_mode = StringMode::kInlineSizes;
  p.delete_strategy = DeleteStrategy::kRowMarker;
  p.active_marker = 0x3C;
  p.deleted_marker = 0x7A;
  p.data_marker_active = 0xB1;
  p.data_marker_deleted = 0x00;
  p.pointer_format = PointerFormat::kU48Packed;
  p.index_entry_marker = 0xA1;
  return p;
}

// Emulates MySQL/InnoDB: 16 KiB big-endian pages with a leading CRC field,
// front slot directory, explicit row identifiers, inline sizes, DELETE marks
// the row delimiter (Figure 1 page #1).
PageLayoutParams MySqlLike() {
  PageLayoutParams p;
  p.dialect = "mysql_like";
  p.page_size = 16384;
  p.big_endian = true;
  p.checksum_kind = ChecksumKind::kCrc32;
  p.checksum_offset = 0;
  p.magic_offset = 4;
  p.magic = {0xFE, 0xDB};
  p.page_id_offset = 8;
  p.object_id_offset = 12;
  p.page_type_offset = 16;
  p.record_count_offset = 18;
  p.free_space_offset = 20;
  p.next_page_offset = 24;
  p.lsn_offset = 32;
  p.header_size = 56;
  p.slot_placement = SlotPlacement::kFrontSlotsBackData;
  p.slot_has_length = false;
  p.stores_row_id = true;
  p.row_id_varint = false;
  p.string_mode = StringMode::kInlineSizes;
  p.delete_strategy = DeleteStrategy::kRowMarker;
  p.active_marker = 0x2C;
  p.deleted_marker = 0x20;
  p.data_marker_active = 0xC3;
  p.data_marker_deleted = 0x01;
  p.pointer_format = PointerFormat::kU32PageU16SlotBE;
  p.index_entry_marker = 0xA2;
  return p;
}

// Emulates PostgreSQL: 8 KiB little-endian pages, LSN first, line-pointer
// (front) slot array with lengths, no stored row identifier, inline sizes,
// DELETE marks the raw-data delimiter (Figure 1 page #2).
PageLayoutParams PostgresLike() {
  PageLayoutParams p;
  p.dialect = "postgres_like";
  p.page_size = 8192;
  p.big_endian = false;
  p.lsn_offset = 0;
  p.checksum_kind = ChecksumKind::kFletcher16;
  p.checksum_offset = 8;
  p.magic_offset = 10;
  p.magic = {0x50, 0x47};
  p.page_id_offset = 12;
  p.object_id_offset = 16;
  p.page_type_offset = 20;
  p.record_count_offset = 22;
  p.free_space_offset = 24;
  p.next_page_offset = 28;
  p.header_size = 40;
  p.slot_placement = SlotPlacement::kFrontSlotsBackData;
  p.slot_has_length = true;
  p.stores_row_id = false;
  p.string_mode = StringMode::kInlineSizes;
  p.delete_strategy = DeleteStrategy::kDataMarker;
  p.active_marker = 0x2D;
  p.deleted_marker = 0x6F;
  p.data_marker_active = 0xB4;
  p.data_marker_deleted = 0x00;
  p.pointer_format = PointerFormat::kU32PageU16Slot;
  p.index_entry_marker = 0xA3;
  return p;
}

// Emulates SQLite: 4 KiB big-endian pages, no checksum, varint row
// identifiers, inline sizes, DELETE marks the row identifier (Figure 1
// page #3).
PageLayoutParams SqliteLike() {
  PageLayoutParams p;
  p.dialect = "sqlite_like";
  p.page_size = 4096;
  p.big_endian = true;
  p.magic_offset = 0;
  p.magic = {0x53, 0x51, 0x4C};
  p.page_type_offset = 3;
  p.page_id_offset = 4;
  p.object_id_offset = 8;
  p.record_count_offset = 12;
  p.free_space_offset = 14;
  p.next_page_offset = 16;
  p.lsn_offset = 20;
  p.checksum_kind = ChecksumKind::kNone;
  p.checksum_offset = 0;
  p.header_size = 32;
  p.slot_placement = SlotPlacement::kFrontSlotsBackData;
  p.slot_has_length = false;
  p.stores_row_id = true;
  p.row_id_varint = true;
  p.string_mode = StringMode::kInlineSizes;
  p.delete_strategy = DeleteStrategy::kRowIdentifier;
  p.active_marker = 0x17;
  p.deleted_marker = 0x99;
  p.data_marker_active = 0xD7;
  p.data_marker_deleted = 0x11;
  p.pointer_format = PointerFormat::kVarintPageSlot;
  p.index_entry_marker = 0xA4;
  return p;
}

// Emulates IBM DB2: 4 KiB little-endian pages, back slot directory with
// lengths, no row identifier, column-directory records (numbers separate
// from strings), DELETE only alters the row directory (slot tombstone).
PageLayoutParams Db2Like() {
  PageLayoutParams p;
  p.dialect = "db2_like";
  p.page_size = 4096;
  p.big_endian = false;
  p.magic_offset = 0;
  p.magic = {0xDB, 0x02};
  p.object_id_offset = 4;
  p.page_id_offset = 8;
  p.record_count_offset = 12;
  p.page_type_offset = 15;
  p.free_space_offset = 16;
  p.next_page_offset = 18;
  p.lsn_offset = 24;
  p.checksum_kind = ChecksumKind::kXor8;
  p.checksum_offset = 40;
  p.header_size = 44;
  p.slot_placement = SlotPlacement::kBackSlotsFrontData;
  p.slot_has_length = true;
  p.stores_row_id = false;
  p.string_mode = StringMode::kColumnDirectory;
  p.delete_strategy = DeleteStrategy::kSlotTombstone;
  p.active_marker = 0x44;
  p.deleted_marker = 0x55;
  p.data_marker_active = 0xE0;
  p.data_marker_deleted = 0x0E;
  p.pointer_format = PointerFormat::kU32PageU16Slot;
  p.index_entry_marker = 0xA5;
  return p;
}

// Emulates Microsoft SQL Server: 8 KiB little-endian pages, row-offset array
// at the page end, no row identifier, column-directory records, DELETE only
// alters the row directory (slot tombstone).
PageLayoutParams SqlServerLike() {
  PageLayoutParams p;
  p.dialect = "sqlserver_like";
  p.page_size = 8192;
  p.big_endian = false;
  p.magic_offset = 0;
  p.magic = {0x4D, 0x53};
  p.page_type_offset = 2;
  p.page_id_offset = 4;
  p.object_id_offset = 12;
  p.record_count_offset = 22;
  p.free_space_offset = 24;
  p.next_page_offset = 28;
  p.lsn_offset = 40;
  p.checksum_kind = ChecksumKind::kFletcher16;
  p.checksum_offset = 60;
  p.header_size = 64;
  p.slot_placement = SlotPlacement::kBackSlotsFrontData;
  p.slot_has_length = false;
  p.stores_row_id = false;
  p.string_mode = StringMode::kColumnDirectory;
  p.delete_strategy = DeleteStrategy::kSlotTombstone;
  p.active_marker = 0x30;
  p.deleted_marker = 0x3F;
  p.data_marker_active = 0xAA;
  p.data_marker_deleted = 0x55;
  p.pointer_format = PointerFormat::kU32PageU16Slot;
  p.index_entry_marker = 0xA6;
  return p;
}

// Emulates Firebird: 8 KiB little-endian pages, front slot directory,
// explicit row identifiers, column-directory records, DELETE marks the row
// delimiter.
PageLayoutParams FirebirdLike() {
  PageLayoutParams p;
  p.dialect = "firebird_like";
  p.page_size = 8192;
  p.big_endian = false;
  p.magic_offset = 0;
  p.magic = {0x46, 0x42, 0x01, 0x02};
  p.page_id_offset = 4;
  p.object_id_offset = 8;
  p.page_type_offset = 12;
  p.record_count_offset = 14;
  p.free_space_offset = 16;
  p.next_page_offset = 20;
  p.lsn_offset = 24;
  p.checksum_kind = ChecksumKind::kXor8;
  p.checksum_offset = 38;
  p.header_size = 40;
  p.slot_placement = SlotPlacement::kFrontSlotsBackData;
  p.slot_has_length = false;
  p.stores_row_id = true;
  p.row_id_varint = false;
  p.string_mode = StringMode::kColumnDirectory;
  p.delete_strategy = DeleteStrategy::kRowMarker;
  p.active_marker = 0x46;
  p.deleted_marker = 0x64;
  p.data_marker_active = 0x77;
  p.data_marker_deleted = 0x07;
  p.pointer_format = PointerFormat::kU32PageU16Slot;
  p.index_entry_marker = 0xA7;
  return p;
}

// Emulates Apache Derby: 4 KiB big-endian pages, front slot directory with
// lengths, explicit row identifiers, column-directory records, DELETE marks
// the raw-data delimiter.
PageLayoutParams DerbyLike() {
  PageLayoutParams p;
  p.dialect = "derby_like";
  p.page_size = 4096;
  p.big_endian = true;
  p.magic_offset = 0;
  p.magic = {0x44, 0x45, 0x52};
  p.object_id_offset = 4;
  p.page_id_offset = 8;
  p.page_type_offset = 12;
  p.record_count_offset = 14;
  p.free_space_offset = 16;
  p.next_page_offset = 20;
  p.lsn_offset = 32;
  p.checksum_kind = ChecksumKind::kCrc32;
  p.checksum_offset = 40;
  p.header_size = 48;
  p.slot_placement = SlotPlacement::kFrontSlotsBackData;
  p.slot_has_length = true;
  p.stores_row_id = true;
  p.row_id_varint = false;
  p.string_mode = StringMode::kColumnDirectory;
  p.delete_strategy = DeleteStrategy::kDataMarker;
  p.active_marker = 0x11;
  p.deleted_marker = 0x22;
  p.data_marker_active = 0x33;
  p.data_marker_deleted = 0x99;
  p.pointer_format = PointerFormat::kU32PageU16SlotBE;
  p.index_entry_marker = 0xA8;
  return p;
}

}  // namespace

const std::vector<std::string>& BuiltinDialectNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "oracle_like",   "mysql_like",    "postgres_like", "sqlite_like",
      "db2_like",      "sqlserver_like", "firebird_like", "derby_like"};
  return names;
}

Result<PageLayoutParams> GetDialect(const std::string& name) {
  PageLayoutParams p;
  if (name == "oracle_like") {
    p = OracleLike();
  } else if (name == "mysql_like") {
    p = MySqlLike();
  } else if (name == "postgres_like") {
    p = PostgresLike();
  } else if (name == "sqlite_like") {
    p = SqliteLike();
  } else if (name == "db2_like") {
    p = Db2Like();
  } else if (name == "sqlserver_like") {
    p = SqlServerLike();
  } else if (name == "firebird_like") {
    p = FirebirdLike();
  } else if (name == "derby_like") {
    p = DerbyLike();
  } else {
    return Status::NotFound("unknown dialect: " + name);
  }
  Status valid = p.Validate();
  assert(valid.ok());
  (void)valid;
  return p;
}

std::vector<PageLayoutParams> AllDialects() {
  std::vector<PageLayoutParams> out;
  for (const std::string& name : BuiltinDialectNames()) {
    out.push_back(GetDialect(name).value());
  }
  return out;
}

}  // namespace dbfa
