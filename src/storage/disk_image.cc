#include "storage/disk_image.h"

#include <cstdio>

namespace dbfa {

void DiskImageBuilder::AppendFile(const std::string& name,
                                  const Bytes& content) {
  extents_.push_back({name, bytes_.size(), content.size(), false});
  bytes_.insert(bytes_.end(), content.begin(), content.end());
}

void DiskImageBuilder::AppendGarbage(size_t size, Rng* rng) {
  extents_.push_back({"garbage", bytes_.size(), size, true});
  bytes_.reserve(bytes_.size() + size);
  for (size_t i = 0; i < size; ++i) {
    bytes_.push_back(static_cast<uint8_t>(rng->NextU64()));
  }
}

void DiskImageBuilder::AppendTextGarbage(size_t size, Rng* rng) {
  extents_.push_back({"garbage", bytes_.size(), size, true});
  static const char kWords[] =
      "INFO warn error request session commit rollback user admin select "
      "tmpfile cache flush retry timeout 127.0.0.1 GET POST /index.html ";
  size_t n = sizeof(kWords) - 1;
  bytes_.reserve(bytes_.size() + size);
  size_t pos = rng->NextU64() % n;
  for (size_t i = 0; i < size; ++i) {
    bytes_.push_back(static_cast<uint8_t>(kWords[pos]));
    pos = (pos + 1) % n;
    if (rng->Bernoulli(0.01)) pos = rng->NextU64() % n;
  }
}

Status SaveImage(const std::string& path, ByteView image) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  size_t written = std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  if (written != image.size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

Result<Bytes> LoadImage(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes out(static_cast<size_t>(size < 0 ? 0 : size));
  size_t read = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (read != out.size()) {
    return Status::IoError("short read: " + path);
  }
  return out;
}

void CorruptRegion(Bytes* image, size_t offset, size_t len, Rng* rng) {
  for (size_t i = 0; i < len && offset + i < image->size(); ++i) {
    (*image)[offset + i] = static_cast<uint8_t>(rng->NextU64());
  }
}

}  // namespace dbfa
