// Typed values and records. MiniDB (and carved output) uses a deliberately
// small type system — NULL, 64-bit integers, doubles, and variable-length
// strings — which covers every workload in the paper (SSBM keys are
// integers, descriptive columns are VARCHARs).
//
// Strings come in two representations with identical semantics: an owning
// std::string, and a non-owning StringRef into an arena-backed StringPool
// (used by the carvers so repeated cell values are stored once; see
// docs/columnar_memory.md). type() reports kString for both; Compare/Hash/
// ToString never distinguish them.
#ifndef DBFA_STORAGE_VALUE_H_
#define DBFA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/string_ref.h"

namespace dbfa {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeName(ValueType t);

/// A dynamically typed SQL value.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  /// A string interned in a StringPool. The pool must outlive the value
  /// (carve results keep their pool alive via CarveResult::string_pool).
  static Value InternedStr(const StringRef& r) { return Value(r); }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;  // owned or interned
    }
  }

  bool is_null() const { return v_.index() == 0; }
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  /// String content regardless of representation; valid while the value
  /// (and, for interned strings, the owning pool) is alive.
  std::string_view as_string() const {
    if (const StringRef* r = std::get_if<StringRef>(&v_)) return r->view();
    return std::get<std::string>(v_);
  }

  bool is_interned() const { return std::holds_alternative<StringRef>(v_); }
  /// Only valid when is_interned().
  const StringRef& interned_ref() const { return std::get<StringRef>(v_); }

  /// Numeric view: ints promote to double; only valid for kInt/kDouble.
  double NumericValue() const {
    return type() == ValueType::kInt ? static_cast<double>(as_int())
                                     : as_double();
  }

  /// Three-way comparison used for B-Tree ordering and predicate evaluation.
  /// NULL sorts before everything; numbers compare numerically across
  /// int/double; numbers sort before strings. Two interned strings from the
  /// same pool short-circuit on id equality (same id == same content).
  static int Compare(const Value& a, const Value& b);

  bool operator==(const Value& other) const {
    return Compare(*this, other) == 0;
  }
  bool operator<(const Value& other) const {
    return Compare(*this, other) < 0;
  }

  /// Display form: NULL, 42, 3.14, abc (unquoted).
  std::string ToString() const;
  /// Appends the display form to *out without temporary allocations
  /// (numerics render through a stack buffer).
  void AppendDisplayTo(std::string* out) const;
  /// Exact length AppendDisplayTo would append, without allocating.
  size_t DisplayWidth() const;
  /// SQL literal form: NULL, 42, 3.14, 'abc' (quoted/escaped).
  std::string ToSqlLiteral() const;

  /// Stable hash for hash joins and duplicate detection. Strings hash by
  /// content via HashStringContent regardless of representation; interned
  /// refs return their cached hash, so HashRecord stays compatible with
  /// CompareRecords equality (tested in string_pool_test).
  size_t Hash() const;

 private:
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const StringRef& r) : v_(r) {}

  std::variant<std::monostate, int64_t, double, std::string, StringRef> v_;
};

/// One row of values, in schema column order.
using Record = std::vector<Value>;

/// Lexicographic comparison of records (for composite keys).
int CompareRecords(const Record& a, const Record& b);

/// Combined hash over a record's values, compatible with CompareRecords
/// equality: records with CompareRecords(a, b) == 0 hash identically
/// (Value::Hash already makes integral doubles hash like the equal int, and
/// owned vs interned strings of equal content hash identically).
size_t HashRecord(const Record& r);

/// Renders "(v1, v2, ...)" into one exactly-reserved buffer.
std::string RecordToString(const Record& r);

}  // namespace dbfa

#endif  // DBFA_STORAGE_VALUE_H_
