// Typed values and records. MiniDB (and carved output) uses a deliberately
// small type system — NULL, 64-bit integers, doubles, and variable-length
// strings — which covers every workload in the paper (SSBM keys are
// integers, descriptive columns are VARCHARs).
#ifndef DBFA_STORAGE_VALUE_H_
#define DBFA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace dbfa {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeName(ValueType t);

/// A dynamically typed SQL value.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return v_.index() == 0; }
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view: ints promote to double; only valid for kInt/kDouble.
  double NumericValue() const {
    return type() == ValueType::kInt ? static_cast<double>(as_int())
                                     : as_double();
  }

  /// Three-way comparison used for B-Tree ordering and predicate evaluation.
  /// NULL sorts before everything; numbers compare numerically across
  /// int/double; numbers sort before strings.
  static int Compare(const Value& a, const Value& b);

  bool operator==(const Value& other) const {
    return Compare(*this, other) == 0;
  }
  bool operator<(const Value& other) const {
    return Compare(*this, other) < 0;
  }

  /// Display form: NULL, 42, 3.14, abc (unquoted).
  std::string ToString() const;
  /// SQL literal form: NULL, 42, 3.14, 'abc' (quoted/escaped).
  std::string ToSqlLiteral() const;

  /// Stable hash for hash joins and duplicate detection.
  size_t Hash() const;

 private:
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// One row of values, in schema column order.
using Record = std::vector<Value>;

/// Lexicographic comparison of records (for composite keys).
int CompareRecords(const Record& a, const Record& b);

/// Combined hash over a record's values, compatible with CompareRecords
/// equality: records with CompareRecords(a, b) == 0 hash identically
/// (Value::Hash already makes integral doubles hash like the equal int).
size_t HashRecord(const Record& r);

/// Renders "(v1, v2, ...)".
std::string RecordToString(const Record& r);

}  // namespace dbfa

#endif  // DBFA_STORAGE_VALUE_H_
