#include "storage/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/strings.h"

namespace dbfa {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "VARCHAR";
  }
  return "?";
}

int Value::Compare(const Value& a, const Value& b) {
  const bool a_num = a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  const bool b_num = b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  if (a_num && b_num) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      int64_t x = a.as_int();
      int64_t y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.NumericValue();
    double y = b.NumericValue();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numbers before strings
  return a.as_string().compare(b.as_string()) < 0
             ? -1
             : (a.as_string() == b.as_string() ? 0 : 1);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      std::string s = StrFormat("%.6g", as_double());
      return s;
    }
    case ValueType::kString:
      return as_string();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() == ValueType::kString) return SqlQuote(as_string());
  return ToString();
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt:
      return std::hash<int64_t>{}(as_int());
    case ValueType::kDouble: {
      double d = as_double();
      // Make integral doubles hash like the equivalent int so hash joins
      // across int/double columns agree with Compare().
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

int CompareRecords(const Record& a, const Record& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t HashRecord(const Record& r) {
  size_t h = 0x9E3779B97F4A7C15ull ^ r.size();
  for (const Value& v : r) {
    h ^= v.Hash() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string RecordToString(const Record& r) {
  std::string out = "(";
  for (size_t i = 0; i < r.size(); ++i) {
    if (i != 0) out += ", ";
    out += r[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace dbfa
