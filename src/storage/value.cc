#include "storage/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/strings.h"

namespace dbfa {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "VARCHAR";
  }
  return "?";
}

int Value::Compare(const Value& a, const Value& b) {
  const bool a_num = a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  const bool b_num = b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  if (a_num && b_num) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      int64_t x = a.as_int();
      int64_t y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.NumericValue();
    double y = b.NumericValue();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numbers before strings
  if (a.is_interned() && b.is_interned()) {
    const StringRef& ra = a.interned_ref();
    const StringRef& rb = b.interned_ref();
    // Same pool + same id means the exact same interned string.
    if (ra.pool_id != 0 && ra.pool_id == rb.pool_id && ra.id == rb.id) {
      return 0;
    }
  }
  std::string_view sa = a.as_string();
  std::string_view sb = b.as_string();
  int c = sa.compare(sb);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

void Value::AppendDisplayTo(std::string* out) const {
  switch (type()) {
    case ValueType::kNull:
      out->append("NULL");
      return;
    case ValueType::kInt: {
      char buf[24];
      int n = std::snprintf(buf, sizeof(buf), "%lld",
                            static_cast<long long>(as_int()));
      out->append(buf, static_cast<size_t>(n));
      return;
    }
    case ValueType::kDouble: {
      char buf[32];
      int n = std::snprintf(buf, sizeof(buf), "%.6g", as_double());
      out->append(buf, static_cast<size_t>(n));
      return;
    }
    case ValueType::kString:
      out->append(as_string());
      return;
  }
  out->append("?");
}

size_t Value::DisplayWidth() const {
  switch (type()) {
    case ValueType::kNull:
      return 4;
    case ValueType::kInt:
      return static_cast<size_t>(std::snprintf(
          nullptr, 0, "%lld", static_cast<long long>(as_int())));
    case ValueType::kDouble:
      return static_cast<size_t>(
          std::snprintf(nullptr, 0, "%.6g", as_double()));
    case ValueType::kString:
      return as_string().size();
  }
  return 1;
}

std::string Value::ToString() const {
  std::string out;
  out.reserve(DisplayWidth());
  AppendDisplayTo(&out);
  return out;
}

std::string Value::ToSqlLiteral() const {
  if (type() == ValueType::kString) return SqlQuote(as_string());
  return ToString();
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt:
      return std::hash<int64_t>{}(as_int());
    case ValueType::kDouble: {
      double d = as_double();
      // Make integral doubles hash like the equivalent int so hash joins
      // across int/double columns agree with Compare().
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      // Interned refs cache HashStringContent(content) at intern time, so
      // both branches hash identical content identically — the invariant
      // HashRecord/CompareRecords compatibility rests on.
      if (is_interned()) return interned_ref().hash;
      return HashStringContent(as_string());
  }
  return 0;
}

int CompareRecords(const Record& a, const Record& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t HashRecord(const Record& r) {
  size_t h = 0x9E3779B97F4A7C15ull ^ r.size();
  for (const Value& v : r) {
    h ^= v.Hash() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string RecordToString(const Record& r) {
  std::string out;
  size_t width = 2;  // parens
  for (size_t i = 0; i < r.size(); ++i) {
    if (i != 0) width += 2;  // ", "
    width += r[i].DisplayWidth();
  }
  out.reserve(width);
  out += "(";
  for (size_t i = 0; i < r.size(); ++i) {
    if (i != 0) out += ", ";
    r[i].AppendDisplayTo(&out);
  }
  out += ")";
  return out;
}

}  // namespace dbfa
