// The page-layout parameter model — the central abstraction of the paper.
//
// "While each DBMS uses its own page layout, a great deal of overlap between
//  page layouts allowed us to generalize storage for many row-store DBMSes"
//  (Section II-A). A PageLayoutParams value fully describes one DBMS's page
// format; the generic PageFormatter interprets pages given the parameters,
// and the ParameterCollector (src/core) re-derives the parameters from
// captured storage of an unknown engine. PageLayoutParams serializes to the
// carver "configuration file" of Figure 2 (src/core/config_io).
#ifndef DBFA_STORAGE_PAGE_LAYOUT_H_
#define DBFA_STORAGE_PAGE_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/status.h"

namespace dbfa {

/// Stored page type tag values (written at PageLayoutParams::page_type_offset).
enum class PageType : uint8_t {
  kData = 0xD1,      // heap page of table records (incl. system catalog)
  kIndexLeaf = 0xE1,
  kIndexInternal = 0xE2,
  kFree = 0x00,      // never-used page
};

/// Where the slot directory and the record data live.
enum class SlotPlacement : uint8_t {
  /// Slot array directly after the header, growing toward the page end;
  /// record data packed from the page end growing toward the header
  /// (PostgreSQL line-pointer style).
  kFrontSlotsBackData = 0,
  /// Slot array at the very end of the page growing backward; record data
  /// after the header growing forward (SQL Server row-offset-array style).
  kBackSlotsFrontData = 1,
};

/// How string column sizes are represented inside a record (paper Table II).
enum class StringMode : uint8_t {
  /// Sizes stored inline before each value; numbers and strings interleaved
  /// in declaration order.
  kInlineSizes = 0,
  /// No inline sizes; record keeps a directory of pointers to all string
  /// columns and stores numbers separately from strings.
  kColumnDirectory = 1,
};

/// What a DELETE physically marks (paper Figure 1).
enum class DeleteStrategy : uint8_t {
  kRowMarker = 0,      // overwrite the row delimiter (MySQL, Oracle)
  kDataMarker = 1,     // overwrite the raw-data delimiter (PostgreSQL)
  kRowIdentifier = 2,  // overwrite the row identifier (SQLite)
  kSlotTombstone = 3,  // only alter the row directory (DB2, SQL Server)
};

/// Wire format of an index row pointer ("generalized pointer deconstruction",
/// Section II-A / DBStorageAuditor).
enum class PointerFormat : uint8_t {
  kU32PageU16Slot = 0,    // little-endian page id + slot
  kU32PageU16SlotBE = 1,  // big-endian page id + slot
  kVarintPageSlot = 2,    // two varints
  kU48Packed = 3,         // 48-bit little-endian (page << 16 | slot)
};

const char* PageTypeName(PageType t);
const char* SlotPlacementName(SlotPlacement p);
const char* StringModeName(StringMode m);
const char* DeleteStrategyName(DeleteStrategy d);
const char* PointerFormatName(PointerFormat f);

/// Complete description of one dialect's page layout. All header offsets are
/// byte offsets from the start of the page.
struct PageLayoutParams {
  std::string dialect;  // identifier, e.g. "mysql_like"

  uint32_t page_size = 8192;
  bool big_endian = false;

  // ---- page header ----
  uint16_t magic_offset = 0;
  std::vector<uint8_t> magic;  // 2-4 constant bytes identifying a page
  uint16_t page_id_offset = 4;       // u32, 1-based within an object file
  uint16_t object_id_offset = 8;     // u32
  uint16_t page_type_offset = 12;    // u8 (PageType)
  uint16_t record_count_offset = 14; // u16, number of slot entries
  uint16_t free_space_offset = 16;   // u16, data-region boundary
  uint16_t next_page_offset = 18;    // u32, heap chain / leaf chain (0 = none)
  uint16_t lsn_offset = 24;          // u64, storage-stamped modification LSN
  uint16_t checksum_offset = 32;
  ChecksumKind checksum_kind = ChecksumKind::kCrc32;
  uint16_t header_size = 40;

  // ---- slot directory ----
  SlotPlacement slot_placement = SlotPlacement::kFrontSlotsBackData;
  bool slot_has_length = false;  // entry: offset u16 [+ length u16]

  // ---- record format ----
  bool stores_row_id = true;
  bool row_id_varint = false;  // varint vs fixed u32 row identifier
  StringMode string_mode = StringMode::kInlineSizes;
  DeleteStrategy delete_strategy = DeleteStrategy::kRowMarker;
  uint8_t active_marker = 0x2C;        // row delimiter of a live record
  uint8_t deleted_marker = 0x7E;       // row delimiter after DELETE
  uint8_t data_marker_active = 0xB4;   // raw-data delimiter of a live record
  uint8_t data_marker_deleted = 0x00;  // raw-data delimiter after DELETE

  // ---- index pages ----
  PointerFormat pointer_format = PointerFormat::kU32PageU16Slot;
  uint8_t index_entry_marker = 0xA5;

  /// Width in bytes of one slot directory entry.
  uint16_t SlotEntrySize() const { return slot_has_length ? 4 : 2; }

  /// Sanity-checks offsets against page_size/header_size.
  Status Validate() const;

  bool operator==(const PageLayoutParams& other) const;
};

}  // namespace dbfa

#endif  // DBFA_STORAGE_PAGE_LAYOUT_H_
