#include "fuzz/corpus.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>

#include "common/strings.h"
#include "core/carver.h"
#include "core/parallel_carver.h"
#include "engine/catalog.h"
#include "fuzz/campaign.h"
#include "fuzz/oracle.h"
#include "snapshot/snapshot_repo.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

std::atomic<uint64_t> g_replay_seq{0};

std::string SidecarText(const CorpusEntry& e) {
  std::string out;
  out += "# dbfa_fuzz regression corpus entry (docs/fuzzing.md)\n";
  out += StrFormat("name = %s\n", e.name.c_str());
  out += StrFormat("dialect = %s\n", e.dialect.c_str());
  out += StrFormat("mutations = %s\n",
                   MutationListToString(e.mutations).c_str());
  out += StrFormat("note = %s\n", e.note.c_str());
  out += StrFormat("confusion_dialect = %s\n", e.confusion_dialect.c_str());
  out += StrFormat("expect_pages = %zu\n", e.expect_pages);
  out += StrFormat("expect_checksum_failures = %zu\n",
                   e.expect_checksum_failures);
  out += StrFormat("expect_records = %zu\n", e.expect_records);
  out += StrFormat("expect_deleted = %zu\n", e.expect_deleted);
  out += StrFormat("expect_index_entries = %zu\n", e.expect_index_entries);
  out += StrFormat("expect_catalog_entries = %zu\n",
                   e.expect_catalog_entries);
  out += StrFormat("expect_schemas = %zu\n", e.expect_schemas);
  out += StrFormat("confusion_pages = %zu\n", e.confusion_pages);
  out += StrFormat("confusion_records = %zu\n", e.confusion_records);
  return out;
}

Result<size_t> ParseCount(const std::string& v, const std::string& key) {
  if (v.empty()) {
    return Status::InvalidArgument("bad count for " + key);
  }
  size_t n = 0;
  for (char c : v) {
    if (c < '0' || c > '9' || n > (SIZE_MAX - 9) / 10) {
      return Status::InvalidArgument("bad count for " + key + ": " + v);
    }
    n = n * 10 + static_cast<size_t>(c - '0');
  }
  return n;
}

Result<CarverConfig> ConfigForDialect(const std::string& dialect) {
  CarverConfig config;
  DBFA_ASSIGN_OR_RETURN(config.params, GetDialect(dialect));
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

Status Mismatch(const std::string& name, const char* what, size_t got,
                size_t want) {
  return Status::Internal(StrFormat("corpus %s: %s = %zu, expected %zu",
                                    name.c_str(), what, got, want));
}

}  // namespace

Status SaveCorpusEntry(const std::string& dir, const CorpusEntry& entry,
                       ByteView image) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create corpus dir: " + dir);
  }
  fs::path base = fs::path(dir) / entry.name;
  DBFA_RETURN_IF_ERROR(SaveImage(base.string() + ".img", image));
  std::string sidecar = base.string() + ".expect";
  FILE* f = std::fopen(sidecar.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write sidecar: " + sidecar);
  }
  std::string text = SidecarText(entry);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IoError("short sidecar write: " + sidecar);
  }
  return Status::Ok();
}

Result<CorpusEntry> LoadCorpusEntry(const std::string& sidecar_path) {
  FILE* f = std::fopen(sidecar_path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot read sidecar: " + sidecar_path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::map<std::string, std::string> kv;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("bad sidecar line: " +
                                     std::string(line));
    }
    kv[std::string(Trim(line.substr(0, eq)))] =
        std::string(Trim(line.substr(eq + 1)));
  }
  auto get = [&](const char* key) -> Result<std::string> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return Status::InvalidArgument(
          StrFormat("sidecar %s: missing key %s", sidecar_path.c_str(),
                    key));
    }
    return it->second;
  };
  auto get_count = [&](const char* key) -> Result<size_t> {
    DBFA_ASSIGN_OR_RETURN(std::string v, get(key));
    return ParseCount(v, key);
  };

  CorpusEntry e;
  DBFA_ASSIGN_OR_RETURN(e.name, get("name"));
  DBFA_ASSIGN_OR_RETURN(e.dialect, get("dialect"));
  DBFA_ASSIGN_OR_RETURN(std::string mutations, get("mutations"));
  DBFA_ASSIGN_OR_RETURN(e.mutations, MutationListFromString(mutations));
  DBFA_ASSIGN_OR_RETURN(e.note, get("note"));
  DBFA_ASSIGN_OR_RETURN(e.confusion_dialect, get("confusion_dialect"));
  DBFA_ASSIGN_OR_RETURN(e.expect_pages, get_count("expect_pages"));
  DBFA_ASSIGN_OR_RETURN(e.expect_checksum_failures,
                        get_count("expect_checksum_failures"));
  DBFA_ASSIGN_OR_RETURN(e.expect_records, get_count("expect_records"));
  DBFA_ASSIGN_OR_RETURN(e.expect_deleted, get_count("expect_deleted"));
  DBFA_ASSIGN_OR_RETURN(e.expect_index_entries,
                        get_count("expect_index_entries"));
  DBFA_ASSIGN_OR_RETURN(e.expect_catalog_entries,
                        get_count("expect_catalog_entries"));
  DBFA_ASSIGN_OR_RETURN(e.expect_schemas, get_count("expect_schemas"));
  DBFA_ASSIGN_OR_RETURN(e.confusion_pages, get_count("confusion_pages"));
  DBFA_ASSIGN_OR_RETURN(e.confusion_records,
                        get_count("confusion_records"));
  return e;
}

Result<std::vector<std::string>> ListCorpusSidecars(
    const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list corpus dir: " + dir);
  }
  for (const fs::directory_entry& entry : it) {
    if (entry.path().extension() == ".expect") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status ReplayCorpusEntry(const std::string& sidecar_path,
                         const std::string& scratch_dir) {
  DBFA_ASSIGN_OR_RETURN(CorpusEntry entry, LoadCorpusEntry(sidecar_path));
  fs::path image_path = fs::path(sidecar_path).parent_path() /
                        (entry.name + ".img");
  DBFA_ASSIGN_OR_RETURN(Bytes image, LoadImage(image_path.string()));
  DBFA_ASSIGN_OR_RETURN(CarverConfig config,
                        ConfigForDialect(entry.dialect));

  // 1. The serial carve must reproduce the recorded findings exactly.
  DBFA_ASSIGN_OR_RETURN(CarveResult carve, Carver(config).Carve(image));
  if (carve.pages.size() != entry.expect_pages) {
    return Mismatch(entry.name, "pages", carve.pages.size(),
                    entry.expect_pages);
  }
  if (carve.stats.checksum_failures != entry.expect_checksum_failures) {
    return Mismatch(entry.name, "checksum failures",
                    carve.stats.checksum_failures,
                    entry.expect_checksum_failures);
  }
  if (carve.records.size() != entry.expect_records) {
    return Mismatch(entry.name, "records", carve.records.size(),
                    entry.expect_records);
  }
  size_t deleted = carve.CountRecords(RowStatus::kDeleted);
  if (deleted != entry.expect_deleted) {
    return Mismatch(entry.name, "deleted records", deleted,
                    entry.expect_deleted);
  }
  if (carve.index_entries.size() != entry.expect_index_entries) {
    return Mismatch(entry.name, "index entries", carve.index_entries.size(),
                    entry.expect_index_entries);
  }
  if (carve.catalog_entries.size() != entry.expect_catalog_entries) {
    return Mismatch(entry.name, "catalog entries",
                    carve.catalog_entries.size(),
                    entry.expect_catalog_entries);
  }
  if (carve.schemas.size() != entry.expect_schemas) {
    return Mismatch(entry.name, "schemas", carve.schemas.size(),
                    entry.expect_schemas);
  }

  // 2. Parallel carves must be byte-identical to serial.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    CarveOptions popts;
    popts.num_threads = threads;
    DBFA_ASSIGN_OR_RETURN(CarveResult par,
                          ParallelCarver(config, popts).Carve(image));
    std::string diff = DescribeCarveDifference(carve, par);
    if (!diff.empty()) {
      return Status::Internal(
          StrFormat("corpus %s: parallel(%zu) diverged: %s",
                    entry.name.c_str(), threads, diff.c_str()));
    }
  }

  // 3. Snapshot round-trip (a Status from Ingest is a legal outcome for a
  // hostile image; silent divergence is not).
  if (!scratch_dir.empty()) {
    uint64_t seq = g_replay_seq.fetch_add(1);
    fs::path repo_dir =
        fs::path(scratch_dir) /
        StrFormat("%s_replay_%llu", entry.name.c_str(),
                  static_cast<unsigned long long>(seq));
    Status violation = Status::Ok();
    {
      Result<std::unique_ptr<SnapshotRepo>> repo =
          SnapshotRepo::Create(repo_dir.string(), config, CarveOptions{});
      if (!repo.ok()) {
        violation = repo.status();
      } else if (Result<IngestStats> ingest = (*repo)->Ingest(image);
                 ingest.ok()) {
        Result<CarveResult> assembled = (*repo)->AssembleCarve(1);
        if (!assembled.ok()) {
          violation = assembled.status();
        } else if (std::string diff =
                       DescribeCarveDifference(carve, *assembled);
                   !diff.empty()) {
          violation = Status::Internal(
              StrFormat("corpus %s: snapshot round-trip diverged: %s",
                        entry.name.c_str(), diff.c_str()));
        }
      }
    }
    std::error_code ec;
    fs::remove_all(repo_dir, ec);
    DBFA_RETURN_IF_ERROR(violation);
  }

  // 4. The declared wrong-dialect carve must reproduce its recorded
  // (mis)findings — for committed entries, zero accepted pages.
  if (!entry.confusion_dialect.empty()) {
    DBFA_ASSIGN_OR_RETURN(CarverConfig wrong,
                          ConfigForDialect(entry.confusion_dialect));
    DBFA_ASSIGN_OR_RETURN(CarveResult cross, Carver(wrong).Carve(image));
    if (cross.pages.size() != entry.confusion_pages) {
      return Mismatch(entry.name, "confusion pages", cross.pages.size(),
                      entry.confusion_pages);
    }
    if (cross.records.size() != entry.confusion_records) {
      return Mismatch(entry.name, "confusion records",
                      cross.records.size(), entry.confusion_records);
    }
  }
  return Status::Ok();
}

Result<Bytes> RealizeCorpusEntry(CorpusEntry* entry, uint64_t baseline_seed,
                                 int workload_rows, int workload_ops) {
  DBFA_ASSIGN_OR_RETURN(
      BaselineImage baseline,
      BuildBaseline(entry->dialect, baseline_seed, workload_rows,
                    workload_ops));
  Bytes image = baseline.image;
  ApplyMutations(baseline.config, entry->mutations, &image);
  DBFA_ASSIGN_OR_RETURN(CarveResult carve,
                        Carver(baseline.config).Carve(image));
  entry->expect_pages = carve.pages.size();
  entry->expect_checksum_failures = carve.stats.checksum_failures;
  entry->expect_records = carve.records.size();
  entry->expect_deleted = carve.CountRecords(RowStatus::kDeleted);
  entry->expect_index_entries = carve.index_entries.size();
  entry->expect_catalog_entries = carve.catalog_entries.size();
  entry->expect_schemas = carve.schemas.size();
  if (!entry->confusion_dialect.empty()) {
    DBFA_ASSIGN_OR_RETURN(CarverConfig wrong,
                          ConfigForDialect(entry->confusion_dialect));
    DBFA_ASSIGN_OR_RETURN(CarveResult cross, Carver(wrong).Carve(image));
    entry->confusion_pages = cross.pages.size();
    entry->confusion_records = cross.records.size();
  }
  return image;
}

Result<size_t> WriteCuratedCorpus(const std::string& dir, uint64_t seed) {
  struct Spec {
    const char* name;
    const char* dialect;
    const char* mutations;  // MutationListFromString form
    const char* note;
    const char* confusion;  // "" = none
  };
  // One entry per mutator class across the dialect spread, the
  // wiped+checksum-repaired and dialect-confusion cases the acceptance
  // bar names, plus stacked combinations that once exposed real bugs
  // (slot_corrupt drove GetSlot out of bounds before SlotInBounds).
  const Spec specs[] = {
      {"oracle_torn_tail", "oracle_like", "truncate:101",
       "final page truncated mid-record", ""},
      {"mysql_torn_page", "mysql_like", "torn_page:202",
       "interior page torn halfway through a sector write", ""},
      {"postgres_bit_flips", "postgres_like", "bit_flip_random:303",
       "random bit flips across the image", ""},
      {"sqlite_header_flip", "sqlite_like", "header_flip:404",
       "header field scribbled, checksum sometimes repaired", ""},
      {"db2_slot_corrupt", "db2_like", "slot_corrupt:505",
       "forged record count: the GetSlot out-of-bounds regression", ""},
      {"sqlserver_length_overflow", "sqlserver_like", "length_overflow:606",
       "overflowing record-length and slot-offset fields", ""},
      {"firebird_garbage_splice", "firebird_like", "garbage_splice:707",
       "unaligned printable garbage over live pages", ""},
      {"derby_page_swap", "derby_like", "page_swap:808",
       "two pages swapped: out-of-order sector writes", ""},
      {"postgres_wipe_repair", "postgres_like", "wipe_repair:909",
       "antiforensic wipe with checksum repair (Section II-D)", ""},
      {"oracle_wipe_then_flip", "oracle_like",
       "wipe_repair:111,bit_flip_random:222",
       "wiped image further damaged by bit flips", ""},
      {"mysql_steg_inject", "mysql_like", "steg_inject:333",
       "forged hidden row injected through the real formatter", ""},
      {"sqlite_truncate_flip", "sqlite_like",
       "truncate:444,header_flip:555",
       "stacked truncation and header damage", ""},
      {"db2_slot_wipe_stack", "db2_like",
       "slot_corrupt:666,wipe_repair:777",
       "wiper over a slot-corrupted page (hostile input to our own tool)",
       ""},
      {"derby_steg_torn", "derby_like", "steg_inject:888,torn_page:999",
       "hidden row then torn page", ""},
      {"postgres_vs_mysql_confusion", "postgres_like", "bit_flip_random:12",
       "dialect confusion: postgres image under the mysql config",
       "mysql_like"},
      {"oracle_vs_sqlite_confusion", "oracle_like", "wipe_repair:34",
       "dialect confusion: wiped oracle image under the sqlite config",
       "sqlite_like"},
  };

  size_t written = 0;
  for (size_t i = 0; i < sizeof(specs) / sizeof(specs[0]); ++i) {
    const Spec& spec = specs[i];
    CorpusEntry entry;
    entry.name = spec.name;
    entry.dialect = spec.dialect;
    DBFA_ASSIGN_OR_RETURN(entry.mutations,
                          MutationListFromString(spec.mutations));
    entry.note = spec.note;
    entry.confusion_dialect = spec.confusion;
    // Small workloads keep committed images in the tens of kilobytes.
    DBFA_ASSIGN_OR_RETURN(
        Bytes image,
        RealizeCorpusEntry(&entry, seed + i, /*workload_rows=*/12,
                           /*workload_ops=*/24));
    DBFA_RETURN_IF_ERROR(SaveCorpusEntry(dir, entry, image));
    ++written;
  }
  return written;
}

}  // namespace dbfa
