// Adversarial image mutators: the attack taxonomy the fuzzing campaign
// draws from (docs/fuzzing.md). Each mutator is deterministic in its
// (config, mutation) pair and mutates a carved-image byte buffer in place,
// modelling a concrete anti-forensic move — torn writes, checksum-repaired
// header tampering, wiping with our own tooling, steganographic rows.
#ifndef DBFA_FUZZ_MUTATORS_H_
#define DBFA_FUZZ_MUTATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/config_io.h"

namespace dbfa {

enum class MutatorKind : uint8_t {
  /// Cut the image short mid-page (power loss / partial acquisition).
  kTruncate = 0,
  /// Overwrite the tail of one page with noise (torn write).
  kTornPage,
  /// Flip random bits anywhere in the image.
  kBitFlipRandom,
  /// Scribble over one header field of one page; sometimes repairs the
  /// checksum afterwards (the careful attacker of Section III).
  kHeaderFlip,
  /// Forge a hostile-but-plausible record count and scramble slot entries.
  kSlotCorrupt,
  /// Stomp overflowing values onto record length/offset fields.
  kLengthOverflow,
  /// Overwrite an unaligned run with printable garbage (reused sectors).
  kGarbageSplice,
  /// Swap two whole pages (out-of-order sector writes).
  kPageSwap,
  /// Run the antiforensic Wiper over the image: checksum-repaired erasure.
  kWipeRepair,
  /// Inject a forged record through the real formatter and re-checksum.
  kStegInject,
};

inline constexpr size_t kMutatorKindCount = 10;

const char* MutatorKindName(MutatorKind kind);
Result<MutatorKind> MutatorKindFromName(const std::string& name);

/// One mutation step: a mutator plus the seed that fixes all its choices.
struct Mutation {
  MutatorKind kind = MutatorKind::kBitFlipRandom;
  uint64_t seed = 0;

  bool operator==(const Mutation& other) const {
    return kind == other.kind && seed == other.seed;
  }
  /// "header_flip:12345"
  std::string ToString() const;
};

Result<Mutation> MutationFromString(const std::string& text);

/// Comma-joined list form, e.g. "truncate:7,wipe_repair:9".
std::string MutationListToString(const std::vector<Mutation>& mutations);
Result<std::vector<Mutation>> MutationListFromString(const std::string& text);

/// Applies one mutation in place. Deterministic in (config, mutation,
/// image). Mutations that do not apply to the image at hand (e.g. wiping
/// an image with no recognizable pages) degrade to a no-op rather than
/// failing, so any mutation list can be replayed against any image.
void ApplyMutation(const CarverConfig& config, const Mutation& mutation,
                   Bytes* image);
void ApplyMutations(const CarverConfig& config,
                    const std::vector<Mutation>& mutations, Bytes* image);

}  // namespace dbfa

#endif  // DBFA_FUZZ_MUTATORS_H_
