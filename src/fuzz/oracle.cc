#include "fuzz/oracle.h"

#include <atomic>
#include <filesystem>

#include "common/strings.h"
#include "core/carver.h"
#include "core/parallel_carver.h"
#include "detective/dbdetective.h"
#include "snapshot/snapshot_repo.h"

namespace dbfa {
namespace {

/// Sequence number for throwaway snapshot-repo directories: unique within
/// the process, deterministic across runs (no clock, no pid).
std::atomic<uint64_t> g_scratch_seq{0};

std::string EnvelopeViolation(const char* what, size_t mutant_n,
                              size_t bound) {
  return StrFormat("%s escaped the envelope: %zu > bound %zu", what,
                   mutant_n, bound);
}

}  // namespace

std::string DescribeCarveDifference(const CarveResult& a,
                                    const CarveResult& b) {
  if (a.pages != b.pages) {
    return StrFormat("pages differ (%zu vs %zu)", a.pages.size(),
                     b.pages.size());
  }
  if (a.records != b.records) {
    return StrFormat("records differ (%zu vs %zu)", a.records.size(),
                     b.records.size());
  }
  if (a.index_entries != b.index_entries) {
    return StrFormat("index entries differ (%zu vs %zu)",
                     a.index_entries.size(), b.index_entries.size());
  }
  if (a.catalog_entries != b.catalog_entries) {
    return StrFormat("catalog entries differ (%zu vs %zu)",
                     a.catalog_entries.size(), b.catalog_entries.size());
  }
  if (a.schemas != b.schemas) return "schemas differ";
  if (a.indexes != b.indexes) return "index metadata differs";
  if (a.dropped_objects != b.dropped_objects) {
    return "dropped-object sets differ";
  }
  return "";
}

std::string CheckMutant(const CarverConfig& config, ByteView mutant,
                        const CarveResult* clean,
                        const OracleOptions& options) {
  // 1. The serial carve: any Status is legal (that IS the contract for
  // hostile bytes); from here on the result must behave.
  Carver serial(config);
  Result<CarveResult> carve = serial.Carve(mutant);
  if (!carve.ok()) return "";

  // 2. Parallel output must stay byte-identical to serial at every
  // thread count, even over corrupted input.
  if (options.check_parallel) {
    for (size_t threads : options.thread_counts) {
      CarveOptions popts;
      popts.num_threads = threads;
      Result<CarveResult> par =
          ParallelCarver(config, popts).Carve(mutant);
      if (!par.ok()) {
        return StrFormat("parallel(%zu) failed where serial succeeded: %s",
                         threads, par.status().ToString().c_str());
      }
      std::string diff = DescribeCarveDifference(*carve, *par);
      if (!diff.empty()) {
        return StrFormat("parallel(%zu) diverged from serial: %s", threads,
                         diff.c_str());
      }
    }
  }

  // 3. Accepted artifacts must stay inside the declared envelope of the
  // clean baseline: mutation can hide evidence, not mint it wholesale.
  if (clean != nullptr) {
    const ArtifactEnvelope& env = options.envelope;
    size_t page_bound = clean->pages.size() + env.page_slack;
    if (carve->pages.size() > page_bound) {
      return EnvelopeViolation("pages", carve->pages.size(), page_bound);
    }
    size_t record_bound =
        static_cast<size_t>(
            static_cast<double>(clean->records.size()) *
            (1.0 + env.record_factor)) +
        env.record_slack;
    if (carve->records.size() > record_bound) {
      return EnvelopeViolation("records", carve->records.size(),
                               record_bound);
    }
    size_t index_bound =
        clean->index_entries.size() * (100 + env.index_factor_percent) /
            100 +
        env.index_slack;
    if (carve->index_entries.size() > index_bound) {
      return EnvelopeViolation("index entries", carve->index_entries.size(),
                               index_bound);
    }
    // Page detection can never outrun the image itself.
    if (config.params.page_size > 0) {
      size_t ceiling = mutant.size() / config.params.page_size + 1;
      if (carve->pages.size() > ceiling) {
        return EnvelopeViolation("pages (vs image size)",
                                 carve->pages.size(), ceiling);
      }
    }
  }

  // 4. Snapshot round-trip: ingesting the mutant and re-assembling it must
  // reproduce the fresh serial carve exactly (or fail with a Status).
  if (!options.snapshot_scratch_dir.empty()) {
    uint64_t seq = g_scratch_seq.fetch_add(1);
    std::filesystem::path dir =
        std::filesystem::path(options.snapshot_scratch_dir) /
        StrFormat("oracle_%llu", static_cast<unsigned long long>(seq));
    std::string violation;
    {
      Result<std::unique_ptr<SnapshotRepo>> repo =
          SnapshotRepo::Create(dir.string(), config, CarveOptions{});
      if (!repo.ok()) {
        violation = StrFormat("snapshot repo create failed: %s",
                              repo.status().ToString().c_str());
      } else if (Result<IngestStats> ingest = (*repo)->Ingest(mutant);
                 ingest.ok()) {
        Result<CarveResult> assembled = (*repo)->AssembleCarve(1);
        if (!assembled.ok()) {
          violation =
              StrFormat("Ingest succeeded but AssembleCarve failed: %s",
                        assembled.status().ToString().c_str());
        } else {
          std::string diff = DescribeCarveDifference(*carve, *assembled);
          if (!diff.empty()) {
            violation = StrFormat(
                "snapshot round-trip diverged from fresh carve: %s",
                diff.c_str());
          }
        }
      }
      // An Ingest Status error is a legal outcome for hostile bytes.
    }
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    if (!violation.empty()) return violation;
  }

  // 5. The detective must take any carve of hostile bytes in stride:
  // a report or a Status, never a fault, and never more unattributed
  // modifications than there are carved records.
  if (options.audit_log != nullptr) {
    DbDetective detective(&*carve, options.audit_log);
    Result<DetectiveReport> report = detective.Analyze();
    if (report.ok() &&
        report->modifications.size() >
            carve->records.size() + carve->catalog_entries.size()) {
      return StrFormat("detective invented modifications: %zu from %zu "
                       "carved records",
                       report->modifications.size(),
                       carve->records.size());
    }
  }

  return "";
}

}  // namespace dbfa
