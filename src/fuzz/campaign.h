// The fuzzing campaign: seed-driven mutant generation over clean synthetic
// images of every dialect, each mutant checked against the oracle, each
// failure minimized and distilled into the regression corpus
// (docs/fuzzing.md). Fully deterministic in CampaignOptions::seed.
#ifndef DBFA_FUZZ_CAMPAIGN_H_
#define DBFA_FUZZ_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "core/config_io.h"
#include "engine/audit_log.h"
#include "fuzz/mutators.h"
#include "fuzz/oracle.h"

namespace dbfa {

/// A clean synthetic image plus everything the oracle compares against.
struct BaselineImage {
  CarverConfig config;
  Bytes image;
  AuditLog log;
  CarveResult carve;
};

struct CampaignOptions {
  uint64_t seed = 1;
  /// Dialects to fuzz; empty means all built-in dialects.
  std::vector<std::string> dialects;
  size_t mutants_per_dialect = 128;
  /// Each mutant stacks 1..max_mutations_per_mutant mutations.
  size_t max_mutations_per_mutant = 4;
  /// Every Nth mutant additionally round-trips through a snapshot repo /
  /// the detective / a wrong-dialect carve (0 disables the check).
  size_t snapshot_every = 8;
  size_t detective_every = 8;
  size_t confusion_every = 16;
  /// Scratch directory for throwaway snapshot repos; required when
  /// snapshot_every > 0.
  std::string scratch_dir;
  /// When non-empty, minimized failures are distilled here as corpus
  /// entries (image + expected-findings sidecar).
  std::string corpus_dir;
  /// Soft wall-clock budget; 0 means unlimited. The campaign finishes the
  /// current mutant and reports truncation instead of running over.
  double time_budget_seconds = 0;
  OracleOptions oracle;
  /// Baseline workload shape (rows inserted, operations run).
  int workload_rows = 40;
  int workload_ops = 60;
};

struct CampaignFailure {
  std::string dialect;
  size_t mutant_index = 0;
  /// The minimized mutation list that still reproduces the violation.
  std::vector<Mutation> mutations;
  std::string violation;
  /// Corpus entry name when distillation ran, "" otherwise.
  std::string corpus_name;

  std::string ToString() const;
};

struct CampaignReport {
  size_t dialects_fuzzed = 0;
  size_t mutants_run = 0;
  size_t snapshot_checks = 0;
  size_t detective_checks = 0;
  size_t confusion_checks = 0;
  bool truncated_by_budget = false;
  std::vector<CampaignFailure> failures;

  std::string ToString() const;
};

/// Builds the clean baseline for one dialect: a seeded synthetic workload
/// (inserts, updates, deletes, a dropped table, two unlogged attack
/// statements), snapshotted to a storage image and carved once.
Result<BaselineImage> BuildBaseline(const std::string& dialect,
                                    uint64_t seed, int rows, int ops);

/// Shrinks `mutations` to a minimal sublist for which `fails` still
/// returns true (delta debugging: try dropping halves, then quarters, then
/// single mutations until a local minimum). `fails(mutations)` must hold
/// on entry; the result is non-empty and still failing.
std::vector<Mutation> MinimizeMutations(
    const std::vector<Mutation>& mutations,
    const std::function<bool(const std::vector<Mutation>&)>& fails);

class FuzzCampaign {
 public:
  explicit FuzzCampaign(CampaignOptions options)
      : options_(std::move(options)) {}

  /// Runs the whole campaign. Returns an error only for setup problems
  /// (unknown dialect, unusable scratch dir); oracle violations are data,
  /// reported in CampaignReport::failures.
  Result<CampaignReport> Run();

 private:
  CampaignOptions options_;
};

}  // namespace dbfa

#endif  // DBFA_FUZZ_CAMPAIGN_H_
