#include "fuzz/campaign.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "core/carver.h"
#include "engine/catalog.h"
#include "engine/database.h"
#include "fuzz/corpus.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

/// splitmix64-style mixing so per-mutant streams are independent.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<Mutation> DrawMutations(Rng* rng, size_t max_mutations) {
  size_t n = static_cast<size_t>(
      rng->Uniform(1, static_cast<int64_t>(max_mutations)));
  std::vector<Mutation> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Mutation m;
    m.kind = static_cast<MutatorKind>(rng->NextU64() % kMutatorKindCount);
    m.seed = rng->NextU64();
    out.push_back(m);
  }
  return out;
}

}  // namespace

std::string CampaignFailure::ToString() const {
  return StrFormat("[%s #%zu] %s  (mutations: %s)%s", dialect.c_str(),
                   mutant_index, violation.c_str(),
                   MutationListToString(mutations).c_str(),
                   corpus_name.empty()
                       ? ""
                       : StrFormat("  -> corpus %s", corpus_name.c_str())
                             .c_str());
}

std::string CampaignReport::ToString() const {
  std::string out = StrFormat(
      "campaign: %zu dialects, %zu mutants, %zu snapshot round-trips, "
      "%zu detective runs, %zu confusion carves%s\n",
      dialects_fuzzed, mutants_run, snapshot_checks, detective_checks,
      confusion_checks,
      truncated_by_budget ? " (truncated by time budget)" : "");
  if (failures.empty()) {
    out += "no oracle violations\n";
  } else {
    out += StrFormat("%zu oracle violations:\n", failures.size());
    for (const CampaignFailure& f : failures) {
      out += "  " + f.ToString() + "\n";
    }
  }
  return out;
}

Result<BaselineImage> BuildBaseline(const std::string& dialect,
                                    uint64_t seed, int rows, int ops) {
  DatabaseOptions db_options;
  db_options.dialect = dialect;
  DBFA_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                        Database::Open(db_options));
  SyntheticWorkload workload(db.get(), "Accounts", seed);
  DBFA_RETURN_IF_ERROR(workload.Setup(rows));
  DBFA_RETURN_IF_ERROR(workload.Run(ops, OpMix{}, /*logged=*/true));
  // A dropped table (unallocated-page material for the wiper) and two
  // unlogged statements (so the detective has real findings to bound).
  DBFA_RETURN_IF_ERROR(
      db->ExecuteSql("CREATE TABLE Shadow (k INT, secret VARCHAR(32), "
                     "PRIMARY KEY (k))")
          .status());
  DBFA_RETURN_IF_ERROR(
      db->ExecuteSql("INSERT INTO Shadow VALUES (1, 'dropped-secret')")
          .status());
  DBFA_RETURN_IF_ERROR(db->ExecuteSql("DROP TABLE Shadow").status());
  DBFA_RETURN_IF_ERROR(workload.RunStatement(
      "DELETE FROM Accounts WHERE Owner = 'Thomas'", /*logged=*/false));
  DBFA_RETURN_IF_ERROR(workload.RunStatement(
      "INSERT INTO Accounts VALUES (99001, 'Mallory', 'Shadow', 1.0)",
      /*logged=*/false));

  BaselineImage baseline;
  DBFA_ASSIGN_OR_RETURN(PageLayoutParams params, GetDialect(dialect));
  baseline.config.params = std::move(params);
  baseline.config.catalog_object_id = kCatalogObjectId;
  DBFA_ASSIGN_OR_RETURN(baseline.image, db->SnapshotDisk());
  baseline.log = db->audit_log();
  DBFA_ASSIGN_OR_RETURN(baseline.carve,
                        Carver(baseline.config).Carve(baseline.image));
  if (baseline.carve.pages.empty() || baseline.carve.records.empty()) {
    return Status::Internal(
        StrFormat("baseline for %s carved empty", dialect.c_str()));
  }
  return baseline;
}

std::vector<Mutation> MinimizeMutations(
    const std::vector<Mutation>& mutations,
    const std::function<bool(const std::vector<Mutation>&)>& fails) {
  // Classic ddmin over the mutation list: try dropping complements of
  // ever-finer chunks; restart at halves whenever a drop still fails.
  std::vector<Mutation> current = mutations;
  size_t chunks = 2;
  while (current.size() >= 2) {
    size_t chunk_len = (current.size() + chunks - 1) / chunks;
    bool reduced = false;
    for (size_t start = 0; start < current.size(); start += chunk_len) {
      std::vector<Mutation> candidate;
      candidate.reserve(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(current[i]);
      }
      if (candidate.empty()) continue;
      if (fails(candidate)) {
        current = std::move(candidate);
        chunks = chunks > 2 ? chunks - 1 : 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk_len <= 1) break;
      chunks = std::min(current.size(), chunks * 2);
    }
  }
  return current;
}

Result<CampaignReport> FuzzCampaign::Run() {
  std::vector<std::string> dialects = options_.dialects;
  if (dialects.empty()) dialects = BuiltinDialectNames();
  if (options_.snapshot_every > 0 && options_.scratch_dir.empty()) {
    return Status::InvalidArgument(
        "snapshot checks need CampaignOptions::scratch_dir");
  }

  CampaignReport report;
  auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&]() {
    if (options_.time_budget_seconds <= 0) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options_.time_budget_seconds;
  };

  for (size_t di = 0; di < dialects.size(); ++di) {
    const std::string& dialect = dialects[di];
    DBFA_ASSIGN_OR_RETURN(
        BaselineImage baseline,
        BuildBaseline(dialect, Mix(options_.seed, di),
                      options_.workload_rows, options_.workload_ops));
    ++report.dialects_fuzzed;

    // Wrong-dialect configs for the confusion checks, built once.
    std::vector<CarverConfig> wrong_configs;
    for (const std::string& other : BuiltinDialectNames()) {
      if (other == dialect) continue;
      CarverConfig wrong;
      DBFA_ASSIGN_OR_RETURN(wrong.params, GetDialect(other));
      wrong.catalog_object_id = kCatalogObjectId;
      wrong_configs.push_back(std::move(wrong));
    }

    for (size_t mi = 0; mi < options_.mutants_per_dialect; ++mi) {
      if (out_of_budget()) {
        report.truncated_by_budget = true;
        break;
      }
      Rng rng(Mix(Mix(options_.seed, di), mi));
      std::vector<Mutation> mutations =
          DrawMutations(&rng, options_.max_mutations_per_mutant);
      Bytes mutant = baseline.image;
      ApplyMutations(baseline.config, mutations, &mutant);
      ++report.mutants_run;

      OracleOptions oracle = options_.oracle;
      bool snapshot = options_.snapshot_every > 0 &&
                      mi % options_.snapshot_every == 0;
      oracle.snapshot_scratch_dir =
          snapshot ? options_.scratch_dir : std::string();
      bool detective = options_.detective_every > 0 &&
                       mi % options_.detective_every == 0;
      oracle.audit_log = detective ? &baseline.log : nullptr;
      if (snapshot) ++report.snapshot_checks;
      if (detective) ++report.detective_checks;

      std::string violation =
          CheckMutant(baseline.config, mutant, &baseline.carve, oracle);

      // Dialect confusion: a wrong config over the mutant must neither
      // crash nor claim the evidence as its own dialect's pages.
      if (violation.empty() && options_.confusion_every > 0 &&
          mi % options_.confusion_every == 0) {
        const CarverConfig& wrong =
            wrong_configs[(mi / options_.confusion_every) %
                          wrong_configs.size()];
        ++report.confusion_checks;
        Result<CarveResult> cross = Carver(wrong).Carve(mutant);
        if (cross.ok() && !cross->pages.empty()) {
          violation = StrFormat(
              "dialect confusion: %s config accepted %zu pages of a %s "
              "image",
              wrong.params.dialect.c_str(), cross->pages.size(),
              dialect.c_str());
        }
      }

      if (violation.empty()) continue;

      // Shrink the mutation list to the minimal failing core, then
      // distill it into the corpus (when a corpus dir was given).
      auto still_fails = [&](const std::vector<Mutation>& candidate) {
        Bytes probe = baseline.image;
        ApplyMutations(baseline.config, candidate, &probe);
        return !CheckMutant(baseline.config, probe, &baseline.carve, oracle)
                    .empty();
      };
      CampaignFailure failure;
      failure.dialect = dialect;
      failure.mutant_index = mi;
      failure.mutations =
          still_fails(mutations) ? MinimizeMutations(mutations, still_fails)
                                 : mutations;
      failure.violation = violation;
      if (!options_.corpus_dir.empty()) {
        CorpusEntry entry;
        entry.name = StrFormat("%s_%s_%04zu", dialect.c_str(),
                               MutatorKindName(failure.mutations[0].kind),
                               mi);
        entry.dialect = dialect;
        entry.mutations = failure.mutations;
        entry.note = "distilled campaign failure: " + violation;
        Bytes distilled = baseline.image;
        ApplyMutations(baseline.config, failure.mutations, &distilled);
        Result<CarveResult> carve =
            Carver(baseline.config).Carve(distilled);
        if (carve.ok()) {
          entry.expect_pages = carve->pages.size();
          entry.expect_checksum_failures = carve->stats.checksum_failures;
          entry.expect_records = carve->records.size();
          entry.expect_deleted = carve->CountRecords(RowStatus::kDeleted);
          entry.expect_index_entries = carve->index_entries.size();
          entry.expect_catalog_entries = carve->catalog_entries.size();
          entry.expect_schemas = carve->schemas.size();
        }
        if (SaveCorpusEntry(options_.corpus_dir, entry, distilled).ok()) {
          failure.corpus_name = entry.name;
        }
      }
      report.failures.push_back(std::move(failure));
    }
    if (report.truncated_by_budget) break;
  }
  return report;
}

}  // namespace dbfa
