#include "fuzz/mutators.h"

#include <algorithm>
#include <utility>

#include "antiforensics/wiper.h"
#include "common/rng.h"
#include "common/strings.h"
#include "storage/page_formatter.h"

namespace dbfa {
namespace {

constexpr const char* kMutatorNames[kMutatorKindCount] = {
    "truncate",        "torn_page",      "bit_flip_random", "header_flip",
    "slot_corrupt",    "length_overflow", "garbage_splice", "page_swap",
    "wipe_repair",     "steg_inject",
};

/// Offsets of page-size-aligned pages whose magic matches. Clean synthetic
/// images are page-aligned, so this finds every surviving page even after
/// earlier mutations tore some of them.
std::vector<size_t> FindAlignedPages(const CarverConfig& config,
                                     const Bytes& image) {
  const PageLayoutParams& p = config.params;
  std::vector<size_t> offsets;
  if (p.page_size == 0 || !p.Validate().ok()) return offsets;
  PageFormatter fmt(p);
  for (size_t off = 0; off + p.page_size <= image.size();
       off += p.page_size) {
    if (fmt.HasMagic(image.data() + off)) offsets.push_back(off);
  }
  return offsets;
}

void RepairChecksumMaybe(const PageLayoutParams& p, uint8_t* page, Rng* rng) {
  // A coin flip keeps both oracle paths hot: repaired pages exercise the
  // full parse pipeline, unrepaired ones the checksum-failure handling.
  if (rng->Bernoulli(0.5)) PageFormatter(p).UpdateChecksum(page);
}

void MutateTruncate(const CarverConfig& config, Rng* rng, Bytes* image) {
  if (image->empty()) return;
  size_t page = config.params.page_size;
  // Cut anywhere from 1 byte to just under two pages off the tail, so the
  // final page is torn mid-header, mid-record, or mid-slot-directory.
  size_t max_cut = std::min(image->size(), 2 * static_cast<size_t>(page));
  size_t cut = static_cast<size_t>(rng->Uniform(1,
      static_cast<int64_t>(max_cut)));
  image->resize(image->size() - cut);
}

void MutateTornPage(const CarverConfig& config, Rng* rng, Bytes* image) {
  std::vector<size_t> pages = FindAlignedPages(config, *image);
  if (pages.empty()) return;
  const PageLayoutParams& p = config.params;
  size_t off = rng->Pick(pages);
  // Overwrite a tail slice of the page with noise, as if the sector write
  // stopped partway. No checksum repair: torn pages are torn.
  size_t torn = static_cast<size_t>(
      rng->Uniform(1, static_cast<int64_t>(p.page_size / 2)));
  for (size_t i = p.page_size - torn; i < p.page_size; ++i) {
    (*image)[off + i] = static_cast<uint8_t>(rng->NextU64());
  }
}

void MutateBitFlipRandom(Rng* rng, Bytes* image) {
  if (image->empty()) return;
  size_t flips = static_cast<size_t>(rng->Uniform(1, 32));
  for (size_t i = 0; i < flips; ++i) {
    size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(image->size()) - 1));
    (*image)[pos] ^= static_cast<uint8_t>(1u << (rng->NextU64() % 8));
  }
}

void MutateHeaderFlip(const CarverConfig& config, Rng* rng, Bytes* image) {
  std::vector<size_t> pages = FindAlignedPages(config, *image);
  if (pages.empty()) return;
  const PageLayoutParams& p = config.params;
  size_t off = rng->Pick(pages);
  uint8_t* page = image->data() + off;
  // Each target is a (field offset, width) pair inside the page header.
  const std::pair<uint16_t, size_t> fields[] = {
      {p.magic_offset, p.magic.size()}, {p.page_id_offset, 4},
      {p.object_id_offset, 4},          {p.page_type_offset, 1},
      {p.record_count_offset, 2},       {p.free_space_offset, 2},
      {p.next_page_offset, 4},          {p.lsn_offset, 8},
  };
  const auto& [field_off, width] =
      fields[rng->NextU64() % (sizeof(fields) / sizeof(fields[0]))];
  for (size_t i = 0; i < width; ++i) {
    page[field_off + i] = static_cast<uint8_t>(rng->NextU64());
  }
  RepairChecksumMaybe(p, page, rng);
}

void MutateSlotCorrupt(const CarverConfig& config, Rng* rng, Bytes* image) {
  std::vector<size_t> pages = FindAlignedPages(config, *image);
  if (pages.empty()) return;
  const PageLayoutParams& p = config.params;
  size_t off = rng->Pick(pages);
  uint8_t* page = image->data() + off;
  // A record count near page_size/2 passes the carver's plausibility probe
  // while claiming far more slot entries than the page can hold — exactly
  // the shape that once drove GetSlot past the image end.
  uint16_t hostile_count = static_cast<uint16_t>(
      rng->Uniform(1, static_cast<int64_t>(p.page_size / 2)));
  WriteU16(page + p.record_count_offset, hostile_count, p.big_endian);
  size_t scribbles = static_cast<size_t>(rng->Uniform(1, 6));
  for (size_t i = 0; i < scribbles; ++i) {
    // Scribble u16s over the slot-directory region (either end works: the
    // values, not the placement, are what the parser must survive).
    size_t pos = p.header_size +
                 static_cast<size_t>(rng->Uniform(
                     0, static_cast<int64_t>(p.page_size - p.header_size) -
                            2));
    WriteU16(page + pos, static_cast<uint16_t>(rng->NextU64()),
             p.big_endian);
  }
  RepairChecksumMaybe(p, page, rng);
}

void MutateLengthOverflow(const CarverConfig& config, Rng* rng,
                          Bytes* image) {
  std::vector<size_t> pages = FindAlignedPages(config, *image);
  if (pages.empty()) return;
  const PageLayoutParams& p = config.params;
  size_t off = rng->Pick(pages);
  uint8_t* page = image->data() + off;
  // Find record markers in the data region and stomp overflowing values
  // shortly after them — that is where row ids, record lengths and column
  // counts live in every dialect's record header.
  size_t stomps = static_cast<size_t>(rng->Uniform(1, 4));
  size_t start = p.header_size;
  for (size_t s = 0; s < stomps; ++s) {
    for (size_t i = start; i + 12 < p.page_size; ++i) {
      if (page[i] != p.active_marker) continue;
      size_t field = i + 1 + (rng->NextU64() % 10);
      WriteU16(page + field, static_cast<uint16_t>(0xFF00 | rng->NextU64()),
               p.big_endian);
      start = i + 1;
      break;
    }
  }
  // Also point a slot at the far end of the page: an in-range offset whose
  // record, if trusted, would run past the page.
  uint16_t count = PageFormatter(p).RecordCount(page);
  if (count > 0 && count < p.page_size / 2) {
    size_t slot_pos =
        p.slot_placement == SlotPlacement::kFrontSlotsBackData
            ? p.header_size +
                  (rng->NextU64() % count) * p.SlotEntrySize()
            : p.page_size -
                  ((rng->NextU64() % count) + 1) * p.SlotEntrySize();
    if (slot_pos + 2 <= p.page_size) {
      WriteU16(page + slot_pos, static_cast<uint16_t>(p.page_size - 3),
               p.big_endian);
    }
  }
  RepairChecksumMaybe(p, page, rng);
}

void MutateGarbageSplice(const CarverConfig& config, Rng* rng,
                         Bytes* image) {
  if (image->empty()) return;
  size_t page = config.params.page_size;
  size_t len = static_cast<size_t>(
      rng->Uniform(16, static_cast<int64_t>(2 * page)));
  len = std::min(len, image->size());
  size_t pos = static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(image->size() - len)));
  static const char kNoise[] =
      "lorem ipsum dolor sit amet 0x00 SELECT * FROM tapes; ";
  for (size_t i = 0; i < len; ++i) {
    (*image)[pos + i] =
        static_cast<uint8_t>(kNoise[(pos + i) % (sizeof(kNoise) - 1)]);
  }
}

void MutatePageSwap(const CarverConfig& config, Rng* rng, Bytes* image) {
  std::vector<size_t> pages = FindAlignedPages(config, *image);
  if (pages.size() < 2) return;
  size_t a = rng->Pick(pages);
  size_t b = rng->Pick(pages);
  if (a == b) return;
  size_t page = config.params.page_size;
  for (size_t i = 0; i < page; ++i) {
    std::swap((*image)[a + i], (*image)[b + i]);
  }
}

void MutateWipeRepair(const CarverConfig& config, Bytes* image) {
  // Our own anti-forensic tooling turned against us: a checksum-repaired
  // wipe of whatever the (possibly already-mutated) image still carves as.
  // A wipe that fails leaves the image as-is — the no-op fallback.
  Wiper wiper(config);
  Result<WipeReport> report = wiper.WipeImage(image);
  if (!report.ok()) return;
}

void MutateStegInject(const CarverConfig& config, Rng* rng, Bytes* image) {
  std::vector<size_t> pages = FindAlignedPages(config, *image);
  if (pages.empty()) return;
  const PageLayoutParams& p = config.params;
  PageFormatter fmt(p);
  size_t off = rng->Pick(pages);
  uint8_t* page = image->data() + off;
  if (fmt.TypeOf(page) != PageType::kData) return;
  // Forge a record through the real formatter so it parses cleanly, with
  // an arity no table of this image uses — a hidden row the schema pass
  // cannot attribute. The formatter's hardened bounds checks decide
  // whether the (possibly corrupted) page can take it.
  TableSchema schema;
  schema.name = "steg";
  schema.columns = {{"k", ColumnType::kInt, 0, false},
                    {"v", ColumnType::kVarchar, 24, false}};
  Record row = {Value::Int(static_cast<int64_t>(rng->NextU64() % 1000)),
                Value::Str(rng->Word(12))};
  Result<Bytes> encoded = fmt.EncodeRecord(schema, row, rng->NextU64());
  if (!encoded.ok()) return;
  Result<uint16_t> slot = fmt.InsertRecordBytes(page, *encoded);
  if (!slot.ok()) return;
  // Steganographic rows must stay hidden: always repair the checksum.
  fmt.UpdateChecksum(page);
}

}  // namespace

const char* MutatorKindName(MutatorKind kind) {
  size_t i = static_cast<size_t>(kind);
  return i < kMutatorKindCount ? kMutatorNames[i] : "unknown";
}

Result<MutatorKind> MutatorKindFromName(const std::string& name) {
  for (size_t i = 0; i < kMutatorKindCount; ++i) {
    if (name == kMutatorNames[i]) return static_cast<MutatorKind>(i);
  }
  return Status::InvalidArgument("unknown mutator: " + name);
}

std::string Mutation::ToString() const {
  return StrFormat("%s:%llu", MutatorKindName(kind),
                   static_cast<unsigned long long>(seed));
}

Result<Mutation> MutationFromString(const std::string& text) {
  size_t colon = text.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("bad mutation: " + text);
  }
  Mutation m;
  DBFA_ASSIGN_OR_RETURN(m.kind, MutatorKindFromName(text.substr(0, colon)));
  std::string seed_text = text.substr(colon + 1);
  if (seed_text.empty()) {
    return Status::InvalidArgument("bad mutation seed: " + text);
  }
  uint64_t seed = 0;
  for (char c : seed_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad mutation seed: " + text);
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (seed > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("mutation seed overflow: " + text);
    }
    seed = seed * 10 + digit;
  }
  m.seed = seed;
  return m;
}

std::string MutationListToString(const std::vector<Mutation>& mutations) {
  std::string out;
  for (size_t i = 0; i < mutations.size(); ++i) {
    if (i > 0) out += ",";
    out += mutations[i].ToString();
  }
  return out;
}

Result<std::vector<Mutation>> MutationListFromString(
    const std::string& text) {
  std::vector<Mutation> out;
  for (const std::string& tok : Split(text, ',')) {
    std::string t(Trim(tok));
    if (t.empty()) continue;
    DBFA_ASSIGN_OR_RETURN(Mutation m, MutationFromString(t));
    out.push_back(m);
  }
  return out;
}

void ApplyMutation(const CarverConfig& config, const Mutation& mutation,
                   Bytes* image) {
  Rng rng(mutation.seed ^ 0x6d75746174655f5fULL);
  switch (mutation.kind) {
    case MutatorKind::kTruncate:
      MutateTruncate(config, &rng, image);
      break;
    case MutatorKind::kTornPage:
      MutateTornPage(config, &rng, image);
      break;
    case MutatorKind::kBitFlipRandom:
      MutateBitFlipRandom(&rng, image);
      break;
    case MutatorKind::kHeaderFlip:
      MutateHeaderFlip(config, &rng, image);
      break;
    case MutatorKind::kSlotCorrupt:
      MutateSlotCorrupt(config, &rng, image);
      break;
    case MutatorKind::kLengthOverflow:
      MutateLengthOverflow(config, &rng, image);
      break;
    case MutatorKind::kGarbageSplice:
      MutateGarbageSplice(config, &rng, image);
      break;
    case MutatorKind::kPageSwap:
      MutatePageSwap(config, &rng, image);
      break;
    case MutatorKind::kWipeRepair:
      MutateWipeRepair(config, image);
      break;
    case MutatorKind::kStegInject:
      MutateStegInject(config, &rng, image);
      break;
  }
}

void ApplyMutations(const CarverConfig& config,
                    const std::vector<Mutation>& mutations, Bytes* image) {
  for (const Mutation& m : mutations) ApplyMutation(config, m, image);
}

}  // namespace dbfa
