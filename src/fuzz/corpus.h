// The committed regression corpus (tests/corpus/): small adversarial
// images distilled from campaign failures plus curated coverage of every
// mutator class. Each entry is an image file and an expected-findings
// sidecar; corpus_replay_test registers every entry as its own ctest so a
// regression names the exact artifact (docs/fuzzing.md).
#ifndef DBFA_FUZZ_CORPUS_H_
#define DBFA_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "fuzz/mutators.h"

namespace dbfa {

/// One corpus entry: provenance plus the findings a replay must reproduce.
struct CorpusEntry {
  std::string name;     // file stem: <name>.img / <name>.expect
  std::string dialect;  // built-in dialect the image was grown from
  std::vector<Mutation> mutations;
  std::string note;  // one line: what this entry distills / guards
  /// When set, the image is also carved with this (wrong) dialect's
  /// config; the confusion_* expectations apply to that carve.
  std::string confusion_dialect;

  // Expected findings of the serial carve with the right config.
  // Parallel carves must match the serial result exactly on top of this.
  size_t expect_pages = 0;
  size_t expect_checksum_failures = 0;
  size_t expect_records = 0;
  size_t expect_deleted = 0;
  size_t expect_index_entries = 0;
  size_t expect_catalog_entries = 0;
  size_t expect_schemas = 0;

  // Expected findings when carved with confusion_dialect's config.
  size_t confusion_pages = 0;
  size_t confusion_records = 0;
};

/// Writes <dir>/<name>.img and <dir>/<name>.expect.
Status SaveCorpusEntry(const std::string& dir, const CorpusEntry& entry,
                       ByteView image);

/// Parses one .expect sidecar.
Result<CorpusEntry> LoadCorpusEntry(const std::string& sidecar_path);

/// Sorted list of .expect paths under `dir`.
Result<std::vector<std::string>> ListCorpusSidecars(const std::string& dir);

/// Replays one entry: loads the image, carves serially, checks every
/// expectation, re-carves in parallel (1/2/8 threads, must match serial),
/// round-trips through a throwaway snapshot repo under `scratch_dir`, and
/// runs the confusion carve when declared. Ok iff everything matches.
Status ReplayCorpusEntry(const std::string& sidecar_path,
                         const std::string& scratch_dir);

/// Builds a mutant image for `entry` from its dialect's deterministic
/// baseline and fills in the expected findings by carving it. Used by the
/// curated generator and by campaign distillation.
Result<Bytes> RealizeCorpusEntry(CorpusEntry* entry, uint64_t baseline_seed,
                                 int workload_rows, int workload_ops);

/// Regenerates the curated corpus into `dir`: deterministic coverage of
/// every mutator class across dialects, including wiped+checksum-repaired
/// and dialect-confusion entries. Returns the number of entries written.
Result<size_t> WriteCuratedCorpus(const std::string& dir, uint64_t seed);

}  // namespace dbfa

#endif  // DBFA_FUZZ_CORPUS_H_
