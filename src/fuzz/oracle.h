// The campaign oracle: what "survived hostile bytes" means. A mutant
// passes when every consumer yields a clean Status or a bounded result —
// never a crash — and the deterministic contracts (parallel == serial,
// snapshot round-trip == fresh carve) still hold (docs/fuzzing.md).
#ifndef DBFA_FUZZ_ORACLE_H_
#define DBFA_FUZZ_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "core/config_io.h"
#include "engine/audit_log.h"

namespace dbfa {

/// How far a mutant's accepted artifacts may drift from the clean
/// baseline. Mutation can only remove or orphan content; a raw-scan pass
/// may resurface a bounded number of fragments, never mint pages beyond
/// the image or multiply records without limit.
struct ArtifactEnvelope {
  /// Mutant pages <= clean pages + page_slack (a splice can at most forge
  /// a handful of plausible headers per campaign-sized image).
  size_t page_slack = 8;
  /// Mutant records <= clean * (1 + record_factor) + record_slack: slot
  /// corruption can split records into orphan fragments, but bounded.
  double record_factor = 1.0;
  size_t record_slack = 64;
  size_t index_factor_percent = 100;
  size_t index_slack = 64;
};

struct OracleOptions {
  /// Parallel carves must be byte-identical to serial at each count.
  std::vector<size_t> thread_counts = {1, 2, 8};
  bool check_parallel = true;
  ArtifactEnvelope envelope;
  /// When non-empty, Ingest+AssembleCarve round-trips the mutant through a
  /// throwaway snapshot repo under this directory.
  std::string snapshot_scratch_dir;
  /// When set, DbDetective::Analyze runs over the mutant carve against
  /// this log; any Status outcome is legal, crashes are not.
  const AuditLog* audit_log = nullptr;
};

/// Compares the artifact collections of two carve results (stats are
/// excluded by contract). Returns "" when identical, else a short
/// description of the first difference.
std::string DescribeCarveDifference(const CarveResult& a,
                                    const CarveResult& b);

/// Runs the full oracle over one mutant image. `clean` is the carve of the
/// unmutated baseline (nullptr skips envelope checks). Returns "" when the
/// mutant passes, else a violation description.
std::string CheckMutant(const CarverConfig& config, ByteView mutant,
                        const CarveResult* clean,
                        const OracleOptions& options);

}  // namespace dbfa

#endif  // DBFA_FUZZ_ORACLE_H_
