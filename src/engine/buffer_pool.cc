#include "engine/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace dbfa {

PageHandle::PageHandle(BufferPool* pool, size_t frame, uint8_t* data)
    : pool_(pool), frame_(frame), data_(data) {}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

void PageHandle::MarkDirty() {
  assert(pool_ != nullptr);
  pool_->frames_[frame_].dirty = true;
}

BufferPool::BufferPool(size_t capacity, uint32_t page_size,
                       PageBacking* backing)
    : page_size_(page_size), backing_(backing) {
  frames_.resize(capacity == 0 ? 1 : capacity);
  for (Frame& f : frames_) f.data.resize(page_size_, 0);
}

Result<PageHandle> BufferPool::Fetch(PageKey key) {
  ++tick_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    Frame& f = frames_[it->second];
    f.last_used = tick_;
    ++f.pins;
    ++stats_.hits;
    return PageHandle(this, it->second, f.data.data());
  }
  ++stats_.misses;
  DBFA_ASSIGN_OR_RETURN(size_t victim, PickVictim());
  Frame& f = frames_[victim];
  if (f.valid) {
    if (f.dirty) {
      DBFA_RETURN_IF_ERROR(backing_->WritePage(f.key, f.data.data()));
      ++stats_.writebacks;
    }
    index_.erase(f.key);
    ++stats_.evictions;
  }
  DBFA_RETURN_IF_ERROR(backing_->ReadPage(key, f.data.data()));
  f.key = key;
  f.valid = true;
  f.dirty = false;
  f.pins = 1;
  f.last_used = tick_;
  index_[key] = victim;
  return PageHandle(this, victim, f.data.data());
}

Result<size_t> BufferPool::PickVictim() {
  // Prefer an invalid frame; otherwise evict the LRU unpinned frame.
  size_t best = SIZE_MAX;
  uint64_t best_tick = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (!f.valid) return i;
    if (f.pins == 0 && f.last_used < best_tick) {
      best = i;
      best_tick = f.last_used;
    }
  }
  if (best != SIZE_MAX) return best;
  // Every frame is pinned: grow the pool rather than deadlock. Operations
  // pin a handful of pages at most, so this only fires for tiny pools.
  frames_.emplace_back();
  frames_.back().data.resize(page_size_, 0);
  return frames_.size() - 1;
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  assert(f.pins > 0);
  --f.pins;
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      DBFA_RETURN_IF_ERROR(backing_->WritePage(f.key, f.data.data()));
      f.dirty = false;
      ++stats_.writebacks;
    }
  }
  return Status::Ok();
}

Status BufferPool::Clear() {
  DBFA_RETURN_IF_ERROR(FlushAll());
  for (Frame& f : frames_) {
    f.valid = false;
    f.pins = 0;
    std::memset(f.data.data(), 0, f.data.size());
  }
  index_.clear();
  return Status::Ok();
}

void BufferPool::Discard() {
  for (Frame& f : frames_) {
    f.valid = false;
    f.dirty = false;
    f.pins = 0;
    std::memset(f.data.data(), 0, f.data.size());
  }
  index_.clear();
}

Bytes BufferPool::SnapshotRam() const {
  Bytes out;
  out.reserve(frames_.size() * page_size_);
  for (const Frame& f : frames_) {
    out.insert(out.end(), f.data.begin(), f.data.end());
  }
  return out;
}

std::vector<PageKey> BufferPool::CachedKeys() const {
  std::vector<PageKey> keys;
  for (const Frame& f : frames_) {
    if (f.valid) keys.push_back(f.key);
  }
  return keys;
}

}  // namespace dbfa
