// MiniDB: the row-store DBMS substrate the paper's tools are exercised
// against. It is a real (if small) engine — slotted pages in one of eight
// dialect formats, heap tables, B-Tree indexes, a page-resident system
// catalog, an LRU buffer pool, an audit log, and a virtual server clock —
// because every forensic method in the paper consumes its *byte-level*
// storage, not its API.
#ifndef DBFA_ENGINE_DATABASE_H_
#define DBFA_ENGINE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/audit_log.h"
#include "engine/btree.h"
#include "engine/catalog.h"
#include "engine/clock.h"
#include "engine/pager.h"
#include "engine/table_heap.h"
#include "sql/statement.h"

namespace dbfa {

struct DatabaseOptions {
  /// Built-in dialect name (storage/dialects.h).
  std::string dialect = "postgres_like";
  /// When set, overrides `dialect` with an arbitrary (validated) layout —
  /// used to exercise the parameter collector against engines outside the
  /// built-in eight.
  std::optional<PageLayoutParams> custom_params;
  size_t buffer_pool_pages = 128;
  /// Deleted fraction at which a fully-dead page may be compacted and
  /// reused. Values > 1 disable reuse (deleted records persist until
  /// VACUUM) — the Oracle-style behaviour Section III-D highlights.
  double page_reuse_threshold = 2.0;
  /// Domain / NOT NULL / primary-key / foreign-key enforcement.
  bool enforce_constraints = true;
  int64_t clock_start = 1'000'000;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Record> rows;
};

/// How the last Select/Delete/Update located its rows (test/bench
/// introspection; the caching consequences are what DBDetective inspects).
enum class AccessPath { kNone, kFullScan, kIndexScan };

class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  /// Reopens a database from a Checkpoint() directory: loads the catalog
  /// file, rebuilds the schema/index registry from its records, and
  /// attaches every object file. The audit log is restored from
  /// `dir`/audit.log when present.
  static Result<std::unique_ptr<Database>> OpenFromCheckpoint(
      const std::string& dir, const DatabaseOptions& options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- SQL surface (logged to the audit log when enabled) ----------------

  Status CreateTable(const TableSchema& schema);
  Status CreateIndex(const std::string& name, const std::string& table,
                     const std::vector<std::string>& columns);
  Status DropTable(const std::string& table);
  Result<RowPointer> Insert(const std::string& table, const Record& record);
  Result<int64_t> Delete(const std::string& table, sql::ExprPtr where);
  Result<int64_t> Update(
      const std::string& table,
      const std::vector<std::pair<std::string, Value>>& assignments,
      sql::ExprPtr where);
  Result<QueryResult> Select(const sql::SelectStmt& stmt);
  Status Vacuum(const std::string& table);

  /// Parses and executes one statement, logging the original text.
  /// SELECTs with joins/aggregates are served by the meta-query engine
  /// (metaquery/), not here.
  Result<QueryResult> ExecuteSql(const std::string& sql_text);

  /// Section IV-b: attaches an externally built heap file (whole data
  /// pages, ids 1..n — see core/page_builder.h) as a new table. Performs
  /// the paper's "minor changes to system and file metadata": rewrites
  /// each page's object-id field, repairs checksums, registers the table
  /// in the catalog, and builds the primary-key index.
  Status AttachExternalTable(const TableSchema& schema, const Bytes& file);

  // ---- forensic surfaces ---------------------------------------------------

  /// Flushes the buffer pool and returns all object files concatenated —
  /// the "disk image" input to the carver.
  Result<Bytes> SnapshotDisk();

  /// Buffer-pool frame dump — the "RAM snapshot" input to the carver.
  Bytes SnapshotRam() const { return pager_.pool().SnapshotRam(); }

  /// (file name, bytes) for every object, catalog first. Flushes the pool.
  Result<std::vector<std::pair<std::string, Bytes>>> ExportFiles();

  /// Writes object files plus audit.log into `dir` (must exist).
  Status Checkpoint(const std::string& dir);

  // ---- components ---------------------------------------------------------

  AuditLog& audit_log() { return audit_log_; }
  ManualClock& clock() { return clock_; }
  Pager& pager() { return pager_; }
  const Catalog& catalog() const { return catalog_; }
  const PageLayoutParams& params() const { return pager_.params(); }
  const DatabaseOptions& options() const { return options_; }

  AccessPath last_access_path() const { return last_access_path_; }

  /// Next value of the monotone row-id counter (storage evidence the
  /// timeline/reenact analyses key on). The value the *next* inserted row
  /// version will receive; updates also consume ids for their new version.
  uint64_t next_row_id() const { return next_row_id_; }

  /// nullptr when the table does not exist.
  TableHeap* heap(const std::string& table);
  /// nullptr when absent. PK indexes are named "pk_<table>".
  BTree* index(const std::string& table, const std::string& index_name);

 private:
  Database(const DatabaseOptions& options, const PageLayoutParams& params);

  Status LogStatement(const std::string& sql);

  // Unlogged cores (ExecuteSql logs the user's original text instead).
  Status DoCreateTable(const TableSchema& schema);
  Status DoCreateIndex(const std::string& name, const std::string& table,
                       const std::vector<std::string>& columns);
  Status DoDropTable(const std::string& table);
  Result<RowPointer> DoInsert(const std::string& table, const Record& record);
  Result<int64_t> DoDelete(const std::string& table, const sql::ExprPtr& where);
  Result<int64_t> DoUpdate(
      const std::string& table,
      const std::vector<std::pair<std::string, Value>>& assignments,
      const sql::ExprPtr& where);
  Result<QueryResult> DoSelect(const sql::SelectStmt& stmt);
  Status DoVacuum(const std::string& table);

  /// `self` (when non-null) is the row being updated; it is excluded from
  /// the primary-key uniqueness check.
  Status CheckConstraints(const TableInfo& info, const Record& record,
                          const RowPointer* self = nullptr);

  struct IndexBounds {
    const IndexInfo* index = nullptr;
    std::optional<Value> lo;
    std::optional<Value> hi;
  };
  /// Picks an index whose leading column is bounded by the predicate.
  std::optional<IndexBounds> ChooseIndex(const TableInfo& info,
                                         const sql::Expr* where);

  /// Rows matching `where` (nullptr = all), choosing index vs full scan.
  Result<std::vector<std::pair<RowPointer, Record>>> MatchRows(
      const TableInfo& info, const sql::ExprPtr& where,
      const std::string& qualifier);

  /// Inserts `record`'s keys into every index of `info`, persisting root
  /// changes to the catalog.
  Status InsertIndexEntries(const TableInfo& info, const Record& record,
                            RowPointer ptr);

  TableHeap* HeapFor(const TableInfo& info);
  BTree* TreeFor(const TableInfo& info, const IndexInfo& index);

  /// Rebuilds in-memory state (row-id counter, LSN watermark) after
  /// attaching checkpointed files.
  Status RecoverCounters();

  DatabaseOptions options_;
  Pager pager_;
  Catalog catalog_;
  AuditLog audit_log_;
  ManualClock clock_;
  std::map<uint32_t, std::unique_ptr<TableHeap>> heaps_;   // by object id
  std::map<uint32_t, std::unique_ptr<BTree>> btrees_;      // by object id
  uint64_t next_row_id_ = 1;
  AccessPath last_access_path_ = AccessPath::kNone;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_DATABASE_H_
