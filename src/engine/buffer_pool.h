// LRU buffer pool. All engine page access flows through here so that the
// pool's contents form a realistic RAM snapshot: full table scans sweep the
// pool with consecutive heap pages, index scans leave index pages plus
// scattered heap pages — exactly the caching patterns DBDetective
// classifies (Section III-A), and the buffer-cache artifacts the carver
// reconstructs from memory captures.
#ifndef DBFA_ENGINE_BUFFER_POOL_H_
#define DBFA_ENGINE_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dbfa {

/// Identity of a page across all objects of one database.
struct PageKey {
  uint32_t object_id = 0;
  uint32_t page_id = 0;

  bool operator==(const PageKey&) const = default;
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    return (static_cast<size_t>(k.object_id) << 32) ^ k.page_id;
  }
};

/// Backing store the pool reads/writes on miss/evict.
class PageBacking {
 public:
  virtual ~PageBacking() = default;
  virtual Status ReadPage(PageKey key, uint8_t* out) = 0;
  virtual Status WritePage(PageKey key, const uint8_t* data) = 0;
};

class BufferPool;

/// RAII pin on a frame. The pointed-to bytes stay valid (and un-evictable)
/// for the handle's lifetime.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame, uint8_t* data);
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  /// Must be called after mutating the page so it is written back on evict.
  void MarkDirty();

 private:
  void Release();

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  uint8_t* data_ = nullptr;
};

class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };

  /// `capacity` frames of `page_size` bytes over `backing` (not owned; must
  /// outlive the pool).
  BufferPool(size_t capacity, uint32_t page_size, PageBacking* backing);

  /// Pins the page into a frame (reading it from backing on a miss).
  Result<PageHandle> Fetch(PageKey key);

  /// Writes all dirty frames back. Pinned pages are flushed but stay cached.
  Status FlushAll();

  /// Drops every frame (flushing dirty ones) — models a cache restart.
  Status Clear();

  /// Drops every frame WITHOUT write-back. Recovery-only: used when the
  /// backing store has just been replaced wholesale and cached frames are
  /// stale by definition.
  void Discard();

  /// The RAM image: every frame's bytes in frame order (stale and invalid
  /// frames included, as in a real memory capture).
  Bytes SnapshotRam() const;

  /// Keys of currently valid frames, in frame order.
  std::vector<PageKey> CachedKeys() const;

  const Stats& stats() const { return stats_; }
  size_t capacity() const { return frames_.size(); }
  uint32_t page_size() const { return page_size_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageKey key;
    bool valid = false;
    bool dirty = false;
    uint32_t pins = 0;
    uint64_t last_used = 0;
    Bytes data;
  };

  void Unpin(size_t frame);
  Result<size_t> PickVictim();

  std::vector<Frame> frames_;
  std::unordered_map<PageKey, size_t, PageKeyHash> index_;
  uint32_t page_size_;
  PageBacking* backing_;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_BUFFER_POOL_H_
