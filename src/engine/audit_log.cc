#include "engine/audit_log.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace dbfa {

bool AuditLog::Append(int64_t timestamp, std::string sql) {
  if (!enabled_) return false;
  AuditEntry entry;
  entry.seq = next_seq_++;
  entry.timestamp = timestamp;
  entry.sql = std::move(sql);
  entries_.push_back(std::move(entry));
  return true;
}

AuditLog AuditLog::TailAfter(uint64_t seq) const {
  AuditLog tail;
  for (const AuditEntry& e : entries_) {
    if (e.seq > seq) tail.entries_.push_back(e);
  }
  tail.next_seq_ = next_seq_;
  return tail;
}

std::string AuditLog::ToText() const {
  std::string out;
  for (const AuditEntry& e : entries_) {
    out += StrFormat("%llu|%lld|", static_cast<unsigned long long>(e.seq),
                     static_cast<long long>(e.timestamp));
    out += e.sql;
    out += "\n";
  }
  return out;
}

Result<AuditLog> AuditLog::FromText(const std::string& text) {
  AuditLog log;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    size_t p1 = line.find('|');
    size_t p2 = p1 == std::string::npos ? std::string::npos
                                        : line.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      return Status::Corruption("bad audit log line: " + line);
    }
    AuditEntry e;
    e.seq = std::strtoull(line.substr(0, p1).c_str(), nullptr, 10);
    e.timestamp = std::strtoll(line.substr(p1 + 1, p2 - p1 - 1).c_str(),
                               nullptr, 10);
    e.sql = line.substr(p2 + 1);
    log.next_seq_ = e.seq + 1;
    log.entries_.push_back(std::move(e));
  }
  return log;
}

Status AuditLog::SaveTo(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  std::string text = ToText();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<AuditLog> AuditLog::LoadFrom(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return FromText(text);
}

}  // namespace dbfa
