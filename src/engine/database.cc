#include "engine/database.h"

#include <algorithm>

#include "common/strings.h"
#include "sql/parser.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {

Database::Database(const DatabaseOptions& options,
                   const PageLayoutParams& params)
    : options_(options),
      pager_(params, options.buffer_pool_pages),
      catalog_(&pager_),
      clock_(options.clock_start) {}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  PageLayoutParams params;
  if (options.custom_params.has_value()) {
    params = *options.custom_params;
    DBFA_RETURN_IF_ERROR(params.Validate());
  } else {
    DBFA_ASSIGN_OR_RETURN(params, GetDialect(options.dialect));
  }
  std::unique_ptr<Database> db(new Database(options, params));
  DBFA_RETURN_IF_ERROR(db->catalog_.Initialize());
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenFromCheckpoint(
    const std::string& dir, const DatabaseOptions& options) {
  DBFA_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Open(options));
  const uint32_t page_size = db->params().page_size;
  // 1. Replace the (fresh) catalog file with the checkpointed one.
  DBFA_ASSIGN_OR_RETURN(StorageFile catalog_file,
                        StorageFile::LoadFrom(dir + "/catalog.dbf",
                                              page_size));
  db->pager_.file(kCatalogObjectId)->mutable_bytes() =
      catalog_file.bytes();
  db->pager_.pool().Discard();  // cached fresh-catalog frames are stale
  // Rebuild the in-memory catalog from the stored records.
  db->catalog_ = Catalog(&db->pager_);
  DBFA_RETURN_IF_ERROR(db->catalog_.Initialize());
  TableHeap catalog_heap(&db->pager_, kCatalogObjectId, CatalogSchema(),
                         2.0);
  struct Row {
    std::string type;
    std::string name;
    uint32_t object_id;
    uint32_t table_object_id;
    uint32_t root;
    std::string info;
  };
  std::vector<Row> rows;
  DBFA_RETURN_IF_ERROR(
      catalog_heap.Scan([&](RowPointer, const Record& rec) {
        rows.push_back(
            {std::string(rec[0].as_string()), std::string(rec[1].as_string()),
             static_cast<uint32_t>(rec[2].as_int()),
             static_cast<uint32_t>(rec[3].as_int()),
             static_cast<uint32_t>(rec[4].as_int()),
             rec[5].is_null() ? "" : std::string(rec[5].as_string())});
        return Status::Ok();
      }));
  // 2. Attach object files. Catalog-record order gives names; file names
  //    follow the ExportFiles convention.
  std::map<uint32_t, std::string> object_names;  // id -> schema/table name
  std::map<uint32_t, const Row*> index_rows;
  for (const Row& row : rows) {
    if (row.type == kCatalogTypeTable) object_names[row.object_id] = row.name;
  }
  uint32_t max_object = kCatalogObjectId;
  for (const Row& row : rows) {
    max_object = std::max(max_object, row.object_id);
  }
  // Create placeholder objects densely so ids line up, then load bytes.
  while (db->pager_.max_object_id() < max_object) {
    db->pager_.CreateObject();
  }
  for (const Row& row : rows) {
    std::string path;
    if (row.type == kCatalogTypeTable) {
      path = dir + "/" + row.name + ".dbf";
    } else if (row.type == kCatalogTypeIndex) {
      auto it = object_names.find(row.table_object_id);
      if (it == object_names.end()) continue;  // dropped table's index
      path = dir + "/" + it->second + "." + row.name + ".dbf";
    }
    auto file = StorageFile::LoadFrom(path, page_size);
    if (!file.ok()) continue;  // dropped objects have no current file name
    db->pager_.file(row.object_id)->mutable_bytes() = file->bytes();
  }
  db->pager_.pool().Discard();
  // 3. Mirror the catalog state in memory via the Catalog API (without
  //    re-writing storage): re-scan and register.
  for (const Row& row : rows) {
    if (row.type != kCatalogTypeTable) continue;
    auto schema = TableSchema::Deserialize(row.info);
    if (!schema.ok()) continue;
    if (db->catalog_.Find(schema->name) != nullptr) continue;
    db->catalog_.RegisterLoadedTable(*schema, row.object_id, row.root);
  }
  for (const Row& row : rows) {
    if (row.type != kCatalogTypeIndex) continue;
    auto name_it = object_names.find(row.table_object_id);
    if (name_it == object_names.end()) continue;
    const TableInfo* info = db->catalog_.Find(name_it->second);
    if (info == nullptr) continue;
    bool already = false;
    for (const IndexInfo& idx : info->indexes) {
      if (EqualsIgnoreCase(idx.name, row.name)) already = true;
    }
    if (already) continue;
    IndexInfo index;
    index.name = row.name;
    index.object_id = row.object_id;
    index.root_page = row.root;
    for (const std::string& col : Split(row.info, ',')) {
      if (!col.empty()) index.columns.push_back(col);
    }
    db->catalog_.RegisterLoadedIndex(name_it->second, index);
  }
  DBFA_RETURN_IF_ERROR(db->RecoverCounters());
  // 4. Audit log, when checkpointed alongside.
  auto log = AuditLog::LoadFrom(dir + "/audit.log");
  if (log.ok()) db->audit_log_ = std::move(log).value();
  return db;
}

Status Database::RecoverCounters() {
  const PageFormatter& fmt = pager_.fmt();
  uint64_t max_lsn = 0;
  uint64_t max_row_id = 0;
  for (uint32_t object_id = 1; object_id <= pager_.max_object_id();
       ++object_id) {
    StorageFile* file = pager_.file(object_id);
    if (file == nullptr) continue;
    for (uint32_t page_id = 1; page_id <= file->page_count(); ++page_id) {
      const uint8_t* page = file->PageData(page_id);
      if (!fmt.HasMagic(page)) continue;
      max_lsn = std::max(max_lsn, fmt.Lsn(page));
      if (!params().stores_row_id || fmt.TypeOf(page) != PageType::kData) {
        continue;
      }
      ByteView view(page, params().page_size);
      for (uint16_t s = 0; s < fmt.RecordCount(page); ++s) {
        auto slot = fmt.GetSlot(page, s);
        if (!slot.has_value()) continue;
        auto rec = fmt.ParseRecordAt(view, slot->offset);
        if (rec.ok()) max_row_id = std::max(max_row_id, rec->row_id);
      }
    }
  }
  pager_.RestoreLsn(max_lsn);
  if (max_row_id >= next_row_id_) next_row_id_ = max_row_id + 1;
  return Status::Ok();
}

Status Database::LogStatement(const std::string& sql) {
  audit_log_.Append(clock_.Now(), sql);
  return Status::Ok();
}

TableHeap* Database::HeapFor(const TableInfo& info) {
  auto it = heaps_.find(info.object_id);
  if (it != heaps_.end()) return it->second.get();
  auto heap = std::make_unique<TableHeap>(&pager_, info.object_id,
                                          info.schema,
                                          options_.page_reuse_threshold);
  TableHeap* raw = heap.get();
  heaps_[info.object_id] = std::move(heap);
  return raw;
}

BTree* Database::TreeFor(const TableInfo& info, const IndexInfo& index) {
  auto it = btrees_.find(index.object_id);
  if (it != btrees_.end()) return it->second.get();
  std::vector<int> key_columns;
  for (const std::string& col : index.columns) {
    key_columns.push_back(info.schema.ColumnIndex(col));
  }
  auto tree = std::make_unique<BTree>(&pager_, index.object_id, index.name,
                                      std::move(key_columns));
  tree->set_root(index.root_page);
  BTree* raw = tree.get();
  btrees_[index.object_id] = std::move(tree);
  return raw;
}

TableHeap* Database::heap(const std::string& table) {
  const TableInfo* info = catalog_.Find(table);
  return info == nullptr ? nullptr : HeapFor(*info);
}

BTree* Database::index(const std::string& table,
                       const std::string& index_name) {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return nullptr;
  for (const IndexInfo& idx : info->indexes) {
    if (EqualsIgnoreCase(idx.name, index_name)) return TreeFor(*info, idx);
  }
  return nullptr;
}

// ---- DDL ---------------------------------------------------------------------

Status Database::DoCreateTable(const TableSchema& schema) {
  if (schema.columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    for (size_t j = i + 1; j < schema.columns.size(); ++j) {
      if (EqualsIgnoreCase(schema.columns[i].name, schema.columns[j].name)) {
        return Status::InvalidArgument("duplicate column: " +
                                       schema.columns[i].name);
      }
    }
  }
  for (const std::string& pk : schema.primary_key) {
    if (schema.ColumnIndex(pk) < 0) {
      return Status::InvalidArgument("PRIMARY KEY on unknown column: " + pk);
    }
  }
  if (catalog_.Find(schema.name) != nullptr) {
    return Status::AlreadyExists("table exists: " + schema.name);
  }
  uint32_t object_id = pager_.CreateObject();
  auto heap = std::make_unique<TableHeap>(&pager_, object_id, schema,
                                          options_.page_reuse_threshold);
  DBFA_RETURN_IF_ERROR(heap->EnsureInitialized());
  DBFA_RETURN_IF_ERROR(
      catalog_.AddTable(schema, object_id, heap->first_page()));
  heaps_[object_id] = std::move(heap);
  // Every DBMS creates an index on the primary key columns (Section II-D).
  if (!schema.primary_key.empty()) {
    DBFA_RETURN_IF_ERROR(DoCreateIndex("pk_" + schema.name, schema.name,
                                       schema.primary_key));
  }
  return Status::Ok();
}

Status Database::DoCreateIndex(const std::string& name,
                               const std::string& table,
                               const std::vector<std::string>& columns) {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  std::vector<int> key_columns;
  for (const std::string& col : columns) {
    int idx = info->schema.ColumnIndex(col);
    if (idx < 0) {
      return Status::InvalidArgument("index on unknown column: " + col);
    }
    key_columns.push_back(idx);
  }
  uint32_t object_id = pager_.CreateObject();
  auto tree = std::make_unique<BTree>(&pager_, object_id, name, key_columns);
  DBFA_RETURN_IF_ERROR(tree->Create());

  IndexInfo index;
  index.name = name;
  index.object_id = object_id;
  index.root_page = tree->root();
  index.columns = columns;
  DBFA_RETURN_IF_ERROR(catalog_.AddIndex(table, index));

  // Index any existing rows.
  TableHeap* heap = HeapFor(*info);
  BTree* raw = tree.get();
  btrees_[object_id] = std::move(tree);
  DBFA_RETURN_IF_ERROR(heap->Scan([&](RowPointer ptr, const Record& rec) {
    return raw->Insert(raw->ExtractKeys(rec), ptr);
  }));
  if (raw->root() != index.root_page) {
    DBFA_RETURN_IF_ERROR(catalog_.UpdateIndexRoot(table, name, raw->root()));
  }
  return Status::Ok();
}

Status Database::DoDropTable(const std::string& table) {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  heaps_.erase(info->object_id);
  for (const IndexInfo& index : info->indexes) {
    btrees_.erase(index.object_id);
  }
  // Catalog records are delete-marked; all pages stay on disk (the
  // "deleted pages" evidence category).
  return catalog_.DropTable(table);
}

// ---- constraints ----------------------------------------------------------------

Status Database::CheckConstraints(const TableInfo& info,
                                  const Record& record,
                                  const RowPointer* self) {
  const TableSchema& schema = info.schema;
  if (!schema.TypeCheck(record)) {
    return Status::InvalidArgument("record does not match schema " +
                                   schema.name);
  }
  if (!options_.enforce_constraints) return Status::Ok();
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    const Column& col = schema.columns[i];
    if (!col.nullable && record[i].is_null()) {
      return Status::InvalidArgument("NOT NULL violated: " + col.name);
    }
    if (col.type == ColumnType::kVarchar && col.max_length > 0 &&
        !record[i].is_null() &&
        record[i].as_string().size() > col.max_length) {
      return Status::InvalidArgument(
          StrFormat("domain constraint violated: %s VARCHAR(%u)",
                    col.name.c_str(), col.max_length));
    }
  }
  // Primary key: non-null and unique.
  if (!schema.primary_key.empty()) {
    std::vector<Value> pk_values;
    for (const std::string& pk : schema.primary_key) {
      const Value& v = record[schema.ColumnIndex(pk)];
      if (v.is_null()) {
        return Status::InvalidArgument("PRIMARY KEY column is NULL: " + pk);
      }
      pk_values.push_back(v);
    }
    if (BTree* pk_index = index(schema.name, "pk_" + schema.name)) {
      DBFA_ASSIGN_OR_RETURN(auto hits, pk_index->SearchEqual(pk_values));
      TableHeap* heap = HeapFor(info);
      for (RowPointer ptr : hits) {
        if (self != nullptr && ptr == *self) continue;
        DBFA_ASSIGN_OR_RETURN(auto existing, heap->Fetch(ptr));
        if (!existing.has_value()) continue;  // stale entry
        // Verify the live record still carries these key values.
        bool same = true;
        for (size_t k = 0; k < schema.primary_key.size(); ++k) {
          int ci = schema.ColumnIndex(schema.primary_key[k]);
          if (!((*existing)[ci] == pk_values[k])) {
            same = false;
            break;
          }
        }
        if (same) {
          return Status::AlreadyExists("PRIMARY KEY violated: " +
                                       RecordToString(pk_values));
        }
      }
    }
  }
  // Foreign keys: the referenced value must exist and be active.
  for (const ForeignKey& fk : schema.foreign_keys) {
    int ci = schema.ColumnIndex(fk.column);
    if (ci < 0 || record[ci].is_null()) continue;
    const TableInfo* ref = catalog_.Find(fk.ref_table);
    if (ref == nullptr) {
      return Status::FailedPrecondition("FK references missing table: " +
                                        fk.ref_table);
    }
    int ref_ci = ref->schema.ColumnIndex(fk.ref_column);
    if (ref_ci < 0) {
      return Status::FailedPrecondition("FK references missing column: " +
                                        fk.ref_column);
    }
    bool found = false;
    bool used_index = false;
    // Prefer an index whose leading column is the referenced column.
    for (const IndexInfo& idx : ref->indexes) {
      if (!EqualsIgnoreCase(idx.columns[0], fk.ref_column)) continue;
      used_index = true;
      BTree* tree = TreeFor(*ref, idx);
      DBFA_ASSIGN_OR_RETURN(
          auto hits, tree->SearchRangeLeading(record[ci], record[ci]));
      TableHeap* ref_heap = HeapFor(*ref);
      for (const BTree::Entry& e : hits) {
        DBFA_ASSIGN_OR_RETURN(auto row, ref_heap->Fetch(e.pointer));
        if (row.has_value() && (*row)[ref_ci] == record[ci]) {
          found = true;
          break;
        }
      }
      break;
    }
    if (!used_index) {
      // Fall back to a full scan of the referenced table.
      DBFA_RETURN_IF_ERROR(
          HeapFor(*ref)->Scan([&](RowPointer, const Record& row) {
            if (row[ref_ci] == record[ci]) found = true;
            return Status::Ok();
          }));
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("referential integrity violated: %s.%s -> %s.%s",
                    schema.name.c_str(), fk.column.c_str(),
                    fk.ref_table.c_str(), fk.ref_column.c_str()));
    }
  }
  return Status::Ok();
}

// ---- DML ----------------------------------------------------------------------

Status Database::InsertIndexEntries(const TableInfo& info,
                                    const Record& record, RowPointer ptr) {
  for (const IndexInfo& index : info.indexes) {
    BTree* tree = TreeFor(info, index);
    uint32_t old_root = tree->root();
    DBFA_RETURN_IF_ERROR(tree->Insert(tree->ExtractKeys(record), ptr));
    if (tree->root() != old_root) {
      DBFA_RETURN_IF_ERROR(catalog_.UpdateIndexRoot(
          info.schema.name, index.name, tree->root()));
    }
  }
  return Status::Ok();
}

Result<RowPointer> Database::DoInsert(const std::string& table,
                                      const Record& record) {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  DBFA_RETURN_IF_ERROR(CheckConstraints(*info, record));
  TableHeap* heap = HeapFor(*info);
  DBFA_ASSIGN_OR_RETURN(RowPointer ptr, heap->Insert(record, next_row_id_++));
  DBFA_RETURN_IF_ERROR(InsertIndexEntries(*info, record, ptr));
  return ptr;
}

std::optional<Database::IndexBounds> Database::ChooseIndex(
    const TableInfo& info, const sql::Expr* where) {
  if (where == nullptr) return std::nullopt;
  // Collect conjunctive comparisons column-vs-literal.
  struct Bound {
    std::string column;
    sql::CompareOp op;
    Value literal;
  };
  std::vector<Bound> bounds;
  std::vector<const sql::Expr*> stack = {where};
  while (!stack.empty()) {
    const sql::Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == sql::ExprKind::kAnd) {
      stack.push_back(e->lhs.get());
      stack.push_back(e->rhs.get());
      continue;
    }
    if (e->kind != sql::ExprKind::kCompare) continue;
    const sql::Expr* l = e->lhs.get();
    const sql::Expr* r = e->rhs.get();
    if (l->kind == sql::ExprKind::kColumn &&
        r->kind == sql::ExprKind::kLiteral) {
      bounds.push_back({l->column, e->compare_op, r->literal});
    } else if (r->kind == sql::ExprKind::kColumn &&
               l->kind == sql::ExprKind::kLiteral) {
      // Mirror the comparison: 5 < col  ==  col > 5.
      sql::CompareOp op = e->compare_op;
      switch (e->compare_op) {
        case sql::CompareOp::kLt:
          op = sql::CompareOp::kGt;
          break;
        case sql::CompareOp::kLe:
          op = sql::CompareOp::kGe;
          break;
        case sql::CompareOp::kGt:
          op = sql::CompareOp::kLt;
          break;
        case sql::CompareOp::kGe:
          op = sql::CompareOp::kLe;
          break;
        default:
          break;
      }
      bounds.push_back({r->column, op, l->literal});
    }
  }
  auto bare = [](const std::string& name) {
    size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(dot + 1);
  };
  for (const IndexInfo& index : info.indexes) {
    IndexBounds found;
    for (const Bound& b : bounds) {
      if (!EqualsIgnoreCase(bare(b.column), index.columns[0])) continue;
      switch (b.op) {
        case sql::CompareOp::kEq:
          found.lo = b.literal;
          found.hi = b.literal;
          break;
        case sql::CompareOp::kGt:
        case sql::CompareOp::kGe:
          if (!found.lo.has_value() ||
              Value::Compare(b.literal, *found.lo) > 0) {
            found.lo = b.literal;
          }
          break;
        case sql::CompareOp::kLt:
        case sql::CompareOp::kLe:
          if (!found.hi.has_value() ||
              Value::Compare(b.literal, *found.hi) < 0) {
            found.hi = b.literal;
          }
          break;
        case sql::CompareOp::kNe:
          break;
      }
    }
    if (found.lo.has_value() || found.hi.has_value()) {
      found.index = &index;
      return found;
    }
  }
  return std::nullopt;
}

Result<std::vector<std::pair<RowPointer, Record>>> Database::MatchRows(
    const TableInfo& info, const sql::ExprPtr& where,
    const std::string& qualifier) {
  std::vector<std::pair<RowPointer, Record>> out;
  std::vector<std::string> names;
  for (const Column& c : info.schema.columns) names.push_back(c.name);
  TableHeap* heap = HeapFor(info);

  auto bounds = ChooseIndex(info, where.get());
  if (bounds.has_value()) {
    last_access_path_ = AccessPath::kIndexScan;
    BTree* tree = TreeFor(info, *bounds->index);
    DBFA_ASSIGN_OR_RETURN(auto entries,
                          tree->SearchRangeLeading(bounds->lo, bounds->hi));
    for (const BTree::Entry& e : entries) {
      DBFA_ASSIGN_OR_RETURN(auto row, heap->Fetch(e.pointer));
      if (!row.has_value()) continue;  // stale entry -> deleted record
      // Stale entries can also point at a *reused* slot; verify keys.
      std::vector<Value> live_keys = tree->ExtractKeys(*row);
      if (CompareRecords(live_keys, e.keys) != 0) continue;
      bool matches = true;
      if (where != nullptr) {
        sql::RecordBinding binding(names, *row, qualifier);
        DBFA_ASSIGN_OR_RETURN(matches, sql::EvalPredicate(*where, binding));
      }
      if (matches) out.emplace_back(e.pointer, *row);
    }
    // Index scans can return rows in key order with duplicates from stale
    // entries already filtered; physical order is not guaranteed.
    return out;
  }

  last_access_path_ = AccessPath::kFullScan;
  Status scan = heap->Scan([&](RowPointer ptr, const Record& row) {
    bool matches = true;
    if (where != nullptr) {
      sql::RecordBinding binding(names, row, qualifier);
      DBFA_ASSIGN_OR_RETURN(matches, sql::EvalPredicate(*where, binding));
    }
    if (matches) out.emplace_back(ptr, row);
    return Status::Ok();
  });
  DBFA_RETURN_IF_ERROR(scan);
  return out;
}

Result<int64_t> Database::DoDelete(const std::string& table,
                                   const sql::ExprPtr& where) {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  DBFA_ASSIGN_OR_RETURN(auto rows, MatchRows(*info, where, table));
  TableHeap* heap = HeapFor(*info);
  for (const auto& [ptr, record] : rows) {
    // Deletion marks the record only; index entries survive ("only records
    // but not index values are deleted", Section II-A).
    DBFA_RETURN_IF_ERROR(heap->Delete(ptr));
  }
  return static_cast<int64_t>(rows.size());
}

Result<int64_t> Database::DoUpdate(
    const std::string& table,
    const std::vector<std::pair<std::string, Value>>& assignments,
    const sql::ExprPtr& where) {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  for (const auto& [col, value] : assignments) {
    if (info->schema.ColumnIndex(col) < 0) {
      return Status::InvalidArgument("unknown column in SET: " + col);
    }
  }
  DBFA_ASSIGN_OR_RETURN(auto rows, MatchRows(*info, where, table));
  TableHeap* heap = HeapFor(*info);
  for (const auto& [ptr, record] : rows) {
    Record updated = record;
    for (const auto& [col, value] : assignments) {
      updated[info->schema.ColumnIndex(col)] = value;
    }
    DBFA_RETURN_IF_ERROR(CheckConstraints(*info, updated, &ptr));
    // UPDATE is delete + insert: the pre-image becomes a deleted record
    // (the "old version of an UPDATE" evidence of Section II-A).
    DBFA_RETURN_IF_ERROR(heap->Delete(ptr));
    DBFA_ASSIGN_OR_RETURN(RowPointer new_ptr,
                          heap->Insert(updated, next_row_id_++));
    DBFA_RETURN_IF_ERROR(InsertIndexEntries(*info, updated, new_ptr));
  }
  return static_cast<int64_t>(rows.size());
}

Result<QueryResult> Database::DoSelect(const sql::SelectStmt& stmt) {
  if (!stmt.joins.empty() || stmt.HasAggregates() || !stmt.group_by.empty()) {
    return Status::Unimplemented(
        "joins/aggregates are served by the meta-query engine");
  }
  const TableInfo* info = catalog_.Find(stmt.from.table);
  if (info == nullptr) {
    return Status::NotFound("no such table: " + stmt.from.table);
  }
  const std::string& qualifier = stmt.from.EffectiveName();
  DBFA_ASSIGN_OR_RETURN(auto rows, MatchRows(*info, stmt.where, qualifier));

  QueryResult result;
  std::vector<std::string> names;
  for (const Column& c : info->schema.columns) names.push_back(c.name);
  // Resolve projections.
  std::vector<const sql::Expr*> exprs;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (const std::string& n : names) result.columns.push_back(n);
      exprs.push_back(nullptr);  // marker: expand all
    } else {
      result.columns.push_back(item.OutputName());
      exprs.push_back(item.expr.get());
    }
  }
  for (const auto& [ptr, row] : rows) {
    Record out_row;
    sql::RecordBinding binding(names, row, qualifier);
    for (const sql::Expr* e : exprs) {
      if (e == nullptr) {
        for (const Value& v : row) out_row.push_back(v);
      } else {
        DBFA_ASSIGN_OR_RETURN(Value v, sql::Eval(*e, binding));
        out_row.push_back(std::move(v));
      }
    }
    result.rows.push_back(std::move(out_row));
  }
  // ORDER BY over output columns.
  if (!stmt.order_by.empty()) {
    std::vector<int> order_idx;
    std::vector<bool> order_desc;
    for (const sql::OrderKey& key : stmt.order_by) {
      int idx = -1;
      for (size_t i = 0; i < result.columns.size(); ++i) {
        if (EqualsIgnoreCase(result.columns[i], key.column)) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        return Status::InvalidArgument("ORDER BY unknown column: " +
                                       key.column);
      }
      order_idx.push_back(idx);
      order_desc.push_back(key.descending);
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Record& a, const Record& b) {
                       for (size_t k = 0; k < order_idx.size(); ++k) {
                         int c = Value::Compare(a[order_idx[k]],
                                                b[order_idx[k]]);
                         if (c != 0) return order_desc[k] ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(static_cast<size_t>(stmt.limit));
  }
  return result;
}

Status Database::DoVacuum(const std::string& table) {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  TableHeap* heap = HeapFor(*info);
  DBFA_RETURN_IF_ERROR(heap->Vacuum());
  // Record locations moved; rebuild every index (old index pages are
  // orphaned in place, exactly like a real REINDEX).
  for (const IndexInfo& index : info->indexes) {
    BTree* tree = TreeFor(*info, index);
    DBFA_RETURN_IF_ERROR(tree->Rebuild(heap));
    DBFA_RETURN_IF_ERROR(catalog_.UpdateIndexRoot(info->schema.name,
                                                  index.name, tree->root()));
  }
  return Status::Ok();
}

// ---- logged wrappers -------------------------------------------------------

Status Database::CreateTable(const TableSchema& schema) {
  DBFA_RETURN_IF_ERROR(DoCreateTable(schema));
  sql::CreateTableStmt stmt;
  stmt.schema = schema;
  return LogStatement(stmt.ToSql());
}

Status Database::CreateIndex(const std::string& name,
                             const std::string& table,
                             const std::vector<std::string>& columns) {
  DBFA_RETURN_IF_ERROR(DoCreateIndex(name, table, columns));
  sql::CreateIndexStmt stmt;
  stmt.index_name = name;
  stmt.table = table;
  stmt.columns = columns;
  return LogStatement(stmt.ToSql());
}

Status Database::DropTable(const std::string& table) {
  DBFA_RETURN_IF_ERROR(DoDropTable(table));
  sql::DropTableStmt stmt;
  stmt.table = table;
  return LogStatement(stmt.ToSql());
}

Result<RowPointer> Database::Insert(const std::string& table,
                                    const Record& record) {
  DBFA_ASSIGN_OR_RETURN(RowPointer ptr, DoInsert(table, record));
  sql::InsertStmt stmt;
  stmt.table = table;
  stmt.rows = {record};
  DBFA_RETURN_IF_ERROR(LogStatement(stmt.ToSql()));
  return ptr;
}

Result<int64_t> Database::Delete(const std::string& table,
                                 sql::ExprPtr where) {
  DBFA_ASSIGN_OR_RETURN(int64_t n, DoDelete(table, where));
  sql::DeleteStmt stmt;
  stmt.table = table;
  stmt.where = std::move(where);
  DBFA_RETURN_IF_ERROR(LogStatement(stmt.ToSql()));
  return n;
}

Result<int64_t> Database::Update(
    const std::string& table,
    const std::vector<std::pair<std::string, Value>>& assignments,
    sql::ExprPtr where) {
  DBFA_ASSIGN_OR_RETURN(int64_t n, DoUpdate(table, assignments, where));
  sql::UpdateStmt stmt;
  stmt.table = table;
  stmt.assignments = assignments;
  stmt.where = std::move(where);
  DBFA_RETURN_IF_ERROR(LogStatement(stmt.ToSql()));
  return n;
}

Result<QueryResult> Database::Select(const sql::SelectStmt& stmt) {
  DBFA_ASSIGN_OR_RETURN(QueryResult result, DoSelect(stmt));
  DBFA_RETURN_IF_ERROR(LogStatement(stmt.ToSql()));
  return result;
}

Status Database::Vacuum(const std::string& table) {
  DBFA_RETURN_IF_ERROR(DoVacuum(table));
  sql::VacuumStmt stmt;
  stmt.table = table;
  return LogStatement(stmt.ToSql());
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql_text) {
  DBFA_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql_text));
  QueryResult result;
  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    DBFA_RETURN_IF_ERROR(DoCreateTable(create->schema));
  } else if (auto* ci = std::get_if<sql::CreateIndexStmt>(&stmt)) {
    DBFA_RETURN_IF_ERROR(DoCreateIndex(ci->index_name, ci->table,
                                       ci->columns));
  } else if (auto* drop = std::get_if<sql::DropTableStmt>(&stmt)) {
    DBFA_RETURN_IF_ERROR(DoDropTable(drop->table));
  } else if (auto* ins = std::get_if<sql::InsertStmt>(&stmt)) {
    for (const Record& row : ins->rows) {
      DBFA_RETURN_IF_ERROR(DoInsert(ins->table, row).status());
    }
  } else if (auto* up = std::get_if<sql::UpdateStmt>(&stmt)) {
    DBFA_RETURN_IF_ERROR(
        DoUpdate(up->table, up->assignments, up->where).status());
  } else if (auto* del = std::get_if<sql::DeleteStmt>(&stmt)) {
    DBFA_RETURN_IF_ERROR(DoDelete(del->table, del->where).status());
  } else if (auto* sel = std::get_if<sql::SelectStmt>(&stmt)) {
    DBFA_ASSIGN_OR_RETURN(result, DoSelect(*sel));
  } else if (auto* vac = std::get_if<sql::VacuumStmt>(&stmt)) {
    DBFA_RETURN_IF_ERROR(DoVacuum(vac->table));
  } else {
    return Status::Unimplemented("unsupported statement");
  }
  DBFA_RETURN_IF_ERROR(LogStatement(sql_text));
  return result;
}

Status Database::AttachExternalTable(const TableSchema& schema,
                                     const Bytes& file) {
  const PageFormatter& fmt = pager_.fmt();
  const uint32_t page_size = params().page_size;
  if (file.empty() || file.size() % page_size != 0) {
    return Status::InvalidArgument(
        "external file must be a non-empty multiple of the page size");
  }
  if (catalog_.Find(schema.name) != nullptr) {
    return Status::AlreadyExists("table exists: " + schema.name);
  }
  uint32_t page_count = static_cast<uint32_t>(file.size() / page_size);
  // Validate before mutating anything.
  for (uint32_t i = 0; i < page_count; ++i) {
    const uint8_t* page = file.data() + static_cast<size_t>(i) * page_size;
    if (!fmt.HasMagic(page) || fmt.PageId(page) != i + 1 ||
        fmt.TypeOf(page) != PageType::kData) {
      return Status::InvalidArgument(
          StrFormat("external file page %u is not a valid data page", i + 1));
    }
  }
  uint32_t object_id = pager_.CreateObject();
  StorageFile* dest = pager_.file(object_id);
  dest->mutable_bytes() = file;
  // The "minor changes": stamp the new object id and repair checksums.
  uint64_t max_row_id = 0;
  for (uint32_t i = 1; i <= page_count; ++i) {
    uint8_t* page = dest->PageData(i);
    WriteU32(page + params().object_id_offset, object_id,
             params().big_endian);
    ByteView view(page, page_size);
    for (uint16_t s = 0; s < fmt.RecordCount(page); ++s) {
      auto slot = fmt.GetSlot(page, s);
      if (!slot.has_value()) continue;
      auto rec = fmt.ParseRecordAt(view, slot->offset);
      if (rec.ok()) max_row_id = std::max(max_row_id, rec->row_id);
    }
    fmt.UpdateChecksum(page);
  }
  if (max_row_id >= next_row_id_) next_row_id_ = max_row_id + 1;

  DBFA_RETURN_IF_ERROR(catalog_.AddTable(schema, object_id, 1));
  auto heap = std::make_unique<TableHeap>(&pager_, object_id, schema,
                                          options_.page_reuse_threshold);
  DBFA_RETURN_IF_ERROR(heap->EnsureInitialized());
  heaps_[object_id] = std::move(heap);
  if (!schema.primary_key.empty()) {
    DBFA_RETURN_IF_ERROR(DoCreateIndex("pk_" + schema.name, schema.name,
                                       schema.primary_key));
  }
  sql::CreateTableStmt stmt;
  stmt.schema = schema;
  return LogStatement(stmt.ToSql());
}

// ---- forensic surfaces -----------------------------------------------------

Result<Bytes> Database::SnapshotDisk() { return pager_.SnapshotDisk(); }

Result<std::vector<std::pair<std::string, Bytes>>> Database::ExportFiles() {
  DBFA_RETURN_IF_ERROR(pager_.pool().FlushAll());
  // Build object-id -> name map from the catalog.
  std::map<uint32_t, std::string> names;
  names[kCatalogObjectId] = "catalog";
  for (const auto& [key, info] : catalog_.tables()) {
    names[info.object_id] = info.schema.name;
    for (const IndexInfo& index : info.indexes) {
      names[index.object_id] = info.schema.name + "." + index.name;
    }
  }
  std::vector<std::pair<std::string, Bytes>> out;
  for (uint32_t id = 1; id <= pager_.max_object_id(); ++id) {
    const StorageFile* f = pager_.file(id);
    if (f == nullptr) continue;
    std::string name = names.count(id) != 0
                           ? names[id]
                           : StrFormat("object_%u", id);
    out.emplace_back(name + ".dbf", f->bytes());
  }
  return out;
}

Status Database::Checkpoint(const std::string& dir) {
  DBFA_ASSIGN_OR_RETURN(auto files, ExportFiles());
  for (const auto& [name, bytes] : files) {
    DBFA_RETURN_IF_ERROR(SaveImage(dir + "/" + name, bytes));
  }
  return audit_log_.SaveTo(dir + "/audit.log");
}

}  // namespace dbfa
