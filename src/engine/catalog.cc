#include "engine/catalog.h"

#include "common/strings.h"

namespace dbfa {

const TableSchema& CatalogSchema() {
  static const TableSchema& schema = *new TableSchema{
      "_catalog",
      {{"entry_type", ColumnType::kVarchar, 8, false},
       {"name", ColumnType::kVarchar, 64, false},
       {"object_id", ColumnType::kInt, 0, false},
       {"table_object_id", ColumnType::kInt, 0, false},
       {"root_page", ColumnType::kInt, 0, false},
       {"info", ColumnType::kVarchar, 2048, true}},
      /*primary_key=*/{},
      /*foreign_keys=*/{}};
  return schema;
}

Catalog::Catalog(Pager* pager) : pager_(pager) {}

std::string Catalog::Key(const std::string& name) const {
  return ToLower(name);
}

Status Catalog::Initialize() {
  if (!pager_->HasObject(kCatalogObjectId)) {
    uint32_t id = pager_->CreateObject();
    if (id != kCatalogObjectId) {
      return Status::Internal("catalog must be the first object");
    }
  }
  heap_ = std::make_unique<TableHeap>(pager_, kCatalogObjectId,
                                      CatalogSchema(),
                                      /*reuse_threshold=*/2.0);
  return heap_->EnsureInitialized();
}

Status Catalog::WriteEntry(const std::string& entry_type,
                           const std::string& name, uint32_t object_id,
                           uint32_t table_object_id, uint32_t root_page,
                           const std::string& info) {
  Record record = {Value::Str(entry_type),
                   Value::Str(name),
                   Value::Int(object_id),
                   Value::Int(table_object_id),
                   Value::Int(root_page),
                   Value::Str(info)};
  return heap_->Insert(record, next_row_id_++).status();
}

Status Catalog::DeleteEntries(const std::string& entry_type,
                              const std::string& name) {
  std::vector<RowPointer> victims;
  DBFA_RETURN_IF_ERROR(heap_->Scan([&](RowPointer ptr, const Record& rec) {
    if (rec[0].as_string() == entry_type &&
        EqualsIgnoreCase(rec[1].as_string(), name)) {
      victims.push_back(ptr);
    }
    return Status::Ok();
  }));
  for (RowPointer ptr : victims) {
    DBFA_RETURN_IF_ERROR(heap_->Delete(ptr));
  }
  return Status::Ok();
}

Status Catalog::AddTable(const TableSchema& schema, uint32_t object_id,
                         uint32_t first_page) {
  if (tables_.count(Key(schema.name)) != 0) {
    return Status::AlreadyExists("table exists: " + schema.name);
  }
  DBFA_RETURN_IF_ERROR(WriteEntry(kCatalogTypeTable, schema.name, object_id,
                                  object_id, first_page,
                                  schema.Serialize()));
  TableInfo info;
  info.schema = schema;
  info.object_id = object_id;
  info.first_page = first_page;
  tables_[Key(schema.name)] = std::move(info);
  return Status::Ok();
}

Status Catalog::AddIndex(const std::string& table, const IndexInfo& index) {
  auto it = tables_.find(Key(table));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  for (const IndexInfo& existing : it->second.indexes) {
    if (EqualsIgnoreCase(existing.name, index.name)) {
      return Status::AlreadyExists("index exists: " + index.name);
    }
  }
  DBFA_RETURN_IF_ERROR(WriteEntry(kCatalogTypeIndex, index.name,
                                  index.object_id, it->second.object_id,
                                  index.root_page,
                                  Join(index.columns, ",")));
  it->second.indexes.push_back(index);
  return Status::Ok();
}

Status Catalog::DropTable(const std::string& table) {
  auto it = tables_.find(Key(table));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  DBFA_RETURN_IF_ERROR(DeleteEntries(kCatalogTypeTable,
                                     it->second.schema.name));
  for (const IndexInfo& index : it->second.indexes) {
    DBFA_RETURN_IF_ERROR(DeleteEntries(kCatalogTypeIndex, index.name));
  }
  tables_.erase(it);
  return Status::Ok();
}

Status Catalog::UpdateIndexRoot(const std::string& table,
                                const std::string& index,
                                uint32_t new_root) {
  auto it = tables_.find(Key(table));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  for (IndexInfo& info : it->second.indexes) {
    if (!EqualsIgnoreCase(info.name, index)) continue;
    DBFA_RETURN_IF_ERROR(DeleteEntries(kCatalogTypeIndex, info.name));
    info.root_page = new_root;
    return WriteEntry(kCatalogTypeIndex, info.name, info.object_id,
                      it->second.object_id, new_root,
                      Join(info.columns, ","));
  }
  return Status::NotFound("no such index: " + index);
}

void Catalog::RegisterLoadedTable(const TableSchema& schema,
                                  uint32_t object_id, uint32_t first_page) {
  TableInfo info;
  info.schema = schema;
  info.object_id = object_id;
  info.first_page = first_page == 0 ? 1 : first_page;
  tables_[Key(schema.name)] = std::move(info);
}

void Catalog::RegisterLoadedIndex(const std::string& table,
                                  const IndexInfo& index) {
  auto it = tables_.find(Key(table));
  if (it == tables_.end()) return;
  it->second.indexes.push_back(index);
}

const TableInfo* Catalog::Find(const std::string& table) const {
  auto it = tables_.find(Key(table));
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace dbfa
