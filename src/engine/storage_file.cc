#include "engine/storage_file.h"

#include "storage/disk_image.h"

namespace dbfa {

Status StorageFile::SaveTo(const std::string& path) const {
  return SaveImage(path, data_);
}

Result<StorageFile> StorageFile::LoadFrom(const std::string& path,
                                          uint32_t page_size) {
  DBFA_ASSIGN_OR_RETURN(Bytes content, LoadImage(path));
  if (content.size() % page_size != 0) {
    return Status::Corruption("file size is not a multiple of the page size");
  }
  StorageFile file(page_size);
  file.data_ = std::move(content);
  return file;
}

}  // namespace dbfa
