#include "engine/btree.h"

#include <algorithm>

#include "common/strings.h"

namespace dbfa {
namespace {

/// Compares an entry's key vector to a target. Empty entry keys are the
/// internal-node sentinel and sort below everything. When `leading_only`,
/// only the first component participates (range scans on the leading
/// column).
int CompareKeys(const std::vector<Value>& entry_keys,
                const std::vector<Value>& target, bool leading_only) {
  if (entry_keys.empty()) return -1;
  if (leading_only) {
    if (target.empty()) return 1;
    return Value::Compare(entry_keys[0], target[0]);
  }
  return CompareRecords(entry_keys, target);
}

}  // namespace

BTree::BTree(Pager* pager, uint32_t object_id, std::string name,
             std::vector<int> key_columns)
    : pager_(pager),
      object_id_(object_id),
      name_(std::move(name)),
      key_columns_(std::move(key_columns)) {}

Status BTree::Create() {
  DBFA_ASSIGN_OR_RETURN(auto page,
                        pager_->NewPage(object_id_, PageType::kIndexLeaf));
  root_ = page.first;
  return Status::Ok();
}

std::vector<Value> BTree::ExtractKeys(const Record& record) const {
  std::vector<Value> keys;
  keys.reserve(key_columns_.size());
  for (int col : key_columns_) {
    keys.push_back(col >= 0 && static_cast<size_t>(col) < record.size()
                       ? record[col]
                       : Value::Null());
  }
  return keys;
}

bool BTree::AllNull(const std::vector<Value>& keys) {
  for (const Value& k : keys) {
    if (!k.is_null()) return false;
  }
  return true;
}

Result<std::vector<ParsedIndexEntry>> BTree::ReadEntries(
    const uint8_t* page) {
  const PageFormatter& fmt = pager_->fmt();
  ByteView view(page, fmt.page_size());
  std::vector<ParsedIndexEntry> entries;
  uint16_t count = fmt.RecordCount(page);
  entries.reserve(count);
  for (uint16_t s = 0; s < count; ++s) {
    auto slot = fmt.GetSlot(page, s);
    if (!slot.has_value()) {
      return Status::Corruption("index slot missing");
    }
    DBFA_ASSIGN_OR_RETURN(ParsedIndexEntry entry,
                          fmt.ParseIndexEntryAt(view, slot->offset));
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status BTree::Insert(const std::vector<Value>& keys, RowPointer ptr) {
  if (root_ == 0) return Status::FailedPrecondition("index not created");
  if (AllNull(keys)) return Status::Ok();  // NULL keys are not indexed
  Bytes entry = pager_->fmt().EncodeLeafEntry(keys, ptr);
  DBFA_ASSIGN_OR_RETURN(auto split, InsertRec(root_, keys, std::move(entry)));
  if (!split.has_value()) return Status::Ok();
  // Root split: new internal root with sentinel -> old root.
  DBFA_ASSIGN_OR_RETURN(auto page,
                        pager_->NewPage(object_id_, PageType::kIndexInternal));
  const PageFormatter& fmt = pager_->fmt();
  PageHandle& h = page.second;
  Bytes left_entry = fmt.EncodeInternalEntry({}, root_);
  Bytes right_entry =
      fmt.EncodeInternalEntry(split->separator, split->right_page);
  auto s0 = fmt.InsertRecordBytes(h.data(), left_entry, 0);
  auto s1 = fmt.InsertRecordBytes(h.data(), right_entry, 1);
  if (!s0.ok() || !s1.ok()) {
    return Status::Internal("root split entries do not fit an empty page");
  }
  pager_->CommitPage(&h);
  root_ = page.first;
  return Status::Ok();
}

Result<std::optional<BTree::SplitResult>> BTree::InsertRec(
    uint32_t page_id, const std::vector<Value>& keys, Bytes entry) {
  const PageFormatter& fmt = pager_->fmt();
  DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, page_id));
  PageType type = fmt.TypeOf(h.data());

  if (type == PageType::kIndexInternal) {
    DBFA_ASSIGN_OR_RETURN(auto entries, ReadEntries(h.data()));
    if (entries.empty()) {
      return Status::Corruption("internal index node with no entries");
    }
    size_t pos = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (CompareKeys(entries[i].keys, keys, /*leading_only=*/false) <= 0) {
        pos = i;
      } else {
        break;
      }
    }
    uint32_t child = entries[pos].pointer.page_id;
    DBFA_ASSIGN_OR_RETURN(auto child_split,
                          InsertRec(child, keys, std::move(entry)));
    if (!child_split.has_value()) return std::optional<SplitResult>();
    Bytes new_entry = fmt.EncodeInternalEntry(child_split->separator,
                                              child_split->right_page);
    // Fall through to the shared node-insertion path below with the new
    // internal entry at pos+1.
    auto slot = fmt.InsertRecordBytes(h.data(), new_entry,
                                      static_cast<int>(pos + 1));
    if (slot.ok()) {
      pager_->CommitPage(&h);
      return std::optional<SplitResult>();
    }
    if (slot.status().code() != StatusCode::kOutOfRange) {
      return slot.status();
    }
    // Split this internal node.
    DBFA_ASSIGN_OR_RETURN(auto all, ReadEntries(h.data()));
    std::vector<std::pair<std::vector<Value>, Bytes>> ordered;
    ordered.reserve(all.size() + 1);
    ByteView view(h.data(), fmt.page_size());
    for (const auto& e : all) {
      ordered.emplace_back(e.keys, view.Slice(e.offset, e.length).ToBytes());
    }
    ordered.insert(ordered.begin() + pos + 1,
                   {child_split->separator, new_entry});
    size_t m = ordered.size() / 2;
    DBFA_ASSIGN_OR_RETURN(
        auto right, pager_->NewPage(object_id_, PageType::kIndexInternal));
    fmt.InitPage(h.data(), page_id, object_id_, PageType::kIndexInternal);
    for (size_t i = 0; i < m; ++i) {
      auto s = fmt.InsertRecordBytes(h.data(), ordered[i].second);
      if (!s.ok()) return Status::Internal("internal split refill failed");
    }
    for (size_t i = m; i < ordered.size(); ++i) {
      auto s = fmt.InsertRecordBytes(right.second.data(), ordered[i].second);
      if (!s.ok()) return Status::Internal("internal split refill failed");
    }
    pager_->CommitPage(&h);
    pager_->CommitPage(&right.second);
    return std::optional<SplitResult>(
        SplitResult{ordered[m].first, right.first});
  }

  if (type != PageType::kIndexLeaf) {
    return Status::Corruption(
        StrFormat("page %u is not an index page", page_id));
  }

  // Leaf: find the sorted position (after duplicates).
  DBFA_ASSIGN_OR_RETURN(auto entries, ReadEntries(h.data()));
  size_t pos = 0;
  while (pos < entries.size() &&
         CompareKeys(entries[pos].keys, keys, /*leading_only=*/false) <= 0) {
    ++pos;
  }
  auto slot = fmt.InsertRecordBytes(h.data(), entry, static_cast<int>(pos));
  if (slot.ok()) {
    pager_->CommitPage(&h);
    return std::optional<SplitResult>();
  }
  if (slot.status().code() != StatusCode::kOutOfRange) {
    return slot.status();
  }
  // Split the leaf.
  std::vector<std::pair<std::vector<Value>, Bytes>> ordered;
  ordered.reserve(entries.size() + 1);
  ByteView view(h.data(), fmt.page_size());
  for (const auto& e : entries) {
    ordered.emplace_back(e.keys, view.Slice(e.offset, e.length).ToBytes());
  }
  ordered.insert(ordered.begin() + pos, {keys, entry});
  size_t m = ordered.size() / 2;
  if (m == 0) m = 1;
  uint32_t old_next = fmt.NextPage(h.data());
  DBFA_ASSIGN_OR_RETURN(auto right,
                        pager_->NewPage(object_id_, PageType::kIndexLeaf));
  fmt.InitPage(h.data(), page_id, object_id_, PageType::kIndexLeaf);
  for (size_t i = 0; i < m; ++i) {
    auto s = fmt.InsertRecordBytes(h.data(), ordered[i].second);
    if (!s.ok()) return Status::Internal("leaf split refill failed");
  }
  for (size_t i = m; i < ordered.size(); ++i) {
    auto s = fmt.InsertRecordBytes(right.second.data(), ordered[i].second);
    if (!s.ok()) return Status::Internal("leaf split refill failed");
  }
  fmt.SetNextPage(h.data(), right.first);
  fmt.SetNextPage(right.second.data(), old_next);
  pager_->CommitPage(&h);
  pager_->CommitPage(&right.second);
  return std::optional<SplitResult>(SplitResult{ordered[m].first, right.first});
}

Result<uint32_t> BTree::DescendToLeaf(const std::vector<Value>& keys,
                                      bool leading_only) {
  const PageFormatter& fmt = pager_->fmt();
  uint32_t page_id = root_;
  for (int depth = 0; depth < 64; ++depth) {
    DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, page_id));
    PageType type = fmt.TypeOf(h.data());
    if (type == PageType::kIndexLeaf) return page_id;
    if (type != PageType::kIndexInternal) {
      return Status::Corruption("non-index page inside index");
    }
    DBFA_ASSIGN_OR_RETURN(auto entries, ReadEntries(h.data()));
    if (entries.empty()) {
      return Status::Corruption("internal index node with no entries");
    }
    size_t pos = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (CompareKeys(entries[i].keys, keys, leading_only) < 0) {
        pos = i;
      } else {
        break;
      }
    }
    page_id = entries[pos].pointer.page_id;
  }
  return Status::Corruption("index deeper than 64 levels (cycle?)");
}

Result<std::vector<RowPointer>> BTree::SearchEqual(
    const std::vector<Value>& keys) {
  std::vector<RowPointer> out;
  if (root_ == 0) return out;
  if (AllNull(keys)) return out;
  const PageFormatter& fmt = pager_->fmt();
  DBFA_ASSIGN_OR_RETURN(uint32_t leaf, DescendToLeaf(keys, false));
  while (leaf != 0) {
    DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, leaf));
    DBFA_ASSIGN_OR_RETURN(auto entries, ReadEntries(h.data()));
    for (const auto& e : entries) {
      int c = CompareKeys(e.keys, keys, /*leading_only=*/false);
      if (c == 0) out.push_back(e.pointer);
      if (c > 0) return out;
    }
    leaf = fmt.NextPage(h.data());
  }
  return out;
}

Result<std::vector<BTree::Entry>> BTree::SearchRangeLeading(
    const std::optional<Value>& lo, const std::optional<Value>& hi) {
  std::vector<Entry> out;
  if (root_ == 0) return out;
  const PageFormatter& fmt = pager_->fmt();
  uint32_t leaf;
  if (lo.has_value()) {
    DBFA_ASSIGN_OR_RETURN(leaf, DescendToLeaf({*lo}, /*leading_only=*/true));
  } else {
    DBFA_ASSIGN_OR_RETURN(leaf, DescendToLeaf({}, /*leading_only=*/true));
  }
  while (leaf != 0) {
    DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, leaf));
    DBFA_ASSIGN_OR_RETURN(auto entries, ReadEntries(h.data()));
    for (const auto& e : entries) {
      if (e.keys.empty()) continue;
      if (lo.has_value() && Value::Compare(e.keys[0], *lo) < 0) continue;
      if (hi.has_value() && Value::Compare(e.keys[0], *hi) > 0) return out;
      out.push_back(Entry{e.keys, e.pointer, leaf});
    }
    leaf = fmt.NextPage(h.data());
  }
  return out;
}

Status BTree::ScanLeafEntries(
    const std::function<Status(const Entry&)>& fn) {
  DBFA_ASSIGN_OR_RETURN(auto all, SearchRangeLeading(std::nullopt,
                                                     std::nullopt));
  for (const Entry& e : all) {
    DBFA_RETURN_IF_ERROR(fn(e));
  }
  return Status::Ok();
}

Result<std::vector<uint32_t>> BTree::ReachablePages() {
  std::vector<uint32_t> out;
  if (root_ == 0) return out;
  const PageFormatter& fmt = pager_->fmt();
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    uint32_t page_id = stack.back();
    stack.pop_back();
    out.push_back(page_id);
    if (out.size() > 1'000'000) {
      return Status::Corruption("index reachability explosion (cycle?)");
    }
    DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, page_id));
    if (fmt.TypeOf(h.data()) != PageType::kIndexInternal) continue;
    DBFA_ASSIGN_OR_RETURN(auto entries, ReadEntries(h.data()));
    for (const auto& e : entries) stack.push_back(e.pointer.page_id);
  }
  return out;
}

Status BTree::Rebuild(TableHeap* heap) {
  // Gather live entries.
  std::vector<std::pair<std::vector<Value>, RowPointer>> entries;
  DBFA_RETURN_IF_ERROR(heap->Scan([&](RowPointer ptr, const Record& rec) {
    std::vector<Value> keys = ExtractKeys(rec);
    if (!AllNull(keys)) entries.emplace_back(std::move(keys), ptr);
    return Status::Ok();
  }));
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) {
                     return CompareRecords(a.first, b.first) < 0;
                   });

  const PageFormatter& fmt = pager_->fmt();
  // Build the new leaf level (old pages are simply orphaned).
  struct LevelNode {
    std::vector<Value> first_keys;
    uint32_t page_id;
  };
  std::vector<LevelNode> level;
  {
    DBFA_ASSIGN_OR_RETURN(auto page,
                          pager_->NewPage(object_id_, PageType::kIndexLeaf));
    uint32_t current = page.first;
    PageHandle handle = std::move(page.second);
    bool first_in_node = true;
    level.push_back({{}, current});
    for (const auto& [keys, ptr] : entries) {
      Bytes encoded = fmt.EncodeLeafEntry(keys, ptr);
      auto slot = fmt.InsertRecordBytes(handle.data(), encoded);
      if (!slot.ok()) {
        if (slot.status().code() != StatusCode::kOutOfRange) {
          return slot.status();
        }
        pager_->CommitPage(&handle);
        DBFA_ASSIGN_OR_RETURN(
            auto next_page, pager_->NewPage(object_id_, PageType::kIndexLeaf));
        fmt.SetNextPage(handle.data(), next_page.first);
        pager_->CommitPage(&handle);
        handle = std::move(next_page.second);
        current = next_page.first;
        level.push_back({keys, current});
        first_in_node = true;
        auto retry = fmt.InsertRecordBytes(handle.data(), encoded);
        if (!retry.ok()) {
          return Status::Internal("bulk-load entry does not fit empty leaf");
        }
      }
      if (first_in_node) {
        level.back().first_keys = keys;
        first_in_node = false;
      }
    }
    pager_->CommitPage(&handle);
  }

  // Build internal levels until a single root remains.
  while (level.size() > 1) {
    std::vector<LevelNode> parents;
    size_t i = 0;
    while (i < level.size()) {
      DBFA_ASSIGN_OR_RETURN(
          auto page, pager_->NewPage(object_id_, PageType::kIndexInternal));
      PageHandle handle = std::move(page.second);
      parents.push_back({level[i].first_keys, page.first});
      bool first_child = true;
      while (i < level.size()) {
        std::vector<Value> sep = first_child ? std::vector<Value>{}
                                             : level[i].first_keys;
        Bytes encoded = fmt.EncodeInternalEntry(sep, level[i].page_id);
        auto slot = fmt.InsertRecordBytes(handle.data(), encoded);
        if (!slot.ok()) {
          if (slot.status().code() != StatusCode::kOutOfRange) {
            return slot.status();
          }
          break;  // node full; start the next parent
        }
        first_child = false;
        ++i;
      }
      if (first_child) {
        return Status::Internal("internal bulk-load node stayed empty");
      }
      pager_->CommitPage(&handle);
    }
    level = std::move(parents);
  }
  root_ = level.empty() ? 0 : level[0].page_id;
  return Status::Ok();
}

}  // namespace dbfa
