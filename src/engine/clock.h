// Virtual clock. Library code never reads the wall clock; experiments
// inject a ManualClock, which also models the Section III-C attack where a
// privileged user sets the server's global clock backwards to backdate
// audit-log entries.
#ifndef DBFA_ENGINE_CLOCK_H_
#define DBFA_ENGINE_CLOCK_H_

#include <cstdint>

namespace dbfa {

/// Source of timestamps (seconds since an arbitrary epoch).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t Now() = 0;
};

/// Fully controllable clock; auto-advances by `tick` per reading so that
/// successive statements get distinct, increasing timestamps unless the
/// operator tampers with it.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start = 1'000'000, int64_t tick = 1)
      : now_(start), tick_(tick) {}

  int64_t Now() override {
    int64_t t = now_;
    now_ += tick_;
    return t;
  }

  /// The Section III-C attack lever: move the clock (backwards allowed).
  void Set(int64_t t) { now_ = t; }
  void Advance(int64_t delta) { now_ += delta; }
  int64_t Peek() const { return now_; }

 private:
  int64_t now_;
  int64_t tick_;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_CLOCK_H_
