// One storage file per database object (table heap, index), as many real
// row stores do. Files hold whole pages; page ids are 1-based (0 means
// "no page" in chains and pointers).
//
// Files are memory-resident for experiment determinism and speed; Save/Load
// move them to the filesystem, and Serialize() feeds disk-image assembly.
#ifndef DBFA_ENGINE_STORAGE_FILE_H_
#define DBFA_ENGINE_STORAGE_FILE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dbfa {

class StorageFile {
 public:
  explicit StorageFile(uint32_t page_size) : page_size_(page_size) {}

  uint32_t page_size() const { return page_size_; }
  uint32_t page_count() const {
    return static_cast<uint32_t>(data_.size() / page_size_);
  }

  /// Appends a zeroed page; returns its 1-based page id.
  uint32_t Allocate() {
    data_.resize(data_.size() + page_size_, 0);
    return page_count();
  }

  /// Pointer to the page's bytes. page_id must be in [1, page_count()].
  uint8_t* PageData(uint32_t page_id) {
    return data_.data() + static_cast<size_t>(page_id - 1) * page_size_;
  }
  const uint8_t* PageData(uint32_t page_id) const {
    return data_.data() + static_cast<size_t>(page_id - 1) * page_size_;
  }

  bool Contains(uint32_t page_id) const {
    return page_id >= 1 && page_id <= page_count();
  }

  /// Whole-file bytes (page_count * page_size).
  const Bytes& bytes() const { return data_; }
  Bytes& mutable_bytes() { return data_; }

  Status SaveTo(const std::string& path) const;
  static Result<StorageFile> LoadFrom(const std::string& path,
                                      uint32_t page_size);

 private:
  uint32_t page_size_;
  Bytes data_;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_STORAGE_FILE_H_
