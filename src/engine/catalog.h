// System catalog: table and index metadata stored *in ordinary data pages*
// (object id 1) so that the carver can reconstruct schemas from storage
// alone, and so that DROP TABLE leaves a delete-marked catalog record — the
// "deleted pages" evidence category of Section II-A.
#ifndef DBFA_ENGINE_CATALOG_H_
#define DBFA_ENGINE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/table_heap.h"

namespace dbfa {

/// Reserved object id of the catalog heap.
inline constexpr uint32_t kCatalogObjectId = 1;

/// Schema of the catalog table itself (compiled in; the bootstrap problem
/// is resolved the same way real systems do).
const TableSchema& CatalogSchema();

/// Catalog entry kinds (entry_type column values).
inline constexpr char kCatalogTypeTable[] = "TABLE";
inline constexpr char kCatalogTypeIndex[] = "INDEX";

struct IndexInfo {
  std::string name;
  uint32_t object_id = 0;
  uint32_t root_page = 0;
  std::vector<std::string> columns;
};

struct TableInfo {
  TableSchema schema;
  uint32_t object_id = 0;
  uint32_t first_page = 0;
  std::vector<IndexInfo> indexes;
};

class Catalog {
 public:
  /// Binds to the pager and creates/attaches the catalog heap.
  explicit Catalog(Pager* pager);

  Status Initialize();

  /// Registers a table. Writes a catalog record and mirrors in memory.
  Status AddTable(const TableSchema& schema, uint32_t object_id,
                  uint32_t first_page);

  /// Registers an index on an existing table.
  Status AddIndex(const std::string& table, const IndexInfo& index);

  /// Marks the table's (and its indexes') catalog records deleted. The
  /// underlying pages are intentionally left untouched.
  Status DropTable(const std::string& table);

  /// Rewrites an index's root page (delete-mark old record + insert new —
  /// leaving the old version as a deleted record, as real catalogs do).
  Status UpdateIndexRoot(const std::string& table, const std::string& index,
                         uint32_t new_root);

  /// Recovery-only: mirrors an already-persisted table/index in memory
  /// without writing catalog records (used by OpenFromCheckpoint, whose
  /// storage already holds the records).
  void RegisterLoadedTable(const TableSchema& schema, uint32_t object_id,
                           uint32_t first_page);
  void RegisterLoadedIndex(const std::string& table, const IndexInfo& index);

  /// Case-insensitive lookup; nullptr when absent.
  const TableInfo* Find(const std::string& table) const;

  const std::map<std::string, TableInfo>& tables() const { return tables_; }

 private:
  /// Writes one catalog record.
  Status WriteEntry(const std::string& entry_type, const std::string& name,
                    uint32_t object_id, uint32_t table_object_id,
                    uint32_t root_page, const std::string& info);

  /// Delete-marks catalog records matching (entry_type, name).
  Status DeleteEntries(const std::string& entry_type, const std::string& name);

  std::string Key(const std::string& name) const;

  Pager* pager_;
  std::unique_ptr<TableHeap> heap_;
  std::map<std::string, TableInfo> tables_;  // key: lower-cased name
  uint64_t next_row_id_ = 1;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_CATALOG_H_
