// The DBMS audit log: the evidence source DBDetective cross-checks against
// carved storage. Logging can be disabled and re-enabled — the privileged-
// user attack of Section III-A — and the log's timestamps come from the
// (tamperable) server clock, which is what Section III-C exploits.
#ifndef DBFA_ENGINE_AUDIT_LOG_H_
#define DBFA_ENGINE_AUDIT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbfa {

struct AuditEntry {
  uint64_t seq = 0;       // position in the log file
  int64_t timestamp = 0;  // server-clock seconds
  std::string sql;        // statement text as executed
};

class AuditLog {
 public:
  AuditLog() = default;

  bool enabled() const { return enabled_; }
  /// Privileged users can legitimately disable logging (e.g. bulk loads) —
  /// and maliciously hide activity. Nothing is recorded while disabled.
  void SetEnabled(bool enabled) { enabled_ = enabled; }

  /// Appends an entry if logging is enabled. Returns true when recorded.
  bool Append(int64_t timestamp, std::string sql);

  const std::vector<AuditEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  /// Entries with seq strictly greater than `seq` — the log window an
  /// investigator compares against a cache snapshot taken after that
  /// point (cached pages predating the window are stale, not evidence).
  AuditLog TailAfter(uint64_t seq) const;

  /// "seq|timestamp|sql" lines.
  std::string ToText() const;
  static Result<AuditLog> FromText(const std::string& text);

  Status SaveTo(const std::string& path) const;
  static Result<AuditLog> LoadFrom(const std::string& path);

 private:
  bool enabled_ = true;
  uint64_t next_seq_ = 1;
  std::vector<AuditEntry> entries_;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_AUDIT_LOG_H_
