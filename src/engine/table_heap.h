// Heap storage for one table: a chain of data pages.
//
// Deletion only applies the dialect's delete mark (Figure 1); the bytes
// stay in place. Space is reclaimed only by (a) reuse of fully-dead pages
// once their deleted fraction reaches the configured threshold — modeling
// Oracle-style percent-utilization reuse discussed in Section III-D — or
// (b) an explicit VACUUM, which compacts every page.
#ifndef DBFA_ENGINE_TABLE_HEAP_H_
#define DBFA_ENGINE_TABLE_HEAP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "engine/pager.h"
#include "storage/schema.h"

namespace dbfa {

class TableHeap {
 public:
  /// Wraps object `object_id` (file must already exist in the pager).
  /// `reuse_threshold` > 1 disables page reuse entirely.
  TableHeap(Pager* pager, uint32_t object_id, TableSchema schema,
            double reuse_threshold);

  /// Allocates the first page if the file is empty.
  Status EnsureInitialized();

  uint32_t object_id() const { return object_id_; }
  uint32_t first_page() const { return first_page_; }
  const TableSchema& schema() const { return schema_; }

  /// Appends a record; returns its physical location.
  Result<RowPointer> Insert(const Record& record, uint64_t row_id);

  /// Applies the dialect delete mark to the record at `ptr`.
  Status Delete(RowPointer ptr);

  /// Returns the active record at `ptr`; nullopt when the slot is deleted,
  /// tombstoned, or out of range.
  Result<std::optional<Record>> Fetch(RowPointer ptr);

  /// Calls `fn` for every *active* record in physical order.
  Status Scan(
      const std::function<Status(RowPointer, const Record&)>& fn);

  /// Calls `fn` for every parseable record including deleted ones.
  Status ScanRaw(const std::function<Status(RowPointer, const Record&,
                                            bool deleted)>& fn);

  /// Compacts every page in place: deleted records are physically erased
  /// and survivors are re-packed (slots renumbered). Indexes must be
  /// rebuilt afterwards; Database::Vacuum coordinates that.
  Status Vacuum();

  struct HeapStats {
    uint64_t active_records = 0;
    uint64_t deleted_records = 0;
    uint32_t pages = 0;
    uint64_t reused_pages = 0;
  };
  HeapStats Stats() const;

 private:
  struct PageCounts {
    uint32_t active = 0;
    uint32_t deleted = 0;
  };

  /// Physically erases deleted records of one page by re-inserting the
  /// survivors into a freshly initialized page image.
  Status CompactPage(uint32_t page_id);

  /// Finds a fully-dead page eligible for reuse, or 0.
  uint32_t FindReusablePage() const;

  Pager* pager_;
  uint32_t object_id_;
  TableSchema schema_;
  double reuse_threshold_;
  uint32_t first_page_ = 0;
  uint32_t chain_tail_ = 0;     // last page of the next-pointer chain
  uint32_t insert_target_ = 0;  // page currently receiving inserts
  std::unordered_map<uint32_t, PageCounts> counts_;
  uint64_t reused_pages_ = 0;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_TABLE_HEAP_H_
