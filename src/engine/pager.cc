#include "engine/pager.h"

#include <cstring>

#include "common/strings.h"

namespace dbfa {

Pager::Pager(const PageLayoutParams& params, size_t pool_pages)
    : fmt_(params), pool_(pool_pages, params.page_size, this) {}

uint32_t Pager::CreateObject() {
  uint32_t id = static_cast<uint32_t>(files_.size()) + 1;
  files_[id] = std::make_unique<StorageFile>(params().page_size);
  return id;
}

bool Pager::HasObject(uint32_t object_id) const {
  return files_.count(object_id) != 0;
}

StorageFile* Pager::file(uint32_t object_id) {
  auto it = files_.find(object_id);
  return it == files_.end() ? nullptr : it->second.get();
}

const StorageFile* Pager::file(uint32_t object_id) const {
  auto it = files_.find(object_id);
  return it == files_.end() ? nullptr : it->second.get();
}

Result<PageHandle> Pager::Fetch(uint32_t object_id, uint32_t page_id) {
  StorageFile* f = file(object_id);
  if (f == nullptr) {
    return Status::NotFound(StrFormat("no object %u", object_id));
  }
  if (!f->Contains(page_id)) {
    return Status::NotFound(
        StrFormat("object %u has no page %u", object_id, page_id));
  }
  return pool_.Fetch(PageKey{object_id, page_id});
}

Result<std::pair<uint32_t, PageHandle>> Pager::NewPage(uint32_t object_id,
                                                       PageType type) {
  StorageFile* f = file(object_id);
  if (f == nullptr) {
    return Status::NotFound(StrFormat("no object %u", object_id));
  }
  uint32_t page_id = f->Allocate();
  DBFA_ASSIGN_OR_RETURN(PageHandle handle,
                        pool_.Fetch(PageKey{object_id, page_id}));
  fmt_.InitPage(handle.data(), page_id, object_id, type);
  CommitPage(&handle);
  return std::make_pair(page_id, std::move(handle));
}

void Pager::CommitPage(PageHandle* handle) {
  fmt_.SetLsn(handle->data(), ++lsn_);
  fmt_.UpdateChecksum(handle->data());
  handle->MarkDirty();
}

Result<Bytes> Pager::SnapshotDisk() {
  DBFA_RETURN_IF_ERROR(pool_.FlushAll());
  Bytes out;
  for (const auto& [id, f] : files_) {
    out.insert(out.end(), f->bytes().begin(), f->bytes().end());
  }
  return out;
}

Status Pager::ReadPage(PageKey key, uint8_t* out) {
  StorageFile* f = file(key.object_id);
  if (f == nullptr || !f->Contains(key.page_id)) {
    return Status::NotFound(StrFormat("read of missing page %u/%u",
                                      key.object_id, key.page_id));
  }
  CopyBytes(out, f->PageData(key.page_id), params().page_size);
  return Status::Ok();
}

Status Pager::WritePage(PageKey key, const uint8_t* data) {
  StorageFile* f = file(key.object_id);
  if (f == nullptr || !f->Contains(key.page_id)) {
    return Status::NotFound(StrFormat("write of missing page %u/%u",
                                      key.object_id, key.page_id));
  }
  CopyBytes(f->PageData(key.page_id), data, params().page_size);
  return Status::Ok();
}

}  // namespace dbfa
