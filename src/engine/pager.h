// Pager: object files + buffer pool + LSN stamping, shared by heaps,
// B-Trees and the catalog.
//
// Every page mutation is stamped with a process-global LSN that the SQL
// surface cannot influence — the storage-resident modification order that
// Section III-C uses to expose backdated audit logs.
#ifndef DBFA_ENGINE_PAGER_H_
#define DBFA_ENGINE_PAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "engine/buffer_pool.h"
#include "engine/storage_file.h"
#include "storage/page_formatter.h"
#include "storage/page_layout.h"

namespace dbfa {

class Pager : public PageBacking {
 public:
  Pager(const PageLayoutParams& params, size_t pool_pages);

  const PageFormatter& fmt() const { return fmt_; }
  const PageLayoutParams& params() const { return fmt_.params(); }
  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }

  /// Creates a new object file; returns the object id (1-based, dense).
  uint32_t CreateObject();
  bool HasObject(uint32_t object_id) const;
  uint32_t max_object_id() const {
    return static_cast<uint32_t>(files_.size());
  }

  /// Pins an existing page.
  Result<PageHandle> Fetch(uint32_t object_id, uint32_t page_id);

  /// Allocates and initializes a fresh page of `type`; returns its id and a
  /// pinned handle (already dirty).
  Result<std::pair<uint32_t, PageHandle>> NewPage(uint32_t object_id,
                                                  PageType type);

  /// Call after mutating a pinned page: stamps the next global LSN, fixes
  /// the checksum, marks the frame dirty.
  void CommitPage(PageHandle* handle);

  uint64_t current_lsn() const { return lsn_; }
  /// Restores the LSN watermark after loading checkpointed pages (stamps
  /// must stay monotone across restarts).
  void RestoreLsn(uint64_t lsn) {
    if (lsn > lsn_) lsn_ = lsn;
  }

  /// Direct access to an object's backing file (flush the pool first when
  /// byte-accurate content matters). Used for snapshots and for byte-level
  /// tampering simulations.
  StorageFile* file(uint32_t object_id);
  const StorageFile* file(uint32_t object_id) const;

  /// Flushes the pool and concatenates all object files in id order.
  Result<Bytes> SnapshotDisk();

  // PageBacking:
  Status ReadPage(PageKey key, uint8_t* out) override;
  Status WritePage(PageKey key, const uint8_t* data) override;

 private:
  PageFormatter fmt_;
  std::map<uint32_t, std::unique_ptr<StorageFile>> files_;
  BufferPool pool_;
  uint64_t lsn_ = 0;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_PAGER_H_
