// Disk-format B-Tree index over a table heap.
//
// Forensically important behaviours (Section II-A):
//  * DELETEs never touch the index — entries pointing at deleted records
//    ("deleted values") persist until an explicit Rebuild.
//  * UPDATEs insert a new entry; the old one persists likewise.
//  * Entries whose key columns are all NULL are skipped (the paper's
//    steganography abuses exactly this to keep a hidden record out of the
//    primary-key index).
//  * Rebuild writes a fresh page chain in the same object file; the old
//    pages become unreachable but their bytes remain carvable.
#ifndef DBFA_ENGINE_BTREE_H_
#define DBFA_ENGINE_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/pager.h"
#include "engine/table_heap.h"

namespace dbfa {

class BTree {
 public:
  /// Wraps object `object_id`. `key_columns` are table-schema column
  /// indexes forming the (possibly composite) key.
  BTree(Pager* pager, uint32_t object_id, std::string name,
        std::vector<int> key_columns);

  /// Allocates the root leaf for a fresh index.
  Status Create();

  const std::string& name() const { return name_; }
  uint32_t object_id() const { return object_id_; }
  uint32_t root() const { return root_; }
  void set_root(uint32_t root) { root_ = root; }
  const std::vector<int>& key_columns() const { return key_columns_; }

  /// Extracts this index's key values from a table record.
  std::vector<Value> ExtractKeys(const Record& record) const;

  /// True when every key component is NULL (entry would be skipped).
  static bool AllNull(const std::vector<Value>& keys);

  /// Inserts an entry (no-op for all-NULL keys). May change root().
  Status Insert(const std::vector<Value>& keys, RowPointer ptr);

  /// All pointers whose full key equals `keys` (stale entries included).
  Result<std::vector<RowPointer>> SearchEqual(const std::vector<Value>& keys);

  struct Entry {
    std::vector<Value> keys;
    RowPointer pointer;
    uint32_t leaf_page = 0;
  };

  /// Entries whose *leading* key component lies in [lo, hi]; either bound
  /// optional. Results are in key order.
  Result<std::vector<Entry>> SearchRangeLeading(
      const std::optional<Value>& lo, const std::optional<Value>& hi);

  /// Visits every leaf entry left-to-right (stale entries included).
  Status ScanLeafEntries(const std::function<Status(const Entry&)>& fn);

  /// Pages this tree currently reaches from the root (for cache analysis
  /// and reachability checks).
  Result<std::vector<uint32_t>> ReachablePages();

  /// Rebuilds from the heap's active records (bulk load, sorted). Old pages
  /// are orphaned in place. Root changes.
  Status Rebuild(TableHeap* heap);

 private:
  struct SplitResult {
    std::vector<Value> separator;
    uint32_t right_page = 0;
  };

  Result<std::optional<SplitResult>> InsertRec(uint32_t page_id,
                                               const std::vector<Value>& keys,
                                               Bytes entry);
  /// Finds the leftmost leaf that can contain `keys` (strict-< descent).
  Result<uint32_t> DescendToLeaf(const std::vector<Value>& keys,
                                 bool leading_only);

  Result<std::vector<ParsedIndexEntry>> ReadEntries(const uint8_t* page);

  Pager* pager_;
  uint32_t object_id_;
  std::string name_;
  std::vector<int> key_columns_;
  uint32_t root_ = 0;
};

}  // namespace dbfa

#endif  // DBFA_ENGINE_BTREE_H_
