#include "engine/table_heap.h"

#include "common/strings.h"

namespace dbfa {

TableHeap::TableHeap(Pager* pager, uint32_t object_id, TableSchema schema,
                     double reuse_threshold)
    : pager_(pager),
      object_id_(object_id),
      schema_(std::move(schema)),
      reuse_threshold_(reuse_threshold) {}

Status TableHeap::EnsureInitialized() {
  StorageFile* f = pager_->file(object_id_);
  if (f == nullptr) {
    return Status::Internal(StrFormat("heap object %u missing", object_id_));
  }
  if (f->page_count() == 0) {
    DBFA_ASSIGN_OR_RETURN(auto page, pager_->NewPage(object_id_,
                                                     PageType::kData));
    first_page_ = page.first;
    chain_tail_ = page.first;
    insert_target_ = page.first;
    counts_[first_page_] = {};
  } else if (first_page_ == 0) {
    // Re-attach to an existing chain (page 1 is always the head).
    first_page_ = 1;
    chain_tail_ = 1;
    const PageFormatter& fmt = pager_->fmt();
    uint32_t page_id = first_page_;
    while (page_id != 0) {
      DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, page_id));
      PageCounts counts;
      ByteView view(h.data(), fmt.page_size());
      for (uint16_t s = 0; s < fmt.RecordCount(h.data()); ++s) {
        auto slot = fmt.GetSlot(h.data(), s);
        if (!slot.has_value()) continue;
        auto rec = fmt.ParseRecordAt(view, slot->offset);
        if (!rec.ok()) continue;
        if (fmt.IsDeleted(*rec, slot->tombstoned)) {
          ++counts.deleted;
        } else {
          ++counts.active;
        }
      }
      counts_[page_id] = counts;
      chain_tail_ = page_id;
      page_id = fmt.NextPage(h.data());
    }
    insert_target_ = chain_tail_;
  }
  return Status::Ok();
}

uint32_t TableHeap::FindReusablePage() const {
  if (reuse_threshold_ > 1.0) return 0;
  for (const auto& [page_id, counts] : counts_) {
    uint32_t total = counts.active + counts.deleted;
    if (total == 0 || counts.active != 0) continue;
    double fraction = static_cast<double>(counts.deleted) / total;
    if (fraction >= reuse_threshold_) return page_id;
  }
  return 0;
}

Status TableHeap::CompactPage(uint32_t page_id) {
  const PageFormatter& fmt = pager_->fmt();
  DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, page_id));
  uint8_t* page = h.data();
  ByteView view(page, fmt.page_size());
  // Collect surviving record bytes.
  std::vector<Bytes> survivors;
  for (uint16_t s = 0; s < fmt.RecordCount(page); ++s) {
    auto slot = fmt.GetSlot(page, s);
    if (!slot.has_value()) continue;
    auto rec = fmt.ParseRecordAt(view, slot->offset);
    if (!rec.ok()) continue;
    if (fmt.IsDeleted(*rec, slot->tombstoned)) continue;
    survivors.push_back(view.Slice(rec->offset, rec->length).ToBytes());
  }
  uint32_t next = fmt.NextPage(page);
  fmt.InitPage(page, page_id, object_id_, PageType::kData);
  fmt.SetNextPage(page, next);
  for (const Bytes& rec : survivors) {
    auto slot = fmt.InsertRecordBytes(page, rec);
    if (!slot.ok()) {
      return Status::Internal("compaction reinsert failed: " +
                              slot.status().ToString());
    }
  }
  pager_->CommitPage(&h);
  counts_[page_id] = {static_cast<uint32_t>(survivors.size()), 0};
  return Status::Ok();
}

Result<RowPointer> TableHeap::Insert(const Record& record, uint64_t row_id) {
  DBFA_RETURN_IF_ERROR(EnsureInitialized());
  const PageFormatter& fmt = pager_->fmt();
  DBFA_ASSIGN_OR_RETURN(Bytes encoded, fmt.EncodeRecord(schema_, record,
                                                        row_id));
  // 1. Try the current insertion target.
  {
    DBFA_ASSIGN_OR_RETURN(PageHandle h,
                          pager_->Fetch(object_id_, insert_target_));
    auto slot = fmt.InsertRecordBytes(h.data(), encoded);
    if (slot.ok()) {
      pager_->CommitPage(&h);
      ++counts_[insert_target_].active;
      return RowPointer{insert_target_, *slot};
    }
    if (slot.status().code() != StatusCode::kOutOfRange) {
      return slot.status();
    }
  }
  // 2. Reuse a fully-dead page if policy allows (destroys deleted-record
  //    evidence — the effect quantified in bench_evidence_lifetime). The
  //    reclaimed page becomes the insertion target so it fills up before
  //    the chain grows, like real space management.
  if (uint32_t reusable = FindReusablePage(); reusable != 0) {
    DBFA_RETURN_IF_ERROR(CompactPage(reusable));
    ++reused_pages_;
    DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, reusable));
    auto slot = fmt.InsertRecordBytes(h.data(), encoded);
    if (slot.ok()) {
      pager_->CommitPage(&h);
      insert_target_ = reusable;
      ++counts_[reusable].active;
      return RowPointer{reusable, *slot};
    }
  }
  // 3. Grow the chain.
  DBFA_ASSIGN_OR_RETURN(auto page, pager_->NewPage(object_id_,
                                                   PageType::kData));
  uint32_t new_page = page.first;
  {
    DBFA_ASSIGN_OR_RETURN(PageHandle tail, pager_->Fetch(object_id_,
                                                         chain_tail_));
    fmt.SetNextPage(tail.data(), new_page);
    pager_->CommitPage(&tail);
  }
  chain_tail_ = new_page;
  insert_target_ = new_page;
  counts_[new_page] = {};
  PageHandle& h = page.second;
  auto slot = fmt.InsertRecordBytes(h.data(), encoded);
  if (!slot.ok()) {
    return Status::Internal("record does not fit an empty page: " +
                            slot.status().ToString());
  }
  pager_->CommitPage(&h);
  ++counts_[new_page].active;
  return RowPointer{new_page, *slot};
}

Status TableHeap::Delete(RowPointer ptr) {
  const PageFormatter& fmt = pager_->fmt();
  DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, ptr.page_id));
  DBFA_RETURN_IF_ERROR(fmt.MarkDeleted(h.data(), ptr.slot));
  pager_->CommitPage(&h);
  PageCounts& counts = counts_[ptr.page_id];
  if (counts.active > 0) --counts.active;
  ++counts.deleted;
  return Status::Ok();
}

Result<std::optional<Record>> TableHeap::Fetch(RowPointer ptr) {
  const PageFormatter& fmt = pager_->fmt();
  StorageFile* f = pager_->file(object_id_);
  if (f == nullptr || !f->Contains(ptr.page_id)) {
    return std::optional<Record>(std::nullopt);
  }
  DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, ptr.page_id));
  auto slot = fmt.GetSlot(h.data(), ptr.slot);
  if (!slot.has_value()) return std::optional<Record>(std::nullopt);
  auto rec = fmt.ParseRecordAt(ByteView(h.data(), fmt.page_size()),
                               slot->offset);
  if (!rec.ok()) return std::optional<Record>(std::nullopt);
  if (fmt.IsDeleted(*rec, slot->tombstoned)) {
    return std::optional<Record>(std::nullopt);
  }
  DBFA_ASSIGN_OR_RETURN(Record decoded, fmt.DecodeTyped(*rec, schema_));
  return std::optional<Record>(std::move(decoded));
}

Status TableHeap::Scan(
    const std::function<Status(RowPointer, const Record&)>& fn) {
  return ScanRaw([&](RowPointer ptr, const Record& rec, bool deleted) {
    if (deleted) return Status::Ok();
    return fn(ptr, rec);
  });
}

Status TableHeap::ScanRaw(
    const std::function<Status(RowPointer, const Record&, bool deleted)>&
        fn) {
  DBFA_RETURN_IF_ERROR(EnsureInitialized());
  const PageFormatter& fmt = pager_->fmt();
  uint32_t page_id = first_page_;
  while (page_id != 0) {
    DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, page_id));
    ByteView view(h.data(), fmt.page_size());
    uint16_t count = fmt.RecordCount(h.data());
    for (uint16_t s = 0; s < count; ++s) {
      auto slot = fmt.GetSlot(h.data(), s);
      if (!slot.has_value()) continue;
      auto rec = fmt.ParseRecordAt(view, slot->offset);
      if (!rec.ok()) continue;
      auto decoded = fmt.DecodeTyped(*rec, schema_);
      if (!decoded.ok()) continue;
      bool deleted = fmt.IsDeleted(*rec, slot->tombstoned);
      DBFA_RETURN_IF_ERROR(fn(RowPointer{page_id, s}, *decoded, deleted));
    }
    page_id = fmt.NextPage(h.data());
  }
  return Status::Ok();
}

Status TableHeap::Vacuum() {
  DBFA_RETURN_IF_ERROR(EnsureInitialized());
  const PageFormatter& fmt = pager_->fmt();
  uint32_t page_id = first_page_;
  while (page_id != 0) {
    uint32_t next;
    {
      DBFA_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(object_id_, page_id));
      next = fmt.NextPage(h.data());
    }
    DBFA_RETURN_IF_ERROR(CompactPage(page_id));
    page_id = next;
  }
  return Status::Ok();
}

TableHeap::HeapStats TableHeap::Stats() const {
  HeapStats s;
  for (const auto& [page_id, counts] : counts_) {
    s.active_records += counts.active;
    s.deleted_records += counts.deleted;
  }
  s.pages = static_cast<uint32_t>(counts_.size());
  s.reused_pages = reused_pages_;
  return s;
}

}  // namespace dbfa
