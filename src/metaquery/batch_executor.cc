#include "metaquery/batch_executor.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "sql/bound_expr.h"

namespace dbfa::metaquery_internal {
namespace {

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return Value::Compare(a, b) == 0;
  }
};
struct RecordHasher {
  size_t operator()(const Record& r) const { return HashRecord(r); }
};
struct RecordEq {
  bool operator()(const Record& a, const Record& b) const {
    return CompareRecords(a, b) == 0;
  }
};

struct BatchGrid {
  size_t batch_rows = 0;
  size_t count = 0;
};

BatchGrid MakeBatches(size_t n, size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1024;
  return {batch_rows, n == 0 ? 0 : (n + batch_rows - 1) / batch_rows};
}

/// Runs body(batch_index) for every batch, on the pool when available.
/// Bodies must only touch their own batch's state. The first non-OK status
/// in batch order is returned, so error reporting is deterministic.
Status ForEachBatch(ThreadPool* pool, size_t nbatches,
                    const std::function<Status(size_t)>& body) {
  if (nbatches == 0) return Status::Ok();
  if (pool == nullptr || nbatches == 1) {
    for (size_t b = 0; b < nbatches; ++b) {
      DBFA_RETURN_IF_ERROR(body(b));
    }
    return Status::Ok();
  }
  std::vector<Status> statuses(nbatches);
  pool->ParallelFor(nbatches, [&](size_t b) { statuses[b] = body(b); });
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::Ok();
}

/// Moves per-batch outputs into one vector, preserving batch order.
std::vector<Record> ConcatBatches(std::vector<std::vector<Record>> batches) {
  size_t total = 0;
  for (const auto& b : batches) total += b.size();
  std::vector<Record> out;
  out.reserve(total);
  for (auto& b : batches) {
    for (Record& r : b) out.push_back(std::move(r));
  }
  return out;
}

Status MaterializeRelation(const Relation& rel, std::vector<Record>* out) {
  return rel.Scan([out](const Record& r) {
    out->push_back(r);
    return Status::Ok();
  });
}

}  // namespace

Result<QueryTable> ExecuteBatched(const sql::SelectStmt& stmt,
                                  const RelationResolver& lookup,
                                  size_t batch_rows, ThreadPool* pool) {
  // ---- Plan + execute FROM and JOINs ---------------------------------
  DBFA_ASSIGN_OR_RETURN(auto base, lookup(stmt.from.table));
  FrameSet frames;
  frames.Add(stmt.from.EffectiveName(), base->columns());
  std::vector<Record> rows;
  DBFA_RETURN_IF_ERROR(MaterializeRelation(*base, &rows));

  bool where_fused = false;
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const sql::JoinClause& join = stmt.joins[j];
    DBFA_ASSIGN_OR_RETURN(auto right, lookup(join.table.table));
    FrameSet right_frame;
    right_frame.Add(join.table.EffectiveName(), right->columns());
    // Decide which join column belongs to the already-joined side.
    std::string left_col = join.left_column;
    std::string right_col = join.right_column;
    if (!frames.Resolve(left_col).has_value()) std::swap(left_col, right_col);
    auto left_idx = frames.Resolve(left_col);
    auto right_idx = right_frame.Resolve(right_col);
    if (!left_idx.has_value() || !right_idx.has_value()) {
      return Status::InvalidArgument(
          StrFormat("cannot resolve join condition %s = %s",
                    join.left_column.c_str(), join.right_column.c_str()));
    }

    // Build: Value-keyed buckets of right-row indices, in scan order, so
    // equal keys probe by one hash + one equality check instead of
    // hash-then-recompare over full record copies.
    std::vector<Record> right_rows;
    DBFA_RETURN_IF_ERROR(MaterializeRelation(*right, &right_rows));
    std::unordered_map<Value, std::vector<uint32_t>, ValueHasher, ValueEq>
        table;
    table.reserve(right_rows.size());
    for (size_t i = 0; i < right_rows.size(); ++i) {
      const Record& r = right_rows[i];
      if (*right_idx >= r.size()) continue;
      const Value& key = r[*right_idx];
      if (!key.is_null()) table[key].push_back(static_cast<uint32_t>(i));
    }

    // For the last join, bind WHERE against the full combined frame and
    // evaluate it during the probe on a zero-copy left++right view — rows
    // the predicate rejects are never materialized.
    sql::BoundExprPtr fused_where;
    if (j + 1 == stmt.joins.size() && stmt.where != nullptr) {
      FrameSet combined = frames;
      combined.Add(join.table.EffectiveName(), right->columns());
      DBFA_ASSIGN_OR_RETURN(
          fused_where,
          sql::BindExpr(*stmt.where, [&combined](std::string_view name) {
            return combined.Resolve(name);
          }));
      where_fused = true;
    }

    // Probe: parallel over left batches; per-batch outputs concatenate in
    // batch order, so the joined row order matches the serial reference
    // (left order, then right scan order within a key).
    BatchGrid grid = MakeBatches(rows.size(), batch_rows);
    std::vector<std::vector<Record>> joined(grid.count);
    DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
      size_t lo = b * grid.batch_rows;
      size_t hi = std::min(rows.size(), lo + grid.batch_rows);
      std::vector<Record>& out = joined[b];
      for (size_t r = lo; r < hi; ++r) {
        const Record& left_row = rows[r];
        if (*left_idx >= left_row.size()) continue;
        const Value& key = left_row[*left_idx];
        if (key.is_null()) continue;
        auto it = table.find(key);
        if (it == table.end()) continue;
        for (uint32_t ri : it->second) {
          const Record& right_row = right_rows[ri];
          if (fused_where != nullptr) {
            DBFA_ASSIGN_OR_RETURN(
                bool pass,
                sql::EvalBoundPredicate(
                    *fused_where, sql::JoinRowView{&left_row, &right_row}));
            if (!pass) continue;
          }
          Record combined;
          combined.reserve(left_row.size() + right_row.size());
          combined.insert(combined.end(), left_row.begin(), left_row.end());
          combined.insert(combined.end(), right_row.begin(), right_row.end());
          out.push_back(std::move(combined));
        }
      }
      return Status::Ok();
    }));
    rows = ConcatBatches(std::move(joined));
    frames.Add(join.table.EffectiveName(), right->columns());
  }

  sql::ColumnResolver frame_resolver =
      [&frames](std::string_view name) { return frames.Resolve(name); };

  // ---- WHERE: bind once, filter batches in parallel ------------------
  // (Skipped when the predicate already ran fused into the final join.)
  if (stmt.where != nullptr && !where_fused) {
    DBFA_ASSIGN_OR_RETURN(sql::BoundExprPtr where,
                          sql::BindExpr(*stmt.where, frame_resolver));
    BatchGrid grid = MakeBatches(rows.size(), batch_rows);
    std::vector<std::vector<Record>> kept(grid.count);
    DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
      size_t lo = b * grid.batch_rows;
      size_t hi = std::min(rows.size(), lo + grid.batch_rows);
      std::vector<Record>& out = kept[b];
      for (size_t r = lo; r < hi; ++r) {
        DBFA_ASSIGN_OR_RETURN(bool pass,
                              sql::EvalBoundPredicate(*where, rows[r]));
        if (pass) out.push_back(std::move(rows[r]));
      }
      return Status::Ok();
    }));
    rows = ConcatBatches(std::move(kept));
  }

  QueryTable out;
  // ---- Aggregation path ---------------------------------------------
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star && item.agg == sql::AggFunc::kNone) {
        return Status::InvalidArgument("SELECT * with aggregates");
      }
      out.columns.push_back(item.OutputName());
    }
    // Bind GROUP BY keys and item expressions once.
    std::vector<size_t> key_idx;
    key_idx.reserve(stmt.group_by.size());
    for (const std::string& col : stmt.group_by) {
      auto idx = frames.Resolve(col);
      if (!idx.has_value()) {
        return Status::InvalidArgument("GROUP BY unknown column: " + col);
      }
      key_idx.push_back(*idx);
    }
    std::vector<sql::BoundExprPtr> bound_items(stmt.items.size());
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (stmt.items[i].expr != nullptr) {
        DBFA_ASSIGN_OR_RETURN(bound_items[i],
                              sql::BindExpr(*stmt.items[i].expr,
                                            frame_resolver));
      }
    }

    // Per-batch partial aggregation into unordered maps with a proper
    // record hasher, merged in batch order (so group representatives and
    // integer sums match sequential accumulation exactly).
    struct Partial {
      Record rep;  // first row of the group within / across batches
      std::vector<Accumulator> accs;
    };
    using GroupMap = std::unordered_map<Record, Partial, RecordHasher,
                                        RecordEq>;
    BatchGrid grid = MakeBatches(rows.size(), batch_rows);
    std::vector<GroupMap> partials(grid.count);
    DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
      size_t lo = b * grid.batch_rows;
      size_t hi = std::min(rows.size(), lo + grid.batch_rows);
      GroupMap& local = partials[b];
      for (size_t r = lo; r < hi; ++r) {
        const Record& row = rows[r];
        Record key;
        key.reserve(key_idx.size());
        for (size_t k = 0; k < key_idx.size(); ++k) {
          if (key_idx[k] >= row.size()) {
            return Status::InvalidArgument("GROUP BY unknown column: " +
                                           stmt.group_by[k]);
          }
          key.push_back(row[key_idx[k]]);
        }
        auto [it, inserted] = local.try_emplace(std::move(key));
        Partial& group = it->second;
        if (inserted) {
          group.rep = row;
          group.accs.resize(stmt.items.size());
        }
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          const sql::SelectItem& item = stmt.items[i];
          if (item.agg == sql::AggFunc::kNone) continue;
          if (item.star) {
            group.accs[i].Add(Value::Int(1));  // COUNT(*)
            continue;
          }
          DBFA_ASSIGN_OR_RETURN(Value v, sql::EvalBound(*bound_items[i], row));
          group.accs[i].Add(v);
        }
      }
      return Status::Ok();
    }));

    GroupMap groups;
    for (GroupMap& partial : partials) {
      for (auto& [key, part] : partial) {
        auto [it, inserted] = groups.try_emplace(key);
        if (inserted) {
          it->second = std::move(part);
        } else {
          for (size_t i = 0; i < it->second.accs.size(); ++i) {
            it->second.accs[i].Merge(part.accs[i]);
          }
        }
      }
    }

    if (groups.empty() && stmt.group_by.empty()) {
      // Aggregates over an empty input produce one row.
      Record row;
      Accumulator empty;
      for (const sql::SelectItem& item : stmt.items) {
        if (item.agg == sql::AggFunc::kNone) {
          return Status::InvalidArgument(
              "non-aggregate item over empty ungrouped input");
        }
        row.push_back(empty.Final(item.agg));
      }
      out.rows.push_back(std::move(row));
    }

    // Emit groups in key order — the order the reference executor's
    // ordered map produces.
    std::vector<std::pair<const Record*, Partial*>> ordered;
    ordered.reserve(groups.size());
    for (auto& [key, part] : groups) ordered.push_back({&key, &part});
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                return CompareRecords(*a.first, *b.first) < 0;
              });
    for (auto& [key, part] : ordered) {
      Record row;
      row.reserve(stmt.items.size());
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const sql::SelectItem& item = stmt.items[i];
        if (item.agg != sql::AggFunc::kNone) {
          row.push_back(part->accs[i].Final(item.agg));
        } else {
          // Non-aggregate items take their value from the group's
          // representative row (valid for grouped columns).
          DBFA_ASSIGN_OR_RETURN(Value v,
                                sql::EvalBound(*bound_items[i], part->rep));
          row.push_back(std::move(v));
        }
      }
      out.rows.push_back(std::move(row));
    }
    DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out.columns, &out.rows));
    return out;
  }

  // ---- Plain projection: bind once, project batches in parallel ------
  std::vector<sql::BoundExprPtr> exprs;  // null entry = '*' expansion
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (const FrameSet::Frame& f : frames.frames) {
        for (const std::string& c : f.cols) out.columns.push_back(c);
      }
      exprs.push_back(nullptr);
    } else {
      out.columns.push_back(item.OutputName());
      DBFA_ASSIGN_OR_RETURN(sql::BoundExprPtr bound,
                            sql::BindExpr(*item.expr, frame_resolver));
      exprs.push_back(std::move(bound));
    }
  }
  BatchGrid grid = MakeBatches(rows.size(), batch_rows);
  std::vector<std::vector<Record>> projected(grid.count);
  DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
    size_t lo = b * grid.batch_rows;
    size_t hi = std::min(rows.size(), lo + grid.batch_rows);
    std::vector<Record>& batch_out = projected[b];
    batch_out.reserve(hi - lo);
    for (size_t r = lo; r < hi; ++r) {
      const Record& row = rows[r];
      Record p;
      for (const sql::BoundExprPtr& e : exprs) {
        if (e == nullptr) {
          p.insert(p.end(), row.begin(), row.end());
        } else {
          DBFA_ASSIGN_OR_RETURN(Value v, sql::EvalBound(*e, row));
          p.push_back(std::move(v));
        }
      }
      batch_out.push_back(std::move(p));
    }
    return Status::Ok();
  }));
  out.rows = ConcatBatches(std::move(projected));
  DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out.columns, &out.rows));
  return out;
}

}  // namespace dbfa::metaquery_internal
