#include "metaquery/batch_executor.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "metaquery/column_batch.h"
#include "metaquery/exec_common.h"
#include "sql/bound_expr.h"

namespace dbfa::metaquery_internal {
namespace {

Status MaterializeRelation(const Relation& rel, std::vector<Record>* out) {
  return rel.Scan([out](const Record& r) {
    out->push_back(r);
    return Status::Ok();
  });
}

}  // namespace

Result<QueryTable> ExecuteBatched(const sql::SelectStmt& stmt,
                                  const RelationResolver& lookup,
                                  size_t batch_rows, ThreadPool* pool,
                                  bool columnar_filter,
                                  BatchExecStats* stats) {
  // ---- Plan + execute FROM and JOINs ---------------------------------
  DBFA_ASSIGN_OR_RETURN(auto base, lookup(stmt.from.table));
  FrameSet frames;
  frames.Add(stmt.from.EffectiveName(), base->columns());
  std::vector<Record> rows;
  DBFA_RETURN_IF_ERROR(MaterializeRelation(*base, &rows));

  bool where_fused = false;
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const sql::JoinClause& join = stmt.joins[j];
    DBFA_ASSIGN_OR_RETURN(auto right, lookup(join.table.table));
    FrameSet right_frame;
    right_frame.Add(join.table.EffectiveName(), right->columns());
    size_t left_idx = 0;
    size_t right_idx = 0;
    DBFA_RETURN_IF_ERROR(
        ResolveJoinColumns(frames, right_frame, join, &left_idx, &right_idx));

    std::vector<Record> right_rows;
    DBFA_RETURN_IF_ERROR(MaterializeRelation(*right, &right_rows));
    JoinTable table = BuildJoinTable(right_rows, right_idx);

    // For the last join, bind WHERE against the full combined frame and
    // evaluate it during the probe on a zero-copy left++right view — rows
    // the predicate rejects are never materialized.
    sql::BoundExprPtr fused_where;
    if (j + 1 == stmt.joins.size() && stmt.where != nullptr) {
      FrameSet combined = frames;
      combined.Add(join.table.EffectiveName(), right->columns());
      DBFA_ASSIGN_OR_RETURN(
          fused_where,
          sql::BindExpr(*stmt.where, [&combined](std::string_view name) {
            return combined.Resolve(name);
          }));
      where_fused = true;
    }

    // Probe: parallel over left batches; per-batch outputs concatenate in
    // batch order, so the joined row order matches the serial reference
    // (left order, then right scan order within a key).
    BatchGrid grid = MakeBatches(rows.size(), batch_rows);
    std::vector<std::vector<Record>> joined(grid.count);
    DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
      size_t lo = b * grid.batch_rows;
      size_t hi = std::min(rows.size(), lo + grid.batch_rows);
      std::vector<Record>& out = joined[b];
      for (size_t r = lo; r < hi; ++r) {
        DBFA_RETURN_IF_ERROR(ProbeJoinRow(
            rows[r], left_idx, table, right_rows, fused_where.get(),
            [&out](Record combined) {
              out.push_back(std::move(combined));
              return Status::Ok();
            }));
      }
      return Status::Ok();
    }));
    rows = ConcatBatches(std::move(joined));
    frames.Add(join.table.EffectiveName(), right->columns());
  }

  // ---- WHERE: bind once, filter batches in parallel ------------------
  // (Skipped when the predicate already ran fused into the final join.)
  if (stmt.where != nullptr && !where_fused) {
    DBFA_ASSIGN_OR_RETURN(
        sql::BoundExprPtr where,
        sql::BindExpr(*stmt.where, [&frames](std::string_view name) {
          return frames.Resolve(name);
        }));
    // Decompose the predicate into columnar terms once; per batch the
    // columnar kernels run when the batch's shape qualifies, otherwise the
    // row-at-a-time evaluator below produces identical results (including
    // its errors — see TryColumnarFilter). Engagement is tracked per batch
    // without atomics and summed after the barrier, so the counters are
    // deterministic at every thread count.
    std::optional<ColumnarPredicate> cpred;
    if (columnar_filter) cpred = AnalyzeColumnarPredicate(*where);
    BatchGrid grid = MakeBatches(rows.size(), batch_rows);
    std::vector<std::vector<Record>> kept(grid.count);
    std::vector<uint8_t> batch_columnar(grid.count, 0);
    DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
      size_t lo = b * grid.batch_rows;
      size_t hi = std::min(rows.size(), lo + grid.batch_rows);
      std::vector<Record>& out = kept[b];
      if (cpred.has_value()) {
        std::vector<uint8_t> match;
        if (TryColumnarFilter(*cpred, rows, lo, hi, &match)) {
          batch_columnar[b] = 1;
          // Gather in row order: output order matches the row path exactly.
          for (size_t i = 0; i < match.size(); ++i) {
            if (match[i] != 0) out.push_back(std::move(rows[lo + i]));
          }
          return Status::Ok();
        }
      }
      for (size_t r = lo; r < hi; ++r) {
        DBFA_ASSIGN_OR_RETURN(bool pass,
                              sql::EvalBoundPredicate(*where, rows[r]));
        if (pass) out.push_back(std::move(rows[r]));
      }
      return Status::Ok();
    }));
    rows = ConcatBatches(std::move(kept));
    if (stats != nullptr) {
      for (uint8_t c : batch_columnar) {
        if (c != 0) {
          ++stats->columnar_batches;
        } else {
          ++stats->row_batches;
        }
      }
    }
  }

  QueryTable out;
  // ---- Aggregation path ---------------------------------------------
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    DBFA_ASSIGN_OR_RETURN(AggPlan plan,
                          PlanAggregation(stmt, frames, &out.columns));
    DBFA_RETURN_IF_ERROR(
        AggregateRowsInMemory(stmt, plan, rows, batch_rows, pool, &out.rows));
    DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out.columns, &out.rows));
    return out;
  }

  // ---- Plain projection: bind once, project batches in parallel ------
  DBFA_ASSIGN_OR_RETURN(ProjectionPlan plan,
                        PlanProjection(stmt, frames, &out.columns));
  BatchGrid grid = MakeBatches(rows.size(), batch_rows);
  std::vector<std::vector<Record>> projected(grid.count);
  DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
    size_t lo = b * grid.batch_rows;
    size_t hi = std::min(rows.size(), lo + grid.batch_rows);
    std::vector<Record>& batch_out = projected[b];
    batch_out.reserve(hi - lo);
    for (size_t r = lo; r < hi; ++r) {
      Record p;
      DBFA_RETURN_IF_ERROR(ProjectRow(plan, rows[r], &p));
      batch_out.push_back(std::move(p));
    }
    return Status::Ok();
  }));
  out.rows = ConcatBatches(std::move(projected));
  DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out.columns, &out.rows));
  return out;
}

}  // namespace dbfa::metaquery_internal
