// Columnar batch representation + the columnar scan→filter fast path.
//
// The batched executor materializes rows as vectors of Values; evaluating a
// WHERE predicate then walks a variant per cell. For the hot comparison
// shapes (column vs literal, column vs column, IS NULL, and ANDs of those)
// this module instead transposes each batch into per-column flat vectors —
// int64_t / double / StringRef plus a null bitmap — and evaluates the
// predicate column-at-a-time in tight loops: branch-light numeric
// comparisons, id-equality and cached-hash gates for interned strings.
// Batches whose shape doesn't fit (mixed-type columns, ragged rows,
// unsupported expression kinds) fall back to the row-at-a-time evaluator,
// so results are bit-identical to the reference executor in all cases (the
// differential suite runs a dedicated columnar leg).
#ifndef DBFA_METAQUERY_COLUMN_BATCH_H_
#define DBFA_METAQUERY_COLUMN_BATCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sql/bound_expr.h"
#include "storage/value.h"

namespace dbfa::metaquery_internal {

/// A batch of rows transposed into per-column flat vectors.
class ColumnBatch {
 public:
  enum class ColType : uint8_t {
    kNullOnly,  // every cell NULL (no payload vector)
    kInt,       // non-null cells all kInt        -> ints
    kDouble,    // non-null cells all kDouble     -> doubles
    kString,    // non-null cells all kString     -> strings
    kValue,     // mixed types, or not materialized: Value escape hatch
  };

  struct Column {
    ColType type = ColType::kValue;
    bool built = false;
    /// Bit r set = row r IS NULL. Sized for kNullOnly/kInt/kDouble/kString.
    std::vector<uint64_t> nulls;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    /// For kString: interned cells keep their pool ref (pool_id != 0,
    /// cached content hash); owned cells get a borrowed view into the
    /// source row's string (pool_id == 0, hash unused). Either way the
    /// source rows must outlive the batch.
    std::vector<StringRef> strings;
    std::vector<Value> values;  // kValue only

    bool IsNull(size_t r) const {
      return ((nulls[r >> 6] >> (r & 63)) & 1) != 0;
    }
  };

  /// Transposes rows [begin, end), all of which must share the same width
  /// (callers check; ragged batches take the row path). Borrows string
  /// bytes from `rows` — the batch must not outlive them.
  static ColumnBatch FromRecords(const std::vector<Record>& rows,
                                 size_t begin, size_t end);

  /// Like FromRecords but materializes only the named columns (the ones a
  /// predicate references); the rest stay unbuilt kValue placeholders.
  static ColumnBatch FromRecordsColumns(const std::vector<Record>& rows,
                                        size_t begin, size_t end,
                                        const std::vector<size_t>& wanted);

  /// Appends this batch's rows to *out. Requires every column built (use
  /// FromRecords). Round-trips exactly — NULL/int/double/interned-string
  /// cells reproduce the identical Value; owned strings are re-owned with
  /// identical content.
  void ToRecords(std::vector<Record>* out) const;

  size_t rows() const { return rows_; }
  size_t width() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }

 private:
  /// `want_values` controls whether mixed-type (kValue) columns copy their
  /// cells: the full FromRecords build needs them for ToRecords; the
  /// predicate-subset build skips the copies (comparisons on kValue columns
  /// fall back to the row path, and IS NULL only reads the null bitmap).
  static Column BuildColumn(const std::vector<Record>& rows, size_t begin,
                            size_t end, size_t c, bool want_values);

  size_t rows_ = 0;
  std::vector<Column> cols_;
};

/// One conjunct of a columnar-executable predicate.
struct ColumnarTerm {
  enum class Kind {
    kCompareColLit,  // column <op> non-null literal
    kCompareColCol,  // column <op> column
    kIsNull,         // column IS [NOT] NULL
    kNever,          // statically false (e.g. comparison with NULL literal)
  };
  Kind kind = Kind::kNever;
  sql::CompareOp op = sql::CompareOp::kEq;
  size_t col_a = 0;
  size_t col_b = 0;   // kCompareColCol
  Value literal;      // kCompareColLit
  bool negated = false;  // kIsNull: true = IS NOT NULL
};

/// A bound predicate decomposed into ANDed columnar terms.
struct ColumnarPredicate {
  std::vector<ColumnarTerm> terms;
  /// Referenced column indices, sorted + deduplicated.
  std::vector<size_t> columns;
  /// Rows narrower than this cannot be evaluated (the row path reproduces
  /// the binder's width error exactly, so such batches fall back).
  size_t min_width = 0;
};

/// Decomposes `e` into columnar terms. Returns nullopt for any shape the
/// columnar kernel does not reproduce exactly (OR, NOT, LIKE, arithmetic,
/// functions, nested comparisons) — those run the row path.
std::optional<ColumnarPredicate> AnalyzeColumnarPredicate(
    const sql::BoundExpr& e);

/// Evaluates `pred` over rows [lo, hi) column-at-a-time. On success fills
/// match (size hi-lo, 1 = row passes) and returns true. Returns false —
/// with *match untouched — when the batch's shape disqualifies it (ragged
/// widths, mixed-type referenced column), in which case the caller must run
/// the row-at-a-time evaluator for the whole batch.
bool TryColumnarFilter(const ColumnarPredicate& pred,
                       const std::vector<Record>& rows, size_t lo, size_t hi,
                       std::vector<uint8_t>* match);

}  // namespace dbfa::metaquery_internal

#endif  // DBFA_METAQUERY_COLUMN_BATCH_H_
