#include "metaquery/spill_executor.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "sql/bound_expr.h"
#include "sql/row_codec.h"

namespace dbfa::metaquery_internal {
namespace {

// Recursion cap for grace-join / aggregation re-partitioning. Six levels at
// minimum fanout 2 split any skewed input 64 ways; beyond that the engine
// proceeds over budget rather than thrash (docs/spilling.md).
constexpr int kMaxDepth = 6;
// Scatter fan-out for a join whose right side outgrows the budget. Fixed —
// not sized from the input — because the right side streams into the
// partitions and its total size is unknown when the first byte spills. 32
// keeps partitions under budget for inputs up to ~32x the budget; larger
// partitions recurse with a size-derived fan-out.
constexpr size_t kJoinScatterFanout = 32;
// Maximum runs merged per external-sort pass; bounds merge-time buffers to
// kMergeFanIn block buffers.
constexpr size_t kMergeFanIn = 16;

// Everything an operator needs to spill: where to put files and how much
// memory it may hold. `block_target` is the payload size spill blocks aim
// for — a function of the budget alone, so spill layout is deterministic.
struct SpillContext {
  SpillManager* manager;
  size_t budget;
  size_t block_target;
};

size_t BlockTarget(size_t budget) {
  return std::clamp<size_t>(budget / 4, 1024, 65536);
}

// Number of partitions for `bytes` of input under `budget`.
size_t Fanout(size_t bytes, size_t budget) {
  return std::clamp<size_t>(bytes / std::max<size_t>(budget, 1) + 1, 2, 32);
}

// splitmix64 finalizer over (hash, seed): re-partitioning a skewed
// partition with seed+1 redistributes keys that collided at this level.
uint64_t SeededMix(uint64_t h, uint64_t seed) {
  uint64_t x = h + (seed + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t PartOf(uint64_t hash, uint64_t seed, size_t fanout) {
  return static_cast<size_t>(SeededMix(hash, seed) % fanout);
}

// Earliest-row error across partitions. The batched engine reports the
// error of the first failing row in batch order, which is the globally
// smallest failing row index; partitioned operators reproduce that by
// recording each partition's first error and keeping the smallest seq.
struct SeqError {
  bool has = false;
  uint64_t seq = 0;
  Status status;

  void Note(uint64_t s, Status st) {
    if (!has || s < seq) {
      has = true;
      seq = s;
      status = std::move(st);
    }
  }
};

// Earliest-group error for aggregation emit, ordered by group key — the
// order the batched engine emits groups in.
struct KeyError {
  bool has = false;
  Record key;
  Status status;

  void Note(const Record& k, Status st) {
    if (!has || CompareRecords(k, key) < 0) {
      has = true;
      key = k;
      status = std::move(st);
    }
  }
};

// ---- RowSource: replayable seq-ordered row streams -----------------------
//
// Operators hand rows downstream as a *source*: invoking one streams every
// row, in order, into the callback together with its 0-based sequence
// number. Sources are replayable — each invocation restarts from the first
// row — which lets a consumer take an optimistic single-pass strategy and
// fall back to a second, spill-partitioned pass only when the budget forces
// it. Replays are deterministic: they re-scan a relation or re-read
// finished spill runs, so both passes see identical rows and seqs.

using RowFn = std::function<Status(uint64_t, const Record&)>;
using RowSource = std::function<Status(const RowFn&)>;

// ---- Runs: serialized row sequences in spill files -----------------------
//
// A run is a sequence of entries packed into checksummed blocks. Entries
// never split across blocks; the record encoding is self-delimiting, so a
// block decodes by repeated DecodeRecord until exhausted. A tagged entry
// carries a u64 LE sequence number before the record.

class RunWriter {
 public:
  static Result<RunWriter> Create(SpillContext* ctx) {
    DBFA_ASSIGN_OR_RETURN(SpillFile file, ctx->manager->CreateFile());
    return RunWriter(ctx, std::move(file));
  }

  Status AddRecord(const Record& r) {
    sql::AppendRecord(r, &pending_);
    ++entries_;
    return MaybeFlush();
  }

  Status AddTagged(uint64_t seq, const Record& r) {
    uint8_t buf[8];
    WriteU64(buf, seq, /*big_endian=*/false);
    pending_.append(AsStringView(ByteView(buf, sizeof(buf))));
    sql::AppendRecord(r, &pending_);
    ++entries_;
    return MaybeFlush();
  }

  /// Writes the pending partial block; idempotent.
  Status Flush() {
    if (pending_.empty()) return Status::Ok();
    Status s = file_.AppendBlock(pending_);
    pending_.clear();
    return s;
  }

  const SpillFile& file() const { return file_; }
  size_t entries() const { return entries_; }

 private:
  RunWriter(SpillContext* ctx, SpillFile file)
      : ctx_(ctx), file_(std::move(file)) {}

  Status MaybeFlush() {
    if (pending_.size() >= ctx_->block_target) return Flush();
    return Status::Ok();
  }

  SpillContext* ctx_;
  SpillFile file_;
  std::string pending_;
  size_t entries_ = 0;
};

class RunReader {
 public:
  static Result<RunReader> Open(const SpillFile& file, bool tagged) {
    DBFA_ASSIGN_OR_RETURN(SpillFile::Reader reader, file.OpenReader());
    return RunReader(std::move(reader), tagged);
  }

  /// Reads the next entry. Returns false at end of run. *seq is written
  /// only for tagged runs.
  Result<bool> Next(uint64_t* seq, Record* row) {
    if (pos_ == block_.size()) {
      DBFA_ASSIGN_OR_RETURN(bool more, reader_.NextBlock(&block_));
      if (!more) return false;
      pos_ = 0;
    }
    if (tagged_) {
      if (block_.size() - pos_ < 8) {
        return Status::Corruption("spill run: truncated sequence tag");
      }
      *seq = ReadU64(AsByteView(block_).data() + pos_, /*big_endian=*/false);
      pos_ += 8;
    }
    DBFA_RETURN_IF_ERROR(sql::DecodeRecord(block_, &pos_, row));
    return true;
  }

 private:
  RunReader(SpillFile::Reader reader, bool tagged)
      : reader_(std::move(reader)), tagged_(tagged) {}

  SpillFile::Reader reader_;
  bool tagged_;
  std::string block_;
  size_t pos_ = 0;
};

// ---- RowBuffer: a budget-governed ordered row set ------------------------
//
// Rows stay in memory until their estimated footprint exceeds the budget,
// then the whole buffer moves to a spill run and later rows append to it.
// Iteration replays insertion order and hands out each row's sequence
// number (its 0-based insertion index) — the seq space every downstream
// determinism argument is built on.

class RowBuffer {
 public:
  explicit RowBuffer(SpillContext* ctx) : ctx_(ctx) {}

  Status Add(Record row) {
    bytes_ += sql::EstimateRecordMemoryBytes(row);
    ++rows_;
    if (run_.has_value()) return run_->AddRecord(row);
    mem_.push_back(std::move(row));
    if (bytes_ > ctx_->budget) {
      DBFA_ASSIGN_OR_RETURN(RunWriter w, RunWriter::Create(ctx_));
      run_.emplace(std::move(w));
      for (const Record& r : mem_) {
        DBFA_RETURN_IF_ERROR(run_->AddRecord(r));
      }
      mem_.clear();
      mem_.shrink_to_fit();
    }
    return Status::Ok();
  }

  /// Must be called after the last Add and before ForEach.
  Status Finish() {
    if (run_.has_value()) return run_->Flush();
    return Status::Ok();
  }

  size_t row_count() const { return rows_; }
  /// Estimated in-memory footprint of the full row set (spilled or not) —
  /// the deterministic size partitioning decisions are based on.
  size_t byte_size() const { return bytes_; }
  bool spilled() const { return run_.has_value(); }

  /// Direct access for in-memory fast paths. Valid only when !spilled().
  const std::vector<Record>& mem() const { return mem_; }

  Status ForEach(
      const std::function<Status(uint64_t, const Record&)>& fn) const {
    if (!run_.has_value()) {
      for (size_t i = 0; i < mem_.size(); ++i) {
        DBFA_RETURN_IF_ERROR(fn(i, mem_[i]));
      }
      return Status::Ok();
    }
    DBFA_ASSIGN_OR_RETURN(RunReader reader,
                          RunReader::Open(run_->file(), /*tagged=*/false));
    Record row;
    uint64_t seq = 0;
    while (true) {
      uint64_t unused = 0;
      DBFA_ASSIGN_OR_RETURN(bool more, reader.Next(&unused, &row));
      if (!more) return Status::Ok();
      DBFA_RETURN_IF_ERROR(fn(seq++, row));
    }
  }

 private:
  SpillContext* ctx_;
  std::vector<Record> mem_;
  std::optional<RunWriter> run_;
  size_t rows_ = 0;
  size_t bytes_ = 0;
};

// ---- TaggedBuffer: (seq, row) pairs with budget-governed spilling --------
//
// Join partitions emit their output as (left seq, combined row) pairs;
// merging partition streams by seq restores the exact in-memory probe
// order. Stored order is append order, which every producer keeps
// seq-ascending.

class TaggedBuffer {
 public:
  explicit TaggedBuffer(SpillContext* ctx) : ctx_(ctx) {}

  Status Add(uint64_t seq, Record row) {
    bytes_ += sql::EstimateRecordMemoryBytes(row) + sizeof(uint64_t);
    if (run_.has_value()) return run_->AddTagged(seq, row);
    mem_.emplace_back(seq, std::move(row));
    if (bytes_ > ctx_->budget) {
      DBFA_ASSIGN_OR_RETURN(RunWriter w, RunWriter::Create(ctx_));
      run_.emplace(std::move(w));
      for (const auto& [s, r] : mem_) {
        DBFA_RETURN_IF_ERROR(run_->AddTagged(s, r));
      }
      mem_.clear();
      mem_.shrink_to_fit();
    }
    return Status::Ok();
  }

  Status Finish() {
    if (run_.has_value()) return run_->Flush();
    return Status::Ok();
  }

  /// Streaming cursor in append order; the buffer must outlive it. *view
  /// points at the in-memory row (zero copy) or at *scratch after a spill
  /// read; it is valid until the next call.
  class Cursor {
   public:
    Result<bool> Next(uint64_t* seq, Record* scratch, const Record** view) {
      if (reader_.has_value()) {
        DBFA_ASSIGN_OR_RETURN(bool more, reader_->Next(seq, scratch));
        *view = scratch;
        return more;
      }
      if (i_ >= mem_->size()) return false;
      *seq = (*mem_)[i_].first;
      *view = &(*mem_)[i_].second;
      ++i_;
      return true;
    }

   private:
    friend class TaggedBuffer;
    const std::vector<std::pair<uint64_t, Record>>* mem_ = nullptr;
    size_t i_ = 0;
    std::optional<RunReader> reader_;
  };

  Result<Cursor> OpenCursor() const {
    Cursor c;
    if (run_.has_value()) {
      DBFA_ASSIGN_OR_RETURN(RunReader r,
                            RunReader::Open(run_->file(), /*tagged=*/true));
      c.reader_.emplace(std::move(r));
    } else {
      c.mem_ = &mem_;
    }
    return c;
  }

 private:
  SpillContext* ctx_;
  std::vector<std::pair<uint64_t, Record>> mem_;
  std::optional<RunWriter> run_;
  size_t bytes_ = 0;
};

/// Merges seq-ascending tagged streams by seq. Seqs are unique across
/// streams (each input row went to exactly one partition), so the heap
/// order is deterministic without a tie-break. Rows are handed out as
/// views into the buffers (or a per-head scratch for spilled parts).
Status MergeTaggedBySeq(
    const std::vector<TaggedBuffer>& parts,
    const std::function<Status(uint64_t, const Record&)>& emit) {
  struct Head {
    TaggedBuffer::Cursor cursor;
    uint64_t seq = 0;
    Record scratch;
    const Record* view = nullptr;
  };
  std::vector<Head> heads(parts.size());
  // Min-heap of (seq, head index); unique seqs make pop order total.
  std::vector<std::pair<uint64_t, size_t>> heap;
  heap.reserve(parts.size());
  auto later = [](const std::pair<uint64_t, size_t>& a,
                  const std::pair<uint64_t, size_t>& b) {
    return a.first > b.first;
  };
  for (size_t i = 0; i < parts.size(); ++i) {
    Head& h = heads[i];
    DBFA_ASSIGN_OR_RETURN(h.cursor, parts[i].OpenCursor());
    DBFA_ASSIGN_OR_RETURN(bool live, h.cursor.Next(&h.seq, &h.scratch, &h.view));
    if (live) heap.push_back({h.seq, i});
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    size_t i = heap.back().second;
    heap.pop_back();
    Head& h = heads[i];
    DBFA_RETURN_IF_ERROR(emit(h.seq, *h.view));
    DBFA_ASSIGN_OR_RETURN(bool live, h.cursor.Next(&h.seq, &h.scratch, &h.view));
    if (live) {
      heap.push_back({h.seq, i});
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return Status::Ok();
}

// ---- Grace hash join -----------------------------------------------------

struct JoinPartFiles {
  std::optional<RunWriter> left;   // tagged with the left row's seq
  std::optional<RunWriter> right;  // untagged; relative scan order suffices
  size_t right_bytes = 0;
};

Result<std::vector<JoinPartFiles>> MakeJoinParts(SpillContext* ctx,
                                                 size_t fanout) {
  std::vector<JoinPartFiles> parts(fanout);
  for (JoinPartFiles& p : parts) {
    DBFA_ASSIGN_OR_RETURN(RunWriter lw, RunWriter::Create(ctx));
    DBFA_ASSIGN_OR_RETURN(RunWriter rw, RunWriter::Create(ctx));
    p.left.emplace(std::move(lw));
    p.right.emplace(std::move(rw));
  }
  return parts;
}

Status FlushJoinParts(std::vector<JoinPartFiles>* parts) {
  for (JoinPartFiles& p : *parts) {
    DBFA_RETURN_IF_ERROR(p.left->Flush());
    DBFA_RETURN_IF_ERROR(p.right->Flush());
  }
  return Status::Ok();
}

/// Joins one partition's (tagged left, right) run pair, appending
/// (seq, combined row) pairs to *out in seq-ascending order. When the right
/// side still exceeds the budget — and re-partitioning can shrink it —
/// recurses with the next hash seed; otherwise builds the table in memory
/// regardless (the documented over-budget escape hatch). Predicate
/// evaluation errors are recorded in *err with their left seq instead of
/// failing the partition, so the caller can select the globally first one.
Status JoinPartition(SpillContext* ctx, const SpillFile& left_file,
                     const SpillFile& right_file, size_t right_bytes,
                     size_t parent_right_bytes, size_t left_idx,
                     size_t right_idx, const sql::BoundExpr* fused_where,
                     uint64_t seed, int depth, TaggedBuffer* out,
                     SeqError* err) {
  if (right_bytes > ctx->budget && depth < kMaxDepth &&
      right_bytes < parent_right_bytes) {
    size_t fanout = Fanout(right_bytes, ctx->budget);
    DBFA_ASSIGN_OR_RETURN(std::vector<JoinPartFiles> parts,
                          MakeJoinParts(ctx, fanout));
    {
      DBFA_ASSIGN_OR_RETURN(RunReader r,
                            RunReader::Open(right_file, /*tagged=*/false));
      Record row;
      uint64_t unused = 0;
      while (true) {
        DBFA_ASSIGN_OR_RETURN(bool more, r.Next(&unused, &row));
        if (!more) break;
        size_t p = PartOf(row[right_idx].Hash(), seed, fanout);
        parts[p].right_bytes += sql::EstimateRecordMemoryBytes(row);
        DBFA_RETURN_IF_ERROR(parts[p].right->AddRecord(row));
      }
    }
    {
      DBFA_ASSIGN_OR_RETURN(RunReader r,
                            RunReader::Open(left_file, /*tagged=*/true));
      Record row;
      uint64_t seq = 0;
      while (true) {
        DBFA_ASSIGN_OR_RETURN(bool more, r.Next(&seq, &row));
        if (!more) break;
        size_t p = PartOf(row[left_idx].Hash(), seed, fanout);
        DBFA_RETURN_IF_ERROR(parts[p].left->AddTagged(seq, row));
      }
    }
    DBFA_RETURN_IF_ERROR(FlushJoinParts(&parts));

    std::vector<TaggedBuffer> subouts;
    subouts.reserve(fanout);
    for (size_t p = 0; p < fanout; ++p) subouts.emplace_back(ctx);
    for (size_t p = 0; p < fanout; ++p) {
      DBFA_RETURN_IF_ERROR(JoinPartition(
          ctx, parts[p].left->file(), parts[p].right->file(),
          parts[p].right_bytes, right_bytes, left_idx, right_idx, fused_where,
          seed + 1, depth + 1, &subouts[p], err));
      DBFA_RETURN_IF_ERROR(subouts[p].Finish());
    }
    if (err->has) return Status::Ok();
    return MergeTaggedBySeq(subouts, [out](uint64_t seq, const Record& row) {
      return out->Add(seq, row);
    });
  }

  // Build + probe in memory.
  std::vector<Record> right_rows;
  {
    DBFA_ASSIGN_OR_RETURN(RunReader r,
                          RunReader::Open(right_file, /*tagged=*/false));
    Record row;
    uint64_t unused = 0;
    while (true) {
      DBFA_ASSIGN_OR_RETURN(bool more, r.Next(&unused, &row));
      if (!more) break;
      right_rows.push_back(std::move(row));
    }
  }
  JoinTable table = BuildJoinTable(right_rows, right_idx);
  DBFA_ASSIGN_OR_RETURN(RunReader r,
                        RunReader::Open(left_file, /*tagged=*/true));
  Record row;
  uint64_t seq = 0;
  while (true) {
    DBFA_ASSIGN_OR_RETURN(bool more, r.Next(&seq, &row));
    if (!more) return Status::Ok();
    Status s = ProbeJoinRow(row, left_idx, table, right_rows, fused_where,
                            [out, seq](Record combined) {
                              return out->Add(seq, std::move(combined));
                            });
    if (!s.ok()) {
      err->Note(seq, std::move(s));
      return Status::Ok();
    }
  }
}

/// Where a join leaves its output: a budget-governed buffer on the fast
/// path, seq-tagged partition outputs on the partitioned path. Either way
/// Source() replays the joined rows in exact in-memory probe order,
/// renumbered 0..n-1 — the seq space the next operator builds on. Keeping
/// partition outputs replayable (instead of merging them into yet another
/// buffer) is what lets the downstream aggregation read the join result
/// without an extra spill round trip.
struct JoinOutput {
  explicit JoinOutput(SpillContext* ctx) : buffer(ctx) {}

  bool partitioned = false;
  RowBuffer buffer;
  std::vector<TaggedBuffer> parts;

  RowSource Source() {
    if (!partitioned) {
      return [this](const RowFn& fn) { return buffer.ForEach(fn); };
    }
    return [this](const RowFn& fn) {
      uint64_t seq = 0;
      return MergeTaggedBySeq(parts, [&](uint64_t, const Record& row) {
        return fn(seq++, row);
      });
    };
  }
};

/// The out-of-core join operator, fed by replayable sources. The right
/// side collects in memory and, if it outgrows the budget, scatters into
/// partition files as it streams — it is never buffered whole. The left
/// side then either probes the in-memory table directly (the fast path,
/// exactly the in-memory hash join) or scatters to matching partitions,
/// which join independently and leave seq-tagged outputs in *out.
///
/// Error ordering matches the batched engine, which materializes the left
/// (FROM) side before the right and probes last: a left-side error beats a
/// right-side scan error, which beats a probe error. Since this operator
/// consumes the right side first, a right-side failure still drains the
/// left source to give a left-side error precedence, and fast-path probe
/// errors defer until the left source finishes.
Status JoinOutOfCore(SpillContext* ctx, ThreadPool* pool,
                     const RowSource& left, const RowSource& right,
                     size_t left_idx, size_t right_idx,
                     const sql::BoundExpr* fused_where, JoinOutput* out) {
  std::vector<Record> right_mem;
  size_t right_bytes = 0;
  std::vector<JoinPartFiles> parts;
  auto scatter_right = [&](const Record& row, size_t est) -> Status {
    if (right_idx >= row.size() || row[right_idx].is_null()) {
      return Status::Ok();  // can never match; same as the probe skip
    }
    size_t p = PartOf(row[right_idx].Hash(), /*seed=*/0, parts.size());
    parts[p].right_bytes += est;
    return parts[p].right->AddRecord(row);
  };
  Status right_status = right([&](uint64_t, const Record& row) -> Status {
    size_t est = sql::EstimateRecordMemoryBytes(row);
    right_bytes += est;
    if (parts.empty()) {
      right_mem.push_back(row);
      if (right_bytes <= ctx->budget) return Status::Ok();
      DBFA_ASSIGN_OR_RETURN(parts, MakeJoinParts(ctx, kJoinScatterFanout));
      for (const Record& r : right_mem) {
        DBFA_RETURN_IF_ERROR(
            scatter_right(r, sql::EstimateRecordMemoryBytes(r)));
      }
      right_mem.clear();
      right_mem.shrink_to_fit();
      return Status::Ok();
    }
    return scatter_right(row, est);
  });
  if (!right_status.ok()) {
    DBFA_RETURN_IF_ERROR(
        left([](uint64_t, const Record&) { return Status::Ok(); }));
    return right_status;
  }

  if (parts.empty()) {
    // Fast path: the right side fits; probe left rows as they stream.
    JoinTable table = BuildJoinTable(right_mem, right_idx);
    SeqError probe_err;
    DBFA_RETURN_IF_ERROR(left([&](uint64_t seq, const Record& row) {
      if (probe_err.has) return Status::Ok();  // drain: left errors first
      Status s = ProbeJoinRow(row, left_idx, table, right_mem, fused_where,
                              [out](Record combined) {
                                return out->buffer.Add(std::move(combined));
                              });
      if (!s.ok()) probe_err.Note(seq, std::move(s));
      return Status::Ok();
    }));
    if (probe_err.has) return std::move(probe_err.status);
    return out->buffer.Finish();
  }

  DBFA_RETURN_IF_ERROR(left([&](uint64_t seq, const Record& row) {
    if (left_idx >= row.size() || row[left_idx].is_null()) {
      return Status::Ok();
    }
    size_t p = PartOf(row[left_idx].Hash(), /*seed=*/0, parts.size());
    return parts[p].left->AddTagged(seq, row);
  }));
  DBFA_RETURN_IF_ERROR(FlushJoinParts(&parts));

  out->partitioned = true;
  out->parts.reserve(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) out->parts.emplace_back(ctx);
  std::vector<SeqError> errs(parts.size());
  DBFA_RETURN_IF_ERROR(ForEachBatch(pool, parts.size(), [&](size_t p) {
    DBFA_RETURN_IF_ERROR(JoinPartition(
        ctx, parts[p].left->file(), parts[p].right->file(),
        parts[p].right_bytes, /*parent_right_bytes=*/SIZE_MAX, left_idx,
        right_idx, fused_where, /*seed=*/1, /*depth=*/1, &out->parts[p],
        &errs[p]));
    return out->parts[p].Finish();
  }));
  SeqError first;
  for (SeqError& e : errs) {
    if (e.has) first.Note(e.seq, std::move(e.status));
  }
  if (first.has) return std::move(first.status);
  return Status::Ok();
}

// ---- Spillable aggregation ----------------------------------------------
//
// Replays the batched engine's result bit-for-bit: every group keeps one
// partial accumulator set per batch index (seq / batch_rows) and folds
// them in batch order at emit time, so double-precision sums re-associate
// exactly like the in-memory merge of per-batch partials. The group's
// representative row is its first row in seq order — what the in-memory
// batch-order merge picks. Rows partition by group-key hash (a group never
// splits), each partition emits its groups key-sorted, and the key-disjoint
// partition outputs merge by key into the global emission order.

// (group key, output row) pairs, key-sorted. Aggregation output is part of
// the final result, which the budget exempts (docs/spilling.md).
using GroupRows = std::vector<std::pair<Record, Record>>;

struct AggGroup {
  Record rep;
  // batch index -> per-item partial accumulators, kept sorted for the
  // batch-order fold.
  std::map<uint64_t, std::vector<Accumulator>> parts;
};

// Rough deterministic memory charges for group-table accounting; functions
// of content only, never of container capacity.
size_t GroupBaseBytes(const Record& key, const Record& rep) {
  return sql::EstimateRecordMemoryBytes(key) +
         sql::EstimateRecordMemoryBytes(rep) + 64;
}
size_t GroupPartBytes(size_t items) {
  return items * sizeof(Accumulator) + 48;
}

Status EmitPartitionGroups(const sql::SelectStmt& stmt, const AggPlan& plan,
                           std::unordered_map<Record, AggGroup, RecordHasher,
                                              RecordEq>* groups,
                           GroupRows* out, KeyError* emit_err) {
  std::vector<std::pair<const Record*, AggGroup*>> ordered;
  ordered.reserve(groups->size());
  // dbfa-lint: allow(unordered-iter): feeds the CompareRecords sort below.
  for (auto& [key, g] : *groups) ordered.push_back({&key, &g});
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return CompareRecords(*a.first, *b.first) < 0;
  });
  for (auto& [key, g] : ordered) {
    std::vector<Accumulator> final_accs(stmt.items.size());
    for (const auto& [batch, accs] : g->parts) {
      for (size_t i = 0; i < accs.size(); ++i) final_accs[i].Merge(accs[i]);
    }
    Record row;
    Status s = EmitGroupRow(stmt, plan, g->rep, final_accs, &row);
    if (!s.ok()) {
      emit_err->Note(*key, std::move(s));
      return Status::Ok();
    }
    out->push_back({*key, std::move(row)});
  }
  return Status::Ok();
}

/// Merges key-sorted, key-disjoint partition outputs into *out (key order).
void MergeGroupRows(std::vector<GroupRows> parts, GroupRows* out) {
  std::vector<size_t> pos(parts.size(), 0);
  while (true) {
    int best = -1;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (pos[i] >= parts[i].size()) continue;
      if (best < 0 || CompareRecords(parts[i][pos[i]].first,
                                     parts[best][pos[best]].first) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return;
    out->push_back(std::move(parts[best][pos[best]]));
    ++pos[best];
  }
}

/// Aggregates one partition's tagged run. If the group table outgrows the
/// budget while more than one group exists (and depth permits), the partial
/// table is discarded and the run re-partitions on the next hash seed —
/// re-streaming the file costs I/O but keeps memory bounded. Accumulation
/// errors land in *acc_err (by seq), emit errors in *emit_err (by key).
Status AggregatePartition(SpillContext* ctx, const SpillFile& file,
                          size_t bytes, const sql::SelectStmt& stmt,
                          const AggPlan& plan, size_t batch_rows,
                          uint64_t seed, int depth, GroupRows* out,
                          SeqError* acc_err, KeyError* emit_err) {
  std::unordered_map<Record, AggGroup, RecordHasher, RecordEq> groups;
  size_t est = 0;
  bool repartition = false;
  {
    DBFA_ASSIGN_OR_RETURN(RunReader r, RunReader::Open(file, /*tagged=*/true));
    Record row;
    uint64_t seq = 0;
    while (true) {
      DBFA_ASSIGN_OR_RETURN(bool more, r.Next(&seq, &row));
      if (!more) break;
      Record key;
      Status s = MakeGroupKey(stmt, plan, row, &key);
      if (s.ok()) {
        auto [it, inserted] = groups.try_emplace(std::move(key));
        AggGroup& g = it->second;
        if (inserted) {
          g.rep = row;
          est += GroupBaseBytes(it->first, g.rep);
        }
        auto [pit, part_new] = g.parts.try_emplace(seq / batch_rows);
        if (part_new) {
          pit->second.resize(stmt.items.size());
          est += GroupPartBytes(stmt.items.size());
        }
        s = AccumulateRow(stmt, plan, row, &pit->second);
      }
      if (!s.ok()) {
        acc_err->Note(seq, std::move(s));
        return Status::Ok();
      }
      if (est > ctx->budget && groups.size() > 1 && depth < kMaxDepth) {
        repartition = true;
        break;
      }
    }
  }

  if (!repartition) {
    return EmitPartitionGroups(stmt, plan, &groups, out, emit_err);
  }
  groups.clear();

  size_t fanout = Fanout(bytes, ctx->budget);
  std::vector<RunWriter> writers;
  std::vector<size_t> part_bytes(fanout, 0);
  writers.reserve(fanout);
  for (size_t p = 0; p < fanout; ++p) {
    DBFA_ASSIGN_OR_RETURN(RunWriter w, RunWriter::Create(ctx));
    writers.push_back(std::move(w));
  }
  {
    DBFA_ASSIGN_OR_RETURN(RunReader r, RunReader::Open(file, /*tagged=*/true));
    Record row;
    Record key;
    uint64_t seq = 0;
    while (true) {
      DBFA_ASSIGN_OR_RETURN(bool more, r.Next(&seq, &row));
      if (!more) break;
      Status s = MakeGroupKey(stmt, plan, row, &key);
      if (!s.ok()) {
        acc_err->Note(seq, std::move(s));
        return Status::Ok();
      }
      size_t p = PartOf(HashRecord(key), seed, fanout);
      part_bytes[p] += sql::EstimateRecordMemoryBytes(row);
      DBFA_RETURN_IF_ERROR(writers[p].AddTagged(seq, row));
    }
  }
  for (RunWriter& w : writers) {
    DBFA_RETURN_IF_ERROR(w.Flush());
  }

  std::vector<GroupRows> subouts(fanout);
  for (size_t p = 0; p < fanout; ++p) {
    DBFA_RETURN_IF_ERROR(AggregatePartition(
        ctx, writers[p].file(), part_bytes[p], stmt, plan, batch_rows,
        seed + 1, depth + 1, &subouts[p], acc_err, emit_err));
  }
  if (acc_err->has || emit_err->has) return Status::Ok();
  MergeGroupRows(std::move(subouts), out);
  return Status::Ok();
}

Status AggregateOutOfCore(SpillContext* ctx, ThreadPool* pool,
                          const sql::SelectStmt& stmt, const AggPlan& plan,
                          const RowSource& rows, size_t batch_rows,
                          const std::function<Status(Record&&)>& emit) {
  if (batch_rows == 0) batch_rows = 1024;  // MakeBatches' normalization

  // Pass 1 (optimistic): fold the whole input into one partial-accumulator
  // table — the same per-(group, batch) structure AggregatePartition keeps,
  // so the emitted rows are bit-identical to the batched engine's. The
  // input streams through without ever being buffered; only the group
  // table counts against the budget. If the table outgrows the budget, or
  // any row fails, the table is dropped and pass 2 replays the source
  // through the general partitioned path, which re-derives any error with
  // the exact batched ordering.
  std::unordered_map<Record, AggGroup, RecordHasher, RecordEq> groups;
  size_t est = 0;
  size_t input_bytes = 0;  // total estimated input size, for pass-2 fanout
  bool partials_live = true;
  DBFA_RETURN_IF_ERROR(rows([&](uint64_t seq, const Record& row) {
    input_bytes += sql::EstimateRecordMemoryBytes(row);
    if (!partials_live) return Status::Ok();
    Record key;
    Status s = MakeGroupKey(stmt, plan, row, &key);
    if (s.ok()) {
      auto [it, inserted] = groups.try_emplace(std::move(key));
      AggGroup& g = it->second;
      if (inserted) {
        g.rep = row;
        est += GroupBaseBytes(it->first, g.rep);
      }
      auto [pit, part_new] = g.parts.try_emplace(seq / batch_rows);
      if (part_new) {
        pit->second.resize(stmt.items.size());
        est += GroupPartBytes(stmt.items.size());
      }
      s = AccumulateRow(stmt, plan, row, &pit->second);
    }
    if (!s.ok() || est > ctx->budget) {
      partials_live = false;
      groups.clear();
    }
    return Status::Ok();
  }));

  if (partials_live) {
    GroupRows merged;
    KeyError emit_err;
    DBFA_RETURN_IF_ERROR(
        EmitPartitionGroups(stmt, plan, &groups, &merged, &emit_err));
    if (emit_err.has) return std::move(emit_err.status);
    if (merged.empty() && stmt.group_by.empty()) {
      Record row;
      DBFA_RETURN_IF_ERROR(EmitEmptyAggregateRow(stmt, &row));
      return emit(std::move(row));
    }
    for (auto& [key, row] : merged) {
      DBFA_RETURN_IF_ERROR(emit(std::move(row)));
    }
    return Status::Ok();
  }

  // Pass 2: replay into key-hashed partitions (a group never splits).
  size_t fanout = Fanout(input_bytes, ctx->budget);
  std::vector<RunWriter> writers;
  std::vector<size_t> part_bytes(fanout, 0);
  writers.reserve(fanout);
  for (size_t p = 0; p < fanout; ++p) {
    DBFA_ASSIGN_OR_RETURN(RunWriter w, RunWriter::Create(ctx));
    writers.push_back(std::move(w));
  }
  SeqError key_err;
  DBFA_RETURN_IF_ERROR(rows([&](uint64_t seq, const Record& row) {
    Record key;
    Status s = MakeGroupKey(stmt, plan, row, &key);
    if (!s.ok()) {
      // Defer: a later row may fail accumulation with a smaller seq than a
      // row failing key extraction here. Resolved by seq after the fact.
      key_err.Note(seq, std::move(s));
      return Status::Ok();
    }
    size_t p = PartOf(HashRecord(key), /*seed=*/0, fanout);
    part_bytes[p] += sql::EstimateRecordMemoryBytes(row);
    return writers[p].AddTagged(seq, row);
  }));
  for (RunWriter& w : writers) {
    DBFA_RETURN_IF_ERROR(w.Flush());
  }

  std::vector<GroupRows> outs(fanout);
  std::vector<SeqError> acc_errs(fanout);
  std::vector<KeyError> emit_errs(fanout);
  DBFA_RETURN_IF_ERROR(ForEachBatch(pool, fanout, [&](size_t p) {
    return AggregatePartition(ctx, writers[p].file(), part_bytes[p], stmt,
                              plan, batch_rows, /*seed=*/1, /*depth=*/1,
                              &outs[p], &acc_errs[p], &emit_errs[p]);
  }));

  SeqError first_acc = std::move(key_err);
  for (SeqError& e : acc_errs) {
    if (e.has) first_acc.Note(e.seq, std::move(e.status));
  }
  if (first_acc.has) return std::move(first_acc.status);
  KeyError first_emit;
  for (KeyError& e : emit_errs) {
    if (e.has) first_emit.Note(e.key, std::move(e.status));
  }
  if (first_emit.has) return std::move(first_emit.status);

  GroupRows merged;
  MergeGroupRows(std::move(outs), &merged);
  if (merged.empty() && stmt.group_by.empty()) {
    Record row;
    DBFA_RETURN_IF_ERROR(EmitEmptyAggregateRow(stmt, &row));
    return emit(std::move(row));
  }
  for (auto& [key, row] : merged) {
    DBFA_RETURN_IF_ERROR(emit(std::move(row)));
  }
  return Status::Ok();
}

// ---- Final collection: ORDER BY (external merge sort) + LIMIT ------------
//
// Without ORDER BY, rows collect in arrival order (the final result is
// budget-exempt) and LIMIT truncates. With ORDER BY, rows buffer up to the
// budget, each full buffer stable-sorts into a consecutive run, and runs
// merge with ties broken by run index — which is exactly std::stable_sort
// over the whole input, the batched engine's sort. ORDER BY resolution
// failures are deferred to Finish so row-level errors upstream surface
// first, matching the batched engine's error ordering.

class FinalCollector {
 public:
  FinalCollector(SpillContext* ctx, const sql::SelectStmt& stmt,
                 std::vector<std::string> columns)
      : ctx_(ctx), stmt_(stmt), columns_(std::move(columns)) {
    if (!stmt_.order_by.empty()) {
      sorting_ = true;
      resolve_status_ = ResolveOrderKeys(stmt_, columns_, &idx_, &desc_);
    }
  }

  Status Add(Record row) {
    if (sorting_ && !resolve_status_.ok()) {
      return Status::Ok();  // query fails at Finish; don't buffer
    }
    mem_bytes_ += sql::EstimateRecordMemoryBytes(row);
    mem_.push_back(std::move(row));
    if (sorting_ && mem_bytes_ > ctx_->budget) return SpillSortedRun();
    return Status::Ok();
  }

  Result<QueryTable> Finish() {
    QueryTable out;
    out.columns = std::move(columns_);
    if (sorting_) {
      DBFA_RETURN_IF_ERROR(resolve_status_);
      if (runs_.empty()) {
        SortBuffer();
        out.rows = std::move(mem_);
      } else {
        if (!mem_.empty()) {
          DBFA_RETURN_IF_ERROR(SpillSortedRun());
        }
        // Multi-pass merge: each pass replaces consecutive groups of up to
        // kMergeFanIn runs with their merge. Groups stay consecutive and
        // in order, so the run-index tie-break keeps global stability.
        while (runs_.size() > kMergeFanIn) {
          std::vector<RunWriter> next;
          for (size_t lo = 0; lo < runs_.size(); lo += kMergeFanIn) {
            size_t hi = std::min(runs_.size(), lo + kMergeFanIn);
            DBFA_ASSIGN_OR_RETURN(RunWriter merged, RunWriter::Create(ctx_));
            DBFA_RETURN_IF_ERROR(
                MergeRuns(lo, hi, [&merged](Record&& row) {
                  return merged.AddRecord(row);
                }));
            DBFA_RETURN_IF_ERROR(merged.Flush());
            next.push_back(std::move(merged));
          }
          runs_ = std::move(next);
        }
        DBFA_RETURN_IF_ERROR(
            MergeRuns(0, runs_.size(), [&out](Record&& row) {
              out.rows.push_back(std::move(row));
              return Status::Ok();
            }));
      }
    } else {
      out.rows = std::move(mem_);
    }
    if (stmt_.limit >= 0 &&
        out.rows.size() > static_cast<size_t>(stmt_.limit)) {
      out.rows.resize(static_cast<size_t>(stmt_.limit));
    }
    return out;
  }

 private:
  void SortBuffer() {
    std::stable_sort(mem_.begin(), mem_.end(),
                     [this](const Record& a, const Record& b) {
                       return OrderKeyLess(a, b, idx_, desc_);
                     });
  }

  Status SpillSortedRun() {
    SortBuffer();
    DBFA_ASSIGN_OR_RETURN(RunWriter w, RunWriter::Create(ctx_));
    for (const Record& r : mem_) {
      DBFA_RETURN_IF_ERROR(w.AddRecord(r));
    }
    DBFA_RETURN_IF_ERROR(w.Flush());
    runs_.push_back(std::move(w));
    mem_.clear();
    mem_bytes_ = 0;
    return Status::Ok();
  }

  /// K-way merges runs_[lo, hi) — consecutive sorted runs — emitting rows
  /// in order; ties prefer the lower run index (stability).
  Status MergeRuns(size_t lo, size_t hi,
                   const std::function<Status(Record&&)>& emit) {
    struct Head {
      std::optional<RunReader> reader;
      Record row;
      bool live = false;
    };
    std::vector<Head> heads(hi - lo);
    for (size_t i = 0; i < heads.size(); ++i) {
      DBFA_ASSIGN_OR_RETURN(RunReader r, RunReader::Open(runs_[lo + i].file(),
                                                         /*tagged=*/false));
      heads[i].reader.emplace(std::move(r));
      uint64_t unused = 0;
      DBFA_ASSIGN_OR_RETURN(heads[i].live,
                            heads[i].reader->Next(&unused, &heads[i].row));
    }
    while (true) {
      int best = -1;
      for (size_t i = 0; i < heads.size(); ++i) {
        if (!heads[i].live) continue;
        if (best < 0 ||
            OrderKeyLess(heads[i].row, heads[best].row, idx_, desc_)) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) return Status::Ok();
      Head& h = heads[best];
      DBFA_RETURN_IF_ERROR(emit(std::move(h.row)));
      uint64_t unused = 0;
      DBFA_ASSIGN_OR_RETURN(h.live, h.reader->Next(&unused, &h.row));
    }
  }

  SpillContext* ctx_;
  const sql::SelectStmt& stmt_;
  std::vector<std::string> columns_;
  bool sorting_ = false;
  Status resolve_status_;
  std::vector<int> idx_;
  std::vector<bool> desc_;
  std::vector<Record> mem_;
  size_t mem_bytes_ = 0;
  std::vector<RunWriter> runs_;  // sorted runs, in input-chunk order
};

}  // namespace

Result<QueryTable> ExecuteOutOfCore(const sql::SelectStmt& stmt,
                                    const RelationResolver& lookup,
                                    const MetaQueryOptions& options,
                                    ThreadPool* pool, SpillStats* stats) {
  SpillManager manager(options.spill_dir);
  SpillContext ctx{&manager, options.memory_budget_bytes,
                   BlockTarget(options.memory_budget_bytes)};
  // Run the pipeline in a lambda so spill stats can be captured on every
  // exit path before ~SpillManager removes the files.
  // Stages are chained as replayable RowSources instead of materialized
  // buffers: the FROM scan feeds the first join's scatter directly, each
  // join's merged output feeds the next stage without an intermediate
  // round trip through a spill file, and aggregation replays its source
  // only when its optimistic single-pass table outgrows the budget.
  // Downstream per-row errors (probe, WHERE, projection) are deferred
  // until the upstream source finishes so that upstream errors keep the
  // precedence they have in the batched engine, where every stage input
  // is materialized before the stage runs.
  auto result = [&]() -> Result<QueryTable> {
    // ---- FROM: a replayable scan source ----------------------------
    DBFA_ASSIGN_OR_RETURN(auto base, lookup(stmt.from.table));
    FrameSet frames;
    frames.Add(stmt.from.EffectiveName(), base->columns());
    RowSource source = [&base](const RowFn& fn) {
      uint64_t seq = 0;
      return base->Scan([&](const Record& r) { return fn(seq++, r); });
    };

    // ---- JOINs -----------------------------------------------------
    bool where_fused = false;
    std::vector<std::unique_ptr<JoinOutput>> join_outs;
    for (size_t j = 0; j < stmt.joins.size(); ++j) {
      const sql::JoinClause& join = stmt.joins[j];
      DBFA_ASSIGN_OR_RETURN(auto right, lookup(join.table.table));
      FrameSet right_frame;
      right_frame.Add(join.table.EffectiveName(), right->columns());
      size_t left_idx = 0;
      size_t right_idx = 0;
      DBFA_RETURN_IF_ERROR(
          ResolveJoinColumns(frames, right_frame, join, &left_idx, &right_idx));

      sql::BoundExprPtr fused_where;
      if (j + 1 == stmt.joins.size() && stmt.where != nullptr) {
        FrameSet combined = frames;
        combined.Add(join.table.EffectiveName(), right->columns());
        DBFA_ASSIGN_OR_RETURN(
            fused_where,
            sql::BindExpr(*stmt.where, [&combined](std::string_view name) {
              return combined.Resolve(name);
            }));
        where_fused = true;
      }

      RowSource right_src = [&right](const RowFn& fn) {
        uint64_t seq = 0;
        return right->Scan([&](const Record& r) { return fn(seq++, r); });
      };
      auto out = std::make_unique<JoinOutput>(&ctx);
      DBFA_RETURN_IF_ERROR(JoinOutOfCore(&ctx, pool, source, right_src,
                                         left_idx, right_idx,
                                         fused_where.get(), out.get()));
      source = out->Source();
      join_outs.push_back(std::move(out));
      frames.Add(join.table.EffectiveName(), right->columns());
    }

    // ---- WHERE -----------------------------------------------------
    std::optional<RowBuffer> kept;
    if (stmt.where != nullptr && !where_fused) {
      DBFA_ASSIGN_OR_RETURN(
          sql::BoundExprPtr where,
          sql::BindExpr(*stmt.where, [&frames](std::string_view name) {
            return frames.Resolve(name);
          }));
      kept.emplace(&ctx);
      SeqError where_err;
      DBFA_RETURN_IF_ERROR(source([&](uint64_t seq, const Record& row) {
        if (where_err.has) return Status::Ok();  // drain: scan errors win
        Result<bool> pass = sql::EvalBoundPredicate(*where, row);
        if (!pass.ok()) {
          where_err.Note(seq, pass.status());
          return Status::Ok();
        }
        if (pass.value()) return kept->Add(row);
        return Status::Ok();
      }));
      if (where_err.has) return std::move(where_err.status);
      DBFA_RETURN_IF_ERROR(kept->Finish());
      source = [&kept](const RowFn& fn) { return kept->ForEach(fn); };
    }

    // ---- Aggregation -----------------------------------------------
    if (stmt.HasAggregates() || !stmt.group_by.empty()) {
      std::vector<std::string> columns;
      DBFA_ASSIGN_OR_RETURN(AggPlan plan,
                            PlanAggregation(stmt, frames, &columns));
      FinalCollector collector(&ctx, stmt, std::move(columns));
      DBFA_RETURN_IF_ERROR(AggregateOutOfCore(
          &ctx, pool, stmt, plan, source, options.batch_rows,
          [&collector](Record&& row) {
            return collector.Add(std::move(row));
          }));
      return collector.Finish();
    }

    // ---- Projection ------------------------------------------------
    std::vector<std::string> columns;
    DBFA_ASSIGN_OR_RETURN(ProjectionPlan plan,
                          PlanProjection(stmt, frames, &columns));
    FinalCollector collector(&ctx, stmt, std::move(columns));
    SeqError proj_err;
    DBFA_RETURN_IF_ERROR(source([&](uint64_t seq, const Record& row) {
      if (proj_err.has) return Status::Ok();  // drain: upstream errors win
      Record p;
      Status s = ProjectRow(plan, row, &p);
      if (!s.ok()) {
        proj_err.Note(seq, std::move(s));
        return Status::Ok();
      }
      return collector.Add(std::move(p));
    }));
    if (proj_err.has) return std::move(proj_err.status);
    return collector.Finish();
  }();
  if (stats != nullptr) *stats = manager.stats();
  return result;
}

}  // namespace dbfa::metaquery_internal
