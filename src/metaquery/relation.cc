#include "metaquery/relation.h"

namespace dbfa {

Result<std::shared_ptr<Relation>> MakeCarvedRelation(
    const CarveResult& carve, const std::string& table) {
  const TableSchema* schema = carve.SchemaByName(table);
  if (schema == nullptr) {
    return Status::NotFound("no carved schema for table: " + table);
  }
  std::vector<std::string> columns;
  for (const Column& c : schema->columns) columns.push_back(c.name);
  columns.push_back(kRowStatusColumn);
  columns.push_back("PageId");
  columns.push_back("Slot");
  columns.push_back("RowId");
  columns.push_back("PageLsn");

  std::vector<Record> rows;
  for (const CarvedRecord* r : carve.RecordsForTable(table)) {
    if (r->values.size() != schema->columns.size()) continue;
    Record row = r->values;
    row.push_back(Value::Str(RowStatusName(r->status)));
    row.push_back(Value::Int(r->page_id));
    row.push_back(r->slot == CarvedRecord::kOrphanSlot
                      ? Value::Null()
                      : Value::Int(r->slot));
    row.push_back(r->row_id == 0 ? Value::Null()
                                 : Value::Int(static_cast<int64_t>(r->row_id)));
    row.push_back(Value::Int(static_cast<int64_t>(r->page_lsn)));
    rows.push_back(std::move(row));
  }
  return std::shared_ptr<Relation>(new ArtifactRelation(
      std::move(columns), std::move(rows), carve.string_pool));
}

namespace {

/// Live view over a MiniDB heap. Rows are read at scan time.
class LiveTableRelation : public Relation {
 public:
  LiveTableRelation(Database* db, std::string table,
                    std::vector<std::string> columns)
      : db_(db), table_(std::move(table)), columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const override {
    return columns_;
  }

  Status Scan(const std::function<Status(const Record&)>& fn) const override {
    TableHeap* heap = db_->heap(table_);
    if (heap == nullptr) {
      return Status::NotFound("table dropped: " + table_);
    }
    return heap->Scan(
        [&](RowPointer, const Record& rec) { return fn(rec); });
  }

 private:
  Database* db_;
  std::string table_;
  std::vector<std::string> columns_;
};

}  // namespace

Result<std::shared_ptr<Relation>> MakeLiveRelation(Database* db,
                                                   const std::string& table) {
  const TableInfo* info = db->catalog().Find(table);
  if (info == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  std::vector<std::string> columns;
  for (const Column& c : info->schema.columns) columns.push_back(c.name);
  return std::shared_ptr<Relation>(
      new LiveTableRelation(db, info->schema.name, std::move(columns)));
}

}  // namespace dbfa
