// The original tuple-at-a-time meta-query executor, retained verbatim-in-
// spirit as the behavioral reference for the batched engine: every name is
// re-resolved per row, evaluation is row-by-row, and aggregation uses an
// ordered map. Differential tests (tests/metaquery_differential_test.cc)
// pit the batched executor against this one at several thread counts.
//
// The only change from the historical implementation is the join hash
// table: buckets keep right-relation scan order, so duplicate-key matches
// are emitted in a defined order both executors share (the historical
// unordered_multimap order was unspecified).
#ifndef DBFA_METAQUERY_REFERENCE_EXECUTOR_H_
#define DBFA_METAQUERY_REFERENCE_EXECUTOR_H_

#include "metaquery/exec_common.h"
#include "metaquery/session.h"

namespace dbfa::metaquery_internal {

Result<QueryTable> ExecuteReference(const sql::SelectStmt& stmt,
                                    const RelationResolver& lookup);

}  // namespace dbfa::metaquery_internal

#endif  // DBFA_METAQUERY_REFERENCE_EXECUTOR_H_
