// Meta-query engine: SQL over any mix of carved and live relations.
//
// Section II-C's examples run verbatim here:
//   SELECT * FROM CarvCustomer WHERE RowStatus = 'DELETED'
//   SELECT * FROM CarvRAMProduct AS M JOIN CarvDiskProduct AS D
//     ON M.PID = D.PID WHERE M.Price <> D.Price
//
// Supports filters, inner equi-joins, arithmetic, aggregates
// (COUNT/SUM/MIN/MAX/AVG) with GROUP BY, ORDER BY, and LIMIT — enough to
// run the full SSBM query suite for the anti-forensics evaluation.
//
// Two executors back the session: the default batched engine binds every
// column reference to a flat index at plan time and fans row batches out
// on a thread pool (docs/metaquery_engine.md), and a tuple-at-a-time
// reference implementation is retained for differential testing.
#ifndef DBFA_METAQUERY_SESSION_H_
#define DBFA_METAQUERY_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/spill_manager.h"
#include "common/thread_pool.h"
#include "metaquery/relation.h"
#include "sql/parser.h"

namespace dbfa {

/// Query output with formatting helpers.
struct QueryTable {
  std::vector<std::string> columns;
  std::vector<Record> rows;

  /// Fixed-width text rendering for reports and examples.
  std::string ToText(size_t max_rows = 50) const;
};

/// When a nonzero memory budget routes queries to the out-of-core engine.
enum class SpillPolicy {
  /// Any nonzero memory_budget_bytes runs the spill engine (the original
  /// behavior; budget == 0 always stays in memory).
  kAlways,
  /// Never spill; the budget only documents intent. Queries run on the
  /// in-memory batched engine regardless of size.
  kNever,
  /// Spill only when the query's estimated working set — the summed
  /// Relation::EstimatedBytes() of every referenced relation, doubled for
  /// intermediates — exceeds memory_budget_bytes. Relations that cannot
  /// estimate (live tables) count as over-budget, so kAuto errs toward
  /// spilling. Results are bit-identical either way (docs/spilling.md);
  /// only the execution strategy changes.
  kAuto,
};

/// Per-query engagement counters for the batched engine's columnar filter
/// fast path (docs/columnar_memory.md). Batches of a WHERE sweep either
/// run the columnar kernels or fall back to the row-at-a-time evaluator;
/// both produce identical rows, so these counters exist purely so tests
/// and benchmarks can assert which path ran.
struct BatchExecStats {
  /// WHERE batches evaluated column-at-a-time.
  size_t columnar_batches = 0;
  /// WHERE batches that fell back to row-at-a-time evaluation (unsupported
  /// predicate shape, ragged rows, or mixed-type columns).
  size_t row_batches = 0;
};

/// Execution knobs for MetaQuerySession.
struct MetaQueryOptions {
  /// Worker threads for batched execution: 1 runs inline on the calling
  /// thread, 0 means hardware concurrency.
  size_t num_threads = 1;
  /// Rows per execution batch. Batch geometry depends only on this value —
  /// never on num_threads — so results are identical at every thread
  /// count (see docs/metaquery_engine.md).
  size_t batch_rows = 1024;
  /// Run the retained tuple-at-a-time reference executor instead of the
  /// batched engine (differential tests and benchmarks).
  bool use_reference = false;
  /// When non-zero, queries run on the out-of-core engine: each operator
  /// may hold roughly this many bytes of rows in memory and spills the
  /// rest to checksummed temp files (docs/spilling.md). Results are
  /// bit-identical to the in-memory engine at every budget. 0 keeps
  /// everything in memory.
  size_t memory_budget_bytes = 0;
  /// Directory spill files are created under (a unique per-query
  /// subdirectory is always used). Empty means the system temp directory.
  std::string spill_dir;
  /// How memory_budget_bytes engages the out-of-core engine.
  SpillPolicy spill_policy = SpillPolicy::kAlways;
  /// Evaluate qualifying WHERE predicates column-at-a-time over per-batch
  /// flat vectors instead of row-at-a-time (batched engine only). Results
  /// are bit-identical either way; off exists for differential tests and
  /// benchmarks.
  bool columnar_filter = true;
};

class MetaQuerySession {
 public:
  explicit MetaQuerySession(MetaQueryOptions options = {});

  /// Registers a relation under `name` (case-insensitive; last wins).
  void Register(const std::string& name, std::shared_ptr<Relation> relation);

  /// Registers every schema-bearing table of a carve result as
  /// "<prefix><TableName>" (e.g. prefix "Carv" -> CarvCustomer). Tables
  /// that cannot be registered — relation construction failed, or the
  /// table's name is shadowed by an earlier carved schema with the same
  /// name (dropped-and-recreated tables) — are reported through `skipped`
  /// (as "<name> (object <id>): <why>") instead of being dropped silently.
  Status RegisterCarve(const CarveResult& carve, const std::string& prefix,
                       std::vector<std::string>* skipped = nullptr);

  /// Registers every live table of a database under its own name.
  /// `db` must outlive the session.
  Status RegisterDatabase(Database* db);

  /// Parses and executes one SELECT statement.
  Result<QueryTable> Query(const std::string& select_sql);
  Result<QueryTable> Execute(const sql::SelectStmt& stmt);

  /// Registered relation names (sorted).
  std::vector<std::string> RelationNames() const;

  const MetaQueryOptions& options() const { return options_; }
  /// Takes effect for subsequent queries; resizes the worker pool lazily.
  void set_options(const MetaQueryOptions& options);

  /// Spill activity of the most recent Query/Execute call. All zeros when
  /// the query ran fully in memory (including whenever
  /// memory_budget_bytes == 0).
  const SpillStats& last_spill_stats() const { return last_spill_stats_; }

  /// Which executor ran the most recent Query/Execute: "reference",
  /// "batched", or "out-of-core". Diagnostic hook for spill-policy tests.
  const char* last_engine() const { return last_engine_; }

  /// Columnar-filter engagement of the most recent Query/Execute. All
  /// zeros when the query had no WHERE sweep (no predicate, predicate
  /// fused into a join probe, or a non-batched engine ran).
  const BatchExecStats& last_batch_stats() const { return last_batch_stats_; }

 private:
  Result<std::shared_ptr<Relation>> Lookup(const std::string& name) const;

  /// spill_policy decision for one statement (given a nonzero budget).
  bool SpillEngaged(const sql::SelectStmt& stmt) const;

  /// Worker pool for batched execution; nullptr when running inline.
  ThreadPool* PoolForQuery();

  MetaQueryOptions options_;
  SpillStats last_spill_stats_;
  BatchExecStats last_batch_stats_;
  const char* last_engine_ = "";
  /// Guards the lazily created worker pool. Pool creation races when
  /// several threads issue this session's first parallel query; the
  /// ThreadPool itself is thread-safe once published.
  Mutex pool_mu_{"session/pool", lock_rank::kSessionPool};
  std::unique_ptr<ThreadPool> pool_ DBFA_GUARDED_BY(pool_mu_);
  std::map<std::string, std::shared_ptr<Relation>> relations_;  // lower key
  std::map<std::string, std::string> display_names_;
};

}  // namespace dbfa

#endif  // DBFA_METAQUERY_SESSION_H_
