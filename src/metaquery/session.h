// Meta-query engine: SQL over any mix of carved and live relations.
//
// Section II-C's examples run verbatim here:
//   SELECT * FROM CarvCustomer WHERE RowStatus = 'DELETED'
//   SELECT * FROM CarvRAMProduct AS M JOIN CarvDiskProduct AS D
//     ON M.PID = D.PID WHERE M.Price <> D.Price
//
// Supports filters, inner equi-joins, arithmetic, aggregates
// (COUNT/SUM/MIN/MAX/AVG) with GROUP BY, ORDER BY, and LIMIT — enough to
// run the full SSBM query suite for the anti-forensics evaluation.
#ifndef DBFA_METAQUERY_SESSION_H_
#define DBFA_METAQUERY_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "metaquery/relation.h"
#include "sql/parser.h"

namespace dbfa {

/// Query output with formatting helpers.
struct QueryTable {
  std::vector<std::string> columns;
  std::vector<Record> rows;

  /// Fixed-width text rendering for reports and examples.
  std::string ToText(size_t max_rows = 50) const;
};

class MetaQuerySession {
 public:
  /// Registers a relation under `name` (case-insensitive; last wins).
  void Register(const std::string& name, std::shared_ptr<Relation> relation);

  /// Registers every schema-bearing table of a carve result as
  /// "<prefix><TableName>" (e.g. prefix "Carv" -> CarvCustomer).
  Status RegisterCarve(const CarveResult& carve, const std::string& prefix);

  /// Registers every live table of a database under its own name.
  /// `db` must outlive the session.
  Status RegisterDatabase(Database* db);

  /// Parses and executes one SELECT statement.
  Result<QueryTable> Query(const std::string& select_sql);
  Result<QueryTable> Execute(const sql::SelectStmt& stmt);

  /// Registered relation names (sorted).
  std::vector<std::string> RelationNames() const;

 private:
  Result<std::shared_ptr<Relation>> Lookup(const std::string& name) const;

  std::map<std::string, std::shared_ptr<Relation>> relations_;  // lower key
  std::map<std::string, std::string> display_names_;
};

}  // namespace dbfa

#endif  // DBFA_METAQUERY_SESSION_H_
