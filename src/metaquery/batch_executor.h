// The batched meta-query executor: every column reference, ORDER BY key,
// and GROUP BY key is bound to a flat index once at plan time, then
// scan -> filter -> project (or aggregate) runs over fixed-size row
// batches fanned out on a ThreadPool with deterministic in-order
// concatenation. See docs/metaquery_engine.md for the design and its
// determinism argument.
#ifndef DBFA_METAQUERY_BATCH_EXECUTOR_H_
#define DBFA_METAQUERY_BATCH_EXECUTOR_H_

#include "common/thread_pool.h"
#include "metaquery/exec_common.h"
#include "metaquery/session.h"

namespace dbfa::metaquery_internal {

/// Executes `stmt` in batches of `batch_rows` rows. When `pool` is
/// non-null its workers process batches concurrently; results are
/// identical for any pool size because batch geometry depends only on
/// `batch_rows` and outputs are concatenated in batch order.
Result<QueryTable> ExecuteBatched(const sql::SelectStmt& stmt,
                                  const RelationResolver& lookup,
                                  size_t batch_rows, ThreadPool* pool);

}  // namespace dbfa::metaquery_internal

#endif  // DBFA_METAQUERY_BATCH_EXECUTOR_H_
