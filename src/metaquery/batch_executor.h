// The batched meta-query executor: every column reference, ORDER BY key,
// and GROUP BY key is bound to a flat index once at plan time, then
// scan -> filter -> project (or aggregate) runs over fixed-size row
// batches fanned out on a ThreadPool with deterministic in-order
// concatenation. See docs/metaquery_engine.md for the design and its
// determinism argument.
#ifndef DBFA_METAQUERY_BATCH_EXECUTOR_H_
#define DBFA_METAQUERY_BATCH_EXECUTOR_H_

#include "common/thread_pool.h"
#include "metaquery/exec_common.h"
#include "metaquery/session.h"

namespace dbfa::metaquery_internal {

/// Executes `stmt` in batches of `batch_rows` rows. When `pool` is
/// non-null its workers process batches concurrently; results are
/// identical for any pool size because batch geometry depends only on
/// `batch_rows` and outputs are concatenated in batch order.
///
/// When `columnar_filter` is set, WHERE predicates made of comparison /
/// IS NULL conjuncts are evaluated column-at-a-time per batch
/// (column_batch.h); batches whose shape doesn't qualify fall back to the
/// row-at-a-time evaluator, so results are identical either way. `stats`,
/// when non-null, receives per-query engagement counters.
Result<QueryTable> ExecuteBatched(const sql::SelectStmt& stmt,
                                  const RelationResolver& lookup,
                                  size_t batch_rows, ThreadPool* pool,
                                  bool columnar_filter = true,
                                  BatchExecStats* stats = nullptr);

}  // namespace dbfa::metaquery_internal

#endif  // DBFA_METAQUERY_BATCH_EXECUTOR_H_
