#include "metaquery/session.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"

namespace dbfa {
namespace {

/// Column namespace of the rows flowing through the executor: one frame per
/// joined relation, rows are frame-concatenated records.
struct FrameSet {
  struct Frame {
    std::string qualifier;  // alias or table name
    std::vector<std::string> cols;
    size_t offset = 0;
  };
  std::vector<Frame> frames;
  size_t width = 0;

  void Add(const std::string& qualifier,
           const std::vector<std::string>& cols) {
    frames.push_back({qualifier, cols, width});
    width += cols.size();
  }

  /// Resolves "name" or "qualifier.name" to a global column index.
  std::optional<size_t> Resolve(std::string_view name) const {
    std::string_view qualifier;
    std::string_view bare = name;
    size_t dot = name.find('.');
    if (dot != std::string_view::npos) {
      qualifier = name.substr(0, dot);
      bare = name.substr(dot + 1);
    }
    for (const Frame& f : frames) {
      if (!qualifier.empty() && !EqualsIgnoreCase(f.qualifier, qualifier)) {
        continue;
      }
      for (size_t i = 0; i < f.cols.size(); ++i) {
        if (EqualsIgnoreCase(f.cols[i], bare)) return f.offset + i;
      }
    }
    return std::nullopt;
  }
};

class FrameBinding : public sql::ColumnBinding {
 public:
  FrameBinding(const FrameSet& frames, const Record& row)
      : frames_(frames), row_(row) {}

  std::optional<Value> Lookup(std::string_view name) const override {
    auto idx = frames_.Resolve(name);
    if (!idx.has_value() || *idx >= row_.size()) return std::nullopt;
    return row_[*idx];
  }

 private:
  const FrameSet& frames_;
  const Record& row_;
};

struct Accumulator {
  int64_t count = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  double dsum = 0;
  Value min_v;
  Value max_v;
  bool has_minmax = false;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.type() == ValueType::kInt && sum_is_int) {
      isum += v.as_int();
    } else if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
      if (sum_is_int) {
        dsum = static_cast<double>(isum);
        sum_is_int = false;
      }
      dsum += v.NumericValue();
    }
    if (!has_minmax) {
      min_v = v;
      max_v = v;
      has_minmax = true;
    } else {
      if (Value::Compare(v, min_v) < 0) min_v = v;
      if (Value::Compare(v, max_v) > 0) max_v = v;
    }
  }

  Value Final(sql::AggFunc f) const {
    switch (f) {
      case sql::AggFunc::kCount:
        return Value::Int(count);
      case sql::AggFunc::kSum:
        if (count == 0) return Value::Null();
        return sum_is_int ? Value::Int(isum) : Value::Real(dsum);
      case sql::AggFunc::kMin:
        return has_minmax ? min_v : Value::Null();
      case sql::AggFunc::kMax:
        return has_minmax ? max_v : Value::Null();
      case sql::AggFunc::kAvg: {
        if (count == 0) return Value::Null();
        double total = sum_is_int ? static_cast<double>(isum) : dsum;
        return Value::Real(total / static_cast<double>(count));
      }
      case sql::AggFunc::kNone:
        break;
    }
    return Value::Null();
  }
};

struct RecordLess {
  bool operator()(const Record& a, const Record& b) const {
    return CompareRecords(a, b) < 0;
  }
};

Status SortAndLimit(const sql::SelectStmt& stmt, QueryTable* out) {
  if (!stmt.order_by.empty()) {
    std::vector<int> idx;
    std::vector<bool> desc;
    for (const sql::OrderKey& key : stmt.order_by) {
      int found = -1;
      for (size_t i = 0; i < out->columns.size(); ++i) {
        if (EqualsIgnoreCase(out->columns[i], key.column)) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found < 0) {
        return Status::InvalidArgument("ORDER BY unknown column: " +
                                       key.column);
      }
      idx.push_back(found);
      desc.push_back(key.descending);
    }
    std::stable_sort(out->rows.begin(), out->rows.end(),
                     [&](const Record& a, const Record& b) {
                       for (size_t k = 0; k < idx.size(); ++k) {
                         int c = Value::Compare(a[idx[k]], b[idx[k]]);
                         if (c != 0) return desc[k] ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (stmt.limit >= 0 &&
      out->rows.size() > static_cast<size_t>(stmt.limit)) {
    out->rows.resize(static_cast<size_t>(stmt.limit));
  }
  return Status::Ok();
}

}  // namespace

std::string QueryTable::ToText(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < columns.size(); ++i) {
      std::string cell = i < rows[r].size() ? rows[r][i].ToString() : "";
      widths[i] = std::max(widths[i], cell.size());
      cells[r].push_back(std::move(cell));
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < columns.size(); ++i) {
      out += "| ";
      const std::string& cell = i < row.size() ? row[i] : "";
      out += cell;
      out.append(widths[i] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(columns);
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    out.append(widths[i] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : cells) emit_row(row);
  if (rows.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - shown);
  }
  return out;
}

void MetaQuerySession::Register(const std::string& name,
                                std::shared_ptr<Relation> relation) {
  relations_[ToLower(name)] = std::move(relation);
  display_names_[ToLower(name)] = name;
}

Status MetaQuerySession::RegisterCarve(const CarveResult& carve,
                                       const std::string& prefix) {
  for (const auto& [object_id, schema] : carve.schemas) {
    auto relation = MakeCarvedRelation(carve, schema.name);
    if (!relation.ok()) continue;
    Register(prefix + schema.name, std::move(relation).value());
  }
  return Status::Ok();
}

Status MetaQuerySession::RegisterDatabase(Database* db) {
  for (const auto& [key, info] : db->catalog().tables()) {
    DBFA_ASSIGN_OR_RETURN(auto relation,
                          MakeLiveRelation(db, info.schema.name));
    Register(info.schema.name, std::move(relation));
  }
  return Status::Ok();
}

std::vector<std::string> MetaQuerySession::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [key, name] : display_names_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<Relation>> MetaQuerySession::Lookup(
    const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return it->second;
}

Result<QueryTable> MetaQuerySession::Query(const std::string& select_sql) {
  DBFA_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(select_sql));
  auto* select = std::get_if<sql::SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("meta-queries must be SELECT statements");
  }
  return Execute(*select);
}

Result<QueryTable> MetaQuerySession::Execute(const sql::SelectStmt& stmt) {
  // 1. FROM + JOINs -> frame-concatenated working rows.
  DBFA_ASSIGN_OR_RETURN(auto base, Lookup(stmt.from.table));
  FrameSet frames;
  frames.Add(stmt.from.EffectiveName(), base->columns());
  std::vector<Record> rows;
  DBFA_RETURN_IF_ERROR(base->Scan([&](const Record& r) {
    rows.push_back(r);
    return Status::Ok();
  }));

  for (const sql::JoinClause& join : stmt.joins) {
    DBFA_ASSIGN_OR_RETURN(auto right, Lookup(join.table.table));
    FrameSet right_frame;
    right_frame.Add(join.table.EffectiveName(), right->columns());
    // Decide which join column belongs to the already-joined side.
    std::string left_col = join.left_column;
    std::string right_col = join.right_column;
    if (!frames.Resolve(left_col).has_value()) std::swap(left_col, right_col);
    auto left_idx = frames.Resolve(left_col);
    auto right_idx = right_frame.Resolve(right_col);
    if (!left_idx.has_value() || !right_idx.has_value()) {
      return Status::InvalidArgument(
          StrFormat("cannot resolve join condition %s = %s",
                    join.left_column.c_str(), join.right_column.c_str()));
    }
    // Build hash table over the right relation.
    std::unordered_multimap<size_t, Record> hash;
    DBFA_RETURN_IF_ERROR(right->Scan([&](const Record& r) {
      const Value& key = r[*right_idx];
      if (!key.is_null()) hash.emplace(key.Hash(), r);
      return Status::Ok();
    }));
    std::vector<Record> joined;
    for (const Record& left_row : rows) {
      const Value& key = left_row[*left_idx];
      if (key.is_null()) continue;
      auto [lo, hi] = hash.equal_range(key.Hash());
      for (auto it = lo; it != hi; ++it) {
        if (Value::Compare(it->second[*right_idx], key) != 0) continue;
        Record combined = left_row;
        combined.insert(combined.end(), it->second.begin(),
                        it->second.end());
        joined.push_back(std::move(combined));
      }
    }
    rows = std::move(joined);
    frames.Add(join.table.EffectiveName(), right->columns());
  }

  // 2. WHERE.
  if (stmt.where != nullptr) {
    std::vector<Record> kept;
    for (Record& row : rows) {
      FrameBinding binding(frames, row);
      DBFA_ASSIGN_OR_RETURN(bool pass,
                            sql::EvalPredicate(*stmt.where, binding));
      if (pass) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  QueryTable out;
  // 3a. Aggregation path.
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star && item.agg == sql::AggFunc::kNone) {
        return Status::InvalidArgument("SELECT * with aggregates");
      }
      out.columns.push_back(item.OutputName());
    }
    std::map<Record, std::pair<Record, std::vector<Accumulator>>, RecordLess>
        groups;  // key -> (first row, accumulators)
    for (const Record& row : rows) {
      FrameBinding binding(frames, row);
      Record key;
      for (const std::string& col : stmt.group_by) {
        auto v = binding.Lookup(col);
        if (!v.has_value()) {
          return Status::InvalidArgument("GROUP BY unknown column: " + col);
        }
        key.push_back(*v);
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups
                 .emplace(std::move(key),
                          std::make_pair(row, std::vector<Accumulator>(
                                                  stmt.items.size())))
                 .first;
      }
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const sql::SelectItem& item = stmt.items[i];
        if (item.agg == sql::AggFunc::kNone) continue;
        if (item.star) {
          it->second.second[i].Add(Value::Int(1));  // COUNT(*)
          continue;
        }
        DBFA_ASSIGN_OR_RETURN(Value v, sql::Eval(*item.expr, binding));
        it->second.second[i].Add(v);
      }
    }
    if (groups.empty() && stmt.group_by.empty()) {
      // Aggregates over an empty input produce one row.
      Record row;
      Accumulator empty;
      for (const sql::SelectItem& item : stmt.items) {
        if (item.agg == sql::AggFunc::kNone) {
          return Status::InvalidArgument(
              "non-aggregate item over empty ungrouped input");
        }
        row.push_back(empty.Final(item.agg));
      }
      out.rows.push_back(std::move(row));
    }
    for (auto& [key, group] : groups) {
      Record row;
      FrameBinding binding(frames, group.first);
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const sql::SelectItem& item = stmt.items[i];
        if (item.agg != sql::AggFunc::kNone) {
          row.push_back(group.second[i].Final(item.agg));
        } else {
          // Non-aggregate items take their value from the group's
          // representative row (valid for grouped columns).
          DBFA_ASSIGN_OR_RETURN(Value v, sql::Eval(*item.expr, binding));
          row.push_back(std::move(v));
        }
      }
      out.rows.push_back(std::move(row));
    }
    DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out));
    return out;
  }

  // 3b. Plain projection.
  std::vector<const sql::Expr*> exprs;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (const FrameSet::Frame& f : frames.frames) {
        for (const std::string& c : f.cols) out.columns.push_back(c);
      }
      exprs.push_back(nullptr);
    } else {
      out.columns.push_back(item.OutputName());
      exprs.push_back(item.expr.get());
    }
  }
  for (const Record& row : rows) {
    Record projected;
    FrameBinding binding(frames, row);
    for (const sql::Expr* e : exprs) {
      if (e == nullptr) {
        projected.insert(projected.end(), row.begin(), row.end());
      } else {
        DBFA_ASSIGN_OR_RETURN(Value v, sql::Eval(*e, binding));
        projected.push_back(std::move(v));
      }
    }
    out.rows.push_back(std::move(projected));
  }
  DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out));
  return out;
}

}  // namespace dbfa
