#include "metaquery/session.h"

#include <algorithm>

#include "common/strings.h"
#include "metaquery/batch_executor.h"
#include "metaquery/reference_executor.h"
#include "metaquery/spill_executor.h"

namespace dbfa {

std::string QueryTable::ToText(size_t max_rows) const {
  size_t shown = std::min(rows.size(), max_rows);
  // Pass 1: column widths via DisplayWidth() — no cell is ever rendered to
  // a temporary string in either pass, so the only allocation the whole
  // rendering performs is the single reserve of `out` below.
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < columns.size() && i < rows[r].size(); ++i) {
      widths[i] = std::max(widths[i], rows[r][i].DisplayWidth());
    }
  }
  // Every emitted line has the same width; reserve the whole rendering up
  // front so repeated appends never reallocate.
  size_t line = 2;  // trailing "|\n"
  for (size_t w : widths) line += w + 3;
  std::string out;
  out.reserve(line * (shown + 2) + 48);
  // Pass 2: append cells straight into `out` and pad to the column width.
  auto pad_cell = [&](size_t rendered, size_t i) {
    out.append(widths[i] - rendered + 1, ' ');
  };
  for (size_t i = 0; i < columns.size(); ++i) {
    out += "| ";
    out += columns[i];
    pad_cell(columns[i].size(), i);
  }
  out += "|\n|";
  for (size_t i = 0; i < columns.size(); ++i) {
    out.append(widths[i] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < columns.size(); ++i) {
      out += "| ";
      size_t before = out.size();
      if (i < rows[r].size()) rows[r][i].AppendDisplayTo(&out);
      pad_cell(out.size() - before, i);
    }
    out += "|\n";
  }
  if (rows.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - shown);
  }
  return out;
}

MetaQuerySession::MetaQuerySession(MetaQueryOptions options)
    : options_(options) {}

void MetaQuerySession::set_options(const MetaQueryOptions& options) {
  if (options.num_threads != options_.num_threads) {
    MutexLock lock(&pool_mu_);
    pool_.reset();
  }
  options_ = options;
}

ThreadPool* MetaQuerySession::PoolForQuery() {
  size_t threads = options_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                             : options_.num_threads;
  if (threads <= 1) return nullptr;
  MutexLock lock(&pool_mu_);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads);
  return pool_.get();
}

void MetaQuerySession::Register(const std::string& name,
                                std::shared_ptr<Relation> relation) {
  relations_[ToLower(name)] = std::move(relation);
  display_names_[ToLower(name)] = name;
}

Status MetaQuerySession::RegisterCarve(const CarveResult& carve,
                                       const std::string& prefix,
                                       std::vector<std::string>* skipped) {
  for (const auto& [object_id, schema] : carve.schemas) {
    // MakeCarvedRelation resolves by name; a same-named schema carved
    // earlier (dropped-and-recreated table) would silently shadow this
    // object's records.
    if (carve.ObjectIdByName(schema.name) != object_id) {
      if (skipped != nullptr) {
        skipped->push_back(StrFormat(
            "%s (object %u): shadowed by an earlier carved schema with the "
            "same name",
            schema.name.c_str(), object_id));
      }
      continue;
    }
    auto relation = MakeCarvedRelation(carve, schema.name);
    if (!relation.ok()) {
      if (skipped != nullptr) {
        skipped->push_back(StrFormat("%s (object %u): %s",
                                     schema.name.c_str(), object_id,
                                     relation.status().ToString().c_str()));
      }
      continue;
    }
    Register(prefix + schema.name, std::move(relation).value());
  }
  return Status::Ok();
}

Status MetaQuerySession::RegisterDatabase(Database* db) {
  for (const auto& [key, info] : db->catalog().tables()) {
    DBFA_ASSIGN_OR_RETURN(auto relation,
                          MakeLiveRelation(db, info.schema.name));
    Register(info.schema.name, std::move(relation));
  }
  return Status::Ok();
}

std::vector<std::string> MetaQuerySession::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [key, name] : display_names_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<Relation>> MetaQuerySession::Lookup(
    const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return it->second;
}

Result<QueryTable> MetaQuerySession::Query(const std::string& select_sql) {
  DBFA_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(select_sql));
  auto* select = std::get_if<sql::SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("meta-queries must be SELECT statements");
  }
  return Execute(*select);
}

bool MetaQuerySession::SpillEngaged(const sql::SelectStmt& stmt) const {
  switch (options_.spill_policy) {
    case SpillPolicy::kAlways:
      return true;
    case SpillPolicy::kNever:
      return false;
    case SpillPolicy::kAuto:
      break;
  }
  size_t working_set = 0;
  auto add = [&](const std::string& table) {
    auto relation = Lookup(table);
    if (!relation.ok()) return false;  // executor reports the lookup error
    std::optional<size_t> estimate = (*relation)->EstimatedBytes();
    if (!estimate.has_value()) return false;  // unknown -> over budget
    working_set += *estimate;
    return true;
  };
  if (!add(stmt.from.table)) return true;
  for (const sql::JoinClause& join : stmt.joins) {
    if (!add(join.table.table)) return true;
  }
  // Joins and aggregation build intermediates comparable in size to their
  // inputs; doubling the base-relation footprint is the working-set model.
  return working_set > options_.memory_budget_bytes / 2;
}

Result<QueryTable> MetaQuerySession::Execute(const sql::SelectStmt& stmt) {
  metaquery_internal::RelationResolver lookup =
      [this](const std::string& name) { return Lookup(name); };
  last_spill_stats_ = {};
  last_batch_stats_ = {};
  if (options_.use_reference) {
    last_engine_ = "reference";
    return metaquery_internal::ExecuteReference(stmt, lookup);
  }
  if (options_.memory_budget_bytes > 0 && SpillEngaged(stmt)) {
    last_engine_ = "out-of-core";
    return metaquery_internal::ExecuteOutOfCore(
        stmt, lookup, options_, PoolForQuery(), &last_spill_stats_);
  }
  last_engine_ = "batched";
  return metaquery_internal::ExecuteBatched(stmt, lookup, options_.batch_rows,
                                            PoolForQuery(),
                                            options_.columnar_filter,
                                            &last_batch_stats_);
}

}  // namespace dbfa
