// Relations for the meta-query engine (Section II-C): uniform tabular views
// over carved artifacts and live tables, so investigators can run SQL that
// "no DBMS supports" — e.g. selecting delete-marked rows, or joining a
// disk carve against a RAM carve.
#ifndef DBFA_METAQUERY_RELATION_H_
#define DBFA_METAQUERY_RELATION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/artifacts.h"
#include "engine/database.h"
#include "sql/row_codec.h"

namespace dbfa {

/// A named, scannable set of rows.
class Relation {
 public:
  virtual ~Relation() = default;
  virtual const std::vector<std::string>& columns() const = 0;
  virtual Status Scan(
      const std::function<Status(const Record&)>& fn) const = 0;

  /// Deterministic estimate of the relation's materialized row footprint,
  /// used by MetaQueryOptions spill_policy kAuto to size a query's working
  /// set. nullopt means unknown (e.g. live tables, whose rows are read at
  /// scan time); kAuto treats unknown as over-budget and spills.
  virtual std::optional<size_t> EstimatedBytes() const { return std::nullopt; }
};

/// Materialized relation.
class VectorRelation : public Relation {
 public:
  VectorRelation(std::vector<std::string> columns, std::vector<Record> rows)
      : columns_(std::move(columns)), rows_(std::move(rows)) {
    for (const Record& r : rows_) {
      estimated_bytes_ += sql::EstimateRecordMemoryBytes(r);
    }
  }

  const std::vector<std::string>& columns() const override {
    return columns_;
  }
  Status Scan(const std::function<Status(const Record&)>& fn) const override {
    for (const Record& r : rows_) {
      DBFA_RETURN_IF_ERROR(fn(r));
    }
    return Status::Ok();
  }
  const std::vector<Record>& rows() const { return rows_; }
  std::optional<size_t> EstimatedBytes() const override {
    return estimated_bytes_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<Record> rows_;
  size_t estimated_bytes_ = 0;
};

/// Materialized view over one carved table. Keeps the carve's string pool
/// alive — carved rows borrow interned string cells from it (StringRef
/// lifetime rule, docs/columnar_memory.md) — and reports an exact
/// EstimatedBytes(): the flat row footprint plus the pool's arena/table
/// accounting, counted once instead of once per occurrence, so
/// spill_policy kAuto routes on real numbers. The pool is shared by every
/// relation carved from the same CarveResult, making the estimate
/// conservative per relation but never wrong in aggregate.
class ArtifactRelation : public VectorRelation {
 public:
  ArtifactRelation(std::vector<std::string> columns, std::vector<Record> rows,
                   std::shared_ptr<const StringPool> pool)
      : VectorRelation(std::move(columns), std::move(rows)),
        pool_(std::move(pool)) {}

  std::optional<size_t> EstimatedBytes() const override {
    size_t bytes = VectorRelation::EstimatedBytes().value_or(0);
    if (pool_ != nullptr) bytes += pool_->BytesUsed();
    return bytes;
  }

  /// The interning pool backing this relation's string cells; null when the
  /// carve ran with intern_strings off.
  const StringPool* string_pool() const { return pool_.get(); }

 private:
  std::shared_ptr<const StringPool> pool_;
};

/// Pseudo-columns appended to every carved relation, after the table's own
/// columns: RowStatus ('ACTIVE'/'DELETED'), PageId, Slot, RowId, PageLsn.
inline constexpr const char* kRowStatusColumn = "RowStatus";

/// Builds a relation over one carved table (schema columns + pseudo
/// columns). Fails when the table's schema was not reconstructed.
Result<std::shared_ptr<Relation>> MakeCarvedRelation(
    const CarveResult& carve, const std::string& table);

/// Builds a relation over a live MiniDB table (active rows only — what the
/// DBMS itself would show). `db` must outlive the relation.
Result<std::shared_ptr<Relation>> MakeLiveRelation(Database* db,
                                                   const std::string& table);

}  // namespace dbfa

#endif  // DBFA_METAQUERY_RELATION_H_
