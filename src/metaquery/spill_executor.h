// The out-of-core meta-query executor: the same logical pipeline as the
// batched engine (scan -> join -> filter -> aggregate/project -> order/
// limit), but every unbounded intermediate is governed by
// MetaQueryOptions::memory_budget_bytes. Row sets that outgrow the budget
// move to checksummed spill files (common/spill_manager.h); ORDER BY runs
// an external merge sort, joins fall back to a recursive grace hash join,
// and GROUP BY re-partitions oversized group tables.
//
// The engine is bit-identical to the batched executor for every query, at
// every (budget, thread count, batch size) combination — the construction
// is documented in docs/spilling.md and enforced by the three-way
// differential test.
#ifndef DBFA_METAQUERY_SPILL_EXECUTOR_H_
#define DBFA_METAQUERY_SPILL_EXECUTOR_H_

#include "common/spill_manager.h"
#include "common/thread_pool.h"
#include "metaquery/exec_common.h"
#include "metaquery/session.h"

namespace dbfa::metaquery_internal {

/// Executes `stmt` under options.memory_budget_bytes (> 0). Spill files
/// live in a unique directory under options.spill_dir (system temp when
/// empty) and are removed on every exit path. When `stats` is non-null it
/// receives the query's spill counters.
Result<QueryTable> ExecuteOutOfCore(const sql::SelectStmt& stmt,
                                    const RelationResolver& lookup,
                                    const MetaQueryOptions& options,
                                    ThreadPool* pool, SpillStats* stats);

}  // namespace dbfa::metaquery_internal

#endif  // DBFA_METAQUERY_SPILL_EXECUTOR_H_
