// Internals shared by the three meta-query executors: the batched engine
// (batch_executor.cc, the default), the out-of-core engine
// (spill_executor.cc, selected by MetaQueryOptions::memory_budget_bytes),
// and the tuple-at-a-time reference implementation (reference_executor.cc,
// kept for differential testing). Not part of the public metaquery API.
//
// The batched and out-of-core engines must produce bit-identical results,
// so every piece of per-row semantics they share — join probing, group
// accumulation, group emission, projection, ORDER BY comparison — lives
// here and is compiled exactly once.
#ifndef DBFA_METAQUERY_EXEC_COMMON_H_
#define DBFA_METAQUERY_EXEC_COMMON_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "metaquery/relation.h"
#include "metaquery/session.h"
#include "sql/bound_expr.h"
#include "sql/statement.h"

namespace dbfa::metaquery_internal {

/// Resolves a relation name for the executors (bound to
/// MetaQuerySession::Lookup).
using RelationResolver =
    std::function<Result<std::shared_ptr<Relation>>(const std::string&)>;

/// Column namespace of the rows flowing through the executor: one frame per
/// joined relation, rows are frame-concatenated records.
struct FrameSet {
  struct Frame {
    std::string qualifier;  // alias or table name
    std::vector<std::string> cols;
    size_t offset = 0;
  };
  std::vector<Frame> frames;
  size_t width = 0;

  void Add(const std::string& qualifier, const std::vector<std::string>& cols);

  /// Resolves "name" or "qualifier.name" to a global column index.
  std::optional<size_t> Resolve(std::string_view name) const;
};

/// Streaming aggregate state for one SELECT item.
struct Accumulator {
  int64_t count = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  double dsum = 0;
  Value min_v;
  Value max_v;
  bool has_minmax = false;

  void Add(const Value& v);

  /// Folds another accumulator in. Merging partials in input-batch order
  /// reproduces the sequential result exactly for COUNT/MIN/MAX and for
  /// integer sums; double sums re-associate (see docs/metaquery_engine.md).
  void Merge(const Accumulator& other);

  Value Final(sql::AggFunc f) const;
};

// ---- Hash wrappers ------------------------------------------------------

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return Value::Compare(a, b) == 0;
  }
};
struct RecordHasher {
  size_t operator()(const Record& r) const { return HashRecord(r); }
};
struct RecordEq {
  bool operator()(const Record& a, const Record& b) const {
    return CompareRecords(a, b) == 0;
  }
};

// ---- Batch scheduling ---------------------------------------------------

struct BatchGrid {
  size_t batch_rows = 0;
  size_t count = 0;
};

/// Batch geometry is a pure function of input size and batch_rows — never
/// of thread count — which is the root of the determinism contract.
BatchGrid MakeBatches(size_t n, size_t batch_rows);

/// Runs body(batch_index) for every batch, on the pool when available.
/// Bodies must only touch their own batch's state. The first non-OK status
/// in batch order is returned, so error reporting is deterministic.
Status ForEachBatch(ThreadPool* pool, size_t nbatches,
                    const std::function<Status(size_t)>& body);

/// Moves per-batch outputs into one vector, preserving batch order.
std::vector<Record> ConcatBatches(std::vector<std::vector<Record>> batches);

// ---- Join ----------------------------------------------------------------

/// Value-keyed buckets of right-row indices, in scan order, so equal keys
/// probe by one hash + one equality check and preserve right scan order.
using JoinTable =
    std::unordered_map<Value, std::vector<uint32_t>, ValueHasher, ValueEq>;

/// Builds the probe table over `right_rows` keyed by column `right_idx`.
/// NULL keys and rows too short to hold the column are excluded.
JoinTable BuildJoinTable(const std::vector<Record>& right_rows,
                         size_t right_idx);

/// Resolves which side of `join` belongs to the already-joined frames and
/// which to the incoming right frame.
Status ResolveJoinColumns(const FrameSet& frames, const FrameSet& right_frame,
                          const sql::JoinClause& join, size_t* left_idx,
                          size_t* right_idx);

/// Probes one left row against the table; for every surviving match calls
/// emit(combined_record). When `fused_where` is non-null it is evaluated on
/// a zero-copy left++right view before materializing the combined record.
/// Match order is right scan order within the key — the contract both
/// engines share.
template <typename Emit>
Status ProbeJoinRow(const Record& left_row, size_t left_idx,
                    const JoinTable& table,
                    const std::vector<Record>& right_rows,
                    const sql::BoundExpr* fused_where, Emit&& emit) {
  if (left_idx >= left_row.size()) return Status::Ok();
  const Value& key = left_row[left_idx];
  if (key.is_null()) return Status::Ok();
  auto it = table.find(key);
  if (it == table.end()) return Status::Ok();
  for (uint32_t ri : it->second) {
    const Record& right_row = right_rows[ri];
    if (fused_where != nullptr) {
      DBFA_ASSIGN_OR_RETURN(
          bool pass,
          sql::EvalBoundPredicate(*fused_where,
                                  sql::JoinRowView{&left_row, &right_row}));
      if (!pass) continue;
    }
    Record combined;
    combined.reserve(left_row.size() + right_row.size());
    combined.insert(combined.end(), left_row.begin(), left_row.end());
    combined.insert(combined.end(), right_row.begin(), right_row.end());
    DBFA_RETURN_IF_ERROR(emit(std::move(combined)));
  }
  return Status::Ok();
}

// ---- Aggregation ---------------------------------------------------------

/// Plan-time aggregation state: output column names, bound GROUP BY key
/// indices, bound item expressions (null entries for expression-less items
/// such as COUNT(*)).
struct AggPlan {
  std::vector<size_t> key_idx;
  std::vector<sql::BoundExprPtr> items;
};

/// Validates the SELECT list, emits output column names, resolves GROUP BY
/// keys and binds item expressions — the shared aggregation "plan" step.
Result<AggPlan> PlanAggregation(const sql::SelectStmt& stmt,
                                const FrameSet& frames,
                                std::vector<std::string>* out_columns);

/// Extracts the GROUP BY key of `row` (with the same unknown-column error
/// the engines have always produced for rows narrower than the key).
Status MakeGroupKey(const sql::SelectStmt& stmt, const AggPlan& plan,
                    const Record& row, Record* key);

/// Folds one row into the per-item accumulators (sized to stmt.items).
Status AccumulateRow(const sql::SelectStmt& stmt, const AggPlan& plan,
                     const Record& row, std::vector<Accumulator>* accs);

/// Produces the output row of one finished group: aggregates finalize,
/// non-aggregate items evaluate against the group's representative row.
Status EmitGroupRow(const sql::SelectStmt& stmt, const AggPlan& plan,
                    const Record& rep, const std::vector<Accumulator>& accs,
                    Record* out);

/// The single output row of an aggregate query over empty ungrouped input
/// (errors when a non-aggregate item is present).
Status EmitEmptyAggregateRow(const sql::SelectStmt& stmt, Record* out);

/// The batched in-memory GROUP BY operator: per-batch partial maps merged
/// in batch order, groups emitted sorted by key. Appends result rows to
/// *out_rows. Used verbatim by the batched engine and by the out-of-core
/// engine when its input fits the budget.
Status AggregateRowsInMemory(const sql::SelectStmt& stmt, const AggPlan& plan,
                             const std::vector<Record>& rows,
                             size_t batch_rows, ThreadPool* pool,
                             std::vector<Record>* out_rows);

// ---- Projection ----------------------------------------------------------

/// Bound SELECT items for the non-aggregate path; null entries mark '*'
/// expansions. Emits output column names.
struct ProjectionPlan {
  std::vector<sql::BoundExprPtr> exprs;
};

Result<ProjectionPlan> PlanProjection(const sql::SelectStmt& stmt,
                                      const FrameSet& frames,
                                      std::vector<std::string>* out_columns);

Status ProjectRow(const ProjectionPlan& plan, const Record& row, Record* out);

// ---- ORDER BY / LIMIT ----------------------------------------------------

/// Resolves ORDER BY columns against the output column names.
Status ResolveOrderKeys(const sql::SelectStmt& stmt,
                        const std::vector<std::string>& columns,
                        std::vector<int>* idx, std::vector<bool>* desc);

/// Strict-weak ordering for ORDER BY: true when a sorts before b.
bool OrderKeyLess(const Record& a, const Record& b,
                  const std::vector<int>& idx, const std::vector<bool>& desc);

/// Applies ORDER BY (resolved once against the output column names) and
/// LIMIT to a finished result table.
Status SortAndLimit(const sql::SelectStmt& stmt,
                    std::vector<std::string>* columns,
                    std::vector<Record>* rows);

}  // namespace dbfa::metaquery_internal

#endif  // DBFA_METAQUERY_EXEC_COMMON_H_
