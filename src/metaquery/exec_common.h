// Internals shared by the two meta-query executors: the batched engine
// (batch_executor.cc, the default) and the tuple-at-a-time reference
// implementation (reference_executor.cc, kept for differential testing).
// Not part of the public metaquery API.
#ifndef DBFA_METAQUERY_EXEC_COMMON_H_
#define DBFA_METAQUERY_EXEC_COMMON_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "metaquery/relation.h"
#include "sql/statement.h"

namespace dbfa::metaquery_internal {

/// Resolves a relation name for the executors (bound to
/// MetaQuerySession::Lookup).
using RelationResolver =
    std::function<Result<std::shared_ptr<Relation>>(const std::string&)>;

/// Column namespace of the rows flowing through the executor: one frame per
/// joined relation, rows are frame-concatenated records.
struct FrameSet {
  struct Frame {
    std::string qualifier;  // alias or table name
    std::vector<std::string> cols;
    size_t offset = 0;
  };
  std::vector<Frame> frames;
  size_t width = 0;

  void Add(const std::string& qualifier, const std::vector<std::string>& cols);

  /// Resolves "name" or "qualifier.name" to a global column index.
  std::optional<size_t> Resolve(std::string_view name) const;
};

/// Streaming aggregate state for one SELECT item.
struct Accumulator {
  int64_t count = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  double dsum = 0;
  Value min_v;
  Value max_v;
  bool has_minmax = false;

  void Add(const Value& v);

  /// Folds another accumulator in. Merging partials in input-batch order
  /// reproduces the sequential result exactly for COUNT/MIN/MAX and for
  /// integer sums; double sums re-associate (see docs/metaquery_engine.md).
  void Merge(const Accumulator& other);

  Value Final(sql::AggFunc f) const;
};

/// Applies ORDER BY (resolved once against the output column names) and
/// LIMIT to a finished result table.
Status SortAndLimit(const sql::SelectStmt& stmt,
                    std::vector<std::string>* columns,
                    std::vector<Record>* rows);

}  // namespace dbfa::metaquery_internal

#endif  // DBFA_METAQUERY_EXEC_COMMON_H_
