#include "metaquery/reference_executor.h"

#include <map>
#include <unordered_map>
#include <utility>

#include "common/strings.h"

namespace dbfa::metaquery_internal {
namespace {

/// Per-row binding that re-resolves names on every lookup — the cost the
/// batched executor's plan-time binding removes.
class FrameBinding : public sql::ColumnBinding {
 public:
  FrameBinding(const FrameSet& frames, const Record& row)
      : frames_(frames), row_(row) {}

  std::optional<Value> Lookup(std::string_view name) const override {
    auto idx = frames_.Resolve(name);
    if (!idx.has_value() || *idx >= row_.size()) return std::nullopt;
    return row_[*idx];
  }

 private:
  const FrameSet& frames_;
  const Record& row_;
};

struct RecordLess {
  bool operator()(const Record& a, const Record& b) const {
    return CompareRecords(a, b) < 0;
  }
};

}  // namespace

Result<QueryTable> ExecuteReference(const sql::SelectStmt& stmt,
                                    const RelationResolver& lookup) {
  // 1. FROM + JOINs -> frame-concatenated working rows.
  DBFA_ASSIGN_OR_RETURN(auto base, lookup(stmt.from.table));
  FrameSet frames;
  frames.Add(stmt.from.EffectiveName(), base->columns());
  std::vector<Record> rows;
  DBFA_RETURN_IF_ERROR(base->Scan([&](const Record& r) {
    rows.push_back(r);
    return Status::Ok();
  }));

  for (const sql::JoinClause& join : stmt.joins) {
    DBFA_ASSIGN_OR_RETURN(auto right, lookup(join.table.table));
    FrameSet right_frame;
    right_frame.Add(join.table.EffectiveName(), right->columns());
    // Decide which join column belongs to the already-joined side.
    std::string left_col = join.left_column;
    std::string right_col = join.right_column;
    if (!frames.Resolve(left_col).has_value()) std::swap(left_col, right_col);
    auto left_idx = frames.Resolve(left_col);
    auto right_idx = right_frame.Resolve(right_col);
    if (!left_idx.has_value() || !right_idx.has_value()) {
      return Status::InvalidArgument(
          StrFormat("cannot resolve join condition %s = %s",
                    join.left_column.c_str(), join.right_column.c_str()));
    }
    // Build hash buckets over the right relation, in scan order.
    std::unordered_map<size_t, std::vector<Record>> hash;
    DBFA_RETURN_IF_ERROR(right->Scan([&](const Record& r) {
      if (*right_idx < r.size()) {
        const Value& key = r[*right_idx];
        if (!key.is_null()) hash[key.Hash()].push_back(r);
      }
      return Status::Ok();
    }));
    std::vector<Record> joined;
    for (const Record& left_row : rows) {
      if (*left_idx >= left_row.size()) continue;
      const Value& key = left_row[*left_idx];
      if (key.is_null()) continue;
      auto it = hash.find(key.Hash());
      if (it == hash.end()) continue;
      for (const Record& right_row : it->second) {
        if (Value::Compare(right_row[*right_idx], key) != 0) continue;
        Record combined = left_row;
        combined.insert(combined.end(), right_row.begin(), right_row.end());
        joined.push_back(std::move(combined));
      }
    }
    rows = std::move(joined);
    frames.Add(join.table.EffectiveName(), right->columns());
  }

  // 2. WHERE.
  if (stmt.where != nullptr) {
    std::vector<Record> kept;
    for (Record& row : rows) {
      FrameBinding binding(frames, row);
      DBFA_ASSIGN_OR_RETURN(bool pass,
                            sql::EvalPredicate(*stmt.where, binding));
      if (pass) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  QueryTable out;
  // 3a. Aggregation path.
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star && item.agg == sql::AggFunc::kNone) {
        return Status::InvalidArgument("SELECT * with aggregates");
      }
      out.columns.push_back(item.OutputName());
    }
    std::map<Record, std::pair<Record, std::vector<Accumulator>>, RecordLess>
        groups;  // key -> (first row, accumulators)
    for (const Record& row : rows) {
      FrameBinding binding(frames, row);
      Record key;
      for (const std::string& col : stmt.group_by) {
        auto v = binding.Lookup(col);
        if (!v.has_value()) {
          return Status::InvalidArgument("GROUP BY unknown column: " + col);
        }
        key.push_back(*v);
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups
                 .emplace(std::move(key),
                          std::make_pair(row, std::vector<Accumulator>(
                                                  stmt.items.size())))
                 .first;
      }
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const sql::SelectItem& item = stmt.items[i];
        if (item.agg == sql::AggFunc::kNone) continue;
        if (item.star) {
          it->second.second[i].Add(Value::Int(1));  // COUNT(*)
          continue;
        }
        DBFA_ASSIGN_OR_RETURN(Value v, sql::Eval(*item.expr, binding));
        it->second.second[i].Add(v);
      }
    }
    if (groups.empty() && stmt.group_by.empty()) {
      // Aggregates over an empty input produce one row.
      Record row;
      Accumulator empty;
      for (const sql::SelectItem& item : stmt.items) {
        if (item.agg == sql::AggFunc::kNone) {
          return Status::InvalidArgument(
              "non-aggregate item over empty ungrouped input");
        }
        row.push_back(empty.Final(item.agg));
      }
      out.rows.push_back(std::move(row));
    }
    for (auto& [key, group] : groups) {
      Record row;
      FrameBinding binding(frames, group.first);
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const sql::SelectItem& item = stmt.items[i];
        if (item.agg != sql::AggFunc::kNone) {
          row.push_back(group.second[i].Final(item.agg));
        } else {
          // Non-aggregate items take their value from the group's
          // representative row (valid for grouped columns).
          DBFA_ASSIGN_OR_RETURN(Value v, sql::Eval(*item.expr, binding));
          row.push_back(std::move(v));
        }
      }
      out.rows.push_back(std::move(row));
    }
    DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out.columns, &out.rows));
    return out;
  }

  // 3b. Plain projection.
  std::vector<const sql::Expr*> exprs;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (const FrameSet::Frame& f : frames.frames) {
        for (const std::string& c : f.cols) out.columns.push_back(c);
      }
      exprs.push_back(nullptr);
    } else {
      out.columns.push_back(item.OutputName());
      exprs.push_back(item.expr.get());
    }
  }
  for (const Record& row : rows) {
    Record projected;
    FrameBinding binding(frames, row);
    for (const sql::Expr* e : exprs) {
      if (e == nullptr) {
        projected.insert(projected.end(), row.begin(), row.end());
      } else {
        DBFA_ASSIGN_OR_RETURN(Value v, sql::Eval(*e, binding));
        projected.push_back(std::move(v));
      }
    }
    out.rows.push_back(std::move(projected));
  }
  DBFA_RETURN_IF_ERROR(SortAndLimit(stmt, &out.columns, &out.rows));
  return out;
}

}  // namespace dbfa::metaquery_internal
