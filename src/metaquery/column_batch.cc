#include "metaquery/column_batch.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace dbfa::metaquery_internal {
namespace {

constexpr uint64_t kAllOnes = ~uint64_t{0};

inline void SetNullBit(std::vector<uint64_t>* bm, size_t r) {
  (*bm)[r >> 6] |= uint64_t{1} << (r & 63);
}

inline int Sign(int v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

/// Truth table for one CompareOp over the three-way result of
/// Value::Compare; Holds(t, c) replaces the per-row op switch in the tight
/// loops below.
struct OpTable {
  bool lt = false;
  bool eq = false;
  bool gt = false;
};

OpTable MakeOpTable(sql::CompareOp op) {
  switch (op) {
    case sql::CompareOp::kEq:
      return {false, true, false};
    case sql::CompareOp::kNe:
      return {true, false, true};
    case sql::CompareOp::kLt:
      return {true, false, false};
    case sql::CompareOp::kLe:
      return {true, true, false};
    case sql::CompareOp::kGt:
      return {false, false, true};
    case sql::CompareOp::kGe:
      return {false, true, true};
  }
  return {};
}

inline bool Holds(const OpTable& t, int c) {
  return c < 0 ? t.lt : (c > 0 ? t.gt : t.eq);
}

/// Content equality of two string refs, using the interning metadata as
/// progressively cheaper gates: same pool -> id equality is definitive;
/// otherwise a length gate, then a cached-hash gate when both sides carry
/// one (pool_id != 0), then memcmp.
inline bool StringRefEq(const StringRef& a, const StringRef& b) {
  if (a.pool_id != 0 && a.pool_id == b.pool_id) return a.id == b.id;
  if (a.len != b.len) return false;
  if (a.pool_id != 0 && b.pool_id != 0 && a.hash != b.hash) return false;
  return std::memcmp(a.data, b.data, a.len) == 0;
}

}  // namespace

ColumnBatch::Column ColumnBatch::BuildColumn(const std::vector<Record>& rows,
                                             size_t begin, size_t end,
                                             size_t c, bool want_values) {
  Column col;
  col.built = true;
  const size_t n = end - begin;
  bool has_int = false;
  bool has_double = false;
  bool has_string = false;
  bool oversized = false;
  for (size_t r = begin; r < end; ++r) {
    const Value& v = rows[r][c];
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        has_int = true;
        break;
      case ValueType::kDouble:
        has_double = true;
        break;
      case ValueType::kString:
        has_string = true;
        if (v.as_string().size() >
            size_t{std::numeric_limits<uint32_t>::max()}) {
          oversized = true;  // cannot fit a borrowed StringRef
        }
        break;
    }
  }
  col.nulls.assign((n + 63) / 64, 0);
  const int kinds =
      (has_int ? 1 : 0) + (has_double ? 1 : 0) + (has_string ? 1 : 0);
  if (kinds == 0) {
    col.type = ColType::kNullOnly;
    std::fill(col.nulls.begin(), col.nulls.end(), kAllOnes);
    return col;
  }
  if (kinds > 1 || (has_string && oversized)) {
    col.type = ColType::kValue;
    if (want_values) {
      col.values.reserve(n);
      for (size_t r = begin; r < end; ++r) col.values.push_back(rows[r][c]);
    }
    for (size_t r = begin; r < end; ++r) {
      if (rows[r][c].is_null()) SetNullBit(&col.nulls, r - begin);
    }
    return col;
  }
  if (has_int) {
    col.type = ColType::kInt;
    col.ints.resize(n);
    for (size_t r = begin; r < end; ++r) {
      const Value& v = rows[r][c];
      if (v.is_null()) {
        SetNullBit(&col.nulls, r - begin);
      } else {
        col.ints[r - begin] = v.as_int();
      }
    }
  } else if (has_double) {
    col.type = ColType::kDouble;
    col.doubles.resize(n);
    for (size_t r = begin; r < end; ++r) {
      const Value& v = rows[r][c];
      if (v.is_null()) {
        SetNullBit(&col.nulls, r - begin);
      } else {
        col.doubles[r - begin] = v.as_double();
      }
    }
  } else {
    col.type = ColType::kString;
    col.strings.resize(n);
    for (size_t r = begin; r < end; ++r) {
      const Value& v = rows[r][c];
      if (v.is_null()) {
        SetNullBit(&col.nulls, r - begin);
      } else if (v.is_interned()) {
        col.strings[r - begin] = v.interned_ref();
      } else {
        // Borrowed view into the owned cell; pool_id 0 marks "no cached
        // hash / no id identity", so comparisons fall through to content.
        std::string_view s = v.as_string();
        StringRef ref;
        ref.data = s.data();
        ref.len = static_cast<uint32_t>(s.size());
        col.strings[r - begin] = ref;
      }
    }
  }
  return col;
}

ColumnBatch ColumnBatch::FromRecords(const std::vector<Record>& rows,
                                     size_t begin, size_t end) {
  ColumnBatch b;
  b.rows_ = end - begin;
  const size_t width = begin < end ? rows[begin].size() : 0;
  b.cols_.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    b.cols_.push_back(BuildColumn(rows, begin, end, c, /*want_values=*/true));
  }
  return b;
}

ColumnBatch ColumnBatch::FromRecordsColumns(const std::vector<Record>& rows,
                                            size_t begin, size_t end,
                                            const std::vector<size_t>& wanted) {
  ColumnBatch b;
  b.rows_ = end - begin;
  size_t width = 0;
  for (size_t c : wanted) width = std::max(width, c + 1);
  b.cols_.resize(width);
  for (size_t c : wanted) {
    b.cols_[c] = BuildColumn(rows, begin, end, c, /*want_values=*/false);
  }
  return b;
}

void ColumnBatch::ToRecords(std::vector<Record>* out) const {
  for (size_t r = 0; r < rows_; ++r) {
    Record rec;
    rec.reserve(cols_.size());
    for (const Column& col : cols_) {
      switch (col.type) {
        case ColType::kNullOnly:
          rec.push_back(Value::Null());
          break;
        case ColType::kInt:
          rec.push_back(col.IsNull(r) ? Value::Null()
                                      : Value::Int(col.ints[r]));
          break;
        case ColType::kDouble:
          rec.push_back(col.IsNull(r) ? Value::Null()
                                      : Value::Real(col.doubles[r]));
          break;
        case ColType::kString:
          if (col.IsNull(r)) {
            rec.push_back(Value::Null());
          } else if (col.strings[r].pool_id != 0) {
            rec.push_back(Value::InternedStr(col.strings[r]));
          } else {
            rec.push_back(Value::Str(std::string(col.strings[r].view())));
          }
          break;
        case ColType::kValue:
          rec.push_back(col.values[r]);
          break;
      }
    }
    out->push_back(std::move(rec));
  }
}

namespace {

sql::CompareOp MirrorOp(sql::CompareOp op) {
  switch (op) {
    case sql::CompareOp::kLt:
      return sql::CompareOp::kGt;
    case sql::CompareOp::kLe:
      return sql::CompareOp::kGe;
    case sql::CompareOp::kGt:
      return sql::CompareOp::kLt;
    case sql::CompareOp::kGe:
      return sql::CompareOp::kLe;
    case sql::CompareOp::kEq:
    case sql::CompareOp::kNe:
      break;
  }
  return op;
}

/// Recursive worker for AnalyzeColumnarPredicate. Appends terms and
/// referenced columns to *out; returns false on any unsupported shape.
bool Decompose(const sql::BoundExpr& e, ColumnarPredicate* out) {
  using sql::ExprKind;
  switch (e.kind) {
    case ExprKind::kAnd:
      return Decompose(*e.lhs, out) && Decompose(*e.rhs, out);
    case ExprKind::kCompare: {
      const sql::BoundExpr& l = *e.lhs;
      const sql::BoundExpr& r = *e.rhs;
      const bool l_col = l.kind == ExprKind::kColumn;
      const bool r_col = r.kind == ExprKind::kColumn;
      const bool l_lit = l.kind == ExprKind::kLiteral;
      const bool r_lit = r.kind == ExprKind::kLiteral;
      // The row path materializes BOTH operands before its NULL check, so
      // every referenced column counts toward min_width even when the term
      // folds to a constant — a too-narrow row must still take the row
      // path and reproduce its width error.
      if (l_col) out->columns.push_back(l.column_index);
      if (r_col) out->columns.push_back(r.column_index);
      ColumnarTerm t;
      if (l_col && r_lit) {
        t.op = e.compare_op;
        t.col_a = l.column_index;
        t.literal = r.literal;
        t.kind = t.literal.is_null() ? ColumnarTerm::Kind::kNever
                                     : ColumnarTerm::Kind::kCompareColLit;
      } else if (l_lit && r_col) {
        // lit <op> col  ==  col <mirror(op)> lit
        t.op = MirrorOp(e.compare_op);
        t.col_a = r.column_index;
        t.literal = l.literal;
        t.kind = t.literal.is_null() ? ColumnarTerm::Kind::kNever
                                     : ColumnarTerm::Kind::kCompareColLit;
      } else if (l_col && r_col) {
        t.op = e.compare_op;
        t.col_a = l.column_index;
        t.col_b = r.column_index;
        t.kind = ColumnarTerm::Kind::kCompareColCol;
      } else if (l_lit && r_lit) {
        if (l.literal.is_null() || r.literal.is_null()) {
          t.kind = ColumnarTerm::Kind::kNever;
        } else if (Holds(MakeOpTable(e.compare_op),
                         Value::Compare(l.literal, r.literal))) {
          return true;  // constant true: contributes nothing to the AND
        } else {
          t.kind = ColumnarTerm::Kind::kNever;
        }
      } else {
        return false;  // nested expression operand
      }
      out->terms.push_back(std::move(t));
      return true;
    }
    case ExprKind::kIsNull: {
      if (e.lhs->kind != ExprKind::kColumn) return false;
      ColumnarTerm t;
      t.kind = ColumnarTerm::Kind::kIsNull;
      t.col_a = e.lhs->column_index;
      t.negated = e.negated;
      out->columns.push_back(t.col_a);
      out->terms.push_back(std::move(t));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::optional<ColumnarPredicate> AnalyzeColumnarPredicate(
    const sql::BoundExpr& e) {
  ColumnarPredicate pred;
  if (!Decompose(e, &pred)) return std::nullopt;
  std::sort(pred.columns.begin(), pred.columns.end());
  pred.columns.erase(std::unique(pred.columns.begin(), pred.columns.end()),
                     pred.columns.end());
  pred.min_width = pred.columns.empty() ? 0 : pred.columns.back() + 1;
  return pred;
}

namespace {

// dbfa:hot-loop-begin -- columnar filter kernels; no per-row std::string
// construction allowed (see tools/lint rule hot-loop-string).

void EvalCompareColLit(const ColumnarTerm& t, const ColumnBatch::Column& col,
                       size_t n, uint8_t* match) {
  const OpTable ops = MakeOpTable(t.op);
  const Value& lit = t.literal;
  const bool lit_num = lit.type() == ValueType::kInt ||
                       lit.type() == ValueType::kDouble;
  switch (col.type) {
    case ColumnBatch::ColType::kNullOnly:
      std::fill(match, match + n, uint8_t{0});  // NULL operand -> false
      return;
    case ColumnBatch::ColType::kInt: {
      if (lit.type() == ValueType::kInt) {
        const int64_t lv = lit.as_int();
        for (size_t i = 0; i < n; ++i) {
          if (match[i] == 0) continue;
          if (col.IsNull(i)) {
            match[i] = 0;
            continue;
          }
          const int64_t x = col.ints[i];
          match[i] =
              static_cast<uint8_t>(Holds(ops, x < lv ? -1 : (x > lv ? 1 : 0)));
        }
      } else if (lit.type() == ValueType::kDouble) {
        const double lv = lit.as_double();
        for (size_t i = 0; i < n; ++i) {
          if (match[i] == 0) continue;
          if (col.IsNull(i)) {
            match[i] = 0;
            continue;
          }
          const double x = static_cast<double>(col.ints[i]);
          match[i] =
              static_cast<uint8_t>(Holds(ops, x < lv ? -1 : (x > lv ? 1 : 0)));
        }
      } else {
        // Number vs string: Value::Compare orders numbers before strings,
        // so the term is a constant for every non-null cell.
        const uint8_t k = static_cast<uint8_t>(Holds(ops, -1));
        for (size_t i = 0; i < n; ++i) {
          if (match[i] != 0) match[i] = col.IsNull(i) ? uint8_t{0} : k;
        }
      }
      return;
    }
    case ColumnBatch::ColType::kDouble: {
      if (lit_num) {
        const double lv = lit.NumericValue();
        for (size_t i = 0; i < n; ++i) {
          if (match[i] == 0) continue;
          if (col.IsNull(i)) {
            match[i] = 0;
            continue;
          }
          const double x = col.doubles[i];
          match[i] =
              static_cast<uint8_t>(Holds(ops, x < lv ? -1 : (x > lv ? 1 : 0)));
        }
      } else {
        const uint8_t k = static_cast<uint8_t>(Holds(ops, -1));
        for (size_t i = 0; i < n; ++i) {
          if (match[i] != 0) match[i] = col.IsNull(i) ? uint8_t{0} : k;
        }
      }
      return;
    }
    case ColumnBatch::ColType::kString: {
      if (lit.type() == ValueType::kString) {
        const std::string_view lv = lit.as_string();
        if (t.op == sql::CompareOp::kEq || t.op == sql::CompareOp::kNe) {
          StringRef lref;
          lref.data = lv.data();
          lref.len = static_cast<uint32_t>(lv.size());
          lref.pool_id = 1;  // synthetic: enables the cached-hash gate
          lref.hash = HashStringContent(lv);
          const uint8_t on_eq = static_cast<uint8_t>(ops.eq);
          const uint8_t on_ne = static_cast<uint8_t>(ops.lt);
          for (size_t i = 0; i < n; ++i) {
            if (match[i] == 0) continue;
            if (col.IsNull(i)) {
              match[i] = 0;
              continue;
            }
            const StringRef& s = col.strings[i];
            bool eq;
            if (s.len != lref.len) {
              eq = false;
            } else if (s.pool_id != 0 && s.hash != lref.hash) {
              eq = false;
            } else {
              eq = std::memcmp(s.data, lref.data, s.len) == 0;
            }
            match[i] = eq ? on_eq : on_ne;
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            if (match[i] == 0) continue;
            if (col.IsNull(i)) {
              match[i] = 0;
              continue;
            }
            match[i] = static_cast<uint8_t>(
                Holds(ops, Sign(col.strings[i].view().compare(lv))));
          }
        }
      } else {
        // String vs number: constant +1 for every non-null cell.
        const uint8_t k = static_cast<uint8_t>(Holds(ops, 1));
        for (size_t i = 0; i < n; ++i) {
          if (match[i] != 0) match[i] = col.IsNull(i) ? uint8_t{0} : k;
        }
      }
      return;
    }
    case ColumnBatch::ColType::kValue:
      break;  // disqualified by TryColumnarFilter before evaluation
  }
}

void EvalCompareColCol(const ColumnarTerm& t, const ColumnBatch::Column& a,
                       const ColumnBatch::Column& b, size_t n,
                       uint8_t* match) {
  using ColType = ColumnBatch::ColType;
  const OpTable ops = MakeOpTable(t.op);
  if (a.type == ColType::kNullOnly || b.type == ColType::kNullOnly) {
    std::fill(match, match + n, uint8_t{0});
    return;
  }
  const bool a_num = a.type == ColType::kInt || a.type == ColType::kDouble;
  const bool b_num = b.type == ColType::kInt || b.type == ColType::kDouble;
  if (a_num != b_num) {
    // Mixed numeric/string columns: Value::Compare is the constant
    // "numbers before strings" for every non-null pair.
    const uint8_t k = static_cast<uint8_t>(Holds(ops, a_num ? -1 : 1));
    for (size_t i = 0; i < n; ++i) {
      if (match[i] != 0) {
        match[i] = (a.IsNull(i) || b.IsNull(i)) ? uint8_t{0} : k;
      }
    }
    return;
  }
  if (a_num) {
    if (a.type == ColType::kInt && b.type == ColType::kInt) {
      for (size_t i = 0; i < n; ++i) {
        if (match[i] == 0) continue;
        if (a.IsNull(i) || b.IsNull(i)) {
          match[i] = 0;
          continue;
        }
        const int64_t x = a.ints[i];
        const int64_t y = b.ints[i];
        match[i] =
            static_cast<uint8_t>(Holds(ops, x < y ? -1 : (x > y ? 1 : 0)));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (match[i] == 0) continue;
        if (a.IsNull(i) || b.IsNull(i)) {
          match[i] = 0;
          continue;
        }
        const double x = a.type == ColType::kInt
                             ? static_cast<double>(a.ints[i])
                             : a.doubles[i];
        const double y = b.type == ColType::kInt
                             ? static_cast<double>(b.ints[i])
                             : b.doubles[i];
        match[i] =
            static_cast<uint8_t>(Holds(ops, x < y ? -1 : (x > y ? 1 : 0)));
      }
    }
    return;
  }
  // Both string columns.
  const bool eq_only =
      t.op == sql::CompareOp::kEq || t.op == sql::CompareOp::kNe;
  for (size_t i = 0; i < n; ++i) {
    if (match[i] == 0) continue;
    if (a.IsNull(i) || b.IsNull(i)) {
      match[i] = 0;
      continue;
    }
    const StringRef& x = a.strings[i];
    const StringRef& y = b.strings[i];
    if (eq_only) {
      match[i] = static_cast<uint8_t>(StringRefEq(x, y) ? ops.eq : ops.lt);
    } else {
      int c;
      if (x.pool_id != 0 && x.pool_id == y.pool_id && x.id == y.id) {
        c = 0;  // interned identity: same string, no byte compare
      } else {
        c = Sign(x.view().compare(y.view()));
      }
      match[i] = static_cast<uint8_t>(Holds(ops, c));
    }
  }
}

void EvalIsNull(const ColumnarTerm& t, const ColumnBatch::Column& col,
                size_t n, uint8_t* match) {
  if (t.negated) {
    for (size_t i = 0; i < n; ++i) {
      if (match[i] != 0 && col.IsNull(i)) match[i] = 0;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (match[i] != 0 && !col.IsNull(i)) match[i] = 0;
    }
  }
}

// dbfa:hot-loop-end

}  // namespace

bool TryColumnarFilter(const ColumnarPredicate& pred,
                       const std::vector<Record>& rows, size_t lo, size_t hi,
                       std::vector<uint8_t>* match) {
  const size_t n = hi - lo;
  if (n == 0) {
    match->clear();
    return true;
  }
  for (size_t r = lo; r < hi; ++r) {
    if (rows[r].size() < pred.min_width) return false;  // row path errors
  }
  const ColumnBatch batch =
      ColumnBatch::FromRecordsColumns(rows, lo, hi, pred.columns);
  // Comparison kernels need typed columns; a mixed-type column sends the
  // whole batch down the row path. (IS NULL works on any column — the null
  // bitmap is always built.)
  for (const ColumnarTerm& t : pred.terms) {
    if (t.kind == ColumnarTerm::Kind::kCompareColLit ||
        t.kind == ColumnarTerm::Kind::kCompareColCol) {
      if (batch.column(t.col_a).type == ColumnBatch::ColType::kValue) {
        return false;
      }
      if (t.kind == ColumnarTerm::Kind::kCompareColCol &&
          batch.column(t.col_b).type == ColumnBatch::ColType::kValue) {
        return false;
      }
    }
  }
  match->assign(n, 1);
  for (const ColumnarTerm& t : pred.terms) {
    switch (t.kind) {
      case ColumnarTerm::Kind::kCompareColLit:
        EvalCompareColLit(t, batch.column(t.col_a), n, match->data());
        break;
      case ColumnarTerm::Kind::kCompareColCol:
        EvalCompareColCol(t, batch.column(t.col_a), batch.column(t.col_b), n,
                          match->data());
        break;
      case ColumnarTerm::Kind::kIsNull:
        EvalIsNull(t, batch.column(t.col_a), n, match->data());
        break;
      case ColumnarTerm::Kind::kNever:
        std::fill(match->begin(), match->end(), uint8_t{0});
        break;
    }
  }
  return true;
}

}  // namespace dbfa::metaquery_internal
