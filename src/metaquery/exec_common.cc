#include "metaquery/exec_common.h"

#include <algorithm>

#include "common/strings.h"

namespace dbfa::metaquery_internal {

void FrameSet::Add(const std::string& qualifier,
                   const std::vector<std::string>& cols) {
  frames.push_back({qualifier, cols, width});
  width += cols.size();
}

std::optional<size_t> FrameSet::Resolve(std::string_view name) const {
  std::string_view qualifier;
  std::string_view bare = name;
  size_t dot = name.find('.');
  if (dot != std::string_view::npos) {
    qualifier = name.substr(0, dot);
    bare = name.substr(dot + 1);
  }
  for (const Frame& f : frames) {
    if (!qualifier.empty() && !EqualsIgnoreCase(f.qualifier, qualifier)) {
      continue;
    }
    for (size_t i = 0; i < f.cols.size(); ++i) {
      if (EqualsIgnoreCase(f.cols[i], bare)) return f.offset + i;
    }
  }
  return std::nullopt;
}

void Accumulator::Add(const Value& v) {
  if (v.is_null()) return;
  ++count;
  if (v.type() == ValueType::kInt && sum_is_int) {
    isum += v.as_int();
  } else if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
    if (sum_is_int) {
      dsum = static_cast<double>(isum);
      sum_is_int = false;
    }
    dsum += v.NumericValue();
  }
  if (!has_minmax) {
    min_v = v;
    max_v = v;
    has_minmax = true;
  } else {
    if (Value::Compare(v, min_v) < 0) min_v = v;
    if (Value::Compare(v, max_v) > 0) max_v = v;
  }
}

void Accumulator::Merge(const Accumulator& other) {
  count += other.count;
  if (sum_is_int && other.sum_is_int) {
    isum += other.isum;
  } else {
    double a = sum_is_int ? static_cast<double>(isum) : dsum;
    double b = other.sum_is_int ? static_cast<double>(other.isum) : other.dsum;
    sum_is_int = false;
    dsum = a + b;
  }
  if (other.has_minmax) {
    if (!has_minmax) {
      min_v = other.min_v;
      max_v = other.max_v;
      has_minmax = true;
    } else {
      // Strict comparisons keep the earliest-seen value among Compare-equal
      // candidates, matching sequential accumulation when partials merge in
      // input order.
      if (Value::Compare(other.min_v, min_v) < 0) min_v = other.min_v;
      if (Value::Compare(other.max_v, max_v) > 0) max_v = other.max_v;
    }
  }
}

Value Accumulator::Final(sql::AggFunc f) const {
  switch (f) {
    case sql::AggFunc::kCount:
      return Value::Int(count);
    case sql::AggFunc::kSum:
      if (count == 0) return Value::Null();
      return sum_is_int ? Value::Int(isum) : Value::Real(dsum);
    case sql::AggFunc::kMin:
      return has_minmax ? min_v : Value::Null();
    case sql::AggFunc::kMax:
      return has_minmax ? max_v : Value::Null();
    case sql::AggFunc::kAvg: {
      if (count == 0) return Value::Null();
      double total = sum_is_int ? static_cast<double>(isum) : dsum;
      return Value::Real(total / static_cast<double>(count));
    }
    case sql::AggFunc::kNone:
      break;
  }
  return Value::Null();
}

Status SortAndLimit(const sql::SelectStmt& stmt,
                    std::vector<std::string>* columns,
                    std::vector<Record>* rows) {
  if (!stmt.order_by.empty()) {
    std::vector<int> idx;
    std::vector<bool> desc;
    for (const sql::OrderKey& key : stmt.order_by) {
      int found = -1;
      for (size_t i = 0; i < columns->size(); ++i) {
        if (EqualsIgnoreCase((*columns)[i], key.column)) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found < 0) {
        return Status::InvalidArgument("ORDER BY unknown column: " +
                                       key.column);
      }
      idx.push_back(found);
      desc.push_back(key.descending);
    }
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const Record& a, const Record& b) {
                       for (size_t k = 0; k < idx.size(); ++k) {
                         int c = Value::Compare(a[idx[k]], b[idx[k]]);
                         if (c != 0) return desc[k] ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (stmt.limit >= 0 && rows->size() > static_cast<size_t>(stmt.limit)) {
    rows->resize(static_cast<size_t>(stmt.limit));
  }
  return Status::Ok();
}

}  // namespace dbfa::metaquery_internal
