#include "metaquery/exec_common.h"

#include <algorithm>

#include "common/strings.h"

namespace dbfa::metaquery_internal {

void FrameSet::Add(const std::string& qualifier,
                   const std::vector<std::string>& cols) {
  frames.push_back({qualifier, cols, width});
  width += cols.size();
}

std::optional<size_t> FrameSet::Resolve(std::string_view name) const {
  std::string_view qualifier;
  std::string_view bare = name;
  size_t dot = name.find('.');
  if (dot != std::string_view::npos) {
    qualifier = name.substr(0, dot);
    bare = name.substr(dot + 1);
  }
  for (const Frame& f : frames) {
    if (!qualifier.empty() && !EqualsIgnoreCase(f.qualifier, qualifier)) {
      continue;
    }
    for (size_t i = 0; i < f.cols.size(); ++i) {
      if (EqualsIgnoreCase(f.cols[i], bare)) return f.offset + i;
    }
  }
  return std::nullopt;
}

void Accumulator::Add(const Value& v) {
  if (v.is_null()) return;
  ++count;
  if (v.type() == ValueType::kInt && sum_is_int) {
    isum += v.as_int();
  } else if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
    if (sum_is_int) {
      dsum = static_cast<double>(isum);
      sum_is_int = false;
    }
    dsum += v.NumericValue();
  }
  if (!has_minmax) {
    min_v = v;
    max_v = v;
    has_minmax = true;
  } else {
    if (Value::Compare(v, min_v) < 0) min_v = v;
    if (Value::Compare(v, max_v) > 0) max_v = v;
  }
}

void Accumulator::Merge(const Accumulator& other) {
  count += other.count;
  if (sum_is_int && other.sum_is_int) {
    isum += other.isum;
  } else {
    double a = sum_is_int ? static_cast<double>(isum) : dsum;
    double b = other.sum_is_int ? static_cast<double>(other.isum) : other.dsum;
    sum_is_int = false;
    dsum = a + b;
  }
  if (other.has_minmax) {
    if (!has_minmax) {
      min_v = other.min_v;
      max_v = other.max_v;
      has_minmax = true;
    } else {
      // Strict comparisons keep the earliest-seen value among Compare-equal
      // candidates, matching sequential accumulation when partials merge in
      // input order.
      if (Value::Compare(other.min_v, min_v) < 0) min_v = other.min_v;
      if (Value::Compare(other.max_v, max_v) > 0) max_v = other.max_v;
    }
  }
}

Value Accumulator::Final(sql::AggFunc f) const {
  switch (f) {
    case sql::AggFunc::kCount:
      return Value::Int(count);
    case sql::AggFunc::kSum:
      if (count == 0) return Value::Null();
      return sum_is_int ? Value::Int(isum) : Value::Real(dsum);
    case sql::AggFunc::kMin:
      return has_minmax ? min_v : Value::Null();
    case sql::AggFunc::kMax:
      return has_minmax ? max_v : Value::Null();
    case sql::AggFunc::kAvg: {
      if (count == 0) return Value::Null();
      double total = sum_is_int ? static_cast<double>(isum) : dsum;
      return Value::Real(total / static_cast<double>(count));
    }
    case sql::AggFunc::kNone:
      break;
  }
  return Value::Null();
}

// ---- Batch scheduling ---------------------------------------------------

BatchGrid MakeBatches(size_t n, size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1024;
  return {batch_rows, n == 0 ? 0 : (n + batch_rows - 1) / batch_rows};
}

Status ForEachBatch(ThreadPool* pool, size_t nbatches,
                    const std::function<Status(size_t)>& body) {
  if (nbatches == 0) return Status::Ok();
  if (pool == nullptr || nbatches == 1) {
    for (size_t b = 0; b < nbatches; ++b) {
      DBFA_RETURN_IF_ERROR(body(b));
    }
    return Status::Ok();
  }
  std::vector<Status> statuses(nbatches);
  pool->ParallelFor(nbatches, [&](size_t b) { statuses[b] = body(b); });
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::Ok();
}

std::vector<Record> ConcatBatches(std::vector<std::vector<Record>> batches) {
  size_t total = 0;
  for (const auto& b : batches) total += b.size();
  std::vector<Record> out;
  out.reserve(total);
  for (auto& b : batches) {
    for (Record& r : b) out.push_back(std::move(r));
  }
  return out;
}

// ---- Join ----------------------------------------------------------------

JoinTable BuildJoinTable(const std::vector<Record>& right_rows,
                         size_t right_idx) {
  JoinTable table;
  table.reserve(right_rows.size());
  for (size_t i = 0; i < right_rows.size(); ++i) {
    const Record& r = right_rows[i];
    if (right_idx >= r.size()) continue;
    const Value& key = r[right_idx];
    if (!key.is_null()) table[key].push_back(static_cast<uint32_t>(i));
  }
  return table;
}

Status ResolveJoinColumns(const FrameSet& frames, const FrameSet& right_frame,
                          const sql::JoinClause& join, size_t* left_idx,
                          size_t* right_idx) {
  // Decide which join column belongs to the already-joined side.
  std::string left_col = join.left_column;
  std::string right_col = join.right_column;
  if (!frames.Resolve(left_col).has_value()) std::swap(left_col, right_col);
  auto left = frames.Resolve(left_col);
  auto right = right_frame.Resolve(right_col);
  if (!left.has_value() || !right.has_value()) {
    return Status::InvalidArgument(
        StrFormat("cannot resolve join condition %s = %s",
                  join.left_column.c_str(), join.right_column.c_str()));
  }
  *left_idx = *left;
  *right_idx = *right;
  return Status::Ok();
}

// ---- Aggregation ---------------------------------------------------------

Result<AggPlan> PlanAggregation(const sql::SelectStmt& stmt,
                                const FrameSet& frames,
                                std::vector<std::string>* out_columns) {
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star && item.agg == sql::AggFunc::kNone) {
      return Status::InvalidArgument("SELECT * with aggregates");
    }
    out_columns->push_back(item.OutputName());
  }
  AggPlan plan;
  plan.key_idx.reserve(stmt.group_by.size());
  for (const std::string& col : stmt.group_by) {
    auto idx = frames.Resolve(col);
    if (!idx.has_value()) {
      return Status::InvalidArgument("GROUP BY unknown column: " + col);
    }
    plan.key_idx.push_back(*idx);
  }
  plan.items.resize(stmt.items.size());
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (stmt.items[i].expr != nullptr) {
      DBFA_ASSIGN_OR_RETURN(
          plan.items[i],
          sql::BindExpr(*stmt.items[i].expr, [&frames](std::string_view name) {
            return frames.Resolve(name);
          }));
    }
  }
  return plan;
}

Status MakeGroupKey(const sql::SelectStmt& stmt, const AggPlan& plan,
                    const Record& row, Record* key) {
  key->clear();
  key->reserve(plan.key_idx.size());
  for (size_t k = 0; k < plan.key_idx.size(); ++k) {
    if (plan.key_idx[k] >= row.size()) {
      return Status::InvalidArgument("GROUP BY unknown column: " +
                                     stmt.group_by[k]);
    }
    key->push_back(row[plan.key_idx[k]]);
  }
  return Status::Ok();
}

Status AccumulateRow(const sql::SelectStmt& stmt, const AggPlan& plan,
                     const Record& row, std::vector<Accumulator>* accs) {
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const sql::SelectItem& item = stmt.items[i];
    if (item.agg == sql::AggFunc::kNone) continue;
    if (item.star) {
      (*accs)[i].Add(Value::Int(1));  // COUNT(*)
      continue;
    }
    DBFA_ASSIGN_OR_RETURN(Value v, sql::EvalBound(*plan.items[i], row));
    (*accs)[i].Add(v);
  }
  return Status::Ok();
}

Status EmitGroupRow(const sql::SelectStmt& stmt, const AggPlan& plan,
                    const Record& rep, const std::vector<Accumulator>& accs,
                    Record* out) {
  out->clear();
  out->reserve(stmt.items.size());
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const sql::SelectItem& item = stmt.items[i];
    if (item.agg != sql::AggFunc::kNone) {
      out->push_back(accs[i].Final(item.agg));
    } else {
      // Non-aggregate items take their value from the group's
      // representative row (valid for grouped columns).
      DBFA_ASSIGN_OR_RETURN(Value v, sql::EvalBound(*plan.items[i], rep));
      out->push_back(std::move(v));
    }
  }
  return Status::Ok();
}

Status EmitEmptyAggregateRow(const sql::SelectStmt& stmt, Record* out) {
  out->clear();
  Accumulator empty;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.agg == sql::AggFunc::kNone) {
      return Status::InvalidArgument(
          "non-aggregate item over empty ungrouped input");
    }
    out->push_back(empty.Final(item.agg));
  }
  return Status::Ok();
}

Status AggregateRowsInMemory(const sql::SelectStmt& stmt, const AggPlan& plan,
                             const std::vector<Record>& rows,
                             size_t batch_rows, ThreadPool* pool,
                             std::vector<Record>* out_rows) {
  // Per-batch partial aggregation into unordered maps with a proper record
  // hasher, merged in batch order (so group representatives and integer
  // sums match sequential accumulation exactly).
  struct Partial {
    Record rep;  // first row of the group within / across batches
    std::vector<Accumulator> accs;
  };
  using GroupMap = std::unordered_map<Record, Partial, RecordHasher, RecordEq>;
  BatchGrid grid = MakeBatches(rows.size(), batch_rows);
  std::vector<GroupMap> partials(grid.count);
  DBFA_RETURN_IF_ERROR(ForEachBatch(pool, grid.count, [&](size_t b) {
    size_t lo = b * grid.batch_rows;
    size_t hi = std::min(rows.size(), lo + grid.batch_rows);
    GroupMap& local = partials[b];
    for (size_t r = lo; r < hi; ++r) {
      const Record& row = rows[r];
      Record key;
      DBFA_RETURN_IF_ERROR(MakeGroupKey(stmt, plan, row, &key));
      auto [it, inserted] = local.try_emplace(std::move(key));
      Partial& group = it->second;
      if (inserted) {
        group.rep = row;
        group.accs.resize(stmt.items.size());
      }
      DBFA_RETURN_IF_ERROR(AccumulateRow(stmt, plan, row, &group.accs));
    }
    return Status::Ok();
  }));

  GroupMap groups;
  for (GroupMap& partial : partials) {
    // dbfa-lint: allow(unordered-iter): per-key merge is commutative and
    // associative (Accumulator::Merge), and partials are visited in batch
    // order via the outer vector — hash order cannot reach the output.
    for (auto& [key, part] : partial) {
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second = std::move(part);
      } else {
        for (size_t i = 0; i < it->second.accs.size(); ++i) {
          it->second.accs[i].Merge(part.accs[i]);
        }
      }
    }
  }

  if (groups.empty() && stmt.group_by.empty()) {
    // Aggregates over an empty input produce one row.
    Record row;
    DBFA_RETURN_IF_ERROR(EmitEmptyAggregateRow(stmt, &row));
    out_rows->push_back(std::move(row));
  }

  // Emit groups in key order — the order the reference executor's ordered
  // map produces.
  std::vector<std::pair<const Record*, Partial*>> ordered;
  ordered.reserve(groups.size());
  // dbfa-lint: allow(unordered-iter): feeds the CompareRecords sort below.
  for (auto& [key, part] : groups) ordered.push_back({&key, &part});
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return CompareRecords(*a.first, *b.first) < 0;
  });
  for (auto& [key, part] : ordered) {
    Record row;
    DBFA_RETURN_IF_ERROR(EmitGroupRow(stmt, plan, part->rep, part->accs, &row));
    out_rows->push_back(std::move(row));
  }
  return Status::Ok();
}

// ---- Projection ----------------------------------------------------------

Result<ProjectionPlan> PlanProjection(const sql::SelectStmt& stmt,
                                      const FrameSet& frames,
                                      std::vector<std::string>* out_columns) {
  ProjectionPlan plan;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (const FrameSet::Frame& f : frames.frames) {
        for (const std::string& c : f.cols) out_columns->push_back(c);
      }
      plan.exprs.push_back(nullptr);
    } else {
      out_columns->push_back(item.OutputName());
      DBFA_ASSIGN_OR_RETURN(
          sql::BoundExprPtr bound,
          sql::BindExpr(*item.expr, [&frames](std::string_view name) {
            return frames.Resolve(name);
          }));
      plan.exprs.push_back(std::move(bound));
    }
  }
  return plan;
}

Status ProjectRow(const ProjectionPlan& plan, const Record& row, Record* out) {
  out->clear();
  for (const sql::BoundExprPtr& e : plan.exprs) {
    if (e == nullptr) {
      out->insert(out->end(), row.begin(), row.end());
    } else {
      DBFA_ASSIGN_OR_RETURN(Value v, sql::EvalBound(*e, row));
      out->push_back(std::move(v));
    }
  }
  return Status::Ok();
}

// ---- ORDER BY / LIMIT ----------------------------------------------------

Status ResolveOrderKeys(const sql::SelectStmt& stmt,
                        const std::vector<std::string>& columns,
                        std::vector<int>* idx, std::vector<bool>* desc) {
  for (const sql::OrderKey& key : stmt.order_by) {
    int found = -1;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], key.column)) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("ORDER BY unknown column: " + key.column);
    }
    idx->push_back(found);
    desc->push_back(key.descending);
  }
  return Status::Ok();
}

bool OrderKeyLess(const Record& a, const Record& b,
                  const std::vector<int>& idx, const std::vector<bool>& desc) {
  for (size_t k = 0; k < idx.size(); ++k) {
    int c = Value::Compare(a[idx[k]], b[idx[k]]);
    if (c != 0) return desc[k] ? c > 0 : c < 0;
  }
  return false;
}

Status SortAndLimit(const sql::SelectStmt& stmt,
                    std::vector<std::string>* columns,
                    std::vector<Record>* rows) {
  if (!stmt.order_by.empty()) {
    std::vector<int> idx;
    std::vector<bool> desc;
    DBFA_RETURN_IF_ERROR(ResolveOrderKeys(stmt, *columns, &idx, &desc));
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const Record& a, const Record& b) {
                       return OrderKeyLess(a, b, idx, desc);
                     });
  }
  if (stmt.limit >= 0 && rows->size() > static_cast<size_t>(stmt.limit)) {
    rows->resize(static_cast<size_t>(stmt.limit));
  }
  return Status::Ok();
}

}  // namespace dbfa::metaquery_internal
