// Recursive-descent parser for the MiniDB / meta-query SQL subset:
//
//   CREATE TABLE t (col TYPE [NOT NULL], ..., [PRIMARY KEY (...)],
//                   [FOREIGN KEY (col) REFERENCES t2 (col2)] ...)
//   CREATE INDEX i ON t (col, ...)
//   DROP TABLE t
//   INSERT INTO t VALUES (...), (...)
//   UPDATE t SET col = literal, ... [WHERE expr]
//   DELETE FROM t [WHERE expr]
//   SELECT items FROM t [AS a] [JOIN t2 [AS b] ON c1 = c2]...
//     [WHERE expr] [GROUP BY cols] [ORDER BY col [DESC], ...] [LIMIT n]
//   VACUUM t
//
// Expressions support comparison operators, AND/OR/NOT, LIKE, IS [NOT]
// NULL, BETWEEN, IN (literal list), arithmetic, and LENGTH()/ABS().
#ifndef DBFA_SQL_PARSER_H_
#define DBFA_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/statement.h"

namespace dbfa::sql {

/// Parses one statement (an optional trailing ';' is accepted).
Result<Statement> ParseStatement(std::string_view text);

/// Parses a stand-alone expression (predicate).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace dbfa::sql

#endif  // DBFA_SQL_PARSER_H_
