#include "sql/parser.h"

#include <utility>

#include "common/strings.h"
#include "sql/token.h"

namespace dbfa::sql {
namespace {

/// Token-stream cursor with keyword helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatementTop();
  Result<ExprPtr> ParseExpressionTop();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool AcceptKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Next();
    return true;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (AcceptKeyword(kw)) return Status::Ok();
    return Error(StrFormat("expected %s", std::string(kw).c_str()));
  }
  bool PeekSymbol(std::string_view sym) const {
    const Token& t = Peek();
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (!PeekSymbol(sym)) return false;
    Next();
    return true;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (AcceptSymbol(sym)) return Status::Ok();
    return Error(StrFormat("expected '%s'", std::string(sym).c_str()));
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    return Next().text;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu (near '%s')", what.c_str(),
                  Peek().position, Peek().text.c_str()));
  }

  // Possibly-qualified column name: ident[.ident]
  Result<std::string> ParseColumnName();

  Result<Statement> ParseCreate();
  Result<Statement> ParseDrop();
  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<Statement> ParseSelect();
  Result<Statement> ParseVacuum();

  Result<Value> ParseLiteral();
  Result<TableRef> ParseTableRef();

  Result<ExprPtr> ParseExpr();        // OR level
  Result<ExprPtr> ParseAndExpr();
  Result<ExprPtr> ParseNotExpr();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<std::string> Parser::ParseColumnName() {
  DBFA_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
  if (AcceptSymbol(".")) {
    DBFA_ASSIGN_OR_RETURN(std::string rest, ExpectIdentifier());
    name += "." + rest;
  }
  return name;
}

Result<Value> Parser::ParseLiteral() {
  const Token& t = Peek();
  bool negative = false;
  if (PeekSymbol("-")) {
    Next();
    const Token& num = Peek();
    if (num.type == TokenType::kInteger) {
      Next();
      return Value::Int(-num.int_value);
    }
    if (num.type == TokenType::kFloat) {
      Next();
      return Value::Real(-num.float_value);
    }
    return Error("expected number after '-'");
  }
  (void)negative;
  switch (t.type) {
    case TokenType::kInteger:
      Next();
      return Value::Int(t.int_value);
    case TokenType::kFloat:
      Next();
      return Value::Real(t.float_value);
    case TokenType::kString:
      Next();
      return Value::Str(t.text);
    case TokenType::kIdentifier:
      if (EqualsIgnoreCase(t.text, "NULL")) {
        Next();
        return Value::Null();
      }
      return Error("expected literal");
    default:
      return Error("expected literal");
  }
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  DBFA_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
  if (AcceptKeyword("AS")) {
    DBFA_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier && !PeekKeyword("JOIN") &&
             !PeekKeyword("WHERE") && !PeekKeyword("GROUP") &&
             !PeekKeyword("ORDER") && !PeekKeyword("LIMIT") &&
             !PeekKeyword("ON") && !PeekKeyword("SET")) {
    ref.alias = Next().text;
  }
  return ref;
}

// ---- expressions ---------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  DBFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
  while (AcceptKeyword("OR")) {
    DBFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
    lhs = MakeOr(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAndExpr() {
  DBFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNotExpr());
  while (AcceptKeyword("AND")) {
    DBFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNotExpr());
    lhs = MakeAnd(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNotExpr() {
  if (AcceptKeyword("NOT")) {
    DBFA_ASSIGN_OR_RETURN(ExprPtr inner, ParseNotExpr());
    return MakeNot(std::move(inner));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  DBFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  // comparison operators
  for (auto [sym, op] : std::initializer_list<std::pair<const char*, CompareOp>>{
           {"<=", CompareOp::kLe},
           {">=", CompareOp::kGe},
           {"<>", CompareOp::kNe},
           {"=", CompareOp::kEq},
           {"<", CompareOp::kLt},
           {">", CompareOp::kGt}}) {
    if (PeekSymbol(sym)) {
      Next();
      DBFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeCompare(op, std::move(lhs), std::move(rhs));
    }
  }
  bool negated = false;
  if (PeekKeyword("NOT") &&
      (PeekKeyword("LIKE", 1) || PeekKeyword("BETWEEN", 1) ||
       PeekKeyword("IN", 1))) {
    Next();
    negated = true;
  }
  if (AcceptKeyword("LIKE")) {
    if (Peek().type != TokenType::kString) {
      return Error("expected string pattern after LIKE");
    }
    std::string pattern = Next().text;
    return MakeLike(std::move(lhs), std::move(pattern), negated);
  }
  if (AcceptKeyword("BETWEEN")) {
    DBFA_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    DBFA_RETURN_IF_ERROR(ExpectKeyword("AND"));
    DBFA_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr range = MakeAnd(MakeCompare(CompareOp::kGe, lhs, std::move(lo)),
                            MakeCompare(CompareOp::kLe, lhs, std::move(hi)));
    return negated ? MakeNot(std::move(range)) : range;
  }
  if (AcceptKeyword("IN")) {
    DBFA_RETURN_IF_ERROR(ExpectSymbol("("));
    ExprPtr disjunction;
    while (true) {
      DBFA_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      ExprPtr eq = MakeCompare(CompareOp::kEq, lhs, MakeLiteral(std::move(v)));
      disjunction = disjunction == nullptr
                        ? std::move(eq)
                        : MakeOr(std::move(disjunction), std::move(eq));
      if (!AcceptSymbol(",")) break;
    }
    DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
    return negated ? MakeNot(std::move(disjunction)) : disjunction;
  }
  if (AcceptKeyword("IS")) {
    bool is_not = AcceptKeyword("NOT");
    DBFA_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return MakeIsNull(std::move(lhs), is_not);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  DBFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    if (AcceptSymbol("+")) {
      DBFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeArith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
    } else if (AcceptSymbol("-")) {
      DBFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeArith(ArithOp::kSub, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  DBFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    if (AcceptSymbol("*")) {
      DBFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeArith(ArithOp::kMul, std::move(lhs), std::move(rhs));
    } else if (AcceptSymbol("/")) {
      DBFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeArith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (AcceptSymbol("-")) {
    DBFA_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return MakeArith(ArithOp::kSub, MakeLiteral(Value::Int(0)),
                     std::move(inner));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  if (AcceptSymbol("(")) {
    DBFA_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  if (t.type == TokenType::kInteger || t.type == TokenType::kFloat ||
      t.type == TokenType::kString) {
    DBFA_ASSIGN_OR_RETURN(Value v, ParseLiteral());
    return MakeLiteral(std::move(v));
  }
  if (t.type == TokenType::kIdentifier) {
    if (EqualsIgnoreCase(t.text, "NULL")) {
      Next();
      return MakeLiteral(Value::Null());
    }
    // Function call?
    if (Peek(1).type == TokenType::kSymbol && Peek(1).text == "(") {
      std::string fn = Next().text;
      Next();  // '('
      DBFA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return MakeFunc(std::move(fn), std::move(arg));
    }
    DBFA_ASSIGN_OR_RETURN(std::string name, ParseColumnName());
    return MakeColumn(std::move(name));
  }
  return Error("expected expression");
}

// ---- statements -------------------------------------------------------------

Result<Statement> Parser::ParseCreate() {
  DBFA_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (AcceptKeyword("INDEX")) {
    CreateIndexStmt stmt;
    DBFA_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier());
    DBFA_RETURN_IF_ERROR(ExpectKeyword("ON"));
    DBFA_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    DBFA_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      DBFA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.columns.push_back(std::move(col));
      if (!AcceptSymbol(",")) break;
    }
    DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }
  DBFA_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  CreateTableStmt stmt;
  DBFA_ASSIGN_OR_RETURN(stmt.schema.name, ExpectIdentifier());
  DBFA_RETURN_IF_ERROR(ExpectSymbol("("));
  while (true) {
    if (AcceptKeyword("PRIMARY")) {
      DBFA_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      DBFA_RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        DBFA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.schema.primary_key.push_back(std::move(col));
        if (!AcceptSymbol(",")) break;
      }
      DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (AcceptKeyword("FOREIGN")) {
      DBFA_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      DBFA_RETURN_IF_ERROR(ExpectSymbol("("));
      ForeignKey fk;
      DBFA_ASSIGN_OR_RETURN(fk.column, ExpectIdentifier());
      DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
      DBFA_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
      DBFA_ASSIGN_OR_RETURN(fk.ref_table, ExpectIdentifier());
      DBFA_RETURN_IF_ERROR(ExpectSymbol("("));
      DBFA_ASSIGN_OR_RETURN(fk.ref_column, ExpectIdentifier());
      DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.schema.foreign_keys.push_back(std::move(fk));
    } else {
      Column col;
      DBFA_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      DBFA_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      if (EqualsIgnoreCase(type_name, "INT") ||
          EqualsIgnoreCase(type_name, "INTEGER") ||
          EqualsIgnoreCase(type_name, "BIGINT")) {
        col.type = ColumnType::kInt;
      } else if (EqualsIgnoreCase(type_name, "DOUBLE") ||
                 EqualsIgnoreCase(type_name, "FLOAT") ||
                 EqualsIgnoreCase(type_name, "REAL") ||
                 EqualsIgnoreCase(type_name, "DECIMAL")) {
        col.type = ColumnType::kDouble;
      } else if (EqualsIgnoreCase(type_name, "VARCHAR") ||
                 EqualsIgnoreCase(type_name, "CHAR") ||
                 EqualsIgnoreCase(type_name, "TEXT")) {
        col.type = ColumnType::kVarchar;
        if (AcceptSymbol("(")) {
          if (Peek().type != TokenType::kInteger) {
            return Error("expected VARCHAR length");
          }
          col.max_length = static_cast<uint32_t>(Next().int_value);
          DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
      } else {
        return Error("unknown column type " + type_name);
      }
      if (AcceptKeyword("NOT")) {
        DBFA_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        col.nullable = false;
      }
      stmt.schema.columns.push_back(std::move(col));
    }
    if (!AcceptSymbol(",")) break;
  }
  DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
  if (stmt.schema.columns.empty()) {
    return Error("CREATE TABLE with no columns");
  }
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseDrop() {
  DBFA_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  DBFA_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  DropTableStmt stmt;
  DBFA_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseInsert() {
  DBFA_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  DBFA_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  InsertStmt stmt;
  DBFA_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  DBFA_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  while (true) {
    DBFA_RETURN_IF_ERROR(ExpectSymbol("("));
    Record row;
    while (true) {
      DBFA_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      row.push_back(std::move(v));
      if (!AcceptSymbol(",")) break;
    }
    DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.rows.push_back(std::move(row));
    if (!AcceptSymbol(",")) break;
  }
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseUpdate() {
  DBFA_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  UpdateStmt stmt;
  DBFA_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  DBFA_RETURN_IF_ERROR(ExpectKeyword("SET"));
  while (true) {
    DBFA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    DBFA_RETURN_IF_ERROR(ExpectSymbol("="));
    DBFA_ASSIGN_OR_RETURN(Value v, ParseLiteral());
    stmt.assignments.emplace_back(std::move(col), std::move(v));
    if (!AcceptSymbol(",")) break;
  }
  if (AcceptKeyword("WHERE")) {
    DBFA_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseDelete() {
  DBFA_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  DBFA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  DeleteStmt stmt;
  DBFA_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (AcceptKeyword("WHERE")) {
    DBFA_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseSelect() {
  DBFA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  SelectStmt stmt;
  while (true) {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.star = true;
    } else if ((PeekKeyword("COUNT") || PeekKeyword("SUM") ||
                PeekKeyword("MIN") || PeekKeyword("MAX") ||
                PeekKeyword("AVG")) &&
               Peek(1).type == TokenType::kSymbol && Peek(1).text == "(") {
      std::string fn = ToUpper(Next().text);
      if (fn == "COUNT") {
        item.agg = AggFunc::kCount;
      } else if (fn == "SUM") {
        item.agg = AggFunc::kSum;
      } else if (fn == "MIN") {
        item.agg = AggFunc::kMin;
      } else if (fn == "MAX") {
        item.agg = AggFunc::kMax;
      } else {
        item.agg = AggFunc::kAvg;
      }
      Next();  // '('
      if (AcceptSymbol("*")) {
        if (item.agg != AggFunc::kCount) {
          return Error("only COUNT(*) supports '*'");
        }
        item.star = true;
      } else {
        DBFA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      DBFA_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      DBFA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (AcceptKeyword("AS")) {
      DBFA_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
    }
    stmt.items.push_back(std::move(item));
    if (!AcceptSymbol(",")) break;
  }
  DBFA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  DBFA_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());
  while (AcceptKeyword("JOIN")) {
    JoinClause join;
    DBFA_ASSIGN_OR_RETURN(join.table, ParseTableRef());
    DBFA_RETURN_IF_ERROR(ExpectKeyword("ON"));
    DBFA_ASSIGN_OR_RETURN(join.left_column, ParseColumnName());
    DBFA_RETURN_IF_ERROR(ExpectSymbol("="));
    DBFA_ASSIGN_OR_RETURN(join.right_column, ParseColumnName());
    stmt.joins.push_back(std::move(join));
  }
  if (AcceptKeyword("WHERE")) {
    DBFA_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (AcceptKeyword("GROUP")) {
    DBFA_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      DBFA_ASSIGN_OR_RETURN(std::string col, ParseColumnName());
      stmt.group_by.push_back(std::move(col));
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("ORDER")) {
    DBFA_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      OrderKey key;
      DBFA_ASSIGN_OR_RETURN(key.column, ParseColumnName());
      if (AcceptKeyword("DESC")) {
        key.descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(key));
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInteger) return Error("expected LIMIT n");
    stmt.limit = Next().int_value;
  }
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseVacuum() {
  DBFA_RETURN_IF_ERROR(ExpectKeyword("VACUUM"));
  VacuumStmt stmt;
  DBFA_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseStatementTop() {
  Result<Statement> result = [&]() -> Result<Statement> {
    if (PeekKeyword("CREATE")) return ParseCreate();
    if (PeekKeyword("DROP")) return ParseDrop();
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("DELETE")) return ParseDelete();
    if (PeekKeyword("SELECT")) return ParseSelect();
    if (PeekKeyword("VACUUM")) return ParseVacuum();
    return Error("expected a statement keyword");
  }();
  if (!result.ok()) return result;
  AcceptSymbol(";");
  if (!AtEnd()) {
    return Error("unexpected trailing input");
  }
  return result;
}

Result<ExprPtr> Parser::ParseExpressionTop() {
  DBFA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (!AtEnd()) return Error("unexpected trailing input");
  return e;
}

}  // namespace

Result<Statement> ParseStatement(std::string_view text) {
  DBFA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatementTop();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  DBFA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionTop();
}

}  // namespace dbfa::sql
