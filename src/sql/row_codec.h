// Serialization of Values and Records for the spill layer.
//
// The out-of-core meta-query executor writes intermediate rows to
// checksummed spill blocks (common/spill_manager.h) and reads them back;
// this codec defines the row wire format. It is a private interchange
// format between one query's operators — not a stable on-disk format — so
// it favors simplicity: fixed-width little-endian integers, length-prefixed
// strings, one type tag per value.
//
//   value  := u8 tag (ValueType) payload
//             kNull: empty   kInt: i64 LE   kDouble: f64 bit pattern LE
//             kString: u32 LE length + bytes
//   record := u32 LE value count, then that many values
//
// Decoding is bounds-checked and rejects malformed input with
// Status::Corruption — spill blocks are already CRC-protected, so a decode
// failure indicates a bug rather than bit rot, but it must not crash.
#ifndef DBFA_SQL_ROW_CODEC_H_
#define DBFA_SQL_ROW_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/value.h"

namespace dbfa::sql {

/// Appends the encoding of `v` / `r` to *out.
void AppendValue(const Value& v, std::string* out);
void AppendRecord(const Record& r, std::string* out);

/// Decodes one value / record at *pos, advancing *pos past it.
Status DecodeValue(std::string_view buf, size_t* pos, Value* out);
Status DecodeRecord(std::string_view buf, size_t* pos, Record* out);

/// Deterministic estimate of a record's in-memory footprint, used for
/// spill-budget accounting. A pure function of the record's values (never
/// of container capacities), so budget decisions are identical across
/// thread counts and runs.
size_t EstimateRecordMemoryBytes(const Record& r);

}  // namespace dbfa::sql

#endif  // DBFA_SQL_ROW_CODEC_H_
