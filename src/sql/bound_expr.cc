#include "sql/bound_expr.h"

#include <cmath>

#include "common/strings.h"

namespace dbfa::sql {
namespace {

Value BoolValue(bool b) { return Value::Int(b ? 1 : 0); }

bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.as_int() != 0;
  if (v.type() == ValueType::kDouble) return v.as_double() != 0;
  return !v.as_string().empty();
}

Result<Value> EvalArith(ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  bool a_num = a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  bool b_num = b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  if (!a_num || !b_num) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
      op != ArithOp::kDiv) {
    int64_t x = a.as_int();
    int64_t y = b.as_int();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int(x + y);
      case ArithOp::kSub:
        return Value::Int(x - y);
      case ArithOp::kMul:
        return Value::Int(x * y);
      default:
        break;
    }
  }
  double x = a.NumericValue();
  double y = b.NumericValue();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Real(x + y);
    case ArithOp::kSub:
      return Value::Real(x - y);
    case ArithOp::kMul:
      return Value::Real(x * y);
    case ArithOp::kDiv:
      if (y == 0) return Value::Null();
      return Value::Real(x / y);
  }
  return Status::Internal("bad arith op");
}

}  // namespace

Result<BoundExprPtr> BindExpr(const Expr& e, const ColumnResolver& resolver) {
  auto b = std::make_unique<BoundExpr>();
  b->kind = e.kind;
  b->compare_op = e.compare_op;
  b->arith_op = e.arith_op;
  b->pattern = e.pattern;
  b->negated = e.negated;
  switch (e.kind) {
    case ExprKind::kLiteral:
      b->literal = e.literal;
      break;
    case ExprKind::kColumn: {
      auto idx = resolver(e.column);
      if (!idx.has_value()) {
        return Status::NotFound("unknown column: " + e.column);
      }
      b->column_index = *idx;
      break;
    }
    case ExprKind::kFunc:
      if (e.func_name == "LENGTH") {
        b->func = BoundFunc::kLength;
      } else if (e.func_name == "ABS") {
        b->func = BoundFunc::kAbs;
      } else {
        return Status::Unimplemented("unknown function: " + e.func_name);
      }
      break;
    default:
      break;
  }
  if (e.lhs != nullptr) {
    DBFA_ASSIGN_OR_RETURN(b->lhs, BindExpr(*e.lhs, resolver));
  }
  if (e.rhs != nullptr) {
    DBFA_ASSIGN_OR_RETURN(b->rhs, BindExpr(*e.rhs, resolver));
  }
  return b;
}

ColumnResolver MakeSchemaResolver(std::vector<std::string> names,
                                  std::string qualifier) {
  return [names = std::move(names), qualifier = std::move(qualifier)](
             std::string_view name) -> std::optional<size_t> {
    std::string_view bare = name;
    size_t dot = name.find('.');
    if (dot != std::string_view::npos) {
      std::string_view qual = name.substr(0, dot);
      if (!qualifier.empty() && !EqualsIgnoreCase(qual, qualifier)) {
        return std::nullopt;
      }
      bare = name.substr(dot + 1);
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (EqualsIgnoreCase(names[i], bare)) return i;
    }
    return std::nullopt;
  };
}

namespace {

template <typename RowT>
Result<Value> EvalBoundImpl(const BoundExpr& e, const RowT& row) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumn:
      if (e.column_index >= row.size()) {
        return Status::Internal("bound column index beyond row width");
      }
      return row[e.column_index];
    case ExprKind::kCompare: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      DBFA_ASSIGN_OR_RETURN(Value b, EvalBoundImpl(*e.rhs, row));
      if (a.is_null() || b.is_null()) return Value::Null();
      int c = Value::Compare(a, b);
      switch (e.compare_op) {
        case CompareOp::kEq:
          return BoolValue(c == 0);
        case CompareOp::kNe:
          return BoolValue(c != 0);
        case CompareOp::kLt:
          return BoolValue(c < 0);
        case CompareOp::kLe:
          return BoolValue(c <= 0);
        case CompareOp::kGt:
          return BoolValue(c > 0);
        case CompareOp::kGe:
          return BoolValue(c >= 0);
      }
      return Status::Internal("bad compare op");
    }
    case ExprKind::kAnd: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      if (!Truthy(a)) return BoolValue(false);
      DBFA_ASSIGN_OR_RETURN(Value b, EvalBoundImpl(*e.rhs, row));
      return BoolValue(Truthy(b));
    }
    case ExprKind::kOr: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      if (Truthy(a)) return BoolValue(true);
      DBFA_ASSIGN_OR_RETURN(Value b, EvalBoundImpl(*e.rhs, row));
      return BoolValue(Truthy(b));
    }
    case ExprKind::kNot: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      return BoolValue(!Truthy(a));
    }
    case ExprKind::kLike: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      if (a.is_null()) return Value::Null();
      if (a.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE applied to non-string");
      }
      bool m = LikeMatch(a.as_string(), e.pattern);
      return BoolValue(e.negated ? !m : m);
    }
    case ExprKind::kIsNull: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      bool isnull = a.is_null();
      return BoolValue(e.negated ? !isnull : isnull);
    }
    case ExprKind::kArith: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      DBFA_ASSIGN_OR_RETURN(Value b, EvalBoundImpl(*e.rhs, row));
      return EvalArith(e.arith_op, a, b);
    }
    case ExprKind::kFunc: {
      DBFA_ASSIGN_OR_RETURN(Value a, EvalBoundImpl(*e.lhs, row));
      switch (e.func) {
        case BoundFunc::kLength:
          if (a.is_null()) return Value::Null();
          if (a.type() != ValueType::kString) {
            return Status::InvalidArgument("LENGTH applied to non-string");
          }
          return Value::Int(static_cast<int64_t>(a.as_string().size()));
        case BoundFunc::kAbs:
          if (a.is_null()) return Value::Null();
          if (a.type() == ValueType::kInt) {
            return Value::Int(a.as_int() < 0 ? -a.as_int() : a.as_int());
          }
          if (a.type() == ValueType::kDouble) {
            return Value::Real(std::abs(a.as_double()));
          }
          return Status::InvalidArgument("ABS applied to non-number");
      }
      return Status::Internal("bad bound function");
    }
  }
  return Status::Internal("bad expression kind");
}

/// Points `*out` at the leaf's value without copying when the node is a
/// literal or column reference; returns false for any other node kind.
template <typename RowT>
Result<bool> LeafValue(const BoundExpr& e, const RowT& row,
                       const Value** out) {
  if (e.kind == ExprKind::kLiteral) {
    *out = &e.literal;
    return true;
  }
  if (e.kind == ExprKind::kColumn) {
    if (e.column_index >= row.size()) {
      return Status::Internal("bound column index beyond row width");
    }
    *out = &row[e.column_index];
    return true;
  }
  return false;
}

/// Predicate evaluation with the hot comparison shapes — column/literal
/// operands of =, <>, <, <=, >, >=, LIKE and IS NULL — handled in place.
/// The general evaluator copies every operand through a Result<Value>; on
/// string cells that is the dominant cost of a filter sweep. Semantics are
/// identical: NULL operands make a comparison false, Truthy() maps NULL to
/// false everywhere else.
template <typename RowT>
Result<bool> EvalBoundPredicateImpl(const BoundExpr& e, const RowT& row) {
  switch (e.kind) {
    case ExprKind::kAnd: {
      DBFA_ASSIGN_OR_RETURN(bool a, EvalBoundPredicateImpl(*e.lhs, row));
      if (!a) return false;
      return EvalBoundPredicateImpl(*e.rhs, row);
    }
    case ExprKind::kOr: {
      DBFA_ASSIGN_OR_RETURN(bool a, EvalBoundPredicateImpl(*e.lhs, row));
      if (a) return true;
      return EvalBoundPredicateImpl(*e.rhs, row);
    }
    case ExprKind::kNot: {
      DBFA_ASSIGN_OR_RETURN(bool a, EvalBoundPredicateImpl(*e.lhs, row));
      return !a;
    }
    case ExprKind::kCompare: {
      const Value* a = nullptr;
      const Value* b = nullptr;
      Value a_storage, b_storage;
      DBFA_ASSIGN_OR_RETURN(bool a_leaf, LeafValue(*e.lhs, row, &a));
      if (!a_leaf) {
        DBFA_ASSIGN_OR_RETURN(a_storage, EvalBoundImpl(*e.lhs, row));
        a = &a_storage;
      }
      DBFA_ASSIGN_OR_RETURN(bool b_leaf, LeafValue(*e.rhs, row, &b));
      if (!b_leaf) {
        DBFA_ASSIGN_OR_RETURN(b_storage, EvalBoundImpl(*e.rhs, row));
        b = &b_storage;
      }
      if (a->is_null() || b->is_null()) return false;
      int c = Value::Compare(*a, *b);
      switch (e.compare_op) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
      }
      return Status::Internal("bad compare op");
    }
    case ExprKind::kLike: {
      const Value* a = nullptr;
      Value a_storage;
      DBFA_ASSIGN_OR_RETURN(bool a_leaf, LeafValue(*e.lhs, row, &a));
      if (!a_leaf) {
        DBFA_ASSIGN_OR_RETURN(a_storage, EvalBoundImpl(*e.lhs, row));
        a = &a_storage;
      }
      if (a->is_null()) return false;
      if (a->type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE applied to non-string");
      }
      bool m = LikeMatch(a->as_string(), e.pattern);
      return e.negated ? !m : m;
    }
    case ExprKind::kIsNull: {
      const Value* a = nullptr;
      Value a_storage;
      DBFA_ASSIGN_OR_RETURN(bool a_leaf, LeafValue(*e.lhs, row, &a));
      if (!a_leaf) {
        DBFA_ASSIGN_OR_RETURN(a_storage, EvalBoundImpl(*e.lhs, row));
        a = &a_storage;
      }
      bool isnull = a->is_null();
      return e.negated ? !isnull : isnull;
    }
    default: {
      DBFA_ASSIGN_OR_RETURN(Value v, EvalBoundImpl(e, row));
      return Truthy(v);
    }
  }
}

}  // namespace

Result<Value> EvalBound(const BoundExpr& e, const Record& row) {
  return EvalBoundImpl(e, row);
}

Result<Value> EvalBound(const BoundExpr& e, const JoinRowView& row) {
  return EvalBoundImpl(e, row);
}

Result<bool> EvalBoundPredicate(const BoundExpr& e, const Record& row) {
  return EvalBoundPredicateImpl(e, row);
}

Result<bool> EvalBoundPredicate(const BoundExpr& e, const JoinRowView& row) {
  return EvalBoundPredicateImpl(e, row);
}

}  // namespace dbfa::sql
