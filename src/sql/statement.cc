#include "sql/statement.h"

#include "common/strings.h"

namespace dbfa::sql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (star && agg == AggFunc::kNone) return "*";
  if (agg != AggFunc::kNone) {
    std::string inner = star ? "*" : (expr != nullptr ? expr->ToSql() : "?");
    return StrFormat("%s(%s)", AggFuncName(agg), inner.c_str());
  }
  if (expr != nullptr && expr->kind == ExprKind::kColumn) return expr->column;
  return expr != nullptr ? expr->ToSql() : "?";
}

std::string CreateTableStmt::ToSql() const {
  std::string out = "CREATE TABLE " + schema.name + " (";
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    const Column& c = schema.columns[i];
    if (i != 0) out += ", ";
    out += c.name;
    out += " ";
    if (c.type == ColumnType::kVarchar) {
      out += StrFormat("VARCHAR(%u)", c.max_length);
    } else {
      out += ColumnTypeName(c.type);
    }
    if (!c.nullable) out += " NOT NULL";
  }
  if (!schema.primary_key.empty()) {
    out += ", PRIMARY KEY (" + Join(schema.primary_key, ", ") + ")";
  }
  for (const ForeignKey& fk : schema.foreign_keys) {
    out += StrFormat(", FOREIGN KEY (%s) REFERENCES %s (%s)",
                     fk.column.c_str(), fk.ref_table.c_str(),
                     fk.ref_column.c_str());
  }
  out += ")";
  return out;
}

std::string CreateIndexStmt::ToSql() const {
  return StrFormat("CREATE INDEX %s ON %s (%s)", index_name.c_str(),
                   table.c_str(), Join(columns, ", ").c_str());
}

std::string DropTableStmt::ToSql() const { return "DROP TABLE " + table; }

std::string InsertStmt::ToSql() const {
  std::string out = "INSERT INTO " + table + " VALUES ";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ", ";
    out += "(";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j != 0) out += ", ";
      out += rows[i][j].ToSqlLiteral();
    }
    out += ")";
  }
  return out;
}

std::string UpdateStmt::ToSql() const {
  std::string out = "UPDATE " + table + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i != 0) out += ", ";
    out += assignments[i].first + " = " + assignments[i].second.ToSqlLiteral();
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  return out;
}

std::string DeleteStmt::ToSql() const {
  std::string out = "DELETE FROM " + table;
  if (where != nullptr) out += " WHERE " + where->ToSql();
  return out;
}

bool SelectStmt::HasAggregates() const {
  for (const SelectItem& item : items) {
    if (item.agg != AggFunc::kNone) return true;
  }
  return false;
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    const SelectItem& item = items[i];
    if (item.agg != AggFunc::kNone) {
      out += StrFormat("%s(%s)", AggFuncName(item.agg),
                       item.star ? "*" : item.expr->ToSql().c_str());
    } else if (item.star) {
      out += "*";
    } else {
      out += item.expr->ToSql();
    }
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM " + from.table;
  if (!from.alias.empty()) out += " AS " + from.alias;
  for (const JoinClause& j : joins) {
    out += " JOIN " + j.table.table;
    if (!j.table.alias.empty()) out += " AS " + j.table.alias;
    out += " ON " + j.left_column + " = " + j.right_column;
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) out += " GROUP BY " + Join(group_by, ", ");
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i != 0) out += ", ";
      out += order_by[i].column;
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += StrFormat(" LIMIT %lld", static_cast<long long>(limit));
  return out;
}

std::string VacuumStmt::ToSql() const { return "VACUUM " + table; }

std::string StatementToSql(const Statement& stmt) {
  return std::visit([](const auto& s) { return s.ToSql(); }, stmt);
}

const char* StatementKind(const Statement& stmt) {
  struct Visitor {
    const char* operator()(const CreateTableStmt&) { return "CREATE TABLE"; }
    const char* operator()(const CreateIndexStmt&) { return "CREATE INDEX"; }
    const char* operator()(const DropTableStmt&) { return "DROP TABLE"; }
    const char* operator()(const InsertStmt&) { return "INSERT"; }
    const char* operator()(const UpdateStmt&) { return "UPDATE"; }
    const char* operator()(const DeleteStmt&) { return "DELETE"; }
    const char* operator()(const SelectStmt&) { return "SELECT"; }
    const char* operator()(const VacuumStmt&) { return "VACUUM"; }
  };
  return std::visit(Visitor{}, stmt);
}

}  // namespace dbfa::sql
