#include "sql/row_codec.h"

#include <bit>
#include <cstdint>

#include "common/bytes.h"
#include "common/strings.h"

namespace dbfa::sql {
namespace {

void AppendU32(uint32_t v, std::string* out) {
  uint8_t buf[4];
  WriteU32(buf, v, /*big_endian=*/false);
  out->append(reinterpret_cast<const char*>(buf), sizeof(buf));
}

void AppendU64(uint64_t v, std::string* out) {
  uint8_t buf[8];
  WriteU64(buf, v, /*big_endian=*/false);
  out->append(reinterpret_cast<const char*>(buf), sizeof(buf));
}

}  // namespace

void AppendValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      AppendU64(static_cast<uint64_t>(v.as_int()), out);
      break;
    case ValueType::kDouble:
      AppendU64(std::bit_cast<uint64_t>(v.as_double()), out);
      break;
    case ValueType::kString: {
      const std::string_view s = v.as_string();
      AppendU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      break;
    }
  }
}

void AppendRecord(const Record& r, std::string* out) {
  AppendU32(static_cast<uint32_t>(r.size()), out);
  for (const Value& v : r) AppendValue(v, out);
}

namespace {

/// Pointer-based decode core shared by DecodeValue and DecodeRecord: the
/// spill read path decodes every spilled row once per pass, so this loop
/// avoids per-field string_view slicing and position bookkeeping.
Status DecodeValueAt(const uint8_t** cursor, const uint8_t* end, Value* out) {
  const uint8_t* p = *cursor;
  if (p == end) return Status::Corruption("row codec: truncated input");
  uint8_t tag = *p++;
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kNull):
      *out = Value::Null();
      break;
    case static_cast<uint8_t>(ValueType::kInt):
      if (end - p < 8) return Status::Corruption("row codec: truncated input");
      *out = Value::Int(static_cast<int64_t>(ReadU64(p, false)));
      p += 8;
      break;
    case static_cast<uint8_t>(ValueType::kDouble):
      if (end - p < 8) return Status::Corruption("row codec: truncated input");
      *out = Value::Real(std::bit_cast<double>(ReadU64(p, false)));
      p += 8;
      break;
    case static_cast<uint8_t>(ValueType::kString): {
      if (end - p < 4) return Status::Corruption("row codec: truncated input");
      uint32_t len = ReadU32(p, false);
      p += 4;
      if (static_cast<size_t>(end - p) < len) {
        return Status::Corruption("row codec: truncated input");
      }
      *out = Value::Str(std::string(reinterpret_cast<const char*>(p), len));
      p += len;
      break;
    }
    default:
      return Status::Corruption(
          StrFormat("row codec: unknown value tag %u", tag));
  }
  *cursor = p;
  return Status::Ok();
}

}  // namespace

Status DecodeValue(std::string_view buf, size_t* pos, Value* out) {
  if (*pos > buf.size()) {
    return Status::Corruption("row codec: truncated input");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data()) + *pos;
  const uint8_t* end = reinterpret_cast<const uint8_t*>(buf.data()) + buf.size();
  DBFA_RETURN_IF_ERROR(DecodeValueAt(&p, end, out));
  *pos = static_cast<size_t>(p - reinterpret_cast<const uint8_t*>(buf.data()));
  return Status::Ok();
}

Status DecodeRecord(std::string_view buf, size_t* pos, Record* out) {
  if (*pos > buf.size() || buf.size() - *pos < 4) {
    return Status::Corruption("row codec: truncated input");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data()) + *pos;
  const uint8_t* end = reinterpret_cast<const uint8_t*>(buf.data()) + buf.size();
  uint32_t n = ReadU32(p, false);
  p += 4;
  // A record cannot hold more values than bytes remaining (every value is
  // at least one tag byte) — rejects corrupt counts before reserving.
  if (n > static_cast<size_t>(end - p)) {
    return Status::Corruption("row codec: implausible record width");
  }
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    DBFA_RETURN_IF_ERROR(DecodeValueAt(&p, end, &v));
    out->push_back(std::move(v));
  }
  *pos = static_cast<size_t>(p - reinterpret_cast<const uint8_t*>(buf.data()));
  return Status::Ok();
}

size_t EstimateRecordMemoryBytes(const Record& r) {
  // sizeof(Record) covers the vector header; each Value is a variant whose
  // string alternative owns heap bytes proportional to its size.
  size_t bytes = sizeof(Record) + r.size() * sizeof(Value);
  for (const Value& v : r) {
    // Interned strings live in their pool's arena, which the pool owner
    // accounts for once (ArtifactRelation::EstimatedBytes); counting them
    // per cell here would bill shared bytes per occurrence.
    if (v.type() == ValueType::kString && !v.is_interned()) {
      bytes += v.as_string().size();
    }
  }
  return bytes;
}

}  // namespace dbfa::sql
