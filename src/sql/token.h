// SQL tokenizer for the subset of SQL used by MiniDB audit logs and
// meta-queries.
#ifndef DBFA_SQL_TOKEN_H_
#define DBFA_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbfa::sql {

enum class TokenType {
  kIdentifier,  // unquoted word (keywords included; matched case-insensitively)
  kString,      // 'single quoted', with '' escaping
  kInteger,
  kFloat,
  kSymbol,  // punctuation / operator, normalized text: ( ) , . * = <> <= ...
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // identifier/symbol text; decoded string body
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset in the input, for error messages
};

/// Splits `sql` into tokens. Multi-character operators (<=, >=, <>, !=) are
/// single symbol tokens.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace dbfa::sql

#endif  // DBFA_SQL_TOKEN_H_
