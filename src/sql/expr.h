// Expression AST and evaluator.
//
// Expressions appear in WHERE clauses of logged statements (DBDetective
// re-evaluates them against carved records to attribute deletions — Figure
// 4), in meta-queries over carved relations, and in SELECT item lists
// (arithmetic inside aggregates for the SSBM queries).
//
// NULL semantics are simplified two-valued logic: any comparison involving
// NULL yields NULL, and NULL is treated as false wherever a boolean is
// required. IS NULL / IS NOT NULL test NULL-ness directly.
#ifndef DBFA_SQL_EXPR_H_
#define DBFA_SQL_EXPR_H_

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "storage/value.h"

namespace dbfa::sql {

enum class ExprKind {
  kLiteral,
  kColumn,
  kCompare,  // lhs op rhs
  kAnd,
  kOr,
  kNot,
  kLike,    // lhs LIKE pattern (negated supported)
  kIsNull,  // lhs IS [NOT] NULL
  kArith,   // lhs arith_op rhs
  kFunc,    // func_name(lhs)
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpText(CompareOp op);
const char* ArithOpText(ArithOp op);

/// Immutable expression node. Shared pointers make statements cheaply
/// copyable (audit-log entries hold parsed statements).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;          // kLiteral
  std::string column;     // kColumn: possibly qualified ("c.Name")
  CompareOp compare_op = CompareOp::kEq;  // kCompare
  ArithOp arith_op = ArithOp::kAdd;       // kArith
  std::string pattern;    // kLike
  bool negated = false;   // kLike / kIsNull
  std::string func_name;  // kFunc (LENGTH)

  std::shared_ptr<const Expr> lhs;
  std::shared_ptr<const Expr> rhs;

  /// Renders back to SQL text (round-trips through the parser).
  std::string ToSql() const;
};

using ExprPtr = std::shared_ptr<const Expr>;

// Node constructors.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumn(std::string name);
ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr operand);
ExprPtr MakeLike(ExprPtr lhs, std::string pattern, bool negated);
ExprPtr MakeIsNull(ExprPtr lhs, bool negated);
ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunc(std::string name, ExprPtr arg);

/// Resolves column references during evaluation. Implementations decide how
/// to treat qualified names and unknown columns.
class ColumnBinding {
 public:
  virtual ~ColumnBinding() = default;
  /// Returns the column's value, or nullopt when the name does not resolve.
  virtual std::optional<Value> Lookup(std::string_view name) const = 0;
};

/// Binding over a single record + column-name list (optionally with a
/// qualifier accepted as "<qualifier>.<name>").
class RecordBinding : public ColumnBinding {
 public:
  RecordBinding(const std::vector<std::string>& names, const Record& record,
                std::string qualifier = "")
      : names_(names), record_(record), qualifier_(std::move(qualifier)) {}

  std::optional<Value> Lookup(std::string_view name) const override;

 private:
  const std::vector<std::string>& names_;
  const Record& record_;
  std::string qualifier_;
};

/// Evaluates to a Value (NULL propagates). Unknown columns are errors.
Result<Value> Eval(const Expr& e, const ColumnBinding& binding);

/// Evaluates as a predicate: NULL/unknown results become false.
Result<bool> EvalPredicate(const Expr& e, const ColumnBinding& binding);

/// Collects every column name referenced by `e`.
void CollectColumns(const Expr& e, std::vector<std::string>* out);

}  // namespace dbfa::sql

#endif  // DBFA_SQL_EXPR_H_
