#include "sql/token.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace dbfa::sql {

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_' || sql[i] == '#')) {
        ++i;
      }
      t.type = TokenType::kIdentifier;
      t.text = std::string(sql.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        t.type = TokenType::kFloat;
        t.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      t.text = std::move(text);
    } else if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body += sql[i++];
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string at offset %zu", t.position));
      }
      t.type = TokenType::kString;
      t.text = std::move(body);
    } else {
      t.type = TokenType::kSymbol;
      // Multi-char operators first.
      if (i + 1 < n) {
        std::string two(sql.substr(i, 2));
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          t.text = two == "!=" ? "<>" : two;
          i += 2;
          tokens.push_back(std::move(t));
          continue;
        }
      }
      static const char kSingles[] = "()*,.<>=+-/;";
      bool known = false;
      for (char s : kSingles) {
        if (s == c) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
      t.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dbfa::sql
