// One-time binding of expressions to flat column indices.
//
// The tuple-at-a-time evaluator (expr.h) resolves every column reference
// by a case-insensitive name scan on every row. That is the right tool for
// one-off evaluation, but it dominates the hot paths of the meta-query
// executor and DBDetective, which evaluate the same expression against
// hundreds of thousands of carved records. BindExpr resolves each column
// reference to a flat index into the row exactly once at plan time; the
// bound tree is then evaluated with direct vector indexing and no string
// comparisons. Function names are resolved to an enum at bind time for the
// same reason.
//
// Semantics match Eval/EvalPredicate exactly, except that unknown columns
// and unknown functions are reported once at bind time instead of per row.
#ifndef DBFA_SQL_BOUND_EXPR_H_
#define DBFA_SQL_BOUND_EXPR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/expr.h"

namespace dbfa::sql {

/// Maps a (possibly qualified) column name to a flat index into the rows
/// the bound expression will be evaluated against, or nullopt when the
/// name does not resolve.
using ColumnResolver =
    std::function<std::optional<size_t>(std::string_view name)>;

/// Built-in scalar functions, resolved at bind time.
enum class BoundFunc { kLength, kAbs };

/// An expression with every column reference resolved to a flat index.
/// Immutable after binding; safe to share across threads for read-only
/// evaluation.
struct BoundExpr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                          // kLiteral
  size_t column_index = 0;                // kColumn
  CompareOp compare_op = CompareOp::kEq;  // kCompare
  ArithOp arith_op = ArithOp::kAdd;       // kArith
  std::string pattern;                    // kLike
  bool negated = false;                   // kLike / kIsNull
  BoundFunc func = BoundFunc::kLength;    // kFunc

  std::unique_ptr<BoundExpr> lhs;
  std::unique_ptr<BoundExpr> rhs;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Binds `e` against `resolver`. Unknown columns and unknown functions
/// fail here, once, instead of on every row.
Result<BoundExprPtr> BindExpr(const Expr& e, const ColumnResolver& resolver);

/// Resolver over one column-name list with an optional qualifier accepted
/// as "<qualifier>.<name>" — the same rule as RecordBinding::Lookup. The
/// names are copied, so the resolver may outlive the originals.
ColumnResolver MakeSchemaResolver(std::vector<std::string> names,
                                  std::string qualifier);

/// A zero-copy view of the concatenation left ++ right, indexed exactly
/// like the combined record a join would materialize. Lets a predicate
/// bound against the joined schema run *before* the combined record is
/// built, so rows it rejects are never materialized.
struct JoinRowView {
  const Record* left;
  const Record* right;

  size_t size() const { return left->size() + right->size(); }
  const Value& operator[](size_t i) const {
    return i < left->size() ? (*left)[i] : (*right)[i - left->size()];
  }
};

/// Evaluates a bound expression against a flat row (NULL propagates, as in
/// Eval). A column index beyond the row is an internal error: binding
/// guarantees indices are in range for rows of the bound width.
Result<Value> EvalBound(const BoundExpr& e, const Record& row);
Result<Value> EvalBound(const BoundExpr& e, const JoinRowView& row);

/// Predicate form: NULL results become false (as in EvalPredicate).
/// Comparisons, LIKE and IS NULL over columns and literals are evaluated
/// in place, without copying cell values through the general evaluator.
Result<bool> EvalBoundPredicate(const BoundExpr& e, const Record& row);
Result<bool> EvalBoundPredicate(const BoundExpr& e, const JoinRowView& row);

}  // namespace dbfa::sql

#endif  // DBFA_SQL_BOUND_EXPR_H_
