#include "sql/expr.h"

#include <cmath>

#include "common/strings.h"

namespace dbfa::sql {

const char* CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpText(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

namespace {

std::shared_ptr<Expr> NewExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

}  // namespace

ExprPtr MakeLiteral(Value v) {
  auto e = NewExpr(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumn(std::string name) {
  auto e = NewExpr(ExprKind::kColumn);
  e->column = std::move(name);
  return e;
}

ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr(ExprKind::kCompare);
  e->compare_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr(ExprKind::kAnd);
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr(ExprKind::kOr);
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeNot(ExprPtr operand) {
  auto e = NewExpr(ExprKind::kNot);
  e->lhs = std::move(operand);
  return e;
}

ExprPtr MakeLike(ExprPtr lhs, std::string pattern, bool negated) {
  auto e = NewExpr(ExprKind::kLike);
  e->lhs = std::move(lhs);
  e->pattern = std::move(pattern);
  e->negated = negated;
  return e;
}

ExprPtr MakeIsNull(ExprPtr lhs, bool negated) {
  auto e = NewExpr(ExprKind::kIsNull);
  e->lhs = std::move(lhs);
  e->negated = negated;
  return e;
}

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr(ExprKind::kArith);
  e->arith_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeFunc(std::string name, ExprPtr arg) {
  auto e = NewExpr(ExprKind::kFunc);
  e->func_name = ToUpper(name);
  e->lhs = std::move(arg);
  return e;
}

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumn:
      return column;
    case ExprKind::kCompare:
      return StrFormat("(%s %s %s)", lhs->ToSql().c_str(),
                       CompareOpText(compare_op), rhs->ToSql().c_str());
    case ExprKind::kAnd:
      return StrFormat("(%s AND %s)", lhs->ToSql().c_str(),
                       rhs->ToSql().c_str());
    case ExprKind::kOr:
      return StrFormat("(%s OR %s)", lhs->ToSql().c_str(),
                       rhs->ToSql().c_str());
    case ExprKind::kNot:
      return StrFormat("(NOT %s)", lhs->ToSql().c_str());
    case ExprKind::kLike:
      return StrFormat("(%s %sLIKE %s)", lhs->ToSql().c_str(),
                       negated ? "NOT " : "", SqlQuote(pattern).c_str());
    case ExprKind::kIsNull:
      return StrFormat("(%s IS %sNULL)", lhs->ToSql().c_str(),
                       negated ? "NOT " : "");
    case ExprKind::kArith:
      return StrFormat("(%s %s %s)", lhs->ToSql().c_str(),
                       ArithOpText(arith_op), rhs->ToSql().c_str());
    case ExprKind::kFunc:
      return StrFormat("%s(%s)", func_name.c_str(), lhs->ToSql().c_str());
  }
  return "?";
}

std::optional<Value> RecordBinding::Lookup(std::string_view name) const {
  std::string_view bare = name;
  size_t dot = name.find('.');
  if (dot != std::string_view::npos) {
    std::string_view qual = name.substr(0, dot);
    if (!qualifier_.empty() && !EqualsIgnoreCase(qual, qualifier_)) {
      return std::nullopt;
    }
    bare = name.substr(dot + 1);
  }
  for (size_t i = 0; i < names_.size() && i < record_.size(); ++i) {
    if (EqualsIgnoreCase(names_[i], bare)) return record_[i];
  }
  return std::nullopt;
}

namespace {

Result<Value> EvalArith(ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  bool a_num = a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  bool b_num = b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  if (!a_num || !b_num) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
      op != ArithOp::kDiv) {
    int64_t x = a.as_int();
    int64_t y = b.as_int();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int(x + y);
      case ArithOp::kSub:
        return Value::Int(x - y);
      case ArithOp::kMul:
        return Value::Int(x * y);
      default:
        break;
    }
  }
  double x = a.NumericValue();
  double y = b.NumericValue();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Real(x + y);
    case ArithOp::kSub:
      return Value::Real(x - y);
    case ArithOp::kMul:
      return Value::Real(x * y);
    case ArithOp::kDiv:
      if (y == 0) return Value::Null();
      return Value::Real(x / y);
  }
  return Status::Internal("bad arith op");
}

Value BoolValue(bool b) { return Value::Int(b ? 1 : 0); }

bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.as_int() != 0;
  if (v.type() == ValueType::kDouble) return v.as_double() != 0;
  return !v.as_string().empty();
}

}  // namespace

Result<Value> Eval(const Expr& e, const ColumnBinding& binding) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumn: {
      auto v = binding.Lookup(e.column);
      if (!v.has_value()) {
        return Status::NotFound("unknown column: " + e.column);
      }
      return *v;
    }
    case ExprKind::kCompare: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      DBFA_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, binding));
      if (a.is_null() || b.is_null()) return Value::Null();
      int c = Value::Compare(a, b);
      switch (e.compare_op) {
        case CompareOp::kEq:
          return BoolValue(c == 0);
        case CompareOp::kNe:
          return BoolValue(c != 0);
        case CompareOp::kLt:
          return BoolValue(c < 0);
        case CompareOp::kLe:
          return BoolValue(c <= 0);
        case CompareOp::kGt:
          return BoolValue(c > 0);
        case CompareOp::kGe:
          return BoolValue(c >= 0);
      }
      return Status::Internal("bad compare op");
    }
    case ExprKind::kAnd: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      if (!Truthy(a)) return BoolValue(false);
      DBFA_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, binding));
      return BoolValue(Truthy(b));
    }
    case ExprKind::kOr: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      if (Truthy(a)) return BoolValue(true);
      DBFA_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, binding));
      return BoolValue(Truthy(b));
    }
    case ExprKind::kNot: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      return BoolValue(!Truthy(a));
    }
    case ExprKind::kLike: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      if (a.is_null()) return Value::Null();
      if (a.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE applied to non-string");
      }
      bool m = LikeMatch(a.as_string(), e.pattern);
      return BoolValue(e.negated ? !m : m);
    }
    case ExprKind::kIsNull: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      bool isnull = a.is_null();
      return BoolValue(e.negated ? !isnull : isnull);
    }
    case ExprKind::kArith: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      DBFA_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, binding));
      return EvalArith(e.arith_op, a, b);
    }
    case ExprKind::kFunc: {
      DBFA_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, binding));
      if (e.func_name == "LENGTH") {
        if (a.is_null()) return Value::Null();
        if (a.type() != ValueType::kString) {
          return Status::InvalidArgument("LENGTH applied to non-string");
        }
        return Value::Int(static_cast<int64_t>(a.as_string().size()));
      }
      if (e.func_name == "ABS") {
        if (a.is_null()) return Value::Null();
        if (a.type() == ValueType::kInt) {
          return Value::Int(a.as_int() < 0 ? -a.as_int() : a.as_int());
        }
        if (a.type() == ValueType::kDouble) {
          return Value::Real(std::abs(a.as_double()));
        }
        return Status::InvalidArgument("ABS applied to non-number");
      }
      return Status::Unimplemented("unknown function: " + e.func_name);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvalPredicate(const Expr& e, const ColumnBinding& binding) {
  DBFA_ASSIGN_OR_RETURN(Value v, Eval(e, binding));
  return Truthy(v);
}

void CollectColumns(const Expr& e, std::vector<std::string>* out) {
  if (e.kind == ExprKind::kColumn) {
    out->push_back(e.column);
    return;
  }
  if (e.lhs != nullptr) CollectColumns(*e.lhs, out);
  if (e.rhs != nullptr) CollectColumns(*e.rhs, out);
}

}  // namespace dbfa::sql
