// Parsed SQL statements. Audit-log entries carry these in structured form
// so DBDetective can re-evaluate logged predicates against carved records.
#ifndef DBFA_SQL_STATEMENT_H_
#define DBFA_SQL_STATEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "sql/expr.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace dbfa::sql {

struct CreateTableStmt {
  TableSchema schema;
  std::string ToSql() const;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::vector<std::string> columns;
  std::string ToSql() const;
};

struct DropTableStmt {
  std::string table;
  std::string ToSql() const;
};

struct InsertStmt {
  std::string table;
  std::vector<Record> rows;
  std::string ToSql() const;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  ExprPtr where;  // may be null (all rows)
  std::string ToSql() const;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null (all rows)
  std::string ToSql() const;
};

enum class AggFunc { kNone, kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc f);

struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ExprPtr expr;       // null for COUNT(*) and for plain '*'
  bool star = false;  // SELECT * / COUNT(*)
  std::string alias;  // output column name (defaults derived when empty)

  /// Output column name: alias, else column name, else rendered expression.
  std::string OutputName() const;
};

struct TableRef {
  std::string table;
  std::string alias;  // empty when none

  /// Alias if present, else the table name.
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  std::string left_column;   // possibly qualified
  std::string right_column;  // possibly qualified
};

struct OrderKey {
  std::string column;  // output column name
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;  // may be null
  std::vector<std::string> group_by;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;  // -1: none

  bool HasAggregates() const;
  std::string ToSql() const;
};

struct VacuumStmt {
  std::string table;
  std::string ToSql() const;
};

using Statement =
    std::variant<CreateTableStmt, CreateIndexStmt, DropTableStmt, InsertStmt,
                 UpdateStmt, DeleteStmt, SelectStmt, VacuumStmt>;

/// Renders any statement back to SQL.
std::string StatementToSql(const Statement& stmt);

/// Statement kind name for reports ("INSERT", "SELECT", ...).
const char* StatementKind(const Statement& stmt);

}  // namespace dbfa::sql

#endif  // DBFA_SQL_STATEMENT_H_
