// FleetSimulator: a seeded fleet of independent MiniDB instances for
// exercising the continuous-audit daemon (serve/audit_daemon.h) at scale.
//
// Each instance runs its own SyntheticWorkload; per tick it executes a
// batch of logged operations, optionally injects the Section III-A attack
// (a statement executed while the audit log is disabled), and produces a
// storage capture. The simulator keeps ground truth per instance — which
// ones were attacked — so a driver can score the daemon's findings feed:
// clean instances must produce zero findings, attacked instances at least
// one once a post-attack capture has been audited.
#ifndef DBFA_WORKLOAD_FLEET_H_
#define DBFA_WORKLOAD_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/carver.h"
#include "engine/database.h"
#include "workload/synthetic.h"

namespace dbfa {

struct FleetOptions {
  size_t instances = 8;
  std::string dialect = "postgres_like";
  /// Seed rows per instance (logged, part of Setup).
  int seed_rows = 24;
  /// Logged operations per instance per tick.
  int ops_per_tick = 6;
  /// Probability per instance-tick of injecting one unlogged INSERT — the
  /// privileged-user attack. 0 keeps the whole fleet clean.
  double attack_rate = 0.0;
  uint64_t seed = 42;
};

class FleetSimulator {
 public:
  /// Builds and seeds every instance (CREATE TABLE + seed rows).
  static Result<std::unique_ptr<FleetSimulator>> Make(FleetOptions options);

  const FleetOptions& options() const { return options_; }
  size_t size() const { return nodes_.size(); }

  /// Stable instance name, e.g. "inst-0042".
  static std::string InstanceName(size_t i);

  /// The carver config matching the fleet's dialect (what each instance's
  /// snapshot repository must be created with).
  CarverConfig Config() const;

  /// Advances instance `i` by one tick: runs the logged op batch, rolls
  /// the attack dice, and returns a fresh storage capture.
  Result<Bytes> Tick(size_t i);

  /// The instance's live audit log (grows with each tick; copy it at
  /// capture time to model what an investigator collected).
  const AuditLog& Log(size_t i) const { return nodes_[i]->db->audit_log(); }

  /// Ground truth: unlogged statements injected into instance `i` so far.
  size_t Attacks(size_t i) const { return nodes_[i]->attacks; }

 private:
  /// One instance. unique_ptr keeps nodes movable (Database is not).
  struct Node {
    std::unique_ptr<Database> db;
    std::unique_ptr<SyntheticWorkload> workload;
    std::unique_ptr<Rng> rng;
    size_t attacks = 0;
  };

  explicit FleetSimulator(FleetOptions options);

  FleetOptions options_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace dbfa

#endif  // DBFA_WORKLOAD_FLEET_H_
