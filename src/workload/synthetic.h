// Synthetic OLTP workloads and attack injectors for the security
// experiments (Sections III-A/B/C). Every generator is seeded and returns
// ground truth so benchmarks can score detection precision/recall.
#ifndef DBFA_WORKLOAD_SYNTHETIC_H_
#define DBFA_WORKLOAD_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"

namespace dbfa {

/// Schema used by the synthetic workloads:
/// Accounts(Id INT PK, Owner VARCHAR(24), City VARCHAR(16), Balance DOUBLE).
TableSchema AccountsSchema(const std::string& table = "Accounts");

/// One executed operation, with ground truth about how it ran.
struct AppliedOp {
  std::string sql;
  bool logged = true;  // false: executed while the audit log was disabled
};

struct OpMix {
  double insert_weight = 0.45;
  double delete_weight = 0.20;
  double update_weight = 0.25;
  double select_weight = 0.10;
};

class SyntheticWorkload {
 public:
  /// `table` must not exist yet.
  SyntheticWorkload(Database* db, std::string table, uint64_t seed);

  /// Creates the table and inserts `rows` seed rows (logged).
  Status Setup(int rows);

  /// Runs `n` operations with the given mix. When `logged` is false the
  /// audit log is disabled around the batch — the Section III-A attack.
  /// Executed statements are appended to `history()` with ground truth.
  Status Run(int n, const OpMix& mix, bool logged);

  /// Runs one specific statement with logging control; records history.
  Status RunStatement(const std::string& sql, bool logged);

  const std::vector<AppliedOp>& history() const { return history_; }
  int64_t next_id() const { return next_id_; }

 private:
  std::string RandomOwner();
  std::string RandomCity();

  Database* db_;
  std::string table_;
  Rng rng_;
  int64_t next_id_ = 1;
  std::vector<AppliedOp> history_;
};

// ---- byte-level tampering (Section III-B attacks) ---------------------------

/// Overwrites one column of a live record directly in the storage file,
/// bypassing the DBMS (the "Hex editor / Python as root" attack). The new
/// string value must have the same encoded length as the old one. Fixes
/// the page checksum when `fix_checksum` (a careful attacker).
Status TamperOverwriteField(Database* db, const std::string& table,
                            RowPointer ptr, const std::string& column,
                            const Value& new_value, bool fix_checksum = true);

/// Appends a record into a table page at byte level without touching any
/// index — an "extraneous record" the StorageAuditor must flag.
Status TamperInsertRecord(Database* db, const std::string& table,
                          const Record& values, bool fix_checksum = true);

/// Erases a live record at byte level (zeroes its bytes and tombstones the
/// slot) without a logged DELETE — index entries still point at it.
Status TamperEraseRecord(Database* db, const std::string& table,
                         RowPointer ptr, bool fix_checksum = true);

}  // namespace dbfa

#endif  // DBFA_WORKLOAD_SYNTHETIC_H_
