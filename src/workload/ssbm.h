// Star Schema Benchmark (SSBM) workload — the dataset of the paper's
// steganography evaluation (Figure 3). Scaled-down generator with the
// full dimensional structure (DATE, CUSTOMER, SUPPLIER, PART, LINEORDER
// with composite PK and four FKs) plus the 13 SSBM queries expressed in
// the meta-query SQL subset. Every query joins at least one dimension,
// which is precisely what hides constraint-violating records.
#ifndef DBFA_WORKLOAD_SSBM_H_
#define DBFA_WORKLOAD_SSBM_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "metaquery/session.h"

namespace dbfa {

struct SsbmConfig {
  int customers = 200;
  int suppliers = 40;
  int parts = 120;
  int date_days = 700;  // spread over years starting 1992
  int lineorders = 1500;
  uint64_t seed = 20180417;
};

/// Schemas for the five SSBM tables.
TableSchema SsbmDateSchema();
TableSchema SsbmCustomerSchema();
TableSchema SsbmSupplierSchema();
TableSchema SsbmPartSchema();
TableSchema SsbmLineorderSchema();

/// Creates all five tables and loads generated data.
Status LoadSsbm(Database* db, const SsbmConfig& config);

/// SSBM query ids in flight order: "Q1.1" ... "Q4.3".
const std::vector<std::string>& SsbmQueryIds();

/// SQL text of one SSBM query (meta-query dialect).
Result<std::string> SsbmQuerySql(const std::string& query_id);

/// Runs one query through a meta-query session over the live tables.
Result<QueryTable> RunSsbmQuery(Database* db, const std::string& query_id);

}  // namespace dbfa

#endif  // DBFA_WORKLOAD_SSBM_H_
