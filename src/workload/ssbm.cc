#include "workload/ssbm.h"

#include "common/rng.h"
#include "common/strings.h"

namespace dbfa {
namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

/// Five nations per region; AMERICA includes UNITED STATES and EUROPE
/// includes UNITED KINGDOM so the Q3/Q4 constants select real rows.
const char* kNations[5][5] = {
    {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
    {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
    {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
    {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
    {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"}};

/// SSBM-style city: first 9 characters of the nation (padded) + digit.
std::string CityOf(const std::string& nation, int i) {
  std::string base = nation;
  base.resize(9, ' ');
  return base + std::to_string(i % 10);
}

const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                         "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

struct DateRow {
  int64_t datekey;
  int year;
  int month;  // 1-12
  int week;
};

std::vector<DateRow> GenerateDates(int days) {
  std::vector<DateRow> out;
  int year = 1992;
  int month = 1;
  int day = 1;
  int day_of_year = 1;
  for (int i = 0; i < days; ++i) {
    DateRow d;
    d.datekey = year * 10000 + month * 100 + day;
    d.year = year;
    d.month = month;
    d.week = (day_of_year - 1) / 7 + 1;
    out.push_back(d);
    ++day;
    ++day_of_year;
    static const int kDays[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
    if (day > kDays[month - 1]) {
      day = 1;
      ++month;
      if (month > 12) {
        month = 1;
        ++year;
        day_of_year = 1;
      }
    }
  }
  return out;
}

}  // namespace

TableSchema SsbmDateSchema() {
  TableSchema s;
  s.name = "date";
  s.columns = {{"d_datekey", ColumnType::kInt, 0, false},
               {"d_year", ColumnType::kInt, 0, false},
               {"d_yearmonthnum", ColumnType::kInt, 0, false},
               {"d_yearmonth", ColumnType::kVarchar, 7, false},
               {"d_month", ColumnType::kInt, 0, false},
               {"d_weeknuminyear", ColumnType::kInt, 0, false}};
  s.primary_key = {"d_datekey"};
  return s;
}

TableSchema SsbmCustomerSchema() {
  TableSchema s;
  s.name = "customer";
  s.columns = {{"c_custkey", ColumnType::kInt, 0, false},
               {"c_name", ColumnType::kVarchar, 25, false},
               {"c_city", ColumnType::kVarchar, 10, false},
               {"c_nation", ColumnType::kVarchar, 15, false},
               {"c_region", ColumnType::kVarchar, 12, false}};
  s.primary_key = {"c_custkey"};
  return s;
}

TableSchema SsbmSupplierSchema() {
  TableSchema s;
  s.name = "supplier";
  s.columns = {{"s_suppkey", ColumnType::kInt, 0, false},
               {"s_name", ColumnType::kVarchar, 25, false},
               {"s_city", ColumnType::kVarchar, 10, false},
               {"s_nation", ColumnType::kVarchar, 15, false},
               {"s_region", ColumnType::kVarchar, 12, false}};
  s.primary_key = {"s_suppkey"};
  return s;
}

TableSchema SsbmPartSchema() {
  TableSchema s;
  s.name = "part";
  s.columns = {{"p_partkey", ColumnType::kInt, 0, false},
               {"p_name", ColumnType::kVarchar, 22, false},
               {"p_mfgr", ColumnType::kVarchar, 6, false},
               {"p_category", ColumnType::kVarchar, 7, false},
               {"p_brand1", ColumnType::kVarchar, 9, false}};
  s.primary_key = {"p_partkey"};
  return s;
}

TableSchema SsbmLineorderSchema() {
  TableSchema s;
  s.name = "lineorder";
  s.columns = {{"lo_orderkey", ColumnType::kInt, 0, false},
               {"lo_linenumber", ColumnType::kInt, 0, false},
               {"lo_custkey", ColumnType::kInt, 0, false},
               {"lo_partkey", ColumnType::kInt, 0, false},
               {"lo_suppkey", ColumnType::kInt, 0, false},
               {"lo_orderdate", ColumnType::kInt, 0, false},
               {"lo_quantity", ColumnType::kInt, 0, false},
               {"lo_extendedprice", ColumnType::kInt, 0, false},
               {"lo_discount", ColumnType::kInt, 0, false},
               {"lo_revenue", ColumnType::kInt, 0, false},
               {"lo_supplycost", ColumnType::kInt, 0, false},
               {"lo_shipmode", ColumnType::kVarchar, 10, true}};
  s.primary_key = {"lo_orderkey", "lo_linenumber"};
  s.foreign_keys = {{"lo_custkey", "customer", "c_custkey"},
                    {"lo_partkey", "part", "p_partkey"},
                    {"lo_suppkey", "supplier", "s_suppkey"},
                    {"lo_orderdate", "date", "d_datekey"}};
  return s;
}

Status LoadSsbm(Database* db, const SsbmConfig& config) {
  Rng rng(config.seed);
  DBFA_RETURN_IF_ERROR(db->CreateTable(SsbmDateSchema()));
  DBFA_RETURN_IF_ERROR(db->CreateTable(SsbmCustomerSchema()));
  DBFA_RETURN_IF_ERROR(db->CreateTable(SsbmSupplierSchema()));
  DBFA_RETURN_IF_ERROR(db->CreateTable(SsbmPartSchema()));
  DBFA_RETURN_IF_ERROR(db->CreateTable(SsbmLineorderSchema()));

  std::vector<DateRow> dates = GenerateDates(config.date_days);
  for (const DateRow& d : dates) {
    std::string yearmonth =
        StrFormat("%s%d", kMonths[d.month - 1], d.year);
    DBFA_RETURN_IF_ERROR(
        db->Insert("date", {Value::Int(d.datekey), Value::Int(d.year),
                            Value::Int(d.year * 100 + d.month),
                            Value::Str(yearmonth), Value::Int(d.month),
                            Value::Int(d.week)})
            .status());
  }
  auto geo = [&](int i) {
    int region = i % 5;
    int nation = (i / 5) % 5;
    return std::make_tuple(std::string(kRegions[region]),
                           std::string(kNations[region][nation]));
  };
  for (int i = 1; i <= config.customers; ++i) {
    auto [region, nation] = geo(i);
    DBFA_RETURN_IF_ERROR(
        db->Insert("customer",
                   {Value::Int(i), Value::Str(StrFormat("Customer#%06d", i)),
                    Value::Str(CityOf(nation, i)), Value::Str(nation),
                    Value::Str(region)})
            .status());
  }
  for (int i = 1; i <= config.suppliers; ++i) {
    auto [region, nation] = geo(i * 3 + 1);
    DBFA_RETURN_IF_ERROR(
        db->Insert("supplier",
                   {Value::Int(i), Value::Str(StrFormat("Supplier#%06d", i)),
                    Value::Str(CityOf(nation, i)), Value::Str(nation),
                    Value::Str(region)})
            .status());
  }
  for (int i = 1; i <= config.parts; ++i) {
    int mfgr = i % 5 + 1;
    int category = i % 5 + 1;
    int brand = i % 40 + 1;
    DBFA_RETURN_IF_ERROR(
        db->Insert("part",
                   {Value::Int(i), Value::Str(StrFormat("Part %d", i)),
                    Value::Str(StrFormat("MFGR#%d", mfgr)),
                    Value::Str(StrFormat("MFGR#%d%d", mfgr, category)),
                    Value::Str(StrFormat("MFGR#%d%d%02d", mfgr, category,
                                         brand))})
            .status());
  }
  static const char* kShipModes[] = {"AIR",  "SHIP", "TRUCK", "RAIL",
                                     "MAIL", "FOB",  "REG AIR"};
  for (int i = 1; i <= config.lineorders; ++i) {
    int64_t datekey = dates[rng.NextU64() % dates.size()].datekey;
    int64_t quantity = rng.Uniform(1, 50);
    int64_t price = rng.Uniform(100, 10000);
    int64_t discount = rng.Uniform(0, 10);
    DBFA_RETURN_IF_ERROR(
        db->Insert(
              "lineorder",
              {Value::Int(i), Value::Int(rng.Uniform(1, 7)),
               Value::Int(rng.Uniform(1, config.customers)),
               Value::Int(rng.Uniform(1, config.parts)),
               Value::Int(rng.Uniform(1, config.suppliers)),
               Value::Int(datekey), Value::Int(quantity), Value::Int(price),
               Value::Int(discount),
               Value::Int(price * quantity * (100 - discount) / 100),
               Value::Int(price * 6 / 10),
               Value::Str(kShipModes[rng.NextU64() % 7])})
            .status());
  }
  return Status::Ok();
}

const std::vector<std::string>& SsbmQueryIds() {
  static const std::vector<std::string>& ids = *new std::vector<std::string>{
      "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1",
      "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2", "Q4.3"};
  return ids;
}

Result<std::string> SsbmQuerySql(const std::string& query_id) {
  if (query_id == "Q1.1") {
    return std::string(
        "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
        "FROM lineorder JOIN date ON lo_orderdate = d_datekey "
        "WHERE d_year = 1993 AND lo_discount BETWEEN 1 AND 3 AND "
        "lo_quantity < 25");
  }
  if (query_id == "Q1.2") {
    return std::string(
        "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
        "FROM lineorder JOIN date ON lo_orderdate = d_datekey "
        "WHERE d_yearmonthnum = 199301 AND lo_discount BETWEEN 4 AND 6 AND "
        "lo_quantity BETWEEN 26 AND 35");
  }
  if (query_id == "Q1.3") {
    return std::string(
        "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
        "FROM lineorder JOIN date ON lo_orderdate = d_datekey "
        "WHERE d_weeknuminyear = 6 AND d_year = 1993 AND "
        "lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35");
  }
  if (query_id == "Q2.1") {
    return std::string(
        "SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1 "
        "FROM lineorder JOIN date ON lo_orderdate = d_datekey "
        "JOIN part ON lo_partkey = p_partkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "WHERE p_category = 'MFGR#12' AND s_region = 'AMERICA' "
        "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1");
  }
  if (query_id == "Q2.2") {
    return std::string(
        "SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1 "
        "FROM lineorder JOIN date ON lo_orderdate = d_datekey "
        "JOIN part ON lo_partkey = p_partkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "WHERE p_brand1 BETWEEN 'MFGR#221' AND 'MFGR#2228' AND "
        "s_region = 'ASIA' GROUP BY d_year, p_brand1 "
        "ORDER BY d_year, p_brand1");
  }
  if (query_id == "Q2.3") {
    return std::string(
        "SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1 "
        "FROM lineorder JOIN date ON lo_orderdate = d_datekey "
        "JOIN part ON lo_partkey = p_partkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "WHERE p_brand1 = 'MFGR#2214' AND s_region = 'EUROPE' "
        "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1");
  }
  if (query_id == "Q3.1") {
    return std::string(
        "SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue "
        "FROM lineorder JOIN customer ON lo_custkey = c_custkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "JOIN date ON lo_orderdate = d_datekey "
        "WHERE c_region = 'ASIA' AND s_region = 'ASIA' AND "
        "d_year BETWEEN 1992 AND 1997 "
        "GROUP BY c_nation, s_nation, d_year "
        "ORDER BY d_year, revenue DESC");
  }
  if (query_id == "Q3.2") {
    return std::string(
        "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
        "FROM lineorder JOIN customer ON lo_custkey = c_custkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "JOIN date ON lo_orderdate = d_datekey "
        "WHERE c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES' "
        "AND d_year BETWEEN 1992 AND 1997 "
        "GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC");
  }
  if (query_id == "Q3.3") {
    return std::string(
        "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
        "FROM lineorder JOIN customer ON lo_custkey = c_custkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "JOIN date ON lo_orderdate = d_datekey "
        "WHERE c_city IN ('UNITED ST1', 'UNITED ST5') AND "
        "s_city IN ('UNITED ST1', 'UNITED ST5') AND "
        "d_year BETWEEN 1992 AND 1997 "
        "GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC");
  }
  if (query_id == "Q3.4") {
    return std::string(
        "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
        "FROM lineorder JOIN customer ON lo_custkey = c_custkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "JOIN date ON lo_orderdate = d_datekey "
        "WHERE c_region = 'AMERICA' AND s_region = 'AMERICA' AND "
        "d_yearmonth = 'Dec1993' "
        "GROUP BY c_city, s_city, d_year ORDER BY d_year, revenue DESC");
  }
  if (query_id == "Q4.1") {
    return std::string(
        "SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit "
        "FROM lineorder JOIN customer ON lo_custkey = c_custkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "JOIN part ON lo_partkey = p_partkey "
        "JOIN date ON lo_orderdate = d_datekey "
        "WHERE c_region = 'AMERICA' AND s_region = 'AMERICA' AND "
        "(p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') "
        "GROUP BY d_year, c_nation ORDER BY d_year, c_nation");
  }
  if (query_id == "Q4.2") {
    return std::string(
        "SELECT d_year, s_nation, p_category, "
        "SUM(lo_revenue - lo_supplycost) AS profit "
        "FROM lineorder JOIN customer ON lo_custkey = c_custkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "JOIN part ON lo_partkey = p_partkey "
        "JOIN date ON lo_orderdate = d_datekey "
        "WHERE c_region = 'AMERICA' AND s_region = 'AMERICA' AND "
        "d_year IN (1992, 1993) AND "
        "(p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') "
        "GROUP BY d_year, s_nation, p_category "
        "ORDER BY d_year, s_nation, p_category");
  }
  if (query_id == "Q4.3") {
    return std::string(
        "SELECT d_year, s_city, p_brand1, "
        "SUM(lo_revenue - lo_supplycost) AS profit "
        "FROM lineorder JOIN customer ON lo_custkey = c_custkey "
        "JOIN supplier ON lo_suppkey = s_suppkey "
        "JOIN part ON lo_partkey = p_partkey "
        "JOIN date ON lo_orderdate = d_datekey "
        "WHERE s_nation = 'UNITED STATES' AND d_year IN (1992, 1993) AND "
        "p_category = 'MFGR#14' "
        "GROUP BY d_year, s_city, p_brand1 "
        "ORDER BY d_year, s_city, p_brand1");
  }
  return Status::NotFound("unknown SSBM query: " + query_id);
}

Result<QueryTable> RunSsbmQuery(Database* db, const std::string& query_id) {
  DBFA_ASSIGN_OR_RETURN(std::string sql, SsbmQuerySql(query_id));
  MetaQuerySession session;
  DBFA_RETURN_IF_ERROR(session.RegisterDatabase(db));
  return session.Query(sql);
}

}  // namespace dbfa
