#include "workload/fleet.h"

#include <utility>

#include "common/strings.h"
#include "engine/catalog.h"
#include "storage/dialects.h"

namespace dbfa {

FleetSimulator::FleetSimulator(FleetOptions options)
    : options_(std::move(options)) {}

std::string FleetSimulator::InstanceName(size_t i) {
  return StrFormat("inst-%04zu", i);
}

CarverConfig FleetSimulator::Config() const {
  CarverConfig config;
  config.params = GetDialect(options_.dialect).value();
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

Result<std::unique_ptr<FleetSimulator>> FleetSimulator::Make(
    FleetOptions options) {
  if (options.instances == 0) {
    return Status::InvalidArgument("fleet: need at least one instance");
  }
  auto dialect = GetDialect(options.dialect);
  if (!dialect.ok()) return dialect.status();

  std::unique_ptr<FleetSimulator> fleet(
      new FleetSimulator(std::move(options)));
  for (size_t i = 0; i < fleet->options_.instances; ++i) {
    auto node = std::make_unique<Node>();
    DatabaseOptions db_options;
    db_options.dialect = fleet->options_.dialect;
    DBFA_ASSIGN_OR_RETURN(node->db, Database::Open(db_options));
    node->workload = std::make_unique<SyntheticWorkload>(
        node->db.get(), "Accounts",
        fleet->options_.seed + 0x9E37 * (i + 1));
    DBFA_RETURN_IF_ERROR(node->workload->Setup(fleet->options_.seed_rows));
    node->rng = std::make_unique<Rng>(fleet->options_.seed ^ (i * 2654435761u));
    fleet->nodes_.push_back(std::move(node));
  }
  return fleet;
}

Result<Bytes> FleetSimulator::Tick(size_t i) {
  if (i >= nodes_.size()) {
    return Status::InvalidArgument(StrFormat("fleet: no instance %zu", i));
  }
  Node& node = *nodes_[i];
  DBFA_RETURN_IF_ERROR(
      node.workload->Run(options_.ops_per_tick, OpMix{}, /*logged=*/true));
  if (options_.attack_rate > 0.0 && node.rng->Bernoulli(options_.attack_rate)) {
    // The privileged-user attack: an INSERT executed while logging is off.
    // Ids live in a space the workload generator never reaches, so the
    // statement always succeeds and leaves a guaranteed storage artifact.
    ++node.attacks;
    std::string sql = StrFormat(
        "INSERT INTO Accounts VALUES (%zu, 'Mallory', 'Nowhere', 13.37)",
        1000000 + node.attacks);
    DBFA_RETURN_IF_ERROR(node.workload->RunStatement(sql, /*logged=*/false));
  }
  return node.db->SnapshotDisk();
}

}  // namespace dbfa
