#include "workload/synthetic.h"

#include "common/strings.h"

namespace dbfa {
namespace {

const char* kOwners[] = {"Christine", "Christopher", "Thomas", "Jane",
                         "Joe",       "Maria",       "Ahmed",  "Wei",
                         "Olga",      "Carlos"};
const char* kCities[] = {"Chicago", "Seattle", "Austin", "Boston",
                         "Denver",  "Miami",   "Phoenix"};

}  // namespace

TableSchema AccountsSchema(const std::string& table) {
  TableSchema s;
  s.name = table;
  s.columns = {{"Id", ColumnType::kInt, 0, false},
               {"Owner", ColumnType::kVarchar, 24, true},
               {"City", ColumnType::kVarchar, 16, true},
               {"Balance", ColumnType::kDouble, 0, true}};
  s.primary_key = {"Id"};
  return s;
}

SyntheticWorkload::SyntheticWorkload(Database* db, std::string table,
                                     uint64_t seed)
    : db_(db), table_(std::move(table)), rng_(seed) {}

std::string SyntheticWorkload::RandomOwner() {
  return kOwners[rng_.NextU64() % (sizeof(kOwners) / sizeof(kOwners[0]))];
}

std::string SyntheticWorkload::RandomCity() {
  return kCities[rng_.NextU64() % (sizeof(kCities) / sizeof(kCities[0]))];
}

Status SyntheticWorkload::Setup(int rows) {
  DBFA_RETURN_IF_ERROR(db_->CreateTable(AccountsSchema(table_)));
  history_.push_back(
      {sql::CreateTableStmt{AccountsSchema(table_)}.ToSql(), true});
  for (int i = 0; i < rows; ++i) {
    std::string sql = StrFormat(
        "INSERT INTO %s VALUES (%lld, '%s', '%s', %lld.%02d)",
        table_.c_str(), static_cast<long long>(next_id_),
        RandomOwner().c_str(), RandomCity().c_str(),
        static_cast<long long>(rng_.Uniform(0, 9999)),
        static_cast<int>(rng_.Uniform(0, 99)));
    ++next_id_;
    DBFA_RETURN_IF_ERROR(RunStatement(sql, true));
  }
  return Status::Ok();
}

Status SyntheticWorkload::RunStatement(const std::string& sql, bool logged) {
  bool was_enabled = db_->audit_log().enabled();
  db_->audit_log().SetEnabled(logged);
  Status status = db_->ExecuteSql(sql).status();
  db_->audit_log().SetEnabled(was_enabled);
  if (status.ok()) history_.push_back({sql, logged});
  return status;
}

Status SyntheticWorkload::Run(int n, const OpMix& mix, bool logged) {
  double total = mix.insert_weight + mix.delete_weight + mix.update_weight +
                 mix.select_weight;
  for (int i = 0; i < n; ++i) {
    double dice = rng_.NextDouble() * total;
    std::string sql;
    if (dice < mix.insert_weight) {
      sql = StrFormat("INSERT INTO %s VALUES (%lld, '%s', '%s', %lld.%02d)",
                      table_.c_str(), static_cast<long long>(next_id_),
                      RandomOwner().c_str(), RandomCity().c_str(),
                      static_cast<long long>(rng_.Uniform(0, 9999)),
                      static_cast<int>(rng_.Uniform(0, 99)));
      ++next_id_;
    } else if (dice < mix.insert_weight + mix.delete_weight) {
      if (rng_.Bernoulli(0.7)) {
        sql = StrFormat("DELETE FROM %s WHERE Id = %lld", table_.c_str(),
                        static_cast<long long>(rng_.Uniform(1, next_id_)));
      } else {
        sql = StrFormat("DELETE FROM %s WHERE Owner = '%s' AND City = '%s'",
                        table_.c_str(), RandomOwner().c_str(),
                        RandomCity().c_str());
      }
    } else if (dice <
               mix.insert_weight + mix.delete_weight + mix.update_weight) {
      sql = StrFormat("UPDATE %s SET Balance = %lld.%02d WHERE Id = %lld",
                      table_.c_str(),
                      static_cast<long long>(rng_.Uniform(0, 9999)),
                      static_cast<int>(rng_.Uniform(0, 99)),
                      static_cast<long long>(rng_.Uniform(1, next_id_)));
    } else {
      if (rng_.Bernoulli(0.5)) {
        int64_t lo = rng_.Uniform(1, next_id_);
        sql = StrFormat("SELECT * FROM %s WHERE Id BETWEEN %lld AND %lld",
                        table_.c_str(), static_cast<long long>(lo),
                        static_cast<long long>(lo + 20));
      } else {
        sql = StrFormat("SELECT * FROM %s WHERE Owner = '%s'",
                        table_.c_str(), RandomOwner().c_str());
      }
    }
    DBFA_RETURN_IF_ERROR(RunStatement(sql, logged));
  }
  return Status::Ok();
}

// ---- byte-level tampering ------------------------------------------------------

namespace {

/// Flushes the pool, hands the caller the raw page bytes to mutate, then
/// drops the pool so the engine re-reads tampered storage.
Status WithRawPage(Database* db, uint32_t object_id, uint32_t page_id,
                   const std::function<Status(uint8_t*)>& mutate) {
  DBFA_RETURN_IF_ERROR(db->pager().pool().FlushAll());
  StorageFile* file = db->pager().file(object_id);
  if (file == nullptr || !file->Contains(page_id)) {
    return Status::NotFound("no such page to tamper with");
  }
  DBFA_RETURN_IF_ERROR(mutate(file->PageData(page_id)));
  return db->pager().pool().Clear();
}

}  // namespace

Status TamperOverwriteField(Database* db, const std::string& table,
                            RowPointer ptr, const std::string& column,
                            const Value& new_value, bool fix_checksum) {
  const TableInfo* info = db->catalog().Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  int column_index = info->schema.ColumnIndex(column);
  if (column_index < 0) return Status::NotFound("no such column: " + column);
  const PageFormatter& fmt = db->pager().fmt();
  return WithRawPage(db, info->object_id, ptr.page_id, [&](uint8_t* page) {
    auto slot = fmt.GetSlot(page, ptr.slot);
    if (!slot.has_value()) return Status::NotFound("no such slot");
    ByteView view(page, fmt.page_size());
    DBFA_ASSIGN_OR_RETURN(ParsedRecord rec,
                          fmt.ParseRecordAt(view, slot->offset));
    DBFA_ASSIGN_OR_RETURN(Record values, fmt.DecodeTyped(rec, info->schema));
    values[column_index] = new_value;
    DBFA_ASSIGN_OR_RETURN(Bytes encoded,
                          fmt.EncodeRecord(info->schema, values, rec.row_id));
    if (encoded.size() != rec.length) {
      return Status::InvalidArgument(
          "tampered value must keep the record length");
    }
    // Preserve the delete mark the original carried (byte-identical swap
    // except for the field) by copying the whole re-encoded record: the
    // original is active in all tampering scenarios.
    CopyBytes(page + rec.offset, encoded.data(), encoded.size());
    if (fix_checksum) fmt.UpdateChecksum(page);
    return Status::Ok();
  });
}

Status TamperInsertRecord(Database* db, const std::string& table,
                          const Record& values, bool fix_checksum) {
  const TableInfo* info = db->catalog().Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  const PageFormatter& fmt = db->pager().fmt();
  DBFA_ASSIGN_OR_RETURN(
      Bytes encoded,
      fmt.EncodeRecord(info->schema, values, /*row_id=*/999999));
  DBFA_RETURN_IF_ERROR(db->pager().pool().FlushAll());
  StorageFile* file = db->pager().file(info->object_id);
  if (file == nullptr) return Status::NotFound("table file missing");
  for (uint32_t page_id = 1; page_id <= file->page_count(); ++page_id) {
    uint8_t* page = file->PageData(page_id);
    if (fmt.TypeOf(page) != PageType::kData) continue;
    if (fmt.FreeSpace(page) < encoded.size()) continue;
    auto slot = fmt.InsertRecordBytes(page, encoded);
    if (!slot.ok()) continue;
    if (fix_checksum) fmt.UpdateChecksum(page);
    return db->pager().pool().Clear();
  }
  return Status::OutOfRange("no page has room for the smuggled record");
}

Status TamperEraseRecord(Database* db, const std::string& table,
                         RowPointer ptr, bool fix_checksum) {
  const TableInfo* info = db->catalog().Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  const PageFormatter& fmt = db->pager().fmt();
  return WithRawPage(db, info->object_id, ptr.page_id, [&](uint8_t* page) {
    auto slot = fmt.GetSlot(page, ptr.slot);
    if (!slot.has_value()) return Status::NotFound("no such slot");
    ByteView view(page, fmt.page_size());
    DBFA_ASSIGN_OR_RETURN(ParsedRecord rec,
                          fmt.ParseRecordAt(view, slot->offset));
    std::memset(page + rec.offset, 0, rec.length);
    fmt.SetSlotTombstone(page, ptr.slot, true);
    if (fix_checksum) fmt.UpdateChecksum(page);
    return Status::Ok();
  });
}

}  // namespace dbfa
