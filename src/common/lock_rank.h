// The global lock acquisition order — the single source of truth for
// deadlock freedom (docs/lock_order.md).
//
// Every dbfa::Mutex that can ever be held while another lock is taken is
// constructed with a (name, rank) identity from this header. The rule is
// one line: a thread may only acquire a mutex whose rank is strictly
// greater than the rank of every mutex it already holds. Because ranks
// form a total order, following the rule makes lock-order cycles — and
// therefore lock-order deadlocks — impossible by construction.
//
// The rule is enforced three ways, none of which depends on a test
// happening to interleave two locks:
//   - Clang thread-safety `acquired_before`/`acquired_after` annotations
//     on the members (DBFA_ACQUIRED_BEFORE/AFTER, src/common/mutex.h);
//   - `tools/dbfa_lockcheck/` statically extracts every acquisition scope
//     across the tree, checks nesting against these ranks, and rejects
//     cycles and blocking calls made under a ranked lock;
//   - under -DDBFA_LOCK_DEBUG=ON, Mutex::Lock validates the order at
//     runtime against a process-wide observed-order graph and aborts with
//     the witness cycle on the first inconsistent pair (common/lock_debug.h).
//
// To add a mutex: pick the outermost point in this order at which it can
// be acquired, insert a rank there (values are spaced by 10 so new locks
// fit between existing ones), name the mutex "<subsystem>/<role>", and
// run `python3 tools/dbfa_lockcheck/dbfa_lockcheck.py` — it fails if the
// observed nesting disagrees with the rank you chose.
#ifndef DBFA_COMMON_LOCK_RANK_H_
#define DBFA_COMMON_LOCK_RANK_H_

namespace dbfa {
namespace lock_rank {

/// Rank of a mutex constructed without a place in the global order (the
/// default). Unranked mutexes must never participate in nested locking;
/// dbfa_lockcheck rejects them in any multi-lock scope.
inline constexpr int kUnranked = -1;

/// The global order, outermost (acquired first) to innermost (leaf).
/// Lower rank = acquired earlier. dbfa_lockcheck parses this enum, so
/// entries must stay of the form `kName = <integer literal>,`.
enum Rank : int {
  // -- continuous-audit daemon (src/serve/audit_daemon.h) ----------------
  // Intake state: accepting/stopped flags and the pending-capture count
  // Drain() waits on. Held alone except for the condition wait.
  kAuditState = 10,
  // Instance registry. AddInstance publishes per-instance stats while
  // still holding it, so it precedes kAuditStats.
  kAuditInstances = 20,
  // Per-instance and latency counters.
  kAuditStats = 30,
  // Per-instance finding-dedup sets; ResolveFinding() clears entries from
  // outside the owning shard, so the sets need a lock of their own. Held
  // alone (the emit path acquires it, then kAuditFeed, sequentially).
  kAuditDedup = 35,
  // Findings feed serialization point: the feed file and the in-memory
  // findings vector. Leaf within the daemon; the append I/O happens
  // under it by design (see docs/lock_order.md).
  kAuditFeed = 40,

  // -- meta-query session (src/metaquery/session.h) ----------------------
  // Lazy worker-pool creation; a pool may be constructed under it.
  kSessionPool = 50,

  // -- common infrastructure ---------------------------------------------
  // ThreadPool task queue; taken by Submit/Wait/ParallelFor and by every
  // worker between tasks.
  kThreadPool = 60,
  // BoundedQueue state: taken by producers (daemon submitters) and by the
  // shard workers' Pop loop.
  kBoundedQueue = 70,
  // SpillManager directory + file-id state.
  kSpillManager = 80,
  // StringPool shard tables: the innermost lock in the tree — interning
  // runs inside carve workers that may already hold queue or pool locks
  // upstream. Shards of one pool are never held together (the shard
  // choice is a pure function of the string's content hash).
  kStringPoolShard = 90,
};

}  // namespace lock_rank
}  // namespace dbfa

#endif  // DBFA_COMMON_LOCK_RANK_H_
