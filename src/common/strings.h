// Small string helpers used across the library (no locale dependence).
#ifndef DBFA_COMMON_STRINGS_H_
#define DBFA_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace dbfa {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (SQL keywords, identifiers).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// SQL LIKE matching with % (any run) and _ (any one char), case sensitive.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Escapes a string for embedding in single-quoted SQL ('' doubling).
std::string SqlQuote(std::string_view s);

}  // namespace dbfa

#endif  // DBFA_COMMON_STRINGS_H_
