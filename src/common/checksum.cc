#include "common/checksum.h"

#include <array>
#include <cstring>

namespace dbfa {
namespace {

// Slice-by-8 CRC-32: table[0] is the classic bytewise table; table[k]
// maps a byte processed k positions before the end of an 8-byte group.
// Same polynomial, same values as the bytewise loop — only faster.
std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& CrcTables() {
  static const std::array<std::array<uint32_t, 256>, 8>& tables =
      *new std::array<std::array<uint32_t, 256>, 8>(MakeCrcTables());
  return tables;
}

/// Advances CRC state `c` over `data` (no pre/post inversion).
uint32_t CrcUpdate(uint32_t c, ByteView data) {
  const auto& tables = CrcTables();
  const uint8_t* p = data.data();
  size_t n = data.size();
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tables[7][lo & 0xFF] ^ tables[6][(lo >> 8) & 0xFF] ^
        tables[5][(lo >> 16) & 0xFF] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xFF] ^ tables[2][(hi >> 8) & 0xFF] ^
        tables[1][(hi >> 16) & 0xFF] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  const auto& table = tables[0];
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c;
}

}  // namespace

const char* ChecksumKindName(ChecksumKind kind) {
  switch (kind) {
    case ChecksumKind::kNone:
      return "none";
    case ChecksumKind::kCrc32:
      return "crc32";
    case ChecksumKind::kFletcher16:
      return "fletcher16";
    case ChecksumKind::kXor8:
      return "xor8";
  }
  return "unknown";
}

uint32_t Crc32(ByteView data) {
  return CrcUpdate(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

uint16_t Fletcher16(ByteView data) {
  uint32_t sum1 = 0;
  uint32_t sum2 = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    sum1 = (sum1 + data[i]) % 255;
    sum2 = (sum2 + sum1) % 255;
  }
  return static_cast<uint16_t>((sum2 << 8) | sum1);
}

uint8_t Xor8(ByteView data) {
  uint8_t x = 0;
  for (size_t i = 0; i < data.size(); ++i) x ^= data[i];
  return x;
}

size_t ChecksumWidth(ChecksumKind kind) {
  switch (kind) {
    case ChecksumKind::kNone:
      return 0;
    case ChecksumKind::kCrc32:
      return 4;
    case ChecksumKind::kFletcher16:
      return 2;
    case ChecksumKind::kXor8:
      return 1;
  }
  return 0;
}

ChecksumStream::ChecksumStream(ChecksumKind kind) : kind_(kind) {
  if (kind_ == ChecksumKind::kCrc32) a_ = 0xFFFFFFFFu;
}

void ChecksumStream::Update(ByteView data) {
  switch (kind_) {
    case ChecksumKind::kNone:
      break;
    case ChecksumKind::kCrc32:
      a_ = CrcUpdate(a_, data);
      break;
    case ChecksumKind::kFletcher16:
      for (size_t i = 0; i < data.size(); ++i) {
        a_ = (a_ + data[i]) % 255;
        b_ = (b_ + a_) % 255;
      }
      break;
    case ChecksumKind::kXor8:
      for (size_t i = 0; i < data.size(); ++i) a_ ^= data[i];
      break;
  }
}

uint32_t ChecksumStream::Final() const {
  switch (kind_) {
    case ChecksumKind::kNone:
      return 0;
    case ChecksumKind::kCrc32:
      return a_ ^ 0xFFFFFFFFu;
    case ChecksumKind::kFletcher16:
      return (b_ << 8) | a_;
    case ChecksumKind::kXor8:
      return a_ & 0xFF;
  }
  return 0;
}

uint32_t ComputeChecksum(ChecksumKind kind, ByteView data) {
  switch (kind) {
    case ChecksumKind::kNone:
      return 0;
    case ChecksumKind::kCrc32:
      return Crc32(data);
    case ChecksumKind::kFletcher16:
      return Fletcher16(data);
    case ChecksumKind::kXor8:
      return Xor8(data);
  }
  return 0;
}

}  // namespace dbfa
