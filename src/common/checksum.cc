#include "common/checksum.h"

#include <array>

namespace dbfa {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256>& table =
      *new std::array<uint32_t, 256>(MakeCrcTable());
  return table;
}

}  // namespace

const char* ChecksumKindName(ChecksumKind kind) {
  switch (kind) {
    case ChecksumKind::kNone:
      return "none";
    case ChecksumKind::kCrc32:
      return "crc32";
    case ChecksumKind::kFletcher16:
      return "fletcher16";
    case ChecksumKind::kXor8:
      return "xor8";
  }
  return "unknown";
}

uint32_t Crc32(ByteView data) {
  const auto& table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < data.size(); ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint16_t Fletcher16(ByteView data) {
  uint32_t sum1 = 0;
  uint32_t sum2 = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    sum1 = (sum1 + data[i]) % 255;
    sum2 = (sum2 + sum1) % 255;
  }
  return static_cast<uint16_t>((sum2 << 8) | sum1);
}

uint8_t Xor8(ByteView data) {
  uint8_t x = 0;
  for (size_t i = 0; i < data.size(); ++i) x ^= data[i];
  return x;
}

size_t ChecksumWidth(ChecksumKind kind) {
  switch (kind) {
    case ChecksumKind::kNone:
      return 0;
    case ChecksumKind::kCrc32:
      return 4;
    case ChecksumKind::kFletcher16:
      return 2;
    case ChecksumKind::kXor8:
      return 1;
  }
  return 0;
}

ChecksumStream::ChecksumStream(ChecksumKind kind) : kind_(kind) {
  if (kind_ == ChecksumKind::kCrc32) a_ = 0xFFFFFFFFu;
}

void ChecksumStream::Update(ByteView data) {
  switch (kind_) {
    case ChecksumKind::kNone:
      break;
    case ChecksumKind::kCrc32: {
      const auto& table = CrcTable();
      uint32_t c = a_;
      for (size_t i = 0; i < data.size(); ++i) {
        c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
      }
      a_ = c;
      break;
    }
    case ChecksumKind::kFletcher16:
      for (size_t i = 0; i < data.size(); ++i) {
        a_ = (a_ + data[i]) % 255;
        b_ = (b_ + a_) % 255;
      }
      break;
    case ChecksumKind::kXor8:
      for (size_t i = 0; i < data.size(); ++i) a_ ^= data[i];
      break;
  }
}

uint32_t ChecksumStream::Final() const {
  switch (kind_) {
    case ChecksumKind::kNone:
      return 0;
    case ChecksumKind::kCrc32:
      return a_ ^ 0xFFFFFFFFu;
    case ChecksumKind::kFletcher16:
      return (b_ << 8) | a_;
    case ChecksumKind::kXor8:
      return a_ & 0xFF;
  }
  return 0;
}

uint32_t ComputeChecksum(ChecksumKind kind, ByteView data) {
  switch (kind) {
    case ChecksumKind::kNone:
      return 0;
    case ChecksumKind::kCrc32:
      return Crc32(data);
    case ChecksumKind::kFletcher16:
      return Fletcher16(data);
    case ChecksumKind::kXor8:
      return Xor8(data);
  }
  return 0;
}

}  // namespace dbfa
