// Arena-backed string interning, sharded for lock-cheap concurrent interning
// by parallel decode workers.
//
// Each distinct string is stored once in a shard-private Arena and mapped to
// a stable StringRef {ptr, len, id} via an open-addressing table (the idiom
// follows the DuckDB StringTable / hash-trie exemplars in SNIPPETS.md). The
// shard is chosen from the content hash, so where a string lands — and
// therefore its ref — depends only on its content and the pool's shard
// count, never on which thread interned it first ("cross-shard interning
// determinism"; the shard-local *id* still depends on insertion order, see
// StringRef).
#ifndef DBFA_COMMON_STRING_POOL_H_
#define DBFA_COMMON_STRING_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/mutex.h"
#include "common/string_ref.h"

namespace dbfa {

/// Thread-safe interning table. Intern() may be called concurrently from any
/// number of threads; a string's bytes are copied into the owning shard's
/// arena exactly once and every later Intern() of the same content returns
/// the identical StringRef (same pointer, same id).
class StringPool {
 public:
  static constexpr size_t kDefaultShards = 8;

  /// `shard_count` is rounded up to a power of two in [1, 64].
  explicit StringPool(size_t shard_count = kDefaultShards);

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Interns `s`, copying it into the pool on first sight. Strings longer
  /// than UINT32_MAX bytes are unsupported (carved cells are bounded by the
  /// 32 KiB page-size ceiling long before that).
  StringRef Intern(std::string_view s);

  /// Returns the ref for `s` if it has been interned, without inserting.
  std::optional<StringRef> Find(std::string_view s) const;

  struct Stats {
    size_t distinct_count = 0;   // number of distinct strings interned
    size_t string_bytes = 0;     // sum of lengths of distinct strings
    size_t arena_bytes_used = 0;
    size_t arena_bytes_reserved = 0;
    size_t table_bytes = 0;  // open-addressing slots + entry vectors
    size_t shard_count = 0;
  };
  Stats GetStats() const;

  /// Total bytes owned by the pool (arenas + tables); the exact number
  /// ArtifactRelation::EstimatedBytes feeds into spill_policy kAuto routing.
  size_t BytesUsed() const;

  /// Process-unique pool identity stamped into every ref this pool returns.
  uint64_t pool_id() const { return pool_id_; }

 private:
  struct Shard {
    // Innermost rank in the tree; shards of one pool never nest (the
    // shard choice is a pure function of the content hash).
    mutable Mutex mu{"string_pool/shard", lock_rank::kStringPoolShard};
    Arena arena DBFA_GUARDED_BY(mu);
    std::vector<StringRef> entries DBFA_GUARDED_BY(mu);
    // Open addressing, linear probing; values index `entries`, kEmptySlot
    // marks a free slot. Grown (power-of-two) before load factor hits 0.7.
    std::vector<uint32_t> slots DBFA_GUARDED_BY(mu);
    size_t string_bytes DBFA_GUARDED_BY(mu) = 0;
  };

  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  size_t ShardIndex(size_t hash) const { return (hash >> 48) & shard_mask_; }
  static void GrowLocked(Shard* sh);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_;
  uint32_t shard_bits_;
  uint64_t pool_id_;
};

}  // namespace dbfa

#endif  // DBFA_COMMON_STRING_POOL_H_
