// A small reusable worker pool for the parallel carving pipeline.
//
// Design constraints: fixed thread count chosen at construction (forensic
// workloads size the pool once per run), FIFO task queue, and a Wait()
// barrier so an orchestrating thread can submit a wave of independent
// tasks and block until the wave drains. Tasks must not throw; the
// library is no-exception style throughout.
//
// Concurrency contract: one orchestrating thread calls Submit/ParallelFor/
// Wait; worker threads only execute tasks. Task completion is published
// under the pool mutex, so anything a task wrote before finishing
// happens-before Wait() returning in the orchestrator.
#ifndef DBFA_COMMON_THREAD_POOL_H_
#define DBFA_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace dbfa {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  /// Enqueues a task. Never blocks on task execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Submits body(0) … body(n-1) and waits for all of them.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// std::thread::hardware_concurrency, never 0.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  Mutex mu_{"thread_pool", lock_rank::kThreadPool};
  CondVar task_cv_;  // signals workers: task ready / stop
  CondVar done_cv_;  // signals Wait(): queue drained
  std::queue<std::function<void()>> queue_ DBFA_GUARDED_BY(mu_);
  // Queued + currently running tasks.
  size_t in_flight_ DBFA_GUARDED_BY(mu_) = 0;
  bool stop_ DBFA_GUARDED_BY(mu_) = false;
};

}  // namespace dbfa

#endif  // DBFA_COMMON_THREAD_POOL_H_
