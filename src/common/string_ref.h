// StringRef: a non-owning reference to a string interned in a StringPool.
//
// Split out of string_pool.h so that storage/value.h (included nearly
// everywhere) can hold interned strings without pulling in the pool's
// mutex/arena machinery.
#ifndef DBFA_COMMON_STRING_REF_H_
#define DBFA_COMMON_STRING_REF_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace dbfa {

/// Content hash used for every string in dbfa — owned std::string cells and
/// interned StringRefs alike. Value::Hash routes both string representations
/// through this function (interned refs cache the result at intern time), so
/// HashRecord stays compatible with CompareRecords equality regardless of
/// which representation a cell uses. Invariant tested in string_pool_test.
inline size_t HashStringContent(std::string_view s) {
  return std::hash<std::string_view>{}(s);
}

/// Reference to a string interned in a StringPool.
///
/// Lifetime: `data` points into the pool's arena and is valid exactly as
/// long as the owning pool is alive; the bytes never move (see
/// docs/columnar_memory.md for the lifetime rules).
///
/// Identity: within one pool, interning the same content always returns the
/// same ref — equal (pool_id, id) implies equal content and vice versa. Ids
/// are dense-ish and stable for the pool's lifetime but NOT reproducible
/// across runs when several decode workers intern concurrently (shard-local
/// insertion order depends on thread interleaving), so ids must never leak
/// into persisted or user-visible output — comparisons fall back to content
/// whenever pools differ.
struct StringRef {
  const char* data = nullptr;
  uint32_t len = 0;
  /// Unique within the owning pool: (shard-local index << shard_bits) | shard.
  uint32_t id = 0;
  /// Process-unique identity of the owning pool; 0 = invalid/none.
  uint64_t pool_id = 0;
  /// Cached HashStringContent(view()), computed once at intern time.
  size_t hash = 0;

  std::string_view view() const { return std::string_view(data, len); }
};

}  // namespace dbfa

#endif  // DBFA_COMMON_STRING_REF_H_
