// Page checksum algorithms. Real row-store DBMSes disagree about page
// checksums (algorithm, width, coverage), so the dialect layer picks one of
// these per dialect, and the parameter collector has to re-discover which
// one is in use from captured storage alone.
#ifndef DBFA_COMMON_CHECKSUM_H_
#define DBFA_COMMON_CHECKSUM_H_

#include <cstdint>

#include "common/bytes.h"

namespace dbfa {

/// Checksum algorithm identifiers, serialized into carver config files.
enum class ChecksumKind : uint8_t {
  kNone = 0,
  kCrc32 = 1,       // CRC-32 (IEEE 802.3 polynomial), 4 bytes.
  kFletcher16 = 2,  // Fletcher-16 stored in 2 bytes.
  kXor8 = 3,        // Single-byte XOR fold.
};

const char* ChecksumKindName(ChecksumKind kind);

/// CRC-32 (reflected, polynomial 0xEDB88320) over `data`.
uint32_t Crc32(ByteView data);

/// Fletcher-16 over `data`.
uint16_t Fletcher16(ByteView data);

/// XOR of all bytes.
uint8_t Xor8(ByteView data);

/// Width in bytes of the stored checksum field for `kind` (0 for kNone).
size_t ChecksumWidth(ChecksumKind kind);

/// Computes the checksum of `kind` over `data`, truncated into the field
/// width. For kNone returns 0.
uint32_t ComputeChecksum(ChecksumKind kind, ByteView data);

/// Incremental checksum over a sequence of byte ranges. Page checksums are
/// defined over the page bytes *excluding* the stored checksum field, which
/// requires feeding two disjoint spans.
class ChecksumStream {
 public:
  explicit ChecksumStream(ChecksumKind kind);

  void Update(ByteView data);
  /// Finishes and returns the checksum truncated to the field width.
  uint32_t Final() const;

 private:
  ChecksumKind kind_;
  uint32_t a_ = 0;  // CRC state / Fletcher sum1 / XOR fold
  uint32_t b_ = 0;  // Fletcher sum2
};

}  // namespace dbfa

#endif  // DBFA_COMMON_CHECKSUM_H_
