#include "common/spill_manager.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/strings.h"

namespace dbfa {
namespace {

// Rejects absurd header sizes before allocating: no writer produces blocks
// larger than this, so anything bigger is a corrupt or truncated header.
constexpr uint32_t kMaxBlockPayload = 64u * 1024 * 1024;

std::string ErrnoMessage(const char* op, const std::string& path) {
  return StrFormat("%s %s: %s", op, path.c_str(), std::strerror(errno));
}

}  // namespace

// ---- SpillFile ----------------------------------------------------------

SpillFile::SpillFile(SpillFile&& other) noexcept
    : manager_(other.manager_),
      path_(std::move(other.path_)),
      f_(other.f_),
      blocks_(other.blocks_) {
  other.f_ = nullptr;
  other.path_.clear();
}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this != &other) {
    Close();
    manager_ = other.manager_;
    path_ = std::move(other.path_);
    f_ = other.f_;
    blocks_ = other.blocks_;
    other.f_ = nullptr;
    other.path_.clear();
  }
  return *this;
}

SpillFile::~SpillFile() { Close(); }

void SpillFile::Close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best effort; dir removal backstops
    path_.clear();
  }
}

Status SpillFile::AppendBlock(std::string_view payload) {
  if (f_ == nullptr) {
    return Status::Internal("spill file is closed");
  }
  uint8_t header[8];
  WriteU32(header, static_cast<uint32_t>(payload.size()), /*big_endian=*/false);
  WriteU32(header + 4,
           Crc32(AsByteView(payload)),
           /*big_endian=*/false);
  if (std::fwrite(header, 1, sizeof(header), f_) != sizeof(header) ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), f_) != payload.size())) {
    return Status::IoError(ErrnoMessage("write", path_));
  }
  if (std::fflush(f_) != 0) {
    return Status::IoError(ErrnoMessage("flush", path_));
  }
  ++blocks_;
  manager_->blocks_written_.fetch_add(1, std::memory_order_relaxed);
  manager_->bytes_written_.fetch_add(payload.size(),
                                     std::memory_order_relaxed);
  return Status::Ok();
}

Result<SpillFile::Reader> SpillFile::OpenReader() const {
  if (path_.empty()) {
    return Status::Internal("spill file is closed");
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(ErrnoMessage("open", path_));
  }
  return Reader(manager_, f);
}

SpillFile::Reader::Reader(Reader&& other) noexcept
    : manager_(other.manager_), f_(other.f_) {
  other.f_ = nullptr;
}

SpillFile::Reader& SpillFile::Reader::operator=(Reader&& other) noexcept {
  if (this != &other) {
    if (f_ != nullptr) std::fclose(f_);
    manager_ = other.manager_;
    f_ = other.f_;
    other.f_ = nullptr;
  }
  return *this;
}

SpillFile::Reader::~Reader() {
  if (f_ != nullptr) std::fclose(f_);
}

Result<bool> SpillFile::Reader::NextBlock(std::string* payload) {
  uint8_t header[8];
  size_t n = std::fread(header, 1, sizeof(header), f_);
  if (n == 0 && std::feof(f_)) return false;
  if (n != sizeof(header)) {
    return Status::Corruption("spill block: truncated header");
  }
  uint32_t size = ReadU32(header, /*big_endian=*/false);
  uint32_t expected_crc = ReadU32(header + 4, /*big_endian=*/false);
  if (size > kMaxBlockPayload) {
    return Status::Corruption(
        StrFormat("spill block: implausible payload size %u", size));
  }
  payload->resize(size);
  if (size != 0 && std::fread(payload->data(), 1, size, f_) != size) {
    return Status::Corruption("spill block: truncated payload");
  }
  uint32_t actual_crc =
      Crc32(AsByteView(*payload));
  if (actual_crc != expected_crc) {
    return Status::Corruption(
        StrFormat("spill block: checksum mismatch (stored %08x, computed "
                  "%08x)",
                  expected_crc, actual_crc));
  }
  manager_->blocks_read_.fetch_add(1, std::memory_order_relaxed);
  manager_->bytes_read_.fetch_add(size, std::memory_order_relaxed);
  return true;
}

// ---- SpillManager -------------------------------------------------------

SpillManager::SpillManager(std::string root) : root_(std::move(root)) {}

SpillManager::~SpillManager() {
  // Detach the directory name under the lock, delete outside it: remove_all
  // is blocking file I/O and needs no exclusion once dir_ is cleared (no
  // CreateFile may race the destructor per the class contract).
  std::string dir;
  {
    MutexLock lock(&mu_);
    dir = std::move(dir_);
    dir_.clear();
  }
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);  // backstop for leaked files
  }
}

Status SpillManager::EnsureDirOnce() {
  {
    MutexLock lock(&mu_);
    if (!dir_.empty()) return Status::Ok();
  }
  // All directory I/O runs unlocked; the commit below resolves races.
  std::error_code ec;
  std::filesystem::path root =
      root_.empty() ? std::filesystem::temp_directory_path(ec)
                    : std::filesystem::path(root_);
  if (ec) {
    return Status::IoError("no temp directory: " + ec.message());
  }
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IoError(StrFormat("create %s: %s", root.c_str(),
                                     ec.message().c_str()));
  }
  // Unique per manager: pid + the manager's address disambiguate managers
  // within and across processes sharing one root; the attempt counter
  // disambiguates concurrent first calls on one manager.
  for (uint64_t attempt = 0; attempt < 1024; ++attempt) {
    std::filesystem::path candidate =
        root / StrFormat("dbfa-spill-%d-%p-%llu", static_cast<int>(getpid()),
                         static_cast<const void*>(this),
                         static_cast<unsigned long long>(attempt));
    if (std::filesystem::create_directory(candidate, ec)) {
      bool won;
      {
        MutexLock lock(&mu_);
        won = dir_.empty();
        if (won) dir_ = candidate.string();
      }
      if (!won) {
        // Another thread committed first; discard our candidate and use
        // the winner's directory.
        std::filesystem::remove(candidate, ec);
      }
      return Status::Ok();
    }
    if (ec) {
      return Status::IoError(StrFormat("create %s: %s", candidate.c_str(),
                                       ec.message().c_str()));
    }
  }
  return Status::Internal("could not create a unique spill directory");
}

Result<SpillFile> SpillManager::CreateFile() {
  DBFA_RETURN_IF_ERROR(EnsureDirOnce());
  std::string path;
  {
    MutexLock lock(&mu_);
    path = (std::filesystem::path(dir_) /
            StrFormat("run-%06llu.spill",
                      static_cast<unsigned long long>(next_id_++)))
               .string();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(ErrnoMessage("open", path));
  }
  files_created_.fetch_add(1, std::memory_order_relaxed);
  return SpillFile(this, std::move(path), f);
}

SpillStats SpillManager::stats() const {
  SpillStats s;
  s.files_created = files_created_.load(std::memory_order_relaxed);
  s.blocks_written = blocks_written_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.blocks_read = blocks_read_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  return s;
}

std::string SpillManager::dir() const {
  MutexLock lock(&mu_);
  return dir_;
}

}  // namespace dbfa
