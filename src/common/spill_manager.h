// Temp-file lifecycle for out-of-core query execution.
//
// A SpillManager owns one unique directory of spill files for the scope of
// a single operation (one meta-query). Operators obtain SpillFiles from it,
// append checksummed blocks of serialized rows, and read them back through
// independent cursors. Every file is unlinked when its SpillFile handle is
// destroyed and the directory itself is removed by ~SpillManager, so no
// temp data survives any exit path — success, error return, or stack
// unwinding (the RAII guard the out-of-core executor relies on).
//
// Block format (all integers little-endian):
//   u32 payload_size
//   u32 crc32(payload)   -- CRC-32, IEEE 802.3 polynomial (common/checksum.h)
//   payload bytes
// A torn or bit-flipped block fails the size sanity check or the CRC and
// surfaces as Status::Corruption instead of silently corrupting results.
//
// Concurrency contract: CreateFile() and stats() may be called from any
// thread; each SpillFile is single-writer (one partition, one thread), and
// a Reader must not outlive its SpillFile.
#ifndef DBFA_COMMON_SPILL_MANAGER_H_
#define DBFA_COMMON_SPILL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"

namespace dbfa {

/// Aggregate spill activity of one SpillManager (one query).
struct SpillStats {
  uint64_t files_created = 0;
  uint64_t blocks_written = 0;
  uint64_t bytes_written = 0;  // payload bytes, excluding block headers
  uint64_t blocks_read = 0;
  uint64_t bytes_read = 0;

  bool spilled() const { return bytes_written != 0; }
};

class SpillManager;

/// One spill file: append checksummed blocks, then read them back in order
/// through any number of independent Readers. Movable; unlinks its file on
/// destruction.
class SpillFile {
 public:
  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  /// Appends one block. The payload is flushed to the OS before returning,
  /// so a Reader opened afterwards sees it.
  Status AppendBlock(std::string_view payload);

  size_t block_count() const { return blocks_; }
  const std::string& path() const { return path_; }

  /// Sequential cursor over the file's blocks. Independent of other
  /// readers; must not outlive the SpillFile.
  class Reader {
   public:
    Reader(Reader&& other) noexcept;
    Reader& operator=(Reader&& other) noexcept;
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    ~Reader();

    /// Reads the next block into *payload. Returns false at end of file;
    /// Status::Corruption when a header or checksum does not verify.
    Result<bool> NextBlock(std::string* payload);

   private:
    friend class SpillFile;
    Reader(SpillManager* manager, std::FILE* f) : manager_(manager), f_(f) {}

    SpillManager* manager_;
    std::FILE* f_;
  };

  Result<Reader> OpenReader() const;

 private:
  friend class SpillManager;
  SpillFile(SpillManager* manager, std::string path, std::FILE* f)
      : manager_(manager), path_(std::move(path)), f_(f) {}

  void Close();

  SpillManager* manager_;
  std::string path_;
  std::FILE* f_ = nullptr;  // write handle, append mode
  size_t blocks_ = 0;
};

/// Creates and tears down one unique spill directory; hands out SpillFiles.
class SpillManager {
 public:
  /// `root` is the directory under which the unique spill directory is
  /// created (itself created if missing); empty means the system temp
  /// directory. Nothing touches the filesystem until the first CreateFile.
  explicit SpillManager(std::string root = "");

  /// Removes every remaining spill file and the spill directory.
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Creates a new empty spill file. Thread-safe.
  Result<SpillFile> CreateFile();

  /// Snapshot of the spill counters. Thread-safe.
  SpillStats stats() const;

  /// The unique spill directory; empty until the first CreateFile.
  std::string dir() const;

 private:
  friend class SpillFile;

  /// Creates the unique spill directory on first use. Double-checked so the
  /// directory I/O runs outside mu_ (no blocking call under a ranked lock —
  /// docs/lock_order.md): losers of the creation race remove their candidate
  /// directory and adopt the winner's.
  Status EnsureDirOnce();

  std::string root_;
  mutable Mutex mu_{"spill_manager", lock_rank::kSpillManager};
  std::string dir_ DBFA_GUARDED_BY(mu_);
  uint64_t next_id_ DBFA_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> blocks_written_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> blocks_read_{0};
  std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace dbfa

#endif  // DBFA_COMMON_SPILL_MANAGER_H_
