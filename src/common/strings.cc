#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace dbfa {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative greedy match with backtracking over the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string SqlQuote(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

}  // namespace dbfa
