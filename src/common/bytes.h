// Byte-buffer utilities: endian-aware integer codecs and varints.
//
// Forensic carving reads fields out of raw storage captures, so all codecs
// operate on plain byte ranges rather than structured streams, and every
// read has a bounds-checked "Try" variant for hostile input.
#ifndef DBFA_COMMON_BYTES_H_
#define DBFA_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dbfa {

/// Raw storage bytes (page images, disk images, RAM snapshots).
using Bytes = std::vector<uint8_t>;

/// Non-owning view over bytes. std::span-like but minimal.
class ByteView {
 public:
  ByteView() : data_(nullptr), size_(0) {}
  ByteView(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ByteView(const Bytes& b) : data_(b.data()), size_(b.size()) {}  // NOLINT

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Returns the sub-view [offset, offset+len); clamps to the view's end.
  ByteView Slice(size_t offset, size_t len = SIZE_MAX) const {
    if (offset >= size_) return ByteView(data_ + size_, 0);
    size_t n = size_ - offset;
    if (len < n) n = len;
    return ByteView(data_ + offset, n);
  }

  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

// -- Unchecked fixed-width codecs (callers guarantee bounds) --------------

inline uint16_t ReadU16(const uint8_t* p, bool big_endian) {
  return big_endian ? static_cast<uint16_t>((p[0] << 8) | p[1])
                    : static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t ReadU32(const uint8_t* p, bool big_endian) {
  if (big_endian) {
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  }
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t ReadU64(const uint8_t* p, bool big_endian) {
  uint64_t hi = ReadU32(big_endian ? p : p + 4, big_endian);
  uint64_t lo = ReadU32(big_endian ? p + 4 : p, big_endian);
  return (hi << 32) | lo;
}

inline void WriteU16(uint8_t* p, uint16_t v, bool big_endian) {
  if (big_endian) {
    p[0] = static_cast<uint8_t>(v >> 8);
    p[1] = static_cast<uint8_t>(v);
  } else {
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
  }
}

inline void WriteU32(uint8_t* p, uint32_t v, bool big_endian) {
  if (big_endian) {
    p[0] = static_cast<uint8_t>(v >> 24);
    p[1] = static_cast<uint8_t>(v >> 16);
    p[2] = static_cast<uint8_t>(v >> 8);
    p[3] = static_cast<uint8_t>(v);
  } else {
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
  }
}

inline void WriteU64(uint8_t* p, uint64_t v, bool big_endian) {
  if (big_endian) {
    WriteU32(p, static_cast<uint32_t>(v >> 32), true);
    WriteU32(p + 4, static_cast<uint32_t>(v), true);
  } else {
    WriteU32(p, static_cast<uint32_t>(v), false);
    WriteU32(p + 4, static_cast<uint32_t>(v >> 32), false);
  }
}

// -- Bounds-checked reads for carving hostile input ------------------------

inline std::optional<uint16_t> TryReadU16(ByteView v, size_t off,
                                          bool big_endian) {
  if (off + 2 > v.size()) return std::nullopt;
  return ReadU16(v.data() + off, big_endian);
}

inline std::optional<uint32_t> TryReadU32(ByteView v, size_t off,
                                          bool big_endian) {
  if (off + 4 > v.size()) return std::nullopt;
  return ReadU32(v.data() + off, big_endian);
}

inline std::optional<uint64_t> TryReadU64(ByteView v, size_t off,
                                          bool big_endian) {
  if (off + 8 > v.size()) return std::nullopt;
  return ReadU64(v.data() + off, big_endian);
}

// -- Varints (LEB128, used by the SQLite-like dialect) ----------------------

/// Appends v as a LEB128 varint; returns the encoded length in bytes.
size_t AppendVarint(Bytes* out, uint64_t v);

/// Writes v at p (which must have room for 10 bytes); returns encoded length.
size_t EncodeVarint(uint8_t* p, uint64_t v);

/// Decodes a varint at `off`; advances *consumed. Returns nullopt on
/// truncation or over-long (>10 byte) encodings.
std::optional<uint64_t> DecodeVarint(ByteView v, size_t off, size_t* consumed);

/// Number of bytes EncodeVarint would produce for v.
size_t VarintLength(uint64_t v);

/// Appends raw bytes to a buffer.
inline void AppendBytes(Bytes* out, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + n);
}

// -- Audited type-punning accessors ----------------------------------------
// All byte<->char reinterpretation and raw block copies in dbfa go through
// these three functions; dbfa_lint's raw-byte-read rule flags any other
// reinterpret_cast/memcpy outside the allowlisted codec files (see
// tools/dbfa_lint/allowlist.txt). Keeping the punning in one place keeps
// every carve of hostile input inside bounds-checked, reviewable code.

/// Views character data (std::string, std::string_view) as raw bytes.
inline ByteView AsByteView(std::string_view s) {
  return ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

/// Views raw bytes as character data, e.g. to append to a std::string.
inline std::string_view AsStringView(ByteView v) {
  return std::string_view(reinterpret_cast<const char*>(v.data()), v.size());
}

/// Copies `n` raw bytes between non-overlapping buffers. Callers guarantee
/// bounds; prefer the checked TryRead* codecs when parsing hostile input.
inline void CopyBytes(void* dst, const void* src, size_t n) {
  if (n != 0) std::memcpy(dst, src, n);
}

}  // namespace dbfa

#endif  // DBFA_COMMON_BYTES_H_
