// A bounded multi-producer/multi-consumer FIFO queue — the backpressure
// primitive of the continuous-audit daemon (docs/continuous_audit.md).
//
// The bound is the contract: a producer that outruns its consumers either
// gets an immediate reject (TryPush, the daemon's default capture policy)
// or blocks until a slot frees (Push, the delay policy). Memory held by
// queued items can therefore never exceed capacity × item size, and the
// high-water mark records how close a run came to that ceiling.
//
// Shutdown follows the drain discipline: Close() stops intake immediately
// but lets consumers Pop() every item already accepted, so no accepted
// work is ever dropped. All counters are monotonic and published under the
// queue mutex, so after the last consumer observes Pop() == false,
// pushed() == popped() and size() == 0.
#ifndef DBFA_COMMON_BOUNDED_QUEUE_H_
#define DBFA_COMMON_BOUNDED_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/mutex.h"

namespace dbfa {

/// Outcome of an enqueue attempt. Distinguishing kFull from kClosed lets
/// producers keep exact backpressure accounting: only kFull is a rejection
/// (counted in rejected()); kClosed means intake ended.
enum class QueuePush { kAccepted, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity would deadlock both push paths; clamp to 1.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// Non-blocking enqueue. kFull — counted as a rejection — when the queue
  /// is at capacity; kClosed (not counted) when intake has stopped.
  QueuePush TryPush(T item) {
    MutexLock lock(&mu_);
    if (closed_) return QueuePush::kClosed;
    if (items_.size() >= capacity_) {
      ++rejected_;
      return QueuePush::kFull;
    }
    Enqueue(std::move(item));
    return QueuePush::kAccepted;
  }

  /// Blocking enqueue: waits for a free slot. Returns kClosed only when
  /// the queue is (or becomes) closed while waiting; never kFull.
  QueuePush Push(T item) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
    if (closed_) return QueuePush::kClosed;
    Enqueue(std::move(item));
    return QueuePush::kAccepted;
  }

  /// Blocking dequeue. Returns false when the queue is closed and fully
  /// drained; until then every accepted item is delivered exactly once.
  bool Pop(T* out) {
    MutexLock lock(&mu_);
    while (items_.empty() && !closed_) not_empty_.Wait(&mu_);
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    not_full_.Signal();
    return true;
  }

  /// Stops intake; consumers drain the remainder. Idempotent.
  void Close() {
    MutexLock lock(&mu_);
    closed_ = true;
    not_empty_.SignalAll();
    not_full_.SignalAll();
  }

  bool closed() const {
    MutexLock lock(&mu_);
    return closed_;
  }
  size_t size() const {
    MutexLock lock(&mu_);
    return items_.size();
  }
  /// Deepest the queue ever got; never exceeds capacity() by construction.
  size_t high_water() const {
    MutexLock lock(&mu_);
    return high_water_;
  }
  uint64_t pushed() const {
    MutexLock lock(&mu_);
    return pushed_;
  }
  uint64_t popped() const {
    MutexLock lock(&mu_);
    return popped_;
  }
  /// TryPush calls refused because the queue was at capacity.
  uint64_t rejected() const {
    MutexLock lock(&mu_);
    return rejected_;
  }

 private:
  void Enqueue(T item) DBFA_REQUIRES(mu_) {
    items_.push_back(std::move(item));
    ++pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.Signal();
  }

  const size_t capacity_;
  mutable Mutex mu_{"bounded_queue", lock_rank::kBoundedQueue};
  CondVar not_empty_;  // signals consumers: item ready / closed
  CondVar not_full_;   // signals producers: slot free / closed
  std::deque<T> items_ DBFA_GUARDED_BY(mu_);
  bool closed_ DBFA_GUARDED_BY(mu_) = false;
  size_t high_water_ DBFA_GUARDED_BY(mu_) = 0;
  uint64_t pushed_ DBFA_GUARDED_BY(mu_) = 0;
  uint64_t popped_ DBFA_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ DBFA_GUARDED_BY(mu_) = 0;
};

}  // namespace dbfa

#endif  // DBFA_COMMON_BOUNDED_QUEUE_H_
