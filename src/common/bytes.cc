#include "common/bytes.h"

namespace dbfa {

size_t EncodeVarint(uint8_t* p, uint64_t v) {
  size_t n = 0;
  while (v >= 0x80) {
    p[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  p[n++] = static_cast<uint8_t>(v);
  return n;
}

size_t AppendVarint(Bytes* out, uint64_t v) {
  uint8_t buf[10];
  size_t n = EncodeVarint(buf, v);
  out->insert(out->end(), buf, buf + n);
  return n;
}

std::optional<uint64_t> DecodeVarint(ByteView v, size_t off,
                                     size_t* consumed) {
  uint64_t result = 0;
  int shift = 0;
  size_t i = off;
  while (i < v.size() && shift < 64) {
    uint8_t b = v[i++];
    result |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      if (consumed != nullptr) *consumed = i - off;
      return result;
    }
    shift += 7;
  }
  return std::nullopt;
}

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace dbfa
