#include "common/lock_debug.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/lock_rank.h"

namespace dbfa {
namespace lock_debug {
namespace {

// Deep enough for any sane design; the tree's deepest real nesting is 2.
constexpr int kMaxHeld = 16;

struct Held {
  const void* mu;
  const char* name;  // nullptr = unnamed
  int rank;          // lock_rank::kUnranked = unranked
};

thread_local Held t_held[kMaxHeld];
thread_local int t_depth = 0;

/// One observed "from is held while to is acquired" fact, with the held
/// stack of the thread that first observed it — half of any future
/// witness report.
struct Edge {
  std::string from;
  std::string to;
  std::string witness;
};

// The graph mutex is a raw std::mutex on purpose: instrumenting the
// validator's own lock with the validator would recurse. It is a leaf by
// construction — no code runs under it but the vector scan below.
std::mutex& GraphMu() {
  static std::mutex mu;
  return mu;
}

std::vector<Edge>& Edges() {
  static std::vector<Edge> edges;
  return edges;
}

std::string StackString() {
  std::string out;
  for (int i = 0; i < t_depth; ++i) {
    if (i != 0) out += " -> ";
    out += t_held[i].name != nullptr ? t_held[i].name : "<unnamed>";
    if (t_held[i].rank != lock_rank::kUnranked) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " (rank %d)", t_held[i].rank);
      out += buf;
    }
  }
  return out.empty() ? "<none>" : out;
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "dbfa lock-debug: fatal: %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

/// BFS path from -> to over the observed edges; empty when unreachable.
/// Runs under GraphMu(); the graph has one node per lock *name*, so it is
/// tiny (tens of nodes) and the scan cost is irrelevant.
std::vector<const Edge*> FindPath(const std::string& from,
                                  const std::string& to) {
  const std::vector<Edge>& edges = Edges();
  std::vector<std::string> frontier{from};
  std::vector<std::pair<std::string, const Edge*>> parents;  // node, via
  std::vector<std::string> seen{from};
  auto known = [&seen](const std::string& n) {
    for (const std::string& s : seen) {
      if (s == n) return true;
    }
    return false;
  };
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& node : frontier) {
      for (const Edge& e : edges) {
        if (e.from != node || known(e.to)) continue;
        seen.push_back(e.to);
        parents.emplace_back(e.to, &e);
        if (e.to == to) {
          // Rebuild the chain to -> ... -> from.
          std::vector<const Edge*> path;
          std::string cur = to;
          while (cur != from) {
            for (const auto& [n, via] : parents) {
              if (n == cur) {
                path.push_back(via);
                cur = via->from;
                break;
              }
            }
          }
          return path;
        }
        next.push_back(e.to);
      }
    }
    frontier = std::move(next);
  }
  return {};
}

void Push(const void* mu, const char* name, int rank) {
  if (t_depth >= kMaxHeld) {
    Die("held-lock stack overflow (depth " + std::to_string(kMaxHeld) +
        "); held: " + StackString());
  }
  t_held[t_depth++] = Held{mu, name, rank};
}

void Remove(const void* mu, const char* what) {
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i].mu != mu) continue;
    for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
    --t_depth;
    return;
  }
  Die(std::string(what) + " of a lock this thread does not hold; held: " +
      StackString());
}

}  // namespace

void OnAcquire(const void* mu, const char* name, int rank) {
  for (int i = 0; i < t_depth; ++i) {
    const Held& h = t_held[i];
    if (h.mu == mu) {
      Die("recursive acquisition of \"" +
          std::string(name != nullptr ? name : "<unnamed>") +
          "\"; held: " + StackString());
    }
    if (name != nullptr && h.name != nullptr &&
        std::strcmp(h.name, name) == 0) {
      Die("two locks named \"" + std::string(name) +
          "\" held together (instances of one class must never nest); "
          "held: " + StackString());
    }
    if (rank != lock_rank::kUnranked && h.rank != lock_rank::kUnranked &&
        h.rank >= rank) {
      Die("rank inversion: acquiring \"" + std::string(name) + "\" (rank " +
          std::to_string(rank) + ") while holding \"" + h.name + "\" (rank " +
          std::to_string(h.rank) +
          ") — the global order (common/lock_rank.h) requires strictly "
          "increasing ranks; held: " + StackString());
    }
  }
  if (name != nullptr && t_depth > 0) {
    std::lock_guard<std::mutex> graph_lock(GraphMu());
    for (int i = 0; i < t_depth; ++i) {
      const Held& h = t_held[i];
      if (h.name == nullptr) continue;
      bool exists = false;
      for (const Edge& e : Edges()) {
        if (e.from == h.name && e.to == name) {
          exists = true;
          break;
        }
      }
      if (exists) continue;
      // Adding h.name -> name: if name already reaches h.name, the two
      // orders are inconsistent — report the witness cycle.
      std::vector<const Edge*> path = FindPath(name, h.name);
      if (!path.empty()) {
        std::string msg = "inconsistent lock order (witness cycle): this "
                          "thread is acquiring \"";
        msg += name;
        msg += "\" while holding \"";
        msg += h.name;
        msg += "\"\n  this thread holds: ";
        msg += StackString();
        msg += "\n  but the opposite order was already observed:";
        for (const Edge* e : path) {
          msg += "\n    \"" + e->from + "\" before \"" + e->to +
                 "\" — first seen held: " + e->witness;
        }
        Die(msg);
      }
      Edges().push_back(Edge{h.name, name, StackString()});
    }
  }
  Push(mu, name, rank);
}

void OnTryAcquire(const void* mu, const char* name, int rank) {
  Push(mu, name, rank);
}

void OnRelease(const void* mu) { Remove(mu, "release"); }

void OnWaitRelease(const void* mu) { Remove(mu, "condition wait"); }

void OnWaitReacquire(const void* mu, const char* name, int rank) {
  Push(mu, name, rank);
}

size_t HeldDepth() { return static_cast<size_t>(t_depth); }

}  // namespace lock_debug
}  // namespace dbfa
