// Runtime lock-order validator behind -DDBFA_LOCK_DEBUG=ON
// (docs/lock_order.md).
//
// Every dbfa::Mutex acquisition is recorded on a thread-local held-lock
// stack, and every *nested* acquisition of a named mutex adds an edge to a
// process-wide observed-order graph keyed by lock name. The first time any
// two locks are ever taken in inconsistent order — in either direction, on
// any pair of threads, in the same run — the process aborts with the
// witness: both lock names, the acquiring thread's held stack, and the
// held stack recorded when the opposite order was first observed. Unlike
// TSan's deadlock detection this does not need the two orders to race in
// one interleaving, so every existing CI test run doubles as a deadlock
// detector.
//
// Checks run *before* the underlying mutex is locked, so a true AB/BA
// deadlock aborts with a report instead of hanging.
//
// The hooks are called from src/common/mutex.h only when DBFA_LOCK_DEBUG
// is defined; this translation unit always builds (it is a few hundred
// bytes of dead code in release builds, never in a hot path).
#ifndef DBFA_COMMON_LOCK_DEBUG_H_
#define DBFA_COMMON_LOCK_DEBUG_H_

#include <cstddef>

namespace dbfa {
namespace lock_debug {

/// Validates (rank check + observed-order graph) and records an
/// acquisition. `name` may be nullptr (unnamed mutexes are tracked on the
/// stack but take part in no ordering checks); `rank` is
/// lock_rank::kUnranked for unranked mutexes. Aborts on rank inversion,
/// recursive acquisition, or an order inconsistent with any previously
/// observed order.
void OnAcquire(const void* mu, const char* name, int rank);

/// Records a successful TryLock. Pushes the lock on the held stack but
/// performs no ordering checks and adds no graph edges: a try-acquisition
/// cannot block, so out-of-order TryLock is deadlock-free and must not
/// poison the observed-order graph.
void OnTryAcquire(const void* mu, const char* name, int rank);

/// Removes a lock from the held stack (it need not be the innermost;
/// hand-rolled Lock/Unlock pairs may release out of LIFO order). Aborts if
/// the lock is not held by this thread.
void OnRelease(const void* mu);

/// CondVar::Wait bookkeeping: the wait atomically releases `mu`, so it is
/// popped from the held stack for the duration of the block...
void OnWaitRelease(const void* mu);

/// ...and pushed back after the wakeup reacquires it — with no ordering
/// checks and no new edges, because the order was already validated when
/// the caller first acquired the lock. Re-validating here would re-observe
/// the reacquisition as a fresh edge and could poison the graph.
void OnWaitReacquire(const void* mu, const char* name, int rank);

/// Locks currently held by the calling thread (test hook).
size_t HeldDepth();

}  // namespace lock_debug
}  // namespace dbfa

#endif  // DBFA_COMMON_LOCK_DEBUG_H_
