// Hexdump formatting for diagnostics and forensic reports.
#ifndef DBFA_COMMON_HEXDUMP_H_
#define DBFA_COMMON_HEXDUMP_H_

#include <string>

#include "common/bytes.h"

namespace dbfa {

/// Classic 16-bytes-per-line hexdump with an ASCII gutter. `base_offset` is
/// added to the printed offsets (useful when dumping a slice of an image).
std::string HexDump(ByteView data, size_t base_offset = 0);

/// Compact "DE AD BE EF" rendering of a short byte run.
std::string HexBytes(ByteView data);

}  // namespace dbfa

#endif  // DBFA_COMMON_HEXDUMP_H_
