#include "common/string_pool.h"

#include <atomic>

#include "common/bytes.h"

namespace dbfa {

namespace {

// Pool identities start at 1 so that pool_id == 0 always means "no pool".
std::atomic<uint64_t> g_next_pool_id{1};

constexpr size_t kInitialSlots = 64;  // power of two

}  // namespace

StringPool::StringPool(size_t shard_count) {
  if (shard_count < 1) shard_count = 1;
  if (shard_count > 64) shard_count = 64;
  size_t n = 1;
  uint32_t bits = 0;
  while (n < shard_count) {
    n *= 2;
    ++bits;
  }
  shard_mask_ = n - 1;
  shard_bits_ = bits;
  pool_id_ = g_next_pool_id.fetch_add(1, std::memory_order_relaxed);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->slots.assign(kInitialSlots, kEmptySlot);
    shards_.push_back(std::move(sh));
  }
}

void StringPool::GrowLocked(Shard* sh) {
  size_t new_size = sh->slots.size() * 2;
  std::vector<uint32_t> slots(new_size, kEmptySlot);
  size_t mask = new_size - 1;
  for (uint32_t e = 0; e < sh->entries.size(); ++e) {
    size_t i = sh->entries[e].hash & mask;
    while (slots[i] != kEmptySlot) i = (i + 1) & mask;
    slots[i] = e;
  }
  sh->slots.swap(slots);
}

StringRef StringPool::Intern(std::string_view s) {
  const size_t h = HashStringContent(s);
  const size_t shard_index = ShardIndex(h);
  Shard& sh = *shards_[shard_index];
  MutexLock lock(&sh.mu);
  size_t mask = sh.slots.size() - 1;
  size_t i = h & mask;
  while (sh.slots[i] != kEmptySlot) {
    const StringRef& r = sh.entries[sh.slots[i]];
    if (r.hash == h && r.len == s.size() && r.view() == s) return r;
    i = (i + 1) & mask;
  }
  char* dst = sh.arena.Allocate(s.size(), /*align=*/1);
  CopyBytes(dst, s.data(), s.size());
  StringRef ref;
  ref.data = dst;
  ref.len = static_cast<uint32_t>(s.size());
  ref.id = static_cast<uint32_t>((sh.entries.size() << shard_bits_) |
                                 shard_index);
  ref.pool_id = pool_id_;
  ref.hash = h;
  sh.slots[i] = static_cast<uint32_t>(sh.entries.size());
  sh.entries.push_back(ref);
  sh.string_bytes += s.size();
  // Keep load factor under 0.7 (entries / slots, checked after insert).
  if (sh.entries.size() * 10 >= sh.slots.size() * 7) GrowLocked(&sh);
  return ref;
}

std::optional<StringRef> StringPool::Find(std::string_view s) const {
  const size_t h = HashStringContent(s);
  const Shard& sh = *shards_[ShardIndex(h)];
  MutexLock lock(&sh.mu);
  size_t mask = sh.slots.size() - 1;
  size_t i = h & mask;
  while (sh.slots[i] != kEmptySlot) {
    const StringRef& r = sh.entries[sh.slots[i]];
    if (r.hash == h && r.len == s.size() && r.view() == s) return r;
    i = (i + 1) & mask;
  }
  return std::nullopt;
}

StringPool::Stats StringPool::GetStats() const {
  Stats st;
  st.shard_count = shards_.size();
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    MutexLock lock(&sh.mu);
    st.distinct_count += sh.entries.size();
    st.string_bytes += sh.string_bytes;
    st.arena_bytes_used += sh.arena.bytes_used();
    st.arena_bytes_reserved += sh.arena.bytes_reserved();
    st.table_bytes += sh.slots.capacity() * sizeof(uint32_t) +
                      sh.entries.capacity() * sizeof(StringRef);
  }
  return st;
}

size_t StringPool::BytesUsed() const {
  Stats st = GetStats();
  return st.arena_bytes_reserved + st.table_bytes +
         st.shard_count * sizeof(Shard);
}

}  // namespace dbfa
