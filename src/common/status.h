// Error-handling primitives for dbfa. The library does not use exceptions;
// fallible operations return Status, and fallible value-producing operations
// return Result<T>.
#ifndef DBFA_COMMON_STATUS_H_
#define DBFA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dbfa {

/// Machine-readable error categories, loosely following absl/gRPC codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kInternal,
  kUnimplemented,
  kIoError,
  kUnavailable,
};

/// Returns a stable human-readable name such as "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case.
///
/// [[nodiscard]]: silently dropping a Status loses an error on the floor,
/// which for evidence-handling code is a correctness bug. Call sites that
/// genuinely cannot act on a failure make the decision explicit with a
/// (void) cast and a justifying comment (dbfa_lint flags bare casts).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Transient refusal: the caller did nothing wrong and may retry later
  /// (a full backpressure queue, a repository locked by another process).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Analogous to
/// absl::StatusOr. Accessing value() on an error aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse:
  ///   Result<int> F() { if (bad) return Status::NotFound("x"); return 42; }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use the value constructor for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dbfa

/// Propagates an error Status from a Status-returning expression. The
/// temporary's name is line-unique so nested expansions do not shadow each
/// other (-Wshadow-clean).
#define DBFA_RETURN_IF_ERROR(expr)                                        \
  do {                                                                    \
    ::dbfa::Status DBFA_STATUS_CONCAT_(dbfa_status_, __LINE__) = (expr);  \
    if (!DBFA_STATUS_CONCAT_(dbfa_status_, __LINE__).ok())                \
      return DBFA_STATUS_CONCAT_(dbfa_status_, __LINE__);                 \
  } while (0)

/// Evaluates a Result<T>-returning expression; on success binds the value to
/// lhs, on failure propagates the Status.
#define DBFA_ASSIGN_OR_RETURN(lhs, expr)                       \
  DBFA_ASSIGN_OR_RETURN_IMPL_(                                 \
      DBFA_STATUS_CONCAT_(dbfa_result_, __LINE__), lhs, expr)
#define DBFA_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()
#define DBFA_STATUS_CONCAT_(a, b) DBFA_STATUS_CONCAT_IMPL_(a, b)
#define DBFA_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // DBFA_COMMON_STATUS_H_
