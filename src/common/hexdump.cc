#include "common/hexdump.h"

#include <cctype>

#include "common/strings.h"

namespace dbfa {

std::string HexDump(ByteView data, size_t base_offset) {
  std::string out;
  for (size_t line = 0; line < data.size(); line += 16) {
    out += StrFormat("%08zx  ", base_offset + line);
    for (size_t i = 0; i < 16; ++i) {
      if (line + i < data.size()) {
        out += StrFormat("%02x ", data[line + i]);
      } else {
        out += "   ";
      }
      if (i == 7) out += " ";
    }
    out += " |";
    for (size_t i = 0; i < 16 && line + i < data.size(); ++i) {
      uint8_t c = data[line + i];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

std::string HexBytes(ByteView data) {
  std::string out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out += ' ';
    out += StrFormat("%02X", data[i]);
  }
  return out;
}

}  // namespace dbfa
