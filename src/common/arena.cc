#include "common/arena.h"

#include <cstdint>

namespace dbfa {

Arena::Arena(size_t initial_chunk_bytes)
    : next_chunk_bytes_(initial_chunk_bytes == 0 ? kDefaultInitialChunkBytes
                                                 : initial_chunk_bytes) {}

Arena::Chunk& Arena::AddChunk(size_t min_bytes) {
  size_t size = next_chunk_bytes_;
  if (size < min_bytes) {
    // Oversized request: dedicated exactly-sized chunk, growth schedule
    // untouched so ordinary allocations keep doubling from where they were.
    size = min_bytes;
  } else {
    if (next_chunk_bytes_ < kMaxChunkBytes) {
      next_chunk_bytes_ *= 2;
      if (next_chunk_bytes_ > kMaxChunkBytes) {
        next_chunk_bytes_ = kMaxChunkBytes;
      }
    }
  }
  Chunk c;
  c.data = std::make_unique<char[]>(size);
  c.size = size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(c));
  return chunks_.back();
}

char* Arena::Allocate(size_t n, size_t align) {
  // Align the absolute address, not the chunk-relative offset: operator
  // new[] only guarantees alignof(std::max_align_t), so a 64-byte-aligned
  // request must account for the chunk base too.
  if (chunks_.empty()) AddChunk(n + align);
  Chunk* c = &chunks_.back();
  auto aligned_offset = [align](const Chunk& ch) {
    uintptr_t base = reinterpret_cast<uintptr_t>(ch.data.get());
    uintptr_t cursor = base + ch.used;
    uintptr_t aligned =
        (cursor + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    return static_cast<size_t>(aligned - base);
  };
  size_t aligned = aligned_offset(*c);
  if (aligned + n > c->size) {
    c = &AddChunk(n + align);
    aligned = aligned_offset(*c);
  }
  char* p = c->data.get() + aligned;
  bytes_used_ += (aligned - c->used) + n;
  c->used = aligned + n;
  return p;
}

}  // namespace dbfa
