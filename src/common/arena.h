// Chunked bump allocator backing the interned-string pool (and any other
// allocate-many / free-at-once workload in the carve pipeline).
//
// Allocate() bumps a cursor inside geometrically growing chunks; nothing is
// freed until the arena itself dies, so a pointer handed out by Allocate()
// stays valid (and never moves) for the arena's whole lifetime. That pointer
// stability is what lets StringRef hold raw `const char*` into the arena.
#ifndef DBFA_COMMON_ARENA_H_
#define DBFA_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace dbfa {

/// A chunked bump allocator with RAII ownership and byte-usage accounting.
///
/// Not thread-safe: callers that share an arena across threads synchronize
/// externally (StringPool gives each shard a private arena under the shard
/// mutex).
class Arena {
 public:
  static constexpr size_t kDefaultInitialChunkBytes = 4096;
  /// Chunk growth doubles up to this cap; larger single allocations get a
  /// dedicated exactly-sized chunk.
  static constexpr size_t kMaxChunkBytes = 1u << 20;

  explicit Arena(size_t initial_chunk_bytes = kDefaultInitialChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `n` bytes aligned to `align` (a power of two). n == 0 returns a
  /// valid, unique-enough pointer into the current chunk.
  char* Allocate(size_t n, size_t align = alignof(std::max_align_t));

  /// Bytes handed out to callers, including alignment padding.
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes owned by the arena's chunks (>= bytes_used()).
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;  // capacity
    size_t used = 0;  // bump cursor
  };

  // Appends a chunk of at least `min_bytes` and returns it.
  Chunk& AddChunk(size_t min_bytes);

  std::vector<Chunk> chunks_;
  size_t next_chunk_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace dbfa

#endif  // DBFA_COMMON_ARENA_H_
