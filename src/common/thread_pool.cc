#include "common/thread_pool.h"

namespace dbfa {

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = num_threads == 0 ? HardwareThreads() : num_threads;
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  task_cv_.SignalAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) done_cv_.Wait(&mu_);
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  for (size_t i = 0; i < n; ++i) {
    Submit([&body, i] { body(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) task_cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.SignalAll();
    }
  }
}

}  // namespace dbfa
