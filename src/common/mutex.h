// Annotated synchronization primitives.
//
// Every mutex in dbfa goes through these wrappers so lock discipline is
// compiler-verified: under Clang the DBFA_* macros expand to the
// -Wthread-safety attributes (and CI builds with -Werror=thread-safety),
// under other compilers they expand to nothing and the wrappers cost the
// same as the std primitives they delegate to. See docs/static_analysis.md
// for the conventions.
//
// Beyond guarded access, every mutex that can participate in nested
// locking carries a (name, rank) identity from common/lock_rank.h — the
// global acquisition order (docs/lock_order.md). The order is checked
// statically by tools/dbfa_lockcheck/ and, under -DDBFA_LOCK_DEBUG=ON, at
// runtime by common/lock_debug.h, which aborts with a witness cycle the
// first time any two locks are ever taken in inconsistent order.
//
// Usage pattern:
//
//   class Cache {
//    public:
//     void Put(Entry e) {
//       MutexLock lock(&mu_);
//       entries_.push_back(std::move(e));   // checked: mu_ is held
//     }
//    private:
//     Mutex mu_;
//     std::vector<Entry> entries_ DBFA_GUARDED_BY(mu_);
//   };
//
// Condition waits are written as explicit while-loops over guarded state
// rather than predicate lambdas, because the analysis cannot see that a
// lambda body runs with the capability held:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);        // checked
#ifndef DBFA_COMMON_MUTEX_H_
#define DBFA_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/lock_rank.h"

#ifdef DBFA_LOCK_DEBUG
#include "common/lock_debug.h"
#endif

// -- Clang thread-safety attribute macros ----------------------------------
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. The DBFA_ prefix
// keeps them out of the global macro namespace; the spelling mirrors the
// attribute names so annotated code reads like the Clang documentation.
#if defined(__clang__)
#define DBFA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DBFA_THREAD_ANNOTATION_(x)
#endif

#define DBFA_CAPABILITY(x) DBFA_THREAD_ANNOTATION_(capability(x))
#define DBFA_SCOPED_CAPABILITY DBFA_THREAD_ANNOTATION_(scoped_lockable)
#define DBFA_GUARDED_BY(x) DBFA_THREAD_ANNOTATION_(guarded_by(x))
#define DBFA_PT_GUARDED_BY(x) DBFA_THREAD_ANNOTATION_(pt_guarded_by(x))
#define DBFA_ACQUIRE(...) \
  DBFA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DBFA_TRY_ACQUIRE(...) \
  DBFA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DBFA_RELEASE(...) \
  DBFA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DBFA_REQUIRES(...) \
  DBFA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DBFA_EXCLUDES(...) DBFA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Lock-ordering declarations on mutex members: `Mutex b_mu_
// DBFA_ACQUIRED_AFTER(a_mu_){...}` documents that b_mu_ is only ever taken
// while a_mu_ may already be held, never the reverse. dbfa_lockcheck
// cross-checks these edges against the lock_rank order and the observed
// acquisition scopes.
#define DBFA_ACQUIRED_BEFORE(...) \
  DBFA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DBFA_ACQUIRED_AFTER(...) \
  DBFA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define DBFA_ASSERT_CAPABILITY(x) \
  DBFA_THREAD_ANNOTATION_(assert_capability(x))
#define DBFA_RETURN_CAPABILITY(x) DBFA_THREAD_ANNOTATION_(lock_returned(x))
#define DBFA_NO_THREAD_SAFETY_ANALYSIS \
  DBFA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dbfa {

class CondVar;

/// A std::mutex carrying the Clang `capability` attribute, so guarded
/// members can be declared with DBFA_GUARDED_BY(mu_) and functions with
/// DBFA_REQUIRES(mu_).
class DBFA_CAPABILITY("mutex") Mutex {
 public:
  /// An anonymous, unranked mutex. Legal only for locks that are never
  /// held together with any other lock (dbfa_lockcheck rejects anonymous
  /// mutexes in multi-lock scopes); prefer the ranked constructor.
  Mutex() = default;

  /// A mutex with a place in the global lock order: `name` identifies it
  /// in lock_graph.dot and in validator reports ("<subsystem>/<role>"),
  /// `rank` is its position from common/lock_rank.h. The identity is two
  /// words; non-debug builds pay nothing else.
  explicit Mutex(const char* name, int rank = lock_rank::kUnranked)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DBFA_ACQUIRE() {
#ifdef DBFA_LOCK_DEBUG
    // Validate *before* blocking: a true AB/BA deadlock then aborts with
    // the witness cycle instead of hanging.
    lock_debug::OnAcquire(this, name_, rank_);
#endif
    mu_.lock();
  }

  void Unlock() DBFA_RELEASE() {
    mu_.unlock();
#ifdef DBFA_LOCK_DEBUG
    lock_debug::OnRelease(this);
#endif
  }

  bool TryLock() DBFA_TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
#ifdef DBFA_LOCK_DEBUG
    // A try-acquisition cannot block, so it is recorded on the held stack
    // but adds no ordering constraints (see lock_debug.h).
    if (acquired) lock_debug::OnTryAcquire(this, name_, rank_);
#endif
    return acquired;
  }

  /// Identity in the global lock order; nullptr / lock_rank::kUnranked
  /// for anonymous mutexes.
  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = nullptr;
  int rank_ = lock_rank::kUnranked;
};

/// RAII lock over a Mutex (scoped capability): acquires in the constructor,
/// releases in the destructor.
class DBFA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DBFA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DBFA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with dbfa::Mutex. Wait() must be called with
/// the mutex held (enforced under Clang); it atomically releases the mutex
/// while blocked and reacquires it before returning, exactly like
/// std::condition_variable, so guarded state may be read on either side of
/// the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) DBFA_REQUIRES(mu) {
#ifdef DBFA_LOCK_DEBUG
    // The wait releases `mu` for the duration of the block, so the
    // validator's held stack must drop it here and restore it after the
    // reacquisition — without re-running the ordering checks, which were
    // already done when the caller first took the lock (re-observing the
    // reacquisition would poison the observed-order graph).
    lock_debug::OnWaitRelease(mu);
#endif
    // Adopt the already-held lock for the duration of the wait, then
    // release ownership so the unique_lock destructor does not unlock a
    // mutex the caller still holds.
    std::unique_lock<std::mutex> held(mu->mu_, std::adopt_lock);
    cv_.wait(held);
    held.release();
#ifdef DBFA_LOCK_DEBUG
    lock_debug::OnWaitReacquire(mu, mu->name_, mu->rank_);
#endif
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dbfa

#endif  // DBFA_COMMON_MUTEX_H_
