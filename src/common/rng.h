// Deterministic pseudo-random generator. All workload generators and
// benchmarks take explicit seeds so every experiment is reproducible
// (Section III-D of the paper calls for reproducible analysis).
#ifndef DBFA_COMMON_RNG_H_
#define DBFA_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dbfa {

/// splitmix64-seeded xoshiro256** generator. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextU64() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[NextU64() % v.size()];
  }

  /// Random ASCII upper-case string of length n.
  std::string Word(size_t n) {
    std::string s(n, 'A');
    for (char& c : s) c = static_cast<char>('A' + NextU64() % 26);
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace dbfa

#endif  // DBFA_COMMON_RNG_H_
