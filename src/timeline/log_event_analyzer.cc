#include "timeline/log_event_analyzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "sql/parser.h"

namespace dbfa {

std::vector<size_t> LongestNonDecreasingIndexes(
    const std::vector<uint64_t>& values) {
  std::vector<size_t> tails;        // indexes of subsequence tails
  std::vector<int64_t> parent(values.size(), -1);
  for (size_t i = 0; i < values.size(); ++i) {
    // Find first tail strictly greater than values[i].
    size_t lo = 0;
    size_t hi = tails.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (values[tails[mid]] <= values[i]) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0) parent[i] = static_cast<int64_t>(tails[lo - 1]);
    if (lo == tails.size()) {
      tails.push_back(i);
    } else {
      tails[lo] = i;
    }
  }
  std::vector<size_t> out;
  if (tails.empty()) return out;
  int64_t at = static_cast<int64_t>(tails.back());
  while (at >= 0) {
    out.push_back(static_cast<size_t>(at));
    at = parent[at];
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string BackdateFinding::ToString() const {
  return StrFormat("seq %llu ts %lld: %s — %s",
                   static_cast<unsigned long long>(seq),
                   static_cast<long long>(timestamp), sql.c_str(),
                   reason.c_str());
}

std::string TimelineReport::ToString() const {
  std::string out =
      StrFormat("LogEventAnalysis: %zu backdated entries suspected "
                "(%zu inserts matched to storage)\n",
                findings.size(), inserts_matched);
  for (const BackdateFinding& f : findings) {
    out += "  " + f.ToString() + "\n";
  }
  return out;
}

Result<TimelineReport> LogEventAnalyzer::Analyze() const {
  TimelineReport report;

  // Detector 1: timestamp inversions against append order.
  std::set<uint64_t> flagged_seqs;
  int64_t running_max = INT64_MIN;
  for (const AuditEntry& e : log_->entries()) {
    if (e.timestamp < running_max) {
      report.findings.push_back(
          {e.seq, e.timestamp, e.sql,
           "timestamp is earlier than a previously appended entry "
           "(server clock was set backwards)"});
      flagged_seqs.insert(e.seq);
    }
    running_max = std::max(running_max, e.timestamp);
  }

  // Detector 2: storage row-id order versus claimed timestamp order.
  // Match logged single-row INSERTs to carved records by table + values.
  struct MatchedInsert {
    const AuditEntry* entry;
    uint64_t row_id;
  };
  std::vector<MatchedInsert> matched;
  for (const AuditEntry& e : log_->entries()) {
    auto stmt = sql::ParseStatement(e.sql);
    if (!stmt.ok()) continue;
    const auto* ins = std::get_if<sql::InsertStmt>(&*stmt);
    if (ins == nullptr || ins->rows.size() != 1) continue;
    uint32_t object_id = disk_->ObjectIdByName(ins->table);
    if (object_id == 0) continue;
    for (const CarvedRecord& r : disk_->records) {
      if (r.object_id != object_id || r.row_id == 0 || !r.typed) continue;
      if (CompareRecords(r.values, ins->rows[0]) == 0) {
        matched.push_back({&e, r.row_id});
        break;
      }
    }
  }
  report.inserts_matched = matched.size();
  // Order by claimed time (timestamp, then seq); row ids must not decrease.
  std::stable_sort(matched.begin(), matched.end(),
                   [](const MatchedInsert& a, const MatchedInsert& b) {
                     if (a.entry->timestamp != b.entry->timestamp) {
                       return a.entry->timestamp < b.entry->timestamp;
                     }
                     return a.entry->seq < b.entry->seq;
                   });
  std::vector<uint64_t> row_ids;
  row_ids.reserve(matched.size());
  for (const MatchedInsert& m : matched) row_ids.push_back(m.row_id);
  std::vector<size_t> consistent = LongestNonDecreasingIndexes(row_ids);
  std::vector<bool> keep(matched.size(), false);
  for (size_t i : consistent) keep[i] = true;
  for (size_t i = 0; i < matched.size(); ++i) {
    if (keep[i]) continue;
    if (flagged_seqs.count(matched[i].entry->seq) != 0) continue;
    report.findings.push_back(
        {matched[i].entry->seq, matched[i].entry->timestamp,
         matched[i].entry->sql,
         StrFormat("storage row id %llu contradicts the claimed time order",
                   static_cast<unsigned long long>(matched[i].row_id))});
  }
  return report;
}

}  // namespace dbfa
