// LogEventAnalysis (Section III-C): expose backdated audit-log entries.
//
// A privileged user can set the server clock back, act, and restore it:
// the log then contains entries whose *timestamps* claim an earlier time.
// Storage metadata is out of their reach: each record carries a row id
// drawn from a monotone counter, and every page carries a storage-stamped
// LSN. The true execution order of logged INSERTs is therefore recoverable
// from the records they produced, and entries whose timestamp order
// contradicts that storage order are flagged.
//
// Two independent detectors:
//   1. log-internal — timestamps must be non-decreasing in append (seq)
//      order; a clock set backwards breaks this immediately.
//   2. storage-assisted — match each logged INSERT to its carved record;
//      in claimed-timestamp order the matched row ids must be
//      non-decreasing. Entries outside the longest consistent subsequence
//      are the backdated ones (works even when the attacker re-sorted the
//      log file to hide the seq/timestamp inversion).
#ifndef DBFA_TIMELINE_LOG_EVENT_ANALYZER_H_
#define DBFA_TIMELINE_LOG_EVENT_ANALYZER_H_

#include <string>
#include <vector>

#include "core/artifacts.h"
#include "engine/audit_log.h"

namespace dbfa {

/// Indexes of the longest non-decreasing subsequence of `values`
/// (O(n log n)); elements outside it are the minimal outlier set. Shared
/// by detector 2 below and the replay-assisted validator in src/reenact/.
std::vector<size_t> LongestNonDecreasingIndexes(
    const std::vector<uint64_t>& values);

struct BackdateFinding {
  uint64_t seq = 0;
  int64_t timestamp = 0;
  std::string sql;
  std::string reason;

  std::string ToString() const;
};

struct TimelineReport {
  std::vector<BackdateFinding> findings;
  size_t inserts_matched = 0;  // logged INSERTs located in storage

  bool Consistent() const { return findings.empty(); }
  std::string ToString() const;
};

class LogEventAnalyzer {
 public:
  LogEventAnalyzer(const CarveResult* disk, const AuditLog* log)
      : disk_(disk), log_(log) {}

  Result<TimelineReport> Analyze() const;

 private:
  const CarveResult* disk_;
  const AuditLog* log_;
};

}  // namespace dbfa

#endif  // DBFA_TIMELINE_LOG_EVENT_ANALYZER_H_
