// Generalized data wiping (Section II-D): erase already-deleted content
// from DBMS storage so it cannot be carved — the defensive application of
// anti-forensics ("a corporation can apply data wiping to erase
// already-deleted customer information to prevent potential data theft").
//
// Works at the byte level from a carver configuration, so it applies to
// any (including closed-source) DBMS whose config was collected. The four
// categories of the paper are all handled:
//   1. deleted records        — pages are compacted in place,
//   2. deleted values         — index entries whose record is deleted or
//                               gone are dropped from their leaf pages,
//   3. system catalog         — delete-marked catalog records compacted,
//   4. unallocated pages      — pages of dropped objects zero-filled.
// Page metadata (record counts, boundaries, checksums) is repaired so the
// DBMS keeps working on the wiped file.
#ifndef DBFA_ANTIFORENSICS_WIPER_H_
#define DBFA_ANTIFORENSICS_WIPER_H_

#include <string>

#include "core/carver.h"
#include "engine/database.h"

namespace dbfa {

struct WipeReport {
  size_t deleted_records_wiped = 0;
  size_t index_entries_wiped = 0;
  size_t catalog_entries_wiped = 0;
  size_t unallocated_pages_wiped = 0;

  std::string ToString() const;
};

class Wiper {
 public:
  explicit Wiper(CarverConfig config);

  /// Wipes all four categories in place. The image stays a valid storage
  /// image of the same dialect (checksums repaired).
  Result<WipeReport> WipeImage(Bytes* image) const;

  /// Convenience: wipes a live MiniDB's storage (flushes the buffer pool,
  /// rewrites the files, drops the pool).
  Result<WipeReport> WipeDatabase(Database* db) const;

 private:
  /// Compacts one data page: re-packs only records that are active,
  /// destroying delete-marked and orphaned bytes.
  Status CompactDataPage(uint8_t* page) const;

  CarverConfig config_;
  PageFormatter fmt_;
};

}  // namespace dbfa

#endif  // DBFA_ANTIFORENSICS_WIPER_H_
