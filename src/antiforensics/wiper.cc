#include "antiforensics/wiper.h"

#include <cstring>
#include <map>
#include <set>

#include "common/strings.h"
#include "engine/database.h"

namespace dbfa {

std::string WipeReport::ToString() const {
  return StrFormat(
      "wiped: %zu deleted records, %zu dangling index entries, %zu catalog "
      "remnants, %zu unallocated pages",
      deleted_records_wiped, index_entries_wiped, catalog_entries_wiped,
      unallocated_pages_wiped);
}

Wiper::Wiper(CarverConfig config)
    : config_(std::move(config)), fmt_(config_.params) {}

Result<WipeReport> Wiper::WipeImage(Bytes* image) const {
  WipeReport report;
  Carver carver(config_);
  DBFA_ASSIGN_OR_RETURN(CarveResult carve, carver.Carve(*image));

  // Live-record set per object: (page_id, slot) of active records.
  std::map<uint32_t, std::set<std::pair<uint32_t, uint16_t>>> live;
  for (const CarvedRecord& r : carve.records) {
    if (r.status == RowStatus::kActive &&
        r.slot != CarvedRecord::kOrphanSlot) {
      live[r.object_id].insert({r.page_id, r.slot});
    }
  }
  for (const CarvedPage& page_meta : carve.pages) {
    uint8_t* page = image->data() + page_meta.image_offset;

    // Category 4: pages of dropped objects are zero-filled outright.
    if (carve.dropped_objects.count(page_meta.object_id) != 0) {
      std::memset(page, 0, config_.params.page_size);
      ++report.unallocated_pages_wiped;
      continue;
    }

    if (page_meta.type == PageType::kData) {
      bool is_catalog = page_meta.object_id == config_.catalog_object_id;
      ByteView view(page, config_.params.page_size);
      // Zero every record the slot directory marks deleted (or that no
      // longer parses), tombstoning its slot; then hunt orphans.
      std::set<std::pair<uint16_t, uint16_t>> keep_regions;  // (off, len)
      uint16_t count = fmt_.RecordCount(page);
      for (uint16_t s = 0; s < count; ++s) {
        auto slot = fmt_.GetSlot(page, s);
        if (!slot.has_value()) continue;
        auto rec = fmt_.ParseRecordAt(view, slot->offset);
        if (!rec.ok()) continue;  // already unreadable
        if (fmt_.IsDeleted(*rec, slot->tombstoned)) {
          std::memset(page + rec->offset, 0, rec->length);
          fmt_.SetSlotTombstone(page, s, true);
          if (is_catalog) {
            ++report.catalog_entries_wiped;
          } else {
            ++report.deleted_records_wiped;
          }
        } else {
          keep_regions.insert({rec->offset, rec->length});
        }
      }
      // Orphaned record bytes (not referenced by any live slot).
      for (const ParsedRecord& rec : fmt_.ScanRecordsRaw(view)) {
        if (keep_regions.count({rec.offset, rec.length}) != 0) continue;
        std::memset(page + rec.offset, 0, rec.length);
        if (is_catalog) {
          ++report.catalog_entries_wiped;
        } else {
          ++report.deleted_records_wiped;
        }
      }
      fmt_.UpdateChecksum(page);
      continue;
    }

    if (page_meta.type == PageType::kIndexLeaf) {
      // Category 2: drop entries pointing at non-live records.
      auto meta_it = carve.indexes.find(page_meta.object_id);
      if (meta_it == carve.indexes.end()) continue;
      uint32_t table_object = meta_it->second.table_object_id;
      ByteView view(page, config_.params.page_size);
      std::vector<Bytes> survivors;
      size_t dropped = 0;
      uint16_t count = fmt_.RecordCount(page);
      for (uint16_t s = 0; s < count; ++s) {
        auto slot = fmt_.GetSlot(page, s);
        if (!slot.has_value()) continue;
        auto entry = fmt_.ParseIndexEntryAt(view, slot->offset);
        if (!entry.ok()) continue;
        bool points_to_live =
            live[table_object].count(
                {entry->pointer.page_id, entry->pointer.slot}) != 0;
        if (points_to_live) {
          survivors.push_back(view.Slice(entry->offset, entry->length)
                                  .ToBytes());
        } else {
          ++dropped;
        }
      }
      if (dropped == 0) continue;
      uint32_t page_id = fmt_.PageId(page);
      uint32_t object_id = fmt_.ObjectId(page);
      uint32_t next = fmt_.NextPage(page);
      uint64_t lsn = fmt_.Lsn(page);
      fmt_.InitPage(page, page_id, object_id, PageType::kIndexLeaf);
      fmt_.SetNextPage(page, next);
      fmt_.SetLsn(page, lsn);
      for (const Bytes& entry : survivors) {
        auto slot = fmt_.InsertRecordBytes(page, entry);
        if (!slot.ok()) {
          return Status::Internal("index wipe refill failed: " +
                                  slot.status().ToString());
        }
      }
      fmt_.UpdateChecksum(page);
      report.index_entries_wiped += dropped;
    }
  }
  return report;
}

Result<WipeReport> Wiper::WipeDatabase(Database* db) const {
  // Wiping needs the whole database at once: dangling-index detection and
  // dropped-object classification cross file boundaries through the
  // catalog. Concatenate the files, wipe, and split the image back.
  DBFA_RETURN_IF_ERROR(db->pager().pool().FlushAll());
  Bytes combined;
  std::vector<std::pair<uint32_t, size_t>> extents;  // (object, size)
  for (uint32_t object_id = 1; object_id <= db->pager().max_object_id();
       ++object_id) {
    StorageFile* file = db->pager().file(object_id);
    if (file == nullptr) continue;
    extents.emplace_back(object_id, file->bytes().size());
    combined.insert(combined.end(), file->bytes().begin(),
                    file->bytes().end());
  }
  DBFA_ASSIGN_OR_RETURN(WipeReport report, WipeImage(&combined));
  size_t offset = 0;
  for (auto [object_id, size] : extents) {
    StorageFile* file = db->pager().file(object_id);
    CopyBytes(file->mutable_bytes().data(), combined.data() + offset,
              size);
    offset += size;
  }
  DBFA_RETURN_IF_ERROR(db->pager().pool().Clear());
  return report;
}

}  // namespace dbfa
