#include "antiforensics/steganography.h"

#include "common/strings.h"

namespace dbfa {

Steganographer::Steganographer(CarverConfig config)
    : config_(std::move(config)), fmt_(config_.params) {}

Status Steganographer::HideInDatabase(Database* db, const std::string& table,
                                      const Record& values) const {
  const TableInfo* info = db->catalog().Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  if (values.size() != info->schema.columns.size()) {
    return Status::InvalidArgument("hidden record arity mismatch");
  }
  // Encode exactly like a legitimate record (byte-indistinguishable).
  DBFA_ASSIGN_OR_RETURN(Bytes encoded,
                        fmt_.EncodeRecord(info->schema, values,
                                          /*row_id=*/424243));
  DBFA_RETURN_IF_ERROR(db->pager().pool().FlushAll());
  StorageFile* file = db->pager().file(info->object_id);
  if (file == nullptr) return Status::NotFound("table file missing");
  for (uint32_t page_id = 1; page_id <= file->page_count(); ++page_id) {
    uint8_t* page = file->PageData(page_id);
    if (fmt_.TypeOf(page) != PageType::kData) continue;
    auto slot = fmt_.InsertRecordBytes(page, encoded);
    if (!slot.ok()) continue;
    fmt_.UpdateChecksum(page);
    return db->pager().pool().Clear();
  }
  return Status::OutOfRange("no page has room for the hidden record");
}

std::vector<ConstraintViolation> FindViolations(const CarveResult& carve,
                                                const TableSchema& schema,
                                                const Record& values) {
  std::vector<ConstraintViolation> out;
  if (values.size() != schema.columns.size()) return out;
  // Domain constraints.
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    const Column& col = schema.columns[i];
    if (col.type == ColumnType::kVarchar && col.max_length > 0 &&
        !values[i].is_null() && values[i].type() == ValueType::kString &&
        values[i].as_string().size() > col.max_length) {
      out.push_back({col.name,
                     StrFormat("VARCHAR(%u) holds %zu characters",
                               col.max_length, values[i].as_string().size())});
    }
    if (!col.nullable && values[i].is_null()) {
      out.push_back({col.name, "NOT NULL column is NULL"});
    }
  }
  // NULL primary-key components (omitted from the PK index).
  for (const std::string& pk : schema.primary_key) {
    int ci = schema.ColumnIndex(pk);
    if (ci >= 0 && values[ci].is_null()) {
      out.push_back({pk, "PRIMARY KEY component is NULL"});
    }
  }
  // Referential integrity against carved referenced tables.
  for (const ForeignKey& fk : schema.foreign_keys) {
    int ci = schema.ColumnIndex(fk.column);
    if (ci < 0 || values[ci].is_null()) continue;
    const TableSchema* ref = carve.SchemaByName(fk.ref_table);
    if (ref == nullptr) continue;
    int ref_ci = ref->ColumnIndex(fk.ref_column);
    if (ref_ci < 0) continue;
    bool found = false;
    for (const CarvedRecord* r :
         carve.RecordsForTable(fk.ref_table, RowStatus::kActive)) {
      if (static_cast<size_t>(ref_ci) < r->values.size() &&
          r->values[ref_ci] == values[ci]) {
        found = true;
        break;
      }
    }
    if (!found) {
      out.push_back({fk.column,
                     StrFormat("FK %s -> %s.%s unmatched",
                               values[ci].ToString().c_str(),
                               fk.ref_table.c_str(), fk.ref_column.c_str())});
    }
  }
  return out;
}

Result<std::vector<HiddenRecord>> Steganographer::ExtractHidden(
    ByteView image) const {
  Carver carver(config_);
  DBFA_ASSIGN_OR_RETURN(CarveResult carve, carver.Carve(image));
  std::vector<HiddenRecord> out;
  for (const CarvedRecord& r : carve.records) {
    if (r.status != RowStatus::kActive || !r.typed) continue;
    auto schema_it = carve.schemas.find(r.object_id);
    if (schema_it == carve.schemas.end()) continue;
    std::vector<ConstraintViolation> violations =
        FindViolations(carve, schema_it->second, r.values);
    if (!violations.empty()) {
      out.push_back({r, std::move(violations)});
    }
  }
  return out;
}

}  // namespace dbfa
