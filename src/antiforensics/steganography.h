// Database steganography (Section II-D, Figure 3): hide a record inside
// legitimate table storage by writing it at byte level with values that
// violate declared constraints — a VARCHAR longer than its domain, foreign
// keys of -1 that no join ever matches, NULL primary-key components absent
// from the PK index. No legitimate SQL surfaces it (every SSBM query
// joins), yet the carver retrieves it trivially.
#ifndef DBFA_ANTIFORENSICS_STEGANOGRAPHY_H_
#define DBFA_ANTIFORENSICS_STEGANOGRAPHY_H_

#include <string>
#include <vector>

#include "core/carver.h"
#include "engine/database.h"

namespace dbfa {

/// A constraint violation carried by a hidden (or tampered) record.
struct ConstraintViolation {
  std::string column;
  std::string what;  // "VARCHAR(10) holds 11 chars", "FK -1 unmatched", ...
};

struct HiddenRecord {
  CarvedRecord record;
  std::vector<ConstraintViolation> violations;
};

class Steganographer {
 public:
  explicit Steganographer(CarverConfig config);

  /// Writes `values` into a page of `table` in a live database at byte
  /// level: no audit-log entry, no index maintenance, no constraint
  /// checks. The record is real storage content (full scans see it), but
  /// joins and PK-index lookups never return it if the values were chosen
  /// per the paper's recipe.
  Status HideInDatabase(Database* db, const std::string& table,
                        const Record& values) const;

  /// Retrieval: carve the image and return every *active* record whose
  /// values violate the declared constraints of its reconstructed schema
  /// (domain length, NULL PK components, unmatched foreign keys).
  Result<std::vector<HiddenRecord>> ExtractHidden(ByteView image) const;

 private:
  CarverConfig config_;
  PageFormatter fmt_;
};

/// Checks one record against a schema's declared constraints; `carve`
/// provides referenced tables for FK validation.
std::vector<ConstraintViolation> FindViolations(const CarveResult& carve,
                                                const TableSchema& schema,
                                                const Record& values);

}  // namespace dbfa

#endif  // DBFA_ANTIFORENSICS_STEGANOGRAPHY_H_
