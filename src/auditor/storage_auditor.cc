#include "auditor/storage_auditor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace dbfa {
namespace {

const char* FindingKindName(TamperFinding::Kind kind) {
  switch (kind) {
    case TamperFinding::Kind::kExtraneousRecord:
      return "extraneous record (no index entry)";
    case TamperFinding::Kind::kDanglingPointer:
      return "dangling pointer (record erased)";
    case TamperFinding::Kind::kValueMismatch:
      return "value mismatch (record overwritten)";
  }
  return "?";
}

struct LocatedRecord {
  RowPointer loc;
  const CarvedRecord* record;
  std::vector<Value> keys;
  bool keys_indexed = false;  // at least one non-NULL key component
};

struct LocatedEntry {
  RowPointer loc;
  const CarvedIndexEntry* entry;
};

}  // namespace

std::string TamperFinding::ToString() const {
  std::string out = StrFormat("[%s] table %s page %u slot %u",
                              FindingKindName(kind), table.c_str(), page_id,
                              slot);
  if (!record_values.empty()) {
    out += " record " + RecordToString(record_values);
  }
  if (!index_keys.empty()) {
    out += " index " + index_name + " keys " + RecordToString(index_keys);
  }
  return out;
}

std::string AuditReport::ToString() const {
  std::string out = StrFormat(
      "DBStorageAuditor report: %zu index issues, %zu tamper findings "
      "(checked %zu records, %zu pointers)\n",
      index_issues.size(), findings.size(), records_checked,
      pointers_checked);
  for (const BTreeIssue& issue : index_issues) {
    out += StrFormat("  [index %u page %u] %s\n", issue.index_object,
                     issue.page_id, issue.what.c_str());
  }
  for (const TamperFinding& f : findings) {
    out += "  " + f.ToString() + "\n";
  }
  return out;
}

StorageAuditor::StorageAuditor(CarverConfig config)
    : StorageAuditor(std::move(config), Options()) {}

StorageAuditor::StorageAuditor(CarverConfig config, Options options)
    : config_(std::move(config)), options_(options) {}

Result<AuditReport> StorageAuditor::Audit(ByteView image) const {
  Carver carver(config_);
  DBFA_ASSIGN_OR_RETURN(CarveResult carve, carver.Carve(image));
  return AuditCarve(carve);
}

std::vector<uint32_t> StorageAuditor::ReachableLeaves(
    const CarveResult& carve, uint32_t index_object, uint32_t root) const {
  // Children per internal page of this object.
  std::map<uint32_t, std::vector<uint32_t>> children;
  std::set<uint32_t> leaves;
  std::set<uint32_t> internals;
  for (const CarvedPage& p : carve.pages) {
    if (p.object_id != index_object) continue;
    if (p.type == PageType::kIndexLeaf) leaves.insert(p.page_id);
    if (p.type == PageType::kIndexInternal) internals.insert(p.page_id);
  }
  for (const CarvedIndexEntry& e : carve.index_entries) {
    if (e.object_id == index_object && !e.leaf) {
      children[e.page_id].push_back(e.pointer.page_id);
    }
  }
  std::vector<uint32_t> out;
  std::set<uint32_t> visited;
  std::vector<uint32_t> stack = {root};
  while (!stack.empty()) {
    uint32_t page = stack.back();
    stack.pop_back();
    if (!visited.insert(page).second) continue;
    if (leaves.count(page) != 0) {
      out.push_back(page);
    } else if (internals.count(page) != 0) {
      for (uint32_t child : children[page]) stack.push_back(child);
    }
  }
  return out;
}

void StorageAuditor::VerifyBTree(const CarveResult& carve,
                                 const CarvedIndexMeta& meta,
                                 AuditReport* report) const {
  // Per-page entry lists in slot (i.e. key) order.
  std::map<uint32_t, std::vector<const CarvedIndexEntry*>> by_page;
  for (const CarvedIndexEntry& e : carve.index_entries) {
    if (e.object_id == meta.object_id) by_page[e.page_id].push_back(&e);
  }
  std::set<uint32_t> object_pages;
  std::map<uint32_t, const CarvedPage*> page_meta;
  for (const CarvedPage& p : carve.pages) {
    if (p.object_id != meta.object_id) continue;
    object_pages.insert(p.page_id);
    page_meta[p.page_id] = &p;
    if (!p.checksum_ok) {
      report->index_issues.push_back(
          {meta.object_id, p.page_id, "page checksum failure"});
    }
  }
  // Within-node ordering.
  for (const auto& [page_id, entries] : by_page) {
    for (size_t i = 1; i < entries.size(); ++i) {
      // Internal sentinels (empty keys) sort first by construction.
      if (entries[i - 1]->keys.empty()) continue;
      if (CompareRecords(entries[i - 1]->keys, entries[i]->keys) > 0) {
        report->index_issues.push_back(
            {meta.object_id, page_id,
             StrFormat("keys out of order at positions %zu/%zu", i - 1, i)});
        break;
      }
    }
  }
  // Child references must exist.
  for (const CarvedIndexEntry& e : carve.index_entries) {
    if (e.object_id != meta.object_id || e.leaf) continue;
    if (object_pages.count(e.pointer.page_id) == 0) {
      report->index_issues.push_back(
          {meta.object_id, e.page_id,
           StrFormat("internal entry references missing page %u",
                     e.pointer.page_id)});
    }
  }
  // Leaf-chain ordering among reachable leaves.
  std::vector<uint32_t> reachable =
      ReachableLeaves(carve, meta.object_id, meta.root_page);
  for (uint32_t leaf : reachable) {
    auto pm = page_meta.find(leaf);
    if (pm == page_meta.end()) continue;
    uint32_t next = pm->second->next_page;
    if (next == 0) continue;
    auto cur_it = by_page.find(leaf);
    auto next_it = by_page.find(next);
    if (cur_it == by_page.end() || next_it == by_page.end()) continue;
    if (cur_it->second.empty() || next_it->second.empty()) continue;
    if (CompareRecords(cur_it->second.back()->keys,
                       next_it->second.front()->keys) > 0) {
      report->index_issues.push_back(
          {meta.object_id, leaf,
           StrFormat("leaf chain order violated toward page %u", next)});
    }
  }
}

Result<AuditReport> StorageAuditor::AuditCarve(const CarveResult& carve) const {
  AuditReport report;
  report.string_pool = carve.string_pool;
  for (const auto& [index_object, meta] : carve.indexes) {
    if (meta.dropped) continue;
    auto schema_it = carve.schemas.find(meta.table_object_id);
    if (schema_it == carve.schemas.end()) continue;
    const TableSchema& schema = schema_it->second;
    std::vector<int> key_columns;
    bool columns_ok = true;
    for (const std::string& col : meta.columns) {
      int ci = schema.ColumnIndex(col);
      if (ci < 0) columns_ok = false;
      key_columns.push_back(ci);
    }
    if (!columns_ok) continue;

    VerifyBTree(carve, meta, &report);

    // Gather located records of the table (physical order).
    std::vector<LocatedRecord> records;
    for (const CarvedRecord& r : carve.records) {
      if (r.object_id != meta.table_object_id ||
          r.slot == CarvedRecord::kOrphanSlot || !r.typed) {
        continue;
      }
      LocatedRecord lr;
      lr.loc = {r.page_id, r.slot};
      lr.record = &r;
      for (int ci : key_columns) {
        lr.keys.push_back(static_cast<size_t>(ci) < r.values.size()
                              ? r.values[ci]
                              : Value::Null());
      }
      for (const Value& k : lr.keys) {
        if (!k.is_null()) lr.keys_indexed = true;
      }
      records.push_back(std::move(lr));
    }
    // Gather entries on reachable leaves only (orphaned pre-rebuild pages
    // are residue, not evidence of tampering).
    std::set<uint32_t> reachable_set;
    for (uint32_t leaf :
         ReachableLeaves(carve, meta.object_id, meta.root_page)) {
      reachable_set.insert(leaf);
    }
    std::vector<LocatedEntry> entries;
    for (const CarvedIndexEntry& e : carve.index_entries) {
      if (e.object_id != index_object || !e.leaf) continue;
      if (reachable_set.count(e.page_id) == 0) continue;
      entries.push_back({e.pointer, &e});
    }
    report.records_checked += records.size();
    report.pointers_checked += entries.size();

    auto report_record = [&](const LocatedRecord& lr, bool covered) {
      if (covered || lr.record->status == RowStatus::kDeleted ||
          !lr.keys_indexed) {
        return;
      }
      TamperFinding f;
      f.kind = TamperFinding::Kind::kExtraneousRecord;
      f.table = schema.name;
      f.page_id = lr.loc.page_id;
      f.slot = lr.loc.slot;
      f.record_values = lr.record->values;
      report.findings.push_back(std::move(f));
    };
    auto report_entry = [&](const LocatedEntry& le,
                            const LocatedRecord* target) {
      if (target == nullptr) {
        TamperFinding f;
        f.kind = TamperFinding::Kind::kDanglingPointer;
        f.table = schema.name;
        f.index_name = meta.name;
        f.page_id = le.loc.page_id;
        f.slot = le.loc.slot;
        f.index_keys = le.entry->keys;
        report.findings.push_back(std::move(f));
        return;
      }
      if (target->record->status == RowStatus::kDeleted) return;  // residue
      if (CompareRecords(le.entry->keys, target->keys) != 0) {
        TamperFinding f;
        f.kind = TamperFinding::Kind::kValueMismatch;
        f.table = schema.name;
        f.index_name = meta.name;
        f.page_id = le.loc.page_id;
        f.slot = le.loc.slot;
        f.record_values = target->record->values;
        f.index_keys = le.entry->keys;
        report.findings.push_back(std::move(f));
      }
    };

    if (options_.sorted_matching) {
      // Sort both sides by physical location and merge — the paper's
      // scalable organization of deconstructed pointers.
      std::sort(records.begin(), records.end(),
                [](const LocatedRecord& a, const LocatedRecord& b) {
                  return a.loc < b.loc;
                });
      std::sort(entries.begin(), entries.end(),
                [](const LocatedEntry& a, const LocatedEntry& b) {
                  return a.loc < b.loc;
                });
      size_t j = 0;
      for (const LocatedRecord& lr : records) {
        while (j < entries.size() && entries[j].loc < lr.loc) {
          report_entry(entries[j], nullptr);  // no record at this location
          ++j;
        }
        bool covered = false;
        while (j < entries.size() && entries[j].loc == lr.loc) {
          report_entry(entries[j], &lr);
          covered = true;
          ++j;
        }
        report_record(lr, covered);
      }
      for (; j < entries.size(); ++j) {
        report_entry(entries[j], nullptr);
      }
    } else {
      // Naive quadratic baseline (ablation).
      for (const LocatedRecord& lr : records) {
        bool covered = false;
        for (const LocatedEntry& le : entries) {
          if (le.loc == lr.loc) covered = true;
        }
        report_record(lr, covered);
      }
      for (const LocatedEntry& le : entries) {
        const LocatedRecord* target = nullptr;
        for (const LocatedRecord& lr : records) {
          if (lr.loc == le.loc) target = &lr;
        }
        report_entry(le, target);
      }
    }
  }
  return report;
}

}  // namespace dbfa
