// DBStorageAuditor (Section III-B): detect direct database-file tampering
// — writes made with a hex editor or script as root, which the DBMS cannot
// log — by using indexes to verify table-data integrity.
//
// Stage 1 verifies each B-Tree's structural integrity from carved pages
// (within-node key ordering, leaf-chain ordering, child reachability,
// checksums): tampering that touched the index itself surfaces here.
//
// Stage 2 deconstructs every index pointer, sorts pointers by physical
// location, and merge-matches them against the (physically ordered) table
// records — the scalable approach of the paper; a naive quadratic matcher
// is provided as the ablation baseline. Discrepancies:
//   * extraneous record — an active record reached by no index entry
//     (smuggled in at byte level);
//   * dangling pointer  — an entry pointing at a slot that is missing or
//     unparseable (record erased at byte level);
//   * value mismatch    — an entry whose key disagrees with the live
//     record it points to (record overwritten in place).
// Entries pointing at delete-marked records are *expected* residue
// ("deleted values"), not tampering.
#ifndef DBFA_AUDITOR_STORAGE_AUDITOR_H_
#define DBFA_AUDITOR_STORAGE_AUDITOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/carver.h"

namespace dbfa {

struct BTreeIssue {
  uint32_t index_object = 0;
  uint32_t page_id = 0;
  std::string what;
};

struct TamperFinding {
  enum class Kind { kExtraneousRecord, kDanglingPointer, kValueMismatch };
  Kind kind = Kind::kExtraneousRecord;
  std::string table;
  std::string index_name;  // empty for extraneous records
  uint32_t page_id = 0;
  uint16_t slot = 0;
  Record record_values;          // when a record is involved
  std::vector<Value> index_keys;  // when an entry is involved

  std::string ToString() const;
};

struct AuditReport {
  std::vector<BTreeIssue> index_issues;
  std::vector<TamperFinding> findings;
  size_t records_checked = 0;
  size_t pointers_checked = 0;
  /// Keeps interned record/key values in the findings valid after the
  /// audited CarveResult is gone (StringRef lifetime rule,
  /// docs/columnar_memory.md).
  std::shared_ptr<const StringPool> string_pool;

  bool Clean() const { return index_issues.empty() && findings.empty(); }
  std::string ToString() const;
};

class StorageAuditor {
 public:
  struct Options {
    /// Use the physical-location-sorted merge matcher (the paper's
    /// scalable approach); false switches to the naive nested-loop
    /// baseline for the ablation benchmark.
    bool sorted_matching = true;
  };

  explicit StorageAuditor(CarverConfig config);
  StorageAuditor(CarverConfig config, Options options);

  /// Carves `image` and audits every table that has at least one index.
  Result<AuditReport> Audit(ByteView image) const;

  /// Audits a pre-carved result (lets benchmarks time matching alone).
  Result<AuditReport> AuditCarve(const CarveResult& carve) const;

 private:
  /// Leaf pages reachable from `root` via carved internal entries.
  std::vector<uint32_t> ReachableLeaves(const CarveResult& carve,
                                        uint32_t index_object,
                                        uint32_t root) const;

  void VerifyBTree(const CarveResult& carve, const CarvedIndexMeta& meta,
                   AuditReport* report) const;

  CarverConfig config_;
  Options options_;
};

}  // namespace dbfa

#endif  // DBFA_AUDITOR_STORAGE_AUDITOR_H_
