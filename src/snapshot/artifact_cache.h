// Per-page carve artifact cache: the records and index entries the content
// pass produced for one (page content, decode context) pair, stored in an
// append-only checksummed block file (artifacts.bin).
//
// Cache correctness rests on the carver's per-page determinism: for a fixed
// repository (fixed carve options, stored in repo.meta) the content pass
// over one page depends only on the page bytes and the schema that drove
// typed decoding — so the key is (page hash, context hash), where the
// context is the serialized schema or a constant for untyped/index/catalog
// decodes. A schema change (ALTER TABLE seen in a later snapshot) changes
// the context hash, which *is* the invalidation rule: stale entries are
// never returned, merely left unreferenced.
//
// Entries are decoded lazily and memoized, so reopening a large repository
// costs one index scan, not a full artifact decode. Single-orchestrator
// contract, like PageStore.
#ifndef DBFA_SNAPSHOT_ARTIFACT_CACHE_H_
#define DBFA_SNAPSHOT_ARTIFACT_CACHE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "snapshot/snapshot_codec.h"

namespace dbfa {

class ArtifactCache {
 public:
  /// Opens (or creates) the cache file and scans its block index.
  static Result<std::unique_ptr<ArtifactCache>> Open(const std::string& path);

  ~ArtifactCache();
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  size_t size() const { return index_.size(); }

  bool Contains(const ArtifactKey& key) const {
    return index_.find(key) != index_.end();
  }

  /// Returns the cached artifacts for `key`, or nullptr when absent.
  /// First access per key reads and verifies the block from disk; repeat
  /// accesses return the memoized decode.
  Result<std::shared_ptr<const PageArtifacts>> Get(const ArtifactKey& key);

  /// Inserts artifacts for `key` (no-op when already present). The given
  /// artifacts are memoized as-is, so callers must pass them already in
  /// canonical form: page_index == 0 on every record and index entry.
  Status Put(const ArtifactKey& key, const PageArtifacts& artifacts);

 private:
  explicit ArtifactCache(std::string path) : path_(std::move(path)) {}

  Status LoadIndex();

  struct Slot {
    long file_offset = 0;
    std::shared_ptr<const PageArtifacts> decoded;  // lazy
  };

  std::string path_;
  std::FILE* file_ = nullptr;
  std::unordered_map<ArtifactKey, Slot, ArtifactKeyHasher> index_;
};

}  // namespace dbfa

#endif  // DBFA_SNAPSHOT_ARTIFACT_CACHE_H_
