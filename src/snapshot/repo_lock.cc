#include "snapshot/repo_lock.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <filesystem>

#include "common/strings.h"

namespace dbfa {
namespace {

constexpr const char* kLockName = "repo.lock";

/// Reads the owner PID out of an existing lock file. Returns 0 when the
/// content is unreadable or unparseable — a crashed writer; treated as
/// stale, since a live owner always completes its single small write
/// before anyone can observe the file through Acquire's retry.
long ReadOwnerPid(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  char buf[32] = {};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  long pid = 0;
  auto [ptr, ec] = std::from_chars(buf, buf + n, pid);
  if (ec != std::errc() || pid <= 0) return 0;
  // Trailing newline is fine; other trailing junk is not a PID we wrote.
  if (ptr != buf + n && !(ptr + 1 == buf + n && *ptr == '\n')) return 0;
  return pid;
}

bool ProcessAlive(long pid) {
  if (kill(static_cast<pid_t>(pid), 0) == 0) return true;
  // EPERM means the process exists but belongs to someone else.
  return errno == EPERM;
}

/// One O_EXCL creation attempt. Returns kOk on success, kAlreadyExists
/// when the file is there, kIoError otherwise.
Status TryCreate(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists(path);
    }
    return Status::IoError(
        StrFormat("repo lock: cannot create %s", path.c_str()));
  }
  std::string pid = StrFormat("%ld\n", static_cast<long>(getpid()));
  ssize_t written = ::write(fd, pid.data(), pid.size());
  bool ok = written == static_cast<ssize_t>(pid.size());
  ::close(fd);
  if (!ok) {
    ::unlink(path.c_str());
    return Status::IoError(
        StrFormat("repo lock: cannot write %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace

Result<RepoLock> RepoLock::Acquire(const std::string& dir) {
  std::string path = (std::filesystem::path(dir) / kLockName).string();
  // Two rounds: a stale lock is reclaimed once; losing the re-creation
  // race after a reclaim means another live contender won — report busy.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status created = TryCreate(path);
    if (created.ok()) return RepoLock(path);
    if (created.code() != StatusCode::kAlreadyExists) return created;
    long owner = ReadOwnerPid(path);
    if (owner > 0 && ProcessAlive(owner)) {
      return Status::Unavailable(
          StrFormat("repository %s is locked by running process %ld",
                    dir.c_str(), owner));
    }
    if (attempt == 0) ::unlink(path.c_str());  // stale: reclaim and retry
  }
  return Status::Unavailable(
      StrFormat("repository %s is locked (lost reclaim race)", dir.c_str()));
}

RepoLock& RepoLock::operator=(RepoLock&& other) noexcept {
  if (this != &other) {
    Release();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

RepoLock::~RepoLock() { Release(); }

void RepoLock::Release() {
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

}  // namespace dbfa
