// Wire formats of the snapshot repository (docs/snapshot_store.md).
//
// Three codecs live here, and ONLY here — this is the single snapshot file
// allowed raw byte reads by dbfa_lint (tools/dbfa_lint/allowlist.txt):
//
//   PageHash       128-bit endian-stable content hash. The page store keys
//                  pages by it; slice-by-8 CRC-32 (common/checksum.h) is
//                  the fast reject in front of it, so a brand-new page
//                  never pays the strong hash.
//   block framing  the spill_manager on-disk block format, reused verbatim
//                  (u32 payload_size, u32 crc32(payload), payload) — a torn
//                  or bit-flipped block surfaces as Status::Corruption.
//   entry payloads the page-store entry (hash + content-derived CarvedPage
//                  metadata + page bytes) and the artifact-cache entry
//                  (per-page carved records and index entries, serialized
//                  through the bit-exact sql/row_codec Value codec).
//
// Every decode path is bounds-checked against hostile input: repository
// files are evidence and may be handed to us tampered.
#ifndef DBFA_SNAPSHOT_SNAPSHOT_CODEC_H_
#define DBFA_SNAPSHOT_SNAPSHOT_CODEC_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/artifacts.h"

namespace dbfa {

/// 128-bit content hash: the page store's address space. Endian-stable, so
/// a repository created on one host resolves on any other. Not
/// cryptographic — dedup keys, not signatures; CRC-32 plus 128 bits makes
/// an accidental collision vanishingly unlikely, and the store keeps the
/// full page bytes so any suspected collision is checkable.
struct PageHash {
  std::array<uint8_t, 16> bytes{};

  bool operator==(const PageHash&) const = default;
  bool operator<(const PageHash& o) const { return bytes < o.bytes; }

  /// First 8 bytes as a little-endian integer (bucket key for hash maps).
  uint64_t Prefix64() const;

  std::string ToHex() const;  // 32 lower-case hex chars
  static Result<PageHash> FromHex(std::string_view hex);
};

struct PageHashHasher {
  size_t operator()(const PageHash& h) const {
    return static_cast<size_t>(h.Prefix64());
  }
};

/// Hashes arbitrary bytes (pages, schema fingerprints, manifest lines).
PageHash HashBytes(ByteView data);
inline PageHash HashString(std::string_view s) {
  return HashBytes(AsByteView(s));
}

// ---- Block framing (spill_manager's on-disk format) ----------------------

/// Appends one checksummed block and flushes it to the OS.
Status AppendBlock(std::FILE* f, std::string_view payload);

/// Reads the next block into *payload. Returns false at a clean
/// end-of-file; Status::Corruption when a header or checksum does not
/// verify (torn tail, bit rot, tampering).
Result<bool> ReadBlock(std::FILE* f, std::string* payload);

// ---- Page-store entry ----------------------------------------------------

/// One stored page: its content address plus the content-derived CarvedPage
/// metadata, so a warm ingest accepts a known page without re-probing it.
/// `meta.image_offset` is position-dependent and always stored as 0.
struct PageStoreEntry {
  PageHash hash;
  uint32_t crc = 0;  // CRC-32 of the page bytes (the fast-reject key)
  CarvedPage meta;
};

/// payload := hash(16) crc(u32) page_id(u32) object_id(u32) type(u8)
///            record_count(u16) next_page(u32) lsn(u64) checksum_ok(u8)
///            page bytes
void EncodePageEntry(const PageStoreEntry& entry, ByteView page,
                     std::string* out);

/// Decodes the fixed-size header; *page_bytes receives the offset of the
/// page image within `payload`. Rejects payloads whose page image is not
/// exactly `page_size` bytes.
Status DecodePageEntry(std::string_view payload, size_t page_size,
                       PageStoreEntry* entry, size_t* page_bytes);

// ---- Artifact-cache entry ------------------------------------------------

/// Everything the content pass produces for one page. `page_index` (the
/// only position-dependent artifact field) is canonicalized to 0 in the
/// cache and re-stamped when a snapshot is assembled.
struct PageArtifacts {
  std::vector<CarvedRecord> records;
  std::vector<CarvedIndexEntry> index_entries;
};

/// Cache key: page content plus the decode context — the serialized schema
/// (or lack of one) that drove typed decoding. Carve options are fixed per
/// repository (repo.meta), so they are not part of the key.
struct ArtifactKey {
  PageHash page;
  PageHash context;

  bool operator==(const ArtifactKey&) const = default;
};

struct ArtifactKeyHasher {
  size_t operator()(const ArtifactKey& k) const {
    return static_cast<size_t>(k.page.Prefix64() ^
                               (k.context.Prefix64() * 0x9E3779B97F4A7C15ull));
  }
};

/// payload := page_hash(16) context_hash(16)
///            record_count(u32) records  entry_count(u32) entries
/// record  := object_id(u32) page_id(u32) slot(u16) status(u8) typed(u8)
///            row_id(u64) page_lsn(u64) values(row_codec record)
/// entry   := object_id(u32) page_id(u32) leaf(u8) ptr_page(u32)
///            ptr_slot(u16) keys(row_codec record)
void EncodeArtifactEntry(const ArtifactKey& key, const PageArtifacts& artifacts,
                         std::string* out);
Status DecodeArtifactEntry(std::string_view payload, ArtifactKey* key,
                           PageArtifacts* artifacts);

/// Decodes only the leading key of an artifact entry — what the cache's
/// open-time index scan needs, skipping the artifact decode itself.
Status DecodeArtifactKey(std::string_view payload, ArtifactKey* key);

}  // namespace dbfa

#endif  // DBFA_SNAPSHOT_SNAPSHOT_CODEC_H_
