#include "snapshot/snapshot_repo.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/checksum.h"
#include "common/strings.h"
#include "core/config_io.h"

namespace dbfa {
namespace {

constexpr const char* kRepoMetaHeader = "dbfa-snapshot-repo v1";
constexpr const char* kManifestHeader = "dbfa-snapshot-manifest v1";

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Status ReadTextFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError(StrFormat("read failed: %s", path.c_str()));
  return Status::Ok();
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot create %s", path.c_str()));
  }
  bool ok = text.empty() ||
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  if (!ok) return Status::IoError(StrFormat("write failed: %s", path.c_str()));
  return Status::Ok();
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

// ---- Report types --------------------------------------------------------

std::string SnapshotInfo::ToString() const {
  return StrFormat("snapshot %llu: %zu bytes, %zu pages",
                   static_cast<unsigned long long>(id), image_size,
                   page_count);
}

double IngestStats::ThroughputMBps() const {
  double secs = TotalSeconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(image_bytes) / (1024.0 * 1024.0) / secs;
}

std::string IngestStats::ToString() const {
  return StrFormat(
      "snapshot %llu: %zu pages (%zu reused, %zu new), artifacts %zu cached "
      "/ %zu carved, %.3fs detect + %.3fs catalog + %.3fs content = %.3fs "
      "(%.1f MB/s)",
      static_cast<unsigned long long>(snapshot_id), pages_total, pages_reused,
      pages_new, artifacts_reused, artifacts_carved, detect_seconds,
      catalog_seconds, content_seconds, TotalSeconds(), ThroughputMBps());
}

std::string SnapshotDiff::ToString() const {
  std::string out = StrFormat(
      "diff %llu -> %llu: %zu added, %zu changed, %zu vanished\n",
      static_cast<unsigned long long>(base_id),
      static_cast<unsigned long long>(target_id), added.size(),
      changed.size(), vanished.size());
  for (const PageRef& r : added) {
    out += StrFormat("  + object %u page %u  %s\n", r.object_id, r.page_id,
                     r.hash.ToHex().c_str());
  }
  for (const PageChange& c : changed) {
    out += StrFormat("  ~ object %u page %u  %s -> %s\n", c.object_id,
                     c.page_id, c.base_hash.ToHex().c_str(),
                     c.target_hash.ToHex().c_str());
  }
  for (const PageRef& r : vanished) {
    out += StrFormat("  - object %u page %u  %s\n", r.object_id, r.page_id,
                     r.hash.ToHex().c_str());
  }
  return out;
}

std::string RecordHistory::ToString() const {
  if (first_seen == 0) {
    return StrFormat("record of %s: never seen", table.c_str());
  }
  std::string out = StrFormat(
      "record of %s: first seen in snapshot %llu, last seen in %llu, "
      "present in %zu snapshot(s)",
      table.c_str(), static_cast<unsigned long long>(first_seen),
      static_cast<unsigned long long>(last_seen), seen_in.size());
  return out;
}

std::string IncrementalDetection::ToString() const {
  std::string out = StrFormat(
      "incremental detection %llu -> %llu: %zu page(s) re-matched, %zu "
      "record(s) (%zu deleted, %zu active checked), %zu unattributed\n",
      static_cast<unsigned long long>(base_id),
      static_cast<unsigned long long>(target_id), pages_rematched,
      records_rematched, deleted_checked, active_checked,
      modifications.size());
  for (const UnattributedModification& m : modifications) {
    out += "  " + m.ToString() + "\n";
  }
  return out;
}

// ---- Repository lifecycle ------------------------------------------------

SnapshotRepo::SnapshotRepo(std::string dir, CarverConfig config,
                           CarveOptions options)
    : dir_(std::move(dir)),
      config_(std::move(config)),
      options_(options),
      carver_(config_, options_) {}

Result<std::unique_ptr<SnapshotRepo>> SnapshotRepo::Create(
    const std::string& dir, const CarverConfig& config,
    CarveOptions options) {
  DBFA_RETURN_IF_ERROR(config.params.Validate());
  std::filesystem::path root(dir);
  std::error_code ec;
  std::filesystem::create_directories(root / "snapshots", ec);
  if (ec) {
    return Status::IoError(
        StrFormat("snapshot repo: cannot create %s", dir.c_str()));
  }
  std::string meta_path = (root / "repo.meta").string();
  if (std::filesystem::exists(meta_path)) {
    return Status::AlreadyExists(
        StrFormat("snapshot repo: %s already holds a repository",
                  dir.c_str()));
  }
  DBFA_ASSIGN_OR_RETURN(RepoLock lock, RepoLock::Acquire(dir));
  std::string meta = StrFormat(
      "%s\nscan_step %zu\nparse_bad_checksum_pages %d\nraw_scan_fallback "
      "%d\n",
      kRepoMetaHeader, options.scan_step,
      options.parse_bad_checksum_pages ? 1 : 0,
      options.raw_scan_fallback ? 1 : 0);
  DBFA_RETURN_IF_ERROR(WriteTextFile(meta_path, meta));
  DBFA_RETURN_IF_ERROR(
      WriteTextFile((root / "carver.conf").string(), ConfigToText(config)));

  std::unique_ptr<SnapshotRepo> repo(new SnapshotRepo(dir, config, options));
  repo->lock_ = std::move(lock);
  DBFA_ASSIGN_OR_RETURN(
      repo->page_store_,
      PageStore::Open((root / "pages.bin").string(), config.params.page_size));
  DBFA_ASSIGN_OR_RETURN(repo->artifact_cache_,
                        ArtifactCache::Open((root / "artifacts.bin").string()));
  return repo;
}

Result<std::unique_ptr<SnapshotRepo>> SnapshotRepo::Open(
    const std::string& dir, size_t num_threads) {
  std::filesystem::path root(dir);
  std::string meta;
  DBFA_RETURN_IF_ERROR(ReadTextFile((root / "repo.meta").string(), &meta));
  std::vector<std::string> lines = Split(meta, '\n');
  if (lines.empty() || Trim(lines[0]) != kRepoMetaHeader) {
    return Status::Corruption("snapshot repo: unrecognized repo.meta header");
  }
  CarveOptions options;
  options.num_threads = num_threads;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(std::string(line), ' ');
    uint64_t v = 0;
    if (parts.size() != 2 || !ParseU64(parts[1], &v)) {
      return Status::Corruption(
          StrFormat("snapshot repo: bad repo.meta line %zu", i + 1));
    }
    if (parts[0] == "scan_step") {
      options.scan_step = static_cast<size_t>(v);
    } else if (parts[0] == "parse_bad_checksum_pages") {
      options.parse_bad_checksum_pages = v != 0;
    } else if (parts[0] == "raw_scan_fallback") {
      options.raw_scan_fallback = v != 0;
    } else {
      return Status::Corruption(
          StrFormat("snapshot repo: unknown repo.meta key '%s'",
                    parts[0].c_str()));
    }
  }

  std::string conf;
  DBFA_RETURN_IF_ERROR(ReadTextFile((root / "carver.conf").string(), &conf));
  DBFA_ASSIGN_OR_RETURN(CarverConfig config, ConfigFromText(conf));

  // Lock after the meta probe (so opening a non-repository directory stays
  // a NotFound-style failure, not a stray lock file) but before touching
  // the mutable files below.
  DBFA_ASSIGN_OR_RETURN(RepoLock lock, RepoLock::Acquire(dir));
  std::unique_ptr<SnapshotRepo> repo(new SnapshotRepo(dir, config, options));
  repo->lock_ = std::move(lock);
  DBFA_ASSIGN_OR_RETURN(
      repo->page_store_,
      PageStore::Open((root / "pages.bin").string(), config.params.page_size));
  DBFA_ASSIGN_OR_RETURN(repo->artifact_cache_,
                        ArtifactCache::Open((root / "artifacts.bin").string()));
  DBFA_RETURN_IF_ERROR(repo->LoadManifests());
  return repo;
}

Status SnapshotRepo::LoadManifests() {
  std::filesystem::path snap_dir = std::filesystem::path(dir_) / "snapshots";
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(snap_dir, ec)) {
    if (entry.path().extension() == ".manifest") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IoError("snapshot repo: cannot list snapshots directory");
  }

  for (const std::string& path : paths) {
    std::string text;
    DBFA_RETURN_IF_ERROR(ReadTextFile(path, &text));
    std::vector<std::string> lines = Split(text, '\n');
    if (lines.empty() || Trim(lines[0]) != kManifestHeader) {
      return Status::Corruption(
          StrFormat("snapshot manifest %s: bad header", path.c_str()));
    }
    Snapshot snap;
    uint64_t page_count = 0;
    bool saw_end = false;
    for (size_t i = 1; i < lines.size(); ++i) {
      std::string_view line = Trim(lines[i]);
      if (line.empty()) continue;
      if (saw_end) {
        return Status::Corruption(
            StrFormat("snapshot manifest %s: content after end marker",
                      path.c_str()));
      }
      if (line == "end") {
        saw_end = true;
        continue;
      }
      std::vector<std::string> parts = Split(std::string(line), ' ');
      auto bad_line = [&]() {
        return Status::Corruption(StrFormat("snapshot manifest %s: bad line %zu",
                                            path.c_str(), i + 1));
      };
      if (parts[0] == "id") {
        if (parts.size() != 2 || !ParseU64(parts[1], &snap.id)) {
          return bad_line();
        }
      } else if (parts[0] == "image_size") {
        uint64_t v = 0;
        if (parts.size() != 2 || !ParseU64(parts[1], &v)) return bad_line();
        snap.image_size = static_cast<size_t>(v);
      } else if (parts[0] == "page_count") {
        if (parts.size() != 2 || !ParseU64(parts[1], &page_count)) {
          return bad_line();
        }
      } else if (parts[0] == "page") {
        uint64_t offset = 0;
        uint64_t crc = 0;
        if (parts.size() != 4 || !ParseU64(parts[1], &offset) ||
            !ParseU64(parts[2], &crc) || crc > 0xFFFFFFFFull) {
          return bad_line();
        }
        DBFA_ASSIGN_OR_RETURN(PageHash hash, PageHash::FromHex(parts[3]));
        const PageStore::Stored* stored =
            page_store_->Find(static_cast<uint32_t>(crc), hash);
        if (stored == nullptr) {
          return Status::Corruption(
              StrFormat("snapshot manifest %s: page %s missing from store",
                        path.c_str(), hash.ToHex().c_str()));
        }
        snap.offsets.push_back(static_cast<size_t>(offset));
        snap.pages.push_back(stored);
      } else {
        return bad_line();
      }
    }
    if (!saw_end) {
      return Status::Corruption(
          StrFormat("snapshot manifest %s: truncated (no end marker)",
                    path.c_str()));
    }
    if (snap.id == 0 || snap.pages.size() != page_count) {
      return Status::Corruption(
          StrFormat("snapshot manifest %s: page count mismatch",
                    path.c_str()));
    }
    snapshots_.push_back(std::move(snap));
  }
  std::sort(snapshots_.begin(), snapshots_.end(),
            [](const Snapshot& a, const Snapshot& b) { return a.id < b.id; });
  for (size_t i = 1; i < snapshots_.size(); ++i) {
    if (snapshots_[i].id == snapshots_[i - 1].id) {
      return Status::Corruption(
          StrFormat("snapshot repo: duplicate snapshot id %llu",
                    static_cast<unsigned long long>(snapshots_[i].id)));
    }
  }
  return Status::Ok();
}

Status SnapshotRepo::WriteManifest(const Snapshot& snap) const {
  std::string text = StrFormat("%s\nid %llu\nimage_size %zu\npage_count %zu\n",
                               kManifestHeader,
                               static_cast<unsigned long long>(snap.id),
                               snap.image_size, snap.pages.size());
  // One line per page; vsnprintf per line is measurable on a big image.
  text.reserve(text.size() + snap.pages.size() * 64 + 8);
  char digits[24];
  auto append_u64 = [&](uint64_t v) {
    auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), v);
    (void)ec;
    text.append(digits, ptr);
  };
  for (size_t i = 0; i < snap.pages.size(); ++i) {
    text += "page ";
    append_u64(snap.offsets[i]);
    text += ' ';
    append_u64(snap.pages[i]->entry.crc);
    text += ' ';
    text += snap.pages[i]->entry.hash.ToHex();
    text += '\n';
  }
  text += "end\n";
  std::filesystem::path dir = std::filesystem::path(dir_) / "snapshots";
  std::string name = StrFormat("%llu.manifest",
                               static_cast<unsigned long long>(snap.id));
  std::string tmp = (dir / (name + ".tmp")).string();
  std::string final_path = (dir / name).string();
  DBFA_RETURN_IF_ERROR(WriteTextFile(tmp, text));
  // The rename is the snapshot's commit point: store blocks appended by a
  // crashed ingest are unreferenced, never dangling.
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::IoError(
        StrFormat("snapshot repo: cannot commit %s", final_path.c_str()));
  }
  return Status::Ok();
}

std::string FsckIssue::ToString() const {
  return StrFormat("%s: %s", file.c_str(), detail.c_str());
}

std::string FsckReport::ToString() const {
  std::string out = StrFormat(
      "fsck: %s (%zu pages, %zu artifacts, %zu manifests checked)\n",
      Clean() ? "clean" : StrFormat("%zu corruption(s)", issues.size()).c_str(),
      pages_checked, artifacts_checked, manifests_checked);
  for (const FsckIssue& issue : issues) {
    out += "  " + issue.ToString() + "\n";
  }
  return out;
}

Result<FsckReport> SnapshotRepo::Fsck(const std::string& dir) {
  namespace fs = std::filesystem;
  fs::path root(dir);
  // Hold the repository lock so a concurrent ingest cannot append while the
  // scan walks the stores (a torn tail would read as corruption).
  DBFA_ASSIGN_OR_RETURN(RepoLock lock, RepoLock::Acquire(dir));
  FsckReport report;
  auto issue = [&report](const char* file, std::string detail) {
    report.issues.push_back({file, std::move(detail)});
  };

  // repo.meta: header plus "key value" option lines.
  std::string meta;
  Status meta_read = ReadTextFile((root / "repo.meta").string(), &meta);
  if (!meta_read.ok()) {
    issue("repo.meta", meta_read.ToString());
  } else {
    std::vector<std::string> lines = Split(meta, '\n');
    if (lines.empty() || Trim(lines[0]) != kRepoMetaHeader) {
      issue("repo.meta", "bad header (not a dbfa snapshot repository?)");
    } else {
      for (size_t i = 1; i < lines.size(); ++i) {
        std::string_view line = Trim(lines[i]);
        if (line.empty()) continue;
        std::vector<std::string> parts = Split(std::string(line), ' ');
        uint64_t v = 0;
        if (parts.size() != 2 || !ParseU64(parts[1], &v)) {
          issue("repo.meta", StrFormat("bad line %zu", i + 1));
        }
      }
    }
  }

  // carver.conf: must parse; its page size drives the page-store checks.
  size_t page_size = 0;
  std::string conf;
  Status conf_read = ReadTextFile((root / "carver.conf").string(), &conf);
  if (!conf_read.ok()) {
    issue("carver.conf", conf_read.ToString());
  } else {
    auto config = ConfigFromText(conf);
    if (!config.ok()) {
      issue("carver.conf", config.status().ToString());
    } else {
      page_size = config.value().params.page_size;
    }
  }

  // pages.bin: walk the block framing; verify each entry's stored CRC-32
  // and content hash against the page bytes it carries (the in-memory index
  // PageStore::Open builds is derived from exactly these entries, so a
  // clean scan certifies index<->file consistency). A framing failure ends
  // the walk — byte boundaries downstream of it are meaningless.
  std::unordered_map<std::string, uint32_t> stored_pages;  // hash hex -> crc
  std::string pages_path = (root / "pages.bin").string();
  std::FILE* pages = std::fopen(pages_path.c_str(), "rb");
  if (pages == nullptr) {
    issue("pages.bin", "missing or unreadable");
  } else {
    std::string payload;
    for (;;) {
      auto next = ReadBlock(pages, &payload);
      if (!next.ok()) {
        issue("pages.bin",
              StrFormat("block %zu: %s", report.pages_checked,
                        next.status().ToString().c_str()));
        break;
      }
      if (!next.value()) break;  // clean end-of-file
      if (page_size == 0) continue;  // cannot decode without the config
      PageStoreEntry entry;
      size_t page_bytes = 0;
      Status decoded = DecodePageEntry(payload, page_size, &entry,
                                       &page_bytes);
      if (!decoded.ok()) {
        issue("pages.bin", StrFormat("entry %zu: %s", report.pages_checked,
                                     decoded.ToString().c_str()));
        continue;
      }
      Bytes page_copy(payload.begin() + static_cast<ptrdiff_t>(page_bytes),
                      payload.end());
      ByteView page(page_copy);
      if (Crc32(page) != entry.crc) {
        issue("pages.bin",
              StrFormat("entry %zu (%s): stored CRC-32 does not match the "
                        "page bytes",
                        report.pages_checked, entry.hash.ToHex().c_str()));
      } else if (!(HashBytes(page) == entry.hash)) {
        issue("pages.bin",
              StrFormat("entry %zu: content hash does not match the page "
                        "bytes (claims %s)",
                        report.pages_checked, entry.hash.ToHex().c_str()));
      } else if (!stored_pages.emplace(entry.hash.ToHex(), entry.crc)
                      .second) {
        issue("pages.bin",
              StrFormat("entry %zu (%s): duplicate page entry (the store "
                        "index would collapse them)",
                        report.pages_checked, entry.hash.ToHex().c_str()));
      }
      ++report.pages_checked;
    }
    std::fclose(pages);
  }

  // artifacts.bin: every block must frame and decode as an artifact entry.
  std::string artifacts_path = (root / "artifacts.bin").string();
  std::FILE* artifacts = std::fopen(artifacts_path.c_str(), "rb");
  if (artifacts == nullptr) {
    issue("artifacts.bin", "missing or unreadable");
  } else {
    std::string payload;
    for (;;) {
      auto next = ReadBlock(artifacts, &payload);
      if (!next.ok()) {
        issue("artifacts.bin",
              StrFormat("block %zu: %s", report.artifacts_checked,
                        next.status().ToString().c_str()));
        break;
      }
      if (!next.value()) break;
      ArtifactKey key;
      PageArtifacts page_artifacts;
      Status decoded = DecodeArtifactEntry(payload, &key, &page_artifacts);
      if (!decoded.ok()) {
        issue("artifacts.bin",
              StrFormat("entry %zu: %s", report.artifacts_checked,
                        decoded.ToString().c_str()));
        continue;
      }
      ++report.artifacts_checked;
    }
    std::fclose(artifacts);
  }

  // Manifests: structural re-parse plus reachability — every referenced
  // page must exist in the page store with the same CRC.
  std::error_code ec;
  std::vector<std::string> manifest_paths;
  for (const auto& entry :
       fs::directory_iterator(root / "snapshots", ec)) {
    if (entry.path().extension() == ".manifest") {
      manifest_paths.push_back(entry.path().string());
    }
  }
  if (ec) issue("snapshots", "cannot list the snapshots directory");
  std::sort(manifest_paths.begin(), manifest_paths.end());
  for (const std::string& path : manifest_paths) {
    std::string name = fs::path(path).filename().string();
    auto manifest_issue = [&report, &name](std::string detail) {
      report.issues.push_back({name, std::move(detail)});
    };
    std::string text;
    Status read = ReadTextFile(path, &text);
    if (!read.ok()) {
      manifest_issue(read.ToString());
      continue;
    }
    std::vector<std::string> lines = Split(text, '\n');
    if (lines.empty() || Trim(lines[0]) != kManifestHeader) {
      manifest_issue("bad header");
      continue;
    }
    uint64_t id = 0;
    uint64_t page_count = 0;
    size_t pages_listed = 0;
    bool saw_end = false;
    bool structure_ok = true;
    for (size_t i = 1; i < lines.size() && structure_ok; ++i) {
      std::string_view line = Trim(lines[i]);
      if (line.empty()) continue;
      if (saw_end) {
        manifest_issue("content after end marker");
        structure_ok = false;
        break;
      }
      if (line == "end") {
        saw_end = true;
        continue;
      }
      std::vector<std::string> parts = Split(std::string(line), ' ');
      auto bad_line = [&]() {
        manifest_issue(StrFormat("bad line %zu", i + 1));
        structure_ok = false;
      };
      if (parts[0] == "id") {
        if (parts.size() != 2 || !ParseU64(parts[1], &id)) bad_line();
      } else if (parts[0] == "image_size") {
        uint64_t v = 0;
        if (parts.size() != 2 || !ParseU64(parts[1], &v)) bad_line();
      } else if (parts[0] == "page_count") {
        if (parts.size() != 2 || !ParseU64(parts[1], &page_count)) {
          bad_line();
        }
      } else if (parts[0] == "page") {
        uint64_t offset = 0;
        uint64_t crc = 0;
        if (parts.size() != 4 || !ParseU64(parts[1], &offset) ||
            !ParseU64(parts[2], &crc) || crc > 0xFFFFFFFFull) {
          bad_line();
          continue;
        }
        auto hash = PageHash::FromHex(parts[3]);
        if (!hash.ok()) {
          bad_line();
          continue;
        }
        ++pages_listed;
        auto stored = stored_pages.find(hash.value().ToHex());
        if (stored == stored_pages.end()) {
          manifest_issue(StrFormat(
              "page %s is not reachable in the page store", parts[3].c_str()));
        } else if (stored->second != static_cast<uint32_t>(crc)) {
          manifest_issue(StrFormat(
              "page %s: manifest CRC %llu disagrees with the page store",
              parts[3].c_str(), static_cast<unsigned long long>(crc)));
        }
      } else {
        bad_line();
      }
    }
    if (structure_ok && !saw_end) manifest_issue("truncated (no end marker)");
    if (structure_ok && saw_end && pages_listed != page_count) {
      manifest_issue(StrFormat("page_count %llu but %zu page lines",
                               static_cast<unsigned long long>(page_count),
                               pages_listed));
    }
    if (structure_ok && saw_end && id == 0) manifest_issue("missing id");
    ++report.manifests_checked;
  }
  return report;
}

const SnapshotRepo::Snapshot* SnapshotRepo::FindSnapshot(uint64_t id) const {
  for (const Snapshot& s : snapshots_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

ThreadPool* SnapshotRepo::Pool() {
  size_t n = options_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                       : options_.num_threads;
  if (n <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(n);
  return pool_.get();
}

SnapshotRepo::ContextSet SnapshotRepo::BuildContexts(
    const CarveResult& base) const {
  ContextSet contexts;
  contexts.schema.reserve(base.schemas.size());
  for (const auto& [object_id, schema] : base.schemas) {
    contexts.schema.emplace(object_id,
                            HashString("schema:" + schema.Serialize()));
  }
  contexts.untyped = HashString("untyped");
  contexts.index = HashString("index");
  return contexts;
}

bool SnapshotRepo::ContextFor(const CarveResult& base,
                              const ContextSet& contexts, size_t i,
                              PageHash* context) const {
  const CarvedPage& meta = base.pages[i];
  if (!meta.checksum_ok && !options_.parse_bad_checksum_pages) return false;
  switch (meta.type) {
    case PageType::kData: {
      if (meta.object_id == config_.catalog_object_id) return false;
      auto it = contexts.schema.find(meta.object_id);
      *context = it != contexts.schema.end() ? it->second : contexts.untyped;
      return true;
    }
    case PageType::kIndexLeaf:
    case PageType::kIndexInternal:
      *context = contexts.index;
      return true;
    case PageType::kFree:
      return false;
  }
  return false;
}

// ---- Ingest --------------------------------------------------------------

Result<IngestStats> SnapshotRepo::Ingest(ByteView image) {
  const PageLayoutParams& p = config_.params;
  if (image.empty()) {
    return Status::InvalidArgument("snapshot repo: empty image");
  }

  IngestStats stats;
  stats.snapshot_id = snapshots_.empty() ? 1 : snapshots_.back().id + 1;
  stats.image_bytes = image.size();

  CarveResult result;
  result.dialect = p.dialect;
  result.image_size = image.size();
  result.stats.bytes_scanned = image.size();

  Snapshot snap;
  snap.id = stats.snapshot_id;
  snap.image_size = image.size();

  // Pass 1: store-accelerated page detection, replaying the serial cursor
  // rule (accept advances by a full page). The accept decision is a pure
  // function of the window's bytes, so a store hit — same bytes, accepted
  // before — can reuse the stored metadata without re-probing.
  auto detect_start = std::chrono::steady_clock::now();
  size_t step = options_.scan_step == 0 ? 512 : options_.scan_step;
  size_t page_estimate = image.size() / p.page_size;
  result.pages.reserve(page_estimate);
  snap.offsets.reserve(page_estimate);
  snap.pages.reserve(page_estimate);
  size_t offset = 0;
  while (offset + p.page_size <= image.size()) {
    ++result.stats.pages_probed;
    const uint8_t* window = image.data() + offset;
    if (std::memcmp(window + p.magic_offset, p.magic.data(),
                    p.magic.size()) != 0) {
      offset += step;
      continue;
    }
    ByteView page_bytes(window, p.page_size);
    uint32_t crc = Crc32(page_bytes);
    const PageStore::Stored* stored = nullptr;
    if (page_store_->MaybeContains(crc)) {
      stored = page_store_->Find(crc, HashBytes(page_bytes));
    }
    if (stored == nullptr) {
      std::optional<CarvedPage> carved = carver_.ProbePage(image, offset);
      if (!carved.has_value()) {
        offset += step;
        continue;
      }
      PageStoreEntry entry;
      entry.hash = HashBytes(page_bytes);
      entry.crc = crc;
      entry.meta = *carved;
      DBFA_ASSIGN_OR_RETURN(stored, page_store_->Put(entry, page_bytes));
      ++stats.pages_new;
    } else {
      ++stats.pages_reused;
    }
    CarvedPage meta = stored->entry.meta;
    meta.image_offset = offset;
    if (!meta.checksum_ok) ++result.stats.checksum_failures;
    result.pages.push_back(meta);
    snap.offsets.push_back(offset);
    snap.pages.push_back(stored);
    offset += p.page_size;
  }
  result.stats.pages_accepted = result.pages.size();
  stats.pages_total = result.pages.size();
  result.stats.detect_seconds = SecondsSince(detect_start);
  stats.detect_seconds = result.stats.detect_seconds;

  // Pass 2: catalog — always from the image (it is a tiny fraction of any
  // realistic capture, and the schemas it yields feed the cache contexts).
  auto catalog_start = std::chrono::steady_clock::now();
  carver_.CarveCatalog(image, &result);
  result.stats.catalog_seconds = SecondsSince(catalog_start);
  stats.catalog_seconds = result.stats.catalog_seconds;

  // Passes 3-4: content. Ingest only needs to make sure every page's
  // artifacts exist in the cache — AssembleCarve is what materializes a
  // carve from them — so cached pages cost one index lookup and only
  // misses decode (page-parallel), publishing in canonical form
  // (page_index 0, re-stamped at assembly).
  auto content_start = std::chrono::steady_clock::now();
  size_t n = result.pages.size();
  ContextSet context_set = BuildContexts(result);
  std::vector<PageArtifacts> slots(n);
  std::vector<PageHash> contexts(n);
  std::vector<size_t> misses;
  for (size_t i = 0; i < n; ++i) {
    if (!ContextFor(result, context_set, i, &contexts[i])) continue;
    ArtifactKey key{snap.pages[i]->entry.hash, contexts[i]};
    if (artifact_cache_->Contains(key)) {
      ++stats.artifacts_reused;
    } else {
      misses.push_back(i);
      ++stats.artifacts_carved;
    }
  }

  auto decode_one = [&](size_t i) {
    carver_.CarveContentRange(image, result, i, i + 1, &slots[i].records,
                              &slots[i].index_entries);
  };
  if (ThreadPool* pool = misses.size() > 1 ? Pool() : nullptr) {
    pool->ParallelFor(misses.size(),
                      [&](size_t k) { decode_one(misses[k]); });
  } else {
    for (size_t i : misses) decode_one(i);
  }

  for (size_t i : misses) {
    PageArtifacts canonical = std::move(slots[i]);
    for (CarvedRecord& r : canonical.records) r.page_index = 0;
    for (CarvedIndexEntry& e : canonical.index_entries) e.page_index = 0;
    ArtifactKey key{snap.pages[i]->entry.hash, contexts[i]};
    DBFA_RETURN_IF_ERROR(artifact_cache_->Put(key, canonical));
  }
  result.stats.content_seconds = SecondsSince(content_start);
  stats.content_seconds = result.stats.content_seconds;

  DBFA_RETURN_IF_ERROR(WriteManifest(snap));
  snapshots_.push_back(std::move(snap));
  return stats;
}

// ---- Queries -------------------------------------------------------------

std::vector<SnapshotInfo> SnapshotRepo::List() const {
  std::vector<SnapshotInfo> out;
  out.reserve(snapshots_.size());
  for (const Snapshot& s : snapshots_) {
    out.push_back({s.id, s.image_size, s.pages.size()});
  }
  return out;
}

Result<CarveResult> SnapshotRepo::AssembleCarve(uint64_t id) {
  const Snapshot* snap = FindSnapshot(id);
  if (snap == nullptr) {
    return Status::NotFound(StrFormat(
        "snapshot %llu not in repository", static_cast<unsigned long long>(id)));
  }
  const PageLayoutParams& p = config_.params;

  auto page_list_start = std::chrono::steady_clock::now();
  CarveResult result;
  result.dialect = p.dialect;
  result.image_size = snap->image_size;
  result.stats.bytes_scanned = snap->image_size;
  result.pages.reserve(snap->pages.size());
  for (size_t i = 0; i < snap->pages.size(); ++i) {
    CarvedPage meta = snap->pages[i]->entry.meta;
    meta.image_offset = snap->offsets[i];
    if (!meta.checksum_ok) ++result.stats.checksum_failures;
    result.pages.push_back(meta);
  }
  result.stats.pages_probed = result.pages.size();
  result.stats.pages_accepted = result.pages.size();
  result.stats.detect_seconds = SecondsSince(page_list_start);

  // Catalog pass over a compact image holding only the catalog pages,
  // back-to-back in page order — CarveCatalog visits pages in list order,
  // so the entries come out exactly as they would from the full image.
  auto catalog_start = std::chrono::steady_clock::now();
  CarveResult tmp;
  tmp.pages = result.pages;
  std::string compact;
  for (size_t i = 0; i < tmp.pages.size(); ++i) {
    if (tmp.pages[i].object_id != config_.catalog_object_id ||
        tmp.pages[i].type != PageType::kData) {
      continue;
    }
    Bytes page;
    DBFA_RETURN_IF_ERROR(page_store_->ReadPage(*snap->pages[i], &page));
    tmp.pages[i].image_offset = compact.size();
    compact.append(AsStringView(ByteView(page)));
  }
  carver_.CarveCatalog(AsByteView(compact), &tmp);
  result.catalog_entries = std::move(tmp.catalog_entries);
  result.schemas = std::move(tmp.schemas);
  result.indexes = std::move(tmp.indexes);
  result.dropped_objects = std::move(tmp.dropped_objects);
  result.stats.catalog_seconds = SecondsSince(catalog_start);

  // Content from the artifact cache; a miss (a repository whose cache file
  // was rebuilt or pruned) falls back to a single-page decode from the
  // page store.
  auto content_start = std::chrono::steady_clock::now();
  ContextSet context_set = BuildContexts(result);
  CarveResult one;  // reusable single-page decode base
  one.dialect = result.dialect;
  one.schemas = result.schemas;
  one.pages.resize(1);
  for (size_t i = 0; i < result.pages.size(); ++i) {
    PageHash context;
    if (!ContextFor(result, context_set, i, &context)) continue;
    ArtifactKey key{snap->pages[i]->entry.hash, context};
    DBFA_ASSIGN_OR_RETURN(std::shared_ptr<const PageArtifacts> cached,
                          artifact_cache_->Get(key));
    PageArtifacts arts;
    if (cached != nullptr) {
      arts = *cached;
    } else {
      Bytes page;
      DBFA_RETURN_IF_ERROR(page_store_->ReadPage(*snap->pages[i], &page));
      one.pages[0] = result.pages[i];
      one.pages[0].image_offset = 0;
      carver_.CarveContentRange(ByteView(page), one, 0, 1, &arts.records,
                                &arts.index_entries);
      DBFA_RETURN_IF_ERROR(artifact_cache_->Put(key, arts));
    }
    for (CarvedRecord& r : arts.records) {
      r.page_index = i;
      result.records.push_back(std::move(r));
    }
    for (CarvedIndexEntry& e : arts.index_entries) {
      e.page_index = i;
      result.index_entries.push_back(std::move(e));
    }
  }
  result.stats.content_seconds = SecondsSince(content_start);
  return result;
}

Result<SnapshotDiff> SnapshotRepo::Diff(uint64_t base_id,
                                        uint64_t target_id) const {
  const Snapshot* base = FindSnapshot(base_id);
  const Snapshot* target = FindSnapshot(target_id);
  if (base == nullptr || target == nullptr) {
    return Status::NotFound("diff: unknown snapshot id");
  }
  SnapshotDiff diff;
  diff.base_id = base_id;
  diff.target_id = target_id;

  // Pages keyed by identity (object_id, page_id); several pages may share
  // an identity (e.g. stale copies in unallocated space), so identities map
  // to hash lists in image order and compare positionally.
  using Identity = std::pair<uint32_t, uint32_t>;
  using Group = std::map<Identity, std::vector<const PageStore::Stored*>>;
  auto group = [](const Snapshot& s) {
    Group g;
    for (const PageStore::Stored* page : s.pages) {
      g[{page->entry.meta.object_id, page->entry.meta.page_id}].push_back(
          page);
    }
    return g;
  };
  Group base_groups = group(*base);
  Group target_groups = group(*target);

  for (const auto& [key, target_pages] : target_groups) {
    auto it = base_groups.find(key);
    size_t base_count = it == base_groups.end() ? 0 : it->second.size();
    for (size_t k = 0; k < target_pages.size(); ++k) {
      const PageStoreEntry& e = target_pages[k]->entry;
      if (k >= base_count) {
        diff.added.push_back({e.meta.object_id, e.meta.page_id, e.hash});
      } else if (!(it->second[k]->entry.hash == e.hash)) {
        diff.changed.push_back({e.meta.object_id, e.meta.page_id,
                                it->second[k]->entry.hash, e.hash});
      }
    }
  }
  for (const auto& [key, base_pages] : base_groups) {
    auto it = target_groups.find(key);
    size_t target_count = it == target_groups.end() ? 0 : it->second.size();
    for (size_t k = target_count; k < base_pages.size(); ++k) {
      const PageStoreEntry& e = base_pages[k]->entry;
      diff.vanished.push_back({e.meta.object_id, e.meta.page_id, e.hash});
    }
  }
  return diff;
}

Result<RecordHistory> SnapshotRepo::History(const std::string& table,
                                            const Record& values) {
  RecordHistory history;
  history.table = table;
  history.values = values;
  for (const Snapshot& snap : snapshots_) {
    DBFA_ASSIGN_OR_RETURN(CarveResult carve, AssembleCarve(snap.id));
    uint32_t object_id = carve.ObjectIdByName(table);
    bool seen = false;
    for (const CarvedRecord& r : carve.records) {
      if (object_id != 0 && r.object_id != object_id) continue;
      if (r.values == values) {
        seen = true;
        break;
      }
    }
    if (seen) {
      if (history.first_seen == 0) history.first_seen = snap.id;
      history.last_seen = snap.id;
      history.seen_in.push_back(snap.id);
    }
  }
  return history;
}

Result<IncrementalDetection> SnapshotRepo::DetectIncremental(
    uint64_t base_id, uint64_t target_id, const AuditLog& log,
    DetectiveOptions options) {
  const Snapshot* base = FindSnapshot(base_id);
  if (base == nullptr || FindSnapshot(target_id) == nullptr) {
    return Status::NotFound("incremental detection: unknown snapshot id");
  }
  DBFA_ASSIGN_OR_RETURN(CarveResult carve, AssembleCarve(target_id));

  std::unordered_set<PageHash, PageHashHasher> base_hashes;
  base_hashes.reserve(base->pages.size() * 2);
  for (const PageStore::Stored* page : base->pages) {
    base_hashes.insert(page->entry.hash);
  }
  const Snapshot* target = FindSnapshot(target_id);
  std::vector<char> page_changed(carve.pages.size(), 0);
  IncrementalDetection out;
  out.base_id = base_id;
  out.target_id = target_id;
  for (size_t i = 0; i < target->pages.size(); ++i) {
    if (base_hashes.count(target->pages[i]->entry.hash) == 0) {
      page_changed[i] = 1;
      ++out.pages_rematched;
    }
  }

  // Keep pages/catalog intact (page_index stays valid); restrict the record
  // sweep to the delta.
  std::vector<CarvedRecord> delta_records;
  for (CarvedRecord& r : carve.records) {
    if (r.page_index < page_changed.size() && page_changed[r.page_index] != 0) {
      delta_records.push_back(std::move(r));
    }
  }
  carve.records = std::move(delta_records);
  std::vector<CarvedIndexEntry> delta_entries;
  for (CarvedIndexEntry& e : carve.index_entries) {
    if (e.page_index < page_changed.size() && page_changed[e.page_index] != 0) {
      delta_entries.push_back(std::move(e));
    }
  }
  carve.index_entries = std::move(delta_entries);
  out.records_rematched = carve.records.size();

  DbDetective detective(&carve, &log, nullptr, options);
  DBFA_ASSIGN_OR_RETURN(
      out.modifications,
      detective.FindUnattributedModifications(&out.deleted_checked,
                                              &out.active_checked));
  return out;
}

Status SnapshotRepo::RegisterSnapshots(MetaQuerySession* session,
                                       const std::vector<uint64_t>& ids,
                                       std::vector<std::string>* skipped) {
  std::vector<uint64_t> all;
  if (ids.empty()) {
    for (const Snapshot& s : snapshots_) all.push_back(s.id);
  } else {
    all = ids;
  }
  for (uint64_t id : all) {
    DBFA_ASSIGN_OR_RETURN(CarveResult carve, AssembleCarve(id));
    std::string prefix =
        StrFormat("Snap%llu", static_cast<unsigned long long>(id));
    DBFA_RETURN_IF_ERROR(session->RegisterCarve(carve, prefix, skipped));
  }
  return Status::Ok();
}

}  // namespace dbfa
