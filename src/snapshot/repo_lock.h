// Repository-level advisory lock for SnapshotRepo directories.
//
// Both the one-shot CLIs (dbfa_snapshot, dbfa_detect over a repo) and the
// continuous-audit daemon open repositories by path; without mutual
// exclusion a daemon ingest and a concurrent CLI ingest could interleave
// store appends and manifest commits. The lock is a `repo.lock` file
// created with O_CREAT|O_EXCL (atomic on every filesystem we care about)
// holding the owner's PID. A contender that finds the file reads the PID
// and probes it with kill(pid, 0): a dead owner (crashed process) is
// detected as stale and the lock is reclaimed; a live owner makes Acquire
// fail with Status::Unavailable — a clean, retryable refusal, never a
// corrupt repository.
#ifndef DBFA_SNAPSHOT_REPO_LOCK_H_
#define DBFA_SNAPSHOT_REPO_LOCK_H_

#include <string>

#include "common/status.h"

namespace dbfa {

class RepoLock {
 public:
  /// Acquires `<dir>/repo.lock`, reclaiming it first if its recorded owner
  /// is no longer alive. Returns Status::Unavailable when a live process
  /// holds it.
  static Result<RepoLock> Acquire(const std::string& dir);

  /// Releases (unlinks) the lock; moved-from instances release nothing.
  ~RepoLock();

  RepoLock(RepoLock&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  RepoLock& operator=(RepoLock&& other) noexcept;
  RepoLock(const RepoLock&) = delete;
  RepoLock& operator=(const RepoLock&) = delete;

  /// Lock-file path; empty for a moved-from (inactive) lock.
  const std::string& path() const { return path_; }

 private:
  explicit RepoLock(std::string path) : path_(std::move(path)) {}

  void Release();

  std::string path_;
};

}  // namespace dbfa

#endif  // DBFA_SNAPSHOT_REPO_LOCK_H_
