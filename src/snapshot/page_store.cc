#include "snapshot/page_store.h"

#include <utility>

#include "common/strings.h"

namespace dbfa {

Result<std::unique_ptr<PageStore>> PageStore::Open(const std::string& path,
                                                   size_t page_size) {
  if (page_size == 0) {
    return Status::InvalidArgument("page store: page size must be nonzero");
  }
  std::unique_ptr<PageStore> store(new PageStore(path, page_size));
  // "ab+": reads seek anywhere, writes always land at the end — exactly the
  // append-only discipline the block format assumes.
  store->file_ = std::fopen(path.c_str(), "ab+");
  if (store->file_ == nullptr) {
    return Status::IoError(
        StrFormat("page store: cannot open %s", path.c_str()));
  }
  DBFA_RETURN_IF_ERROR(store->LoadIndex());
  return store;
}

PageStore::~PageStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PageStore::LoadIndex() {
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IoError("page store: seek failed");
  }
  std::string payload;
  for (;;) {
    long offset = std::ftell(file_);
    if (offset < 0) return Status::IoError("page store: ftell failed");
    DBFA_ASSIGN_OR_RETURN(bool more, ReadBlock(file_, &payload));
    if (!more) break;
    auto stored = std::make_unique<Stored>();
    size_t page_bytes = 0;
    DBFA_RETURN_IF_ERROR(
        DecodePageEntry(payload, page_size_, &stored->entry, &page_bytes));
    stored->file_offset = offset;
    buckets_[stored->entry.crc].push_back(stored.get());
    entries_.push_back(std::move(stored));
  }
  return Status::Ok();
}

const PageStore::Stored* PageStore::Find(uint32_t crc,
                                         const PageHash& hash) const {
  auto it = buckets_.find(crc);
  if (it == buckets_.end()) return nullptr;
  for (const Stored* s : it->second) {
    if (s->entry.hash == hash) return s;
  }
  return nullptr;
}

Result<const PageStore::Stored*> PageStore::Put(const PageStoreEntry& entry,
                                                ByteView page) {
  if (page.size() != page_size_) {
    return Status::InvalidArgument(
        StrFormat("page store: page is %zu bytes, store page size is %zu",
                  page.size(), page_size_));
  }
  if (const Stored* existing = Find(entry.crc, entry.hash)) return existing;
  // "ab+" writes always land at EOF, but ftell reports the *read* cursor —
  // seek explicitly so the recorded offset is where the block really goes.
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("page store: seek failed");
  }
  long offset = std::ftell(file_);
  if (offset < 0) return Status::IoError("page store: ftell failed");
  std::string payload;
  EncodePageEntry(entry, page, &payload);
  DBFA_RETURN_IF_ERROR(AppendBlock(file_, payload));
  auto stored = std::make_unique<Stored>();
  stored->entry = entry;
  stored->entry.meta.image_offset = 0;
  stored->file_offset = offset;
  const Stored* raw = stored.get();
  buckets_[entry.crc].push_back(raw);
  entries_.push_back(std::move(stored));
  return raw;
}

Status PageStore::ReadPage(const Stored& stored, Bytes* out) const {
  if (std::fseek(file_, stored.file_offset, SEEK_SET) != 0) {
    return Status::IoError("page store: seek failed");
  }
  std::string payload;
  DBFA_ASSIGN_OR_RETURN(bool more, ReadBlock(file_, &payload));
  if (!more) return Status::Corruption("page store: entry block vanished");
  PageStoreEntry entry;
  size_t page_bytes = 0;
  DBFA_RETURN_IF_ERROR(
      DecodePageEntry(payload, page_size_, &entry, &page_bytes));
  if (!(entry.hash == stored.entry.hash)) {
    return Status::Corruption("page store: entry hash changed on disk");
  }
  ByteView page = AsByteView(payload).Slice(page_bytes);
  *out = page.ToBytes();
  return Status::Ok();
}

}  // namespace dbfa
