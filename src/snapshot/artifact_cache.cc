#include "snapshot/artifact_cache.h"

#include <utility>

#include "common/bytes.h"
#include "common/strings.h"

namespace dbfa {

Result<std::unique_ptr<ArtifactCache>> ArtifactCache::Open(
    const std::string& path) {
  std::unique_ptr<ArtifactCache> cache(new ArtifactCache(path));
  cache->file_ = std::fopen(path.c_str(), "ab+");
  if (cache->file_ == nullptr) {
    return Status::IoError(
        StrFormat("artifact cache: cannot open %s", path.c_str()));
  }
  DBFA_RETURN_IF_ERROR(cache->LoadIndex());
  return cache;
}

ArtifactCache::~ArtifactCache() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ArtifactCache::LoadIndex() {
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IoError("artifact cache: seek failed");
  }
  std::string payload;
  for (;;) {
    long offset = std::ftell(file_);
    if (offset < 0) return Status::IoError("artifact cache: ftell failed");
    DBFA_ASSIGN_OR_RETURN(bool more, ReadBlock(file_, &payload));
    if (!more) break;
    ArtifactKey key;
    DBFA_RETURN_IF_ERROR(DecodeArtifactKey(payload, &key));
    Slot slot;
    slot.file_offset = offset;
    index_.emplace(key, std::move(slot));
  }
  return Status::Ok();
}

Result<std::shared_ptr<const PageArtifacts>> ArtifactCache::Get(
    const ArtifactKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return std::shared_ptr<const PageArtifacts>();
  }
  if (it->second.decoded != nullptr) return it->second.decoded;
  if (std::fseek(file_, it->second.file_offset, SEEK_SET) != 0) {
    return Status::IoError("artifact cache: seek failed");
  }
  std::string payload;
  DBFA_ASSIGN_OR_RETURN(bool more, ReadBlock(file_, &payload));
  if (!more) {
    return Status::Corruption("artifact cache: entry block vanished");
  }
  ArtifactKey stored_key;
  auto artifacts = std::make_shared<PageArtifacts>();
  DBFA_RETURN_IF_ERROR(
      DecodeArtifactEntry(payload, &stored_key, artifacts.get()));
  if (!(stored_key == key)) {
    return Status::Corruption("artifact cache: entry key changed on disk");
  }
  it->second.decoded = std::move(artifacts);
  return it->second.decoded;
}

Status ArtifactCache::Put(const ArtifactKey& key,
                          const PageArtifacts& artifacts) {
  auto it = index_.find(key);
  if (it != index_.end()) return Status::Ok();
  // "ab+" writes always land at EOF, but ftell reports the *read* cursor —
  // seek explicitly so the recorded offset is where the block really goes.
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("artifact cache: seek failed");
  }
  long offset = std::ftell(file_);
  if (offset < 0) return Status::IoError("artifact cache: ftell failed");
  std::string payload;
  EncodeArtifactEntry(key, artifacts, &payload);
  DBFA_RETURN_IF_ERROR(AppendBlock(file_, payload));
  Slot slot;
  slot.file_offset = offset;
  slot.decoded = std::make_shared<PageArtifacts>(artifacts);
  index_.emplace(key, std::move(slot));
  return Status::Ok();
}

}  // namespace dbfa
