// SnapshotRepo: a persistent repository of successive storage captures of
// one DBMS, with content-addressed incremental carving.
//
// DBDetective's workflow (PAPER.md III-A, Figure 4) is repeated: storage
// is snapshotted periodically and each snapshot is matched against the
// audit log. A one-shot carver makes the Nth snapshot cost the same as the
// first even when almost nothing changed. The repository dedupes unchanged
// pages against a content-addressed page store and re-carves only the
// delta, while guaranteeing that the assembled artifacts are byte-identical
// to a fresh serial Carver::Carve of the full image (the differential fuzz
// test in tests/snapshot_fuzz_test.cc enforces this for any thread count).
//
// On-disk layout (docs/snapshot_store.md), versioned and self-describing
// like EvidencePackage:
//   <dir>/repo.meta                 format version + fixed carve options
//   <dir>/carver.conf               the dialect config (ConfigToText)
//   <dir>/pages.bin                 content-addressed page store
//   <dir>/artifacts.bin             per-page carve artifact cache
//   <dir>/snapshots/<id>.manifest   one page list per ingested snapshot
//
// Carve options are fixed at repository creation: every cached artifact
// was produced under them, so changing them would invalidate the cache.
// Open() restores them from repo.meta.
#ifndef DBFA_SNAPSHOT_SNAPSHOT_REPO_H_
#define DBFA_SNAPSHOT_SNAPSHOT_REPO_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/carver.h"
#include "detective/dbdetective.h"
#include "metaquery/session.h"
#include "snapshot/artifact_cache.h"
#include "snapshot/page_store.h"
#include "snapshot/repo_lock.h"
#include "snapshot/snapshot_codec.h"

namespace dbfa {

/// One ingested snapshot, as listed by List().
struct SnapshotInfo {
  uint64_t id = 0;
  size_t image_size = 0;
  size_t page_count = 0;

  std::string ToString() const;
};

/// What one Ingest() did and what it cost.
struct IngestStats {
  uint64_t snapshot_id = 0;
  size_t image_bytes = 0;
  size_t pages_total = 0;
  size_t pages_reused = 0;      // dedup hits in the page store
  size_t pages_new = 0;         // pages stored by this ingest
  size_t artifacts_reused = 0;  // content pass served from the cache
  size_t artifacts_carved = 0;  // pages decoded fresh
  double detect_seconds = 0.0;
  double catalog_seconds = 0.0;
  double content_seconds = 0.0;

  double TotalSeconds() const {
    return detect_seconds + catalog_seconds + content_seconds;
  }
  double ThroughputMBps() const;
  std::string ToString() const;
};

/// Page-level delta between two snapshots. Pages are identified by
/// (object_id, page_id); a page whose identity persists but whose content
/// hash differs is "changed", identities only in the target are "added",
/// identities only in the base are "vanished".
struct SnapshotDiff {
  struct PageRef {
    uint32_t object_id = 0;
    uint32_t page_id = 0;
    PageHash hash;
  };
  struct PageChange {
    uint32_t object_id = 0;
    uint32_t page_id = 0;
    PageHash base_hash;
    PageHash target_hash;
  };

  uint64_t base_id = 0;
  uint64_t target_id = 0;
  std::vector<PageRef> added;
  std::vector<PageChange> changed;
  std::vector<PageRef> vanished;

  bool Empty() const {
    return added.empty() && changed.empty() && vanished.empty();
  }
  std::string ToString() const;
};

/// Where one record's exact values were seen across the snapshot sequence.
struct RecordHistory {
  std::string table;
  Record values;
  uint64_t first_seen = 0;  // snapshot id; 0 = never seen
  uint64_t last_seen = 0;
  std::vector<uint64_t> seen_in;  // ascending snapshot ids

  std::string ToString() const;
};

/// Result of incremental detection: only records living on pages that
/// changed (or appeared) since the base snapshot are re-matched against
/// the audit log — records on unchanged pages were vetted when the base
/// snapshot was analyzed, and unchanged bytes cannot change the verdict.
struct IncrementalDetection {
  uint64_t base_id = 0;
  uint64_t target_id = 0;
  size_t pages_rematched = 0;
  size_t records_rematched = 0;
  size_t deleted_checked = 0;
  size_t active_checked = 0;
  std::vector<UnattributedModification> modifications;

  std::string ToString() const;
};

/// One verified defect found by Fsck().
struct FsckIssue {
  std::string file;  // repository-relative file the defect lives in
  std::string detail;

  std::string ToString() const;
};

/// Repository integrity report (`dbfa_snapshot fsck`).
struct FsckReport {
  std::vector<FsckIssue> issues;
  size_t pages_checked = 0;      // page-store entries decoded and verified
  size_t artifacts_checked = 0;  // artifact-cache entries decoded
  size_t manifests_checked = 0;  // snapshot manifests parsed

  bool Clean() const { return issues.empty(); }
  std::string ToString() const;
};

class SnapshotRepo {
 public:
  /// Creates a new repository at `dir` (the directory may exist but must
  /// not already hold a repository). `options.scan_step`,
  /// `parse_bad_checksum_pages` and `raw_scan_fallback` become permanent
  /// properties of the repository; `num_threads` only sizes the ingest
  /// worker pool and is not persisted.
  static Result<std::unique_ptr<SnapshotRepo>> Create(
      const std::string& dir, const CarverConfig& config,
      CarveOptions options = {});

  /// Opens an existing repository, restoring config + options from disk.
  ///
  /// Both factories take the repository's `repo.lock` (snapshot/repo_lock.h)
  /// and hold it for the repository's lifetime, so a long-running daemon
  /// ingest and a concurrent one-shot CLI can never interleave store appends
  /// or a manifest commit: the loser gets Status::Unavailable, never a
  /// corrupt repository. A lock left by a crashed process is reclaimed.
  static Result<std::unique_ptr<SnapshotRepo>> Open(const std::string& dir,
                                                    size_t num_threads = 0);

  const std::string& dir() const { return dir_; }
  const CarverConfig& config() const { return config_; }
  const CarveOptions& options() const { return options_; }
  const PageStore& page_store() const { return *page_store_; }
  const ArtifactCache& artifact_cache() const { return *artifact_cache_; }

  /// Ingests one capture as the next snapshot (ids are 1, 2, ...).
  /// Detection replays the serial carver's cursor: at each offset the page
  /// magic is memcmp'd first, then CRC-32 fast-rejects against the store,
  /// and only a CRC bucket hit pays the 128-bit hash — so a warm re-ingest
  /// accepts unchanged pages without re-probing or re-verifying them, and
  /// reuses their cached artifacts without decoding. New/changed pages are
  /// decoded page-parallel on the worker pool; outputs are concatenated in
  /// page order, so the result is identical for every thread count.
  Result<IngestStats> Ingest(ByteView image);

  /// Snapshots in ascending id order.
  std::vector<SnapshotInfo> List() const;

  /// Reconstructs the full CarveResult of snapshot `id` from the page
  /// store + artifact cache — byte-identical to the serial carve of the
  /// original image (stats fields excepted; they time the assembly).
  Result<CarveResult> AssembleCarve(uint64_t id);

  /// Page-level delta between two snapshots.
  Result<SnapshotDiff> Diff(uint64_t base_id, uint64_t target_id) const;

  /// First/last snapshot containing an exact-valued record of `table`
  /// (active or deleted; matches both typed and raw-scan recoveries).
  Result<RecordHistory> History(const std::string& table,
                                const Record& values);

  /// Matches only records from pages changed/added since `base_id` against
  /// the audit log (Figure 4's check, restricted to the delta).
  Result<IncrementalDetection> DetectIncremental(uint64_t base_id,
                                                 uint64_t target_id,
                                                 const AuditLog& log,
                                                 DetectiveOptions options = {});

  /// Offline integrity check of a repository at `dir`: re-verifies every
  /// pages.bin block (framing CRC, then the entry's stored page CRC-32 and
  /// content hash against the page bytes), decodes every artifacts.bin
  /// entry, re-parses repo.meta/carver.conf, and re-parses each snapshot
  /// manifest checking that every referenced page is reachable in the page
  /// store. Takes the repository lock for the duration; defects are
  /// reported per corruption in the returned report, not as an error (the
  /// Status is for environmental failures: lock contention, unreadable
  /// directory).
  static Result<FsckReport> Fsck(const std::string& dir);

  /// Registers every schema-bearing table of the given snapshots (default:
  /// all) as "Snap<id><Table>" for cross-snapshot meta-queries, e.g.
  ///   SELECT * FROM Snap1Customer AS A JOIN Snap2Customer AS B
  ///     ON A.Id = B.Id WHERE A.City <> B.City
  Status RegisterSnapshots(MetaQuerySession* session,
                           const std::vector<uint64_t>& ids = {},
                           std::vector<std::string>* skipped = nullptr);

 private:
  struct Snapshot {
    uint64_t id = 0;
    size_t image_size = 0;
    std::vector<size_t> offsets;  // image offset per page, ascending
    std::vector<const PageStore::Stored*> pages;  // parallel to offsets
  };

  SnapshotRepo(std::string dir, CarverConfig config, CarveOptions options);

  const Snapshot* FindSnapshot(uint64_t id) const;
  Status LoadManifests();
  Status WriteManifest(const Snapshot& snap) const;

  /// Context hashes shared by every page of one carve: per-object schema
  /// contexts plus the untyped/index constants. Hashing a serialized schema
  /// once per page would dominate a warm content pass, so both Ingest and
  /// AssembleCarve build this once per carve result.
  struct ContextSet {
    std::unordered_map<uint32_t, PageHash> schema;  // object_id -> context
    PageHash untyped;
    PageHash index;
  };
  ContextSet BuildContexts(const CarveResult& base) const;

  /// Artifact-cache context for page i of `base` (schemas already carved).
  /// Returns false for pages the content pass never decodes (free pages,
  /// catalog data pages, bad-checksum pages when parsing them is off).
  bool ContextFor(const CarveResult& base, const ContextSet& contexts,
                  size_t i, PageHash* context) const;

  /// Worker pool for the content pass; nullptr when running inline.
  ThreadPool* Pool();

  std::string dir_;
  CarverConfig config_;
  CarveOptions options_;
  std::optional<RepoLock> lock_;  // held for the repository's lifetime
  Carver carver_;
  std::unique_ptr<PageStore> page_store_;
  std::unique_ptr<ArtifactCache> artifact_cache_;
  std::vector<Snapshot> snapshots_;  // ascending id
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dbfa

#endif  // DBFA_SNAPSHOT_SNAPSHOT_REPO_H_
