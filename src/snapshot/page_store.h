// Content-addressed page store: every unique page seen across snapshots,
// stored once in an append-only checksummed block file (pages.bin).
//
// The in-memory index is small — ~48 bytes per unique page — because page
// bytes stay on disk and are re-read only during assembly (catalog pages,
// cache-miss fallback decodes). Lookup is two-tier: the CRC-32 bucket is
// the fast reject (a brand-new page almost never has a stored CRC twin),
// and only bucket hits pay the 128-bit strong-hash comparison.
//
// Single-orchestrator contract, like SpillManager: one thread opens,
// queries and appends. Ingest workers decode from the *image*, never from
// the store, so the store needs no locking.
#ifndef DBFA_SNAPSHOT_PAGE_STORE_H_
#define DBFA_SNAPSHOT_PAGE_STORE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "snapshot/snapshot_codec.h"

namespace dbfa {

class PageStore {
 public:
  /// One stored page: its content address, content-derived carve metadata,
  /// and where its bytes live in pages.bin.
  struct Stored {
    PageStoreEntry entry;
    long file_offset = 0;  // block start within pages.bin
  };

  /// Opens (or creates) the store file and rebuilds the index by scanning
  /// its blocks. A torn final block — crash mid-append — is reported as
  /// Corruption: the repository manifest is written after the store, so a
  /// consistent repo never has one.
  static Result<std::unique_ptr<PageStore>> Open(const std::string& path,
                                                 size_t page_size);

  ~PageStore();
  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  size_t page_size() const { return page_size_; }
  size_t size() const { return entries_.size(); }

  /// Fast reject: false means no stored page has this CRC-32, so the
  /// caller can skip the strong hash entirely.
  bool MaybeContains(uint32_t crc) const {
    return buckets_.find(crc) != buckets_.end();
  }

  /// Exact lookup; nullptr when the page is not stored. The returned
  /// pointer is stable until the store is destroyed.
  const Stored* Find(uint32_t crc, const PageHash& hash) const;

  /// Appends a page (no-op returning the existing entry when the hash is
  /// already stored). `entry.meta.image_offset` is ignored and stored as 0.
  Result<const Stored*> Put(const PageStoreEntry& entry, ByteView page);

  /// Re-reads and verifies one stored page's bytes from disk.
  Status ReadPage(const Stored& stored, Bytes* out) const;

 private:
  PageStore(std::string path, size_t page_size)
      : path_(std::move(path)), page_size_(page_size) {}

  Status LoadIndex();

  std::string path_;
  size_t page_size_;
  std::FILE* file_ = nullptr;

  // Owned entries in append order; buckets_ maps CRC-32 to the entries
  // sharing it (almost always exactly one).
  std::vector<std::unique_ptr<Stored>> entries_;
  std::unordered_map<uint32_t, std::vector<const Stored*>> buckets_;
};

}  // namespace dbfa

#endif  // DBFA_SNAPSHOT_PAGE_STORE_H_
