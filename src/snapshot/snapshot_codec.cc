#include "snapshot/snapshot_codec.h"

#include <bit>
#include <cstring>

#include "common/checksum.h"
#include "common/strings.h"
#include "sql/row_codec.h"

namespace dbfa {
namespace {

// Larger than any plausible entry: a page plus its header, or one page's
// serialized artifacts, stays far below this even at 64 KB pages.
constexpr uint32_t kMaxBlockPayload = 64u << 20;

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// splitmix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Unaligned little-endian 64-bit load. The memcpy is the audited raw read
/// this file is allowlisted for (tools/dbfa_lint/allowlist.txt): the hash
/// inner loop runs over every ingested byte, and byte-at-a-time assembly
/// through ReadU64 halves ingest throughput. Callers guarantee 8 readable
/// bytes.
// dbfa-lint: allow(raw-byte-read): word-at-a-time hash loads over a
// length-checked span; LE-normalized so hashes are endian-stable.
inline uint64_t Load64LE(const uint8_t* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  if constexpr (std::endian::native == std::endian::big) {
    w = ((w & 0x00000000000000FFull) << 56) |
        ((w & 0x000000000000FF00ull) << 40) |
        ((w & 0x0000000000FF0000ull) << 24) |
        ((w & 0x00000000FF000000ull) << 8) |
        ((w & 0x000000FF00000000ull) >> 8) |
        ((w & 0x0000FF0000000000ull) >> 24) |
        ((w & 0x00FF000000000000ull) >> 40) |
        ((w & 0xFF00000000000000ull) >> 56);
  }
  return w;
}

constexpr uint64_t kMul1 = 0x9E3779B97F4A7C15ull;
constexpr uint64_t kMul2 = 0xC2B2AE3D27D4EB4Full;

// ---- Fixed-width appends / bounds-checked reads over std::string ---------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void AppendU16(std::string* out, uint16_t v) {
  uint8_t buf[2];
  WriteU16(buf, v, /*big_endian=*/false);
  out->append(AsStringView(ByteView(buf, sizeof(buf))));
}
void AppendU32(std::string* out, uint32_t v) {
  uint8_t buf[4];
  WriteU32(buf, v, /*big_endian=*/false);
  out->append(AsStringView(ByteView(buf, sizeof(buf))));
}
void AppendU64(std::string* out, uint64_t v) {
  uint8_t buf[8];
  WriteU64(buf, v, /*big_endian=*/false);
  out->append(AsStringView(ByteView(buf, sizeof(buf))));
}

Status TakeU8(std::string_view buf, size_t* pos, uint8_t* v) {
  if (*pos + 1 > buf.size()) return Status::Corruption("entry: truncated u8");
  *v = static_cast<uint8_t>(buf[*pos]);
  *pos += 1;
  return Status::Ok();
}
Status TakeU16(std::string_view buf, size_t* pos, uint16_t* v) {
  auto r = TryReadU16(AsByteView(buf), *pos, /*big_endian=*/false);
  if (!r.has_value()) return Status::Corruption("entry: truncated u16");
  *v = *r;
  *pos += 2;
  return Status::Ok();
}
Status TakeU32(std::string_view buf, size_t* pos, uint32_t* v) {
  auto r = TryReadU32(AsByteView(buf), *pos, /*big_endian=*/false);
  if (!r.has_value()) return Status::Corruption("entry: truncated u32");
  *v = *r;
  *pos += 4;
  return Status::Ok();
}
Status TakeU64(std::string_view buf, size_t* pos, uint64_t* v) {
  auto r = TryReadU64(AsByteView(buf), *pos, /*big_endian=*/false);
  if (!r.has_value()) return Status::Corruption("entry: truncated u64");
  *v = *r;
  *pos += 8;
  return Status::Ok();
}

void AppendHash(std::string* out, const PageHash& h) {
  out->append(AsStringView(ByteView(h.bytes.data(), h.bytes.size())));
}
Status TakeHash(std::string_view buf, size_t* pos, PageHash* h) {
  if (*pos + h->bytes.size() > buf.size()) {
    return Status::Corruption("entry: truncated hash");
  }
  for (size_t i = 0; i < h->bytes.size(); ++i) {
    h->bytes[i] = static_cast<uint8_t>(buf[*pos + i]);
  }
  *pos += h->bytes.size();
  return Status::Ok();
}

bool KnownPageTypeByte(uint8_t t) {
  return t == static_cast<uint8_t>(PageType::kData) ||
         t == static_cast<uint8_t>(PageType::kIndexLeaf) ||
         t == static_cast<uint8_t>(PageType::kIndexInternal) ||
         t == static_cast<uint8_t>(PageType::kFree);
}

}  // namespace

uint64_t PageHash::Prefix64() const { return Load64LE(bytes.data()); }

std::string PageHash::ToHex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

Result<PageHash> PageHash::FromHex(std::string_view hex) {
  PageHash h;
  if (hex.size() != h.bytes.size() * 2) {
    return Status::Corruption(
        StrFormat("page hash: want %zu hex chars, got %zu",
                  h.bytes.size() * 2, hex.size()));
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (size_t i = 0; i < h.bytes.size(); ++i) {
    int hi = nibble(hex[2 * i]);
    int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::Corruption("page hash: non-hex character");
    }
    h.bytes[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return h;
}

PageHash HashBytes(ByteView data) {
  uint64_t h1 = kMul1 ^ (static_cast<uint64_t>(data.size()) * kMul2);
  uint64_t h2 = kMul2 ^ (static_cast<uint64_t>(data.size()) + kMul1);
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 16) {
    uint64_t a = Load64LE(p);
    uint64_t b = Load64LE(p + 8);
    h1 = Rotl(h1 ^ (a * kMul1), 27) * kMul2 + 0x52DCE729u;
    h2 = Rotl(h2 ^ (b * kMul2), 31) * kMul1 + 0x38495AB5u;
    // Cross-feed so the lanes never degenerate into independent hashes of
    // alternating words.
    h1 += h2;
    h2 += h1;
    p += 16;
    n -= 16;
  }
  if (n > 0) {
    uint8_t tail[16] = {0};
    for (size_t i = 0; i < n; ++i) tail[i] = p[i];
    uint64_t a = Load64LE(tail);
    uint64_t b = Load64LE(tail + 8);
    h1 = Rotl(h1 ^ (a * kMul1), 27) * kMul2 + static_cast<uint64_t>(n);
    h2 = Rotl(h2 ^ (b * kMul2), 31) * kMul1 + static_cast<uint64_t>(n);
  }
  uint64_t f1 = Mix64(h1 ^ Mix64(h2));
  uint64_t f2 = Mix64(h2 ^ f1);
  PageHash out;
  for (size_t i = 0; i < 8; ++i) {
    out.bytes[i] = static_cast<uint8_t>(f1 >> (8 * i));
    out.bytes[8 + i] = static_cast<uint8_t>(f2 >> (8 * i));
  }
  return out;
}

Status AppendBlock(std::FILE* f, std::string_view payload) {
  uint8_t header[8];
  WriteU32(header, static_cast<uint32_t>(payload.size()),
           /*big_endian=*/false);
  WriteU32(header + 4, Crc32(AsByteView(payload)), /*big_endian=*/false);
  if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header) ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), f) != payload.size())) {
    return Status::IoError("snapshot block: write failed");
  }
  if (std::fflush(f) != 0) {
    return Status::IoError("snapshot block: flush failed");
  }
  return Status::Ok();
}

Result<bool> ReadBlock(std::FILE* f, std::string* payload) {
  uint8_t header[8];
  size_t n = std::fread(header, 1, sizeof(header), f);
  if (n == 0 && std::feof(f)) return false;
  if (n != sizeof(header)) {
    return Status::Corruption("snapshot block: truncated header");
  }
  uint32_t size = ReadU32(header, /*big_endian=*/false);
  uint32_t expected_crc = ReadU32(header + 4, /*big_endian=*/false);
  if (size > kMaxBlockPayload) {
    return Status::Corruption(
        StrFormat("snapshot block: implausible payload size %u", size));
  }
  payload->resize(size);
  if (size != 0 && std::fread(payload->data(), 1, size, f) != size) {
    return Status::Corruption("snapshot block: truncated payload");
  }
  uint32_t actual_crc = Crc32(AsByteView(*payload));
  if (actual_crc != expected_crc) {
    return Status::Corruption(
        StrFormat("snapshot block: checksum mismatch (stored %08x, computed "
                  "%08x)",
                  expected_crc, actual_crc));
  }
  return true;
}

void EncodePageEntry(const PageStoreEntry& entry, ByteView page,
                     std::string* out) {
  out->reserve(out->size() + 44 + page.size());
  AppendHash(out, entry.hash);
  AppendU32(out, entry.crc);
  AppendU32(out, entry.meta.page_id);
  AppendU32(out, entry.meta.object_id);
  AppendU8(out, static_cast<uint8_t>(entry.meta.type));
  AppendU16(out, entry.meta.record_count);
  AppendU32(out, entry.meta.next_page);
  AppendU64(out, entry.meta.lsn);
  AppendU8(out, entry.meta.checksum_ok ? 1 : 0);
  out->append(AsStringView(page));
}

Status DecodePageEntry(std::string_view payload, size_t page_size,
                       PageStoreEntry* entry, size_t* page_bytes) {
  size_t pos = 0;
  DBFA_RETURN_IF_ERROR(TakeHash(payload, &pos, &entry->hash));
  DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &entry->crc));
  DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &entry->meta.page_id));
  DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &entry->meta.object_id));
  uint8_t type = 0;
  DBFA_RETURN_IF_ERROR(TakeU8(payload, &pos, &type));
  if (!KnownPageTypeByte(type)) {
    return Status::Corruption(
        StrFormat("page entry: unknown page type 0x%02x", type));
  }
  entry->meta.type = static_cast<PageType>(type);
  DBFA_RETURN_IF_ERROR(TakeU16(payload, &pos, &entry->meta.record_count));
  DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &entry->meta.next_page));
  DBFA_RETURN_IF_ERROR(TakeU64(payload, &pos, &entry->meta.lsn));
  uint8_t checksum_ok = 0;
  DBFA_RETURN_IF_ERROR(TakeU8(payload, &pos, &checksum_ok));
  entry->meta.checksum_ok = checksum_ok != 0;
  entry->meta.image_offset = 0;
  if (payload.size() - pos != page_size) {
    return Status::Corruption(
        StrFormat("page entry: %zu page bytes, repository page size is %zu",
                  payload.size() - pos, page_size));
  }
  *page_bytes = pos;
  return Status::Ok();
}

void EncodeArtifactEntry(const ArtifactKey& key, const PageArtifacts& artifacts,
                         std::string* out) {
  AppendHash(out, key.page);
  AppendHash(out, key.context);
  AppendU32(out, static_cast<uint32_t>(artifacts.records.size()));
  for (const CarvedRecord& r : artifacts.records) {
    AppendU32(out, r.object_id);
    AppendU32(out, r.page_id);
    AppendU16(out, r.slot);
    AppendU8(out, r.status == RowStatus::kDeleted ? 1 : 0);
    AppendU8(out, r.typed ? 1 : 0);
    AppendU64(out, r.row_id);
    AppendU64(out, r.page_lsn);
    sql::AppendRecord(r.values, out);
  }
  AppendU32(out, static_cast<uint32_t>(artifacts.index_entries.size()));
  for (const CarvedIndexEntry& e : artifacts.index_entries) {
    AppendU32(out, e.object_id);
    AppendU32(out, e.page_id);
    AppendU8(out, e.leaf ? 1 : 0);
    AppendU32(out, e.pointer.page_id);
    AppendU16(out, e.pointer.slot);
    sql::AppendRecord(e.keys, out);
  }
}

Status DecodeArtifactKey(std::string_view payload, ArtifactKey* key) {
  size_t pos = 0;
  DBFA_RETURN_IF_ERROR(TakeHash(payload, &pos, &key->page));
  DBFA_RETURN_IF_ERROR(TakeHash(payload, &pos, &key->context));
  return Status::Ok();
}

Status DecodeArtifactEntry(std::string_view payload, ArtifactKey* key,
                           PageArtifacts* artifacts) {
  size_t pos = 0;
  DBFA_RETURN_IF_ERROR(TakeHash(payload, &pos, &key->page));
  DBFA_RETURN_IF_ERROR(TakeHash(payload, &pos, &key->context));
  uint32_t record_count = 0;
  DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &record_count));
  // 28 bytes of fixed fields plus a 4-byte empty record is the per-record
  // floor; cap the reserve so a corrupt count cannot balloon memory.
  if (record_count > payload.size() / 32 + 16) {
    return Status::Corruption(
        StrFormat("artifact entry: implausible record count %u",
                  record_count));
  }
  artifacts->records.clear();
  artifacts->records.reserve(record_count);
  for (uint32_t i = 0; i < record_count; ++i) {
    CarvedRecord r;
    r.page_index = 0;  // canonical; re-stamped at assembly
    DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &r.object_id));
    DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &r.page_id));
    DBFA_RETURN_IF_ERROR(TakeU16(payload, &pos, &r.slot));
    uint8_t status = 0;
    uint8_t typed = 0;
    DBFA_RETURN_IF_ERROR(TakeU8(payload, &pos, &status));
    DBFA_RETURN_IF_ERROR(TakeU8(payload, &pos, &typed));
    if (status > 1) {
      return Status::Corruption("artifact entry: bad row status");
    }
    r.status = status != 0 ? RowStatus::kDeleted : RowStatus::kActive;
    r.typed = typed != 0;
    DBFA_RETURN_IF_ERROR(TakeU64(payload, &pos, &r.row_id));
    DBFA_RETURN_IF_ERROR(TakeU64(payload, &pos, &r.page_lsn));
    DBFA_RETURN_IF_ERROR(sql::DecodeRecord(payload, &pos, &r.values));
    artifacts->records.push_back(std::move(r));
  }
  uint32_t entry_count = 0;
  DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &entry_count));
  if (entry_count > payload.size() / 16 + 16) {
    return Status::Corruption(
        StrFormat("artifact entry: implausible index entry count %u",
                  entry_count));
  }
  artifacts->index_entries.clear();
  artifacts->index_entries.reserve(entry_count);
  for (uint32_t i = 0; i < entry_count; ++i) {
    CarvedIndexEntry e;
    e.page_index = 0;  // canonical; re-stamped at assembly
    DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &e.object_id));
    DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &e.page_id));
    uint8_t leaf = 0;
    DBFA_RETURN_IF_ERROR(TakeU8(payload, &pos, &leaf));
    e.leaf = leaf != 0;
    DBFA_RETURN_IF_ERROR(TakeU32(payload, &pos, &e.pointer.page_id));
    DBFA_RETURN_IF_ERROR(TakeU16(payload, &pos, &e.pointer.slot));
    Record keys;
    DBFA_RETURN_IF_ERROR(sql::DecodeRecord(payload, &pos, &keys));
    e.keys = std::move(keys);
    artifacts->index_entries.push_back(std::move(e));
  }
  if (pos != payload.size()) {
    return Status::Corruption("artifact entry: trailing bytes");
  }
  return Status::Ok();
}

}  // namespace dbfa
