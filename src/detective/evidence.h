// Reproducible evidence packages (Section III-D, future work — built):
// "We will develop algorithms to collect the minimal subset of storage
// artifacts needed to reproduce our results. These collected storage
// artifacts must be sufficient to verify the security breach independent
// of our analysis. For example, such functionality is needed to present
// evidence in court."
//
// An EvidencePackage bundles: the minimal set of pages substantiating a
// DBDetective report (the pages holding each flagged record, plus every
// system-catalog page so schemas re-derive from the package alone), the
// carver configuration, and the claimed findings. Verify() re-carves the
// package from scratch and re-runs the detection against the audit log —
// succeeding only if every claimed finding reproduces independently.
#ifndef DBFA_DETECTIVE_EVIDENCE_H_
#define DBFA_DETECTIVE_EVIDENCE_H_

#include <string>
#include <vector>

#include "core/carver.h"
#include "detective/dbdetective.h"

namespace dbfa {

struct EvidencePackage {
  /// Carver configuration, serialized (the package is self-describing).
  std::string config_text;
  /// The minimal page subset, concatenated (each page carvable in place).
  Bytes image;
  /// One line per included page: "object_id page_id original_offset".
  std::vector<std::string> manifest;
  /// The claimed findings, rendered.
  std::vector<std::string> claimed;

  /// Writes evidence.img / manifest.txt / carver.conf / findings.txt.
  Status SaveTo(const std::string& dir) const;
  static Result<EvidencePackage> LoadFrom(const std::string& dir);
};

class EvidenceCollector {
 public:
  explicit EvidenceCollector(CarverConfig config)
      : config_(std::move(config)) {}

  /// Collects the minimal page subset for `findings` out of `full_image`
  /// (the image `carve` was produced from).
  Result<EvidencePackage> Collect(
      ByteView full_image, const CarveResult& carve,
      const std::vector<UnattributedModification>& findings) const;

  /// Independent verification: re-carves the package image with the
  /// embedded config and re-runs modification detection against `log`.
  /// Returns an error describing the first claimed finding that does not
  /// reproduce; OK when all do.
  static Status Verify(const EvidencePackage& package, const AuditLog& log);

 private:
  CarverConfig config_;
};

}  // namespace dbfa

#endif  // DBFA_DETECTIVE_EVIDENCE_H_
