// Detection-confidence ratings (Section III-D, future work — built): "for
// each detection type, we will compute a confidence rating based on a
// variety of environment variables (e.g., buffer cache size, volume of
// operations, and DBMS storage engine)."
//
// The rating answers: *how complete should we believe the unattributed-
// modification analysis to be?* It is a heuristic composed of signals
// recoverable from the carve and the log alone:
//   * residue ratio — carved deleted records vs. logged mutation
//     statements: far fewer carved than logged implies evidence has been
//     overwritten (aggressive page reuse / high churn), so *absence* of
//     findings is weak;
//   * defragmentation — VACUUM in the log destroys residue wholesale;
//   * corruption — pages failing checksums may hide artifacts;
//   * churn pressure — mutation statements per data page (the paper's
//     "volume of operations"): high churn shortens evidence lifetime.
#ifndef DBFA_DETECTIVE_CONFIDENCE_H_
#define DBFA_DETECTIVE_CONFIDENCE_H_

#include <string>
#include <vector>

#include "core/artifacts.h"
#include "engine/audit_log.h"

namespace dbfa {

struct ConfidenceReport {
  /// 0 (storage tells us nothing) .. 1 (residue fully intact).
  double score = 1.0;
  /// Human-readable factors with their multipliers.
  std::vector<std::string> factors;

  std::string ToString() const;
};

/// Rates the completeness of deleted-record evidence in `disk` relative to
/// the activity `log` records.
ConfidenceReport EstimateDetectionConfidence(const CarveResult& disk,
                                             const AuditLog& log);

}  // namespace dbfa

#endif  // DBFA_DETECTIVE_CONFIDENCE_H_
