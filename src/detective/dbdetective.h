// DBDetective (Section III-A): detect database activity missing from the
// audit log by cross-checking carved storage artifacts against the log.
//
// Modifications: every carved deleted record must be attributable to a
// logged DELETE/UPDATE/DROP whose predicate it satisfies (Figure 4's
// example: deleted (4,'Thomas','Austin') matches neither
// "City = 'Chicago'" nor "Name LIKE 'Chris%'" and is flagged); every
// carved active record must be attributable to a logged INSERT (or the
// result of a logged UPDATE).
//
// Reads: the buffer cache's content exhibits repeatable patterns — a full
// scan leaves a long run of consecutive heap pages, an index scan leaves
// index pages plus scattered heap pages. Cached patterns for tables no
// logged statement touches indicate unlogged SELECTs.
#ifndef DBFA_DETECTIVE_DBDETECTIVE_H_
#define DBFA_DETECTIVE_DBDETECTIVE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "engine/audit_log.h"
#include "metaquery/session.h"
#include "sql/statement.h"

namespace dbfa {

/// A storage artifact no log entry explains.
struct UnattributedModification {
  enum class Kind { kDelete, kInsert };
  Kind kind = Kind::kDelete;
  std::string table;
  Record values;
  uint32_t page_id = 0;
  uint16_t slot = 0;
  std::string reason;

  /// Identity key: the same artifact yields the same key regardless of
  /// which snapshot's delta surfaced it (the serve daemon's dedup and
  /// ResolveFinding both address findings by it).
  std::string Key() const;
  std::string ToString() const;
};

/// A cached access pattern no logged statement explains.
struct UnloggedAccess {
  std::string table;
  enum class Pattern { kFullScan, kIndexScan } pattern = Pattern::kFullScan;
  size_t cached_data_pages = 0;
  size_t cached_index_pages = 0;
  size_t longest_run = 0;  // longest consecutive page-id run

  std::string ToString() const;
};

struct DetectiveReport {
  std::vector<UnattributedModification> modifications;
  std::vector<UnloggedAccess> reads;
  /// Statistics for precision/recall accounting.
  size_t deleted_records_checked = 0;
  size_t active_records_checked = 0;
  /// Keeps interned record values in `modifications` valid after the
  /// analyzed carves are gone (StringRef lifetime rule,
  /// docs/columnar_memory.md).
  std::shared_ptr<const StringPool> string_pool;

  bool Clean() const { return modifications.empty() && reads.empty(); }
  std::string ToString() const;
};

/// Tuning knobs for DbDetective.
struct DetectiveOptions {
  /// When true (default), every logged DELETE/UPDATE predicate is bound to
  /// its table's carved schema once and logged statements are bucketed per
  /// table object before the record sweep, so matching never re-resolves
  /// column names per carved record. When false the original
  /// name-resolving tuple-at-a-time path runs — retained as a reference
  /// implementation for differential tests and benchmarks.
  bool prebind = true;

  /// Execution options for ad-hoc meta-query sessions built with
  /// MakeMetaQuerySession. Investigations over carves much larger than RAM
  /// set memory_budget_bytes here so SQL over the carved relations runs on
  /// the out-of-core engine (docs/spilling.md) instead of materializing
  /// everything in memory.
  MetaQueryOptions metaquery;
};

class DbDetective {
 public:
  /// `disk` is the carve of the storage image; `log` the recovered audit
  /// log; `ram` (optional) the carve of a memory snapshot for read
  /// detection.
  DbDetective(const CarveResult* disk, const AuditLog* log,
              const CarveResult* ram = nullptr,
              DetectiveOptions options = {})
      : disk_(disk), log_(log), ram_(ram), options_(options) {}

  Result<DetectiveReport> Analyze() const;

  /// Modification analysis only (Figure 4).
  Result<std::vector<UnattributedModification>> FindUnattributedModifications(
      size_t* deleted_checked = nullptr,
      size_t* active_checked = nullptr) const;

  /// Read analysis only (requires a RAM carve).
  Result<std::vector<UnloggedAccess>> FindUnloggedReads() const;

  /// Builds a meta-query session over the carves this detective was given:
  /// every schema-bearing disk table registers as "CarvDisk<Table>" and
  /// (when a RAM carve is present) "CarvRAM<Table>" — Section II-C's
  /// naming, so its cross-snapshot join example runs verbatim. The session
  /// inherits options().metaquery, including the out-of-core memory
  /// budget. Tables that could not be registered are reported through
  /// `skipped`.
  /// The session owns a worker-pool mutex and is therefore not movable;
  /// it is returned behind a unique_ptr.
  Result<std::unique_ptr<MetaQuerySession>> MakeMetaQuerySession(
      std::vector<std::string>* skipped = nullptr) const;

 private:
  Result<std::vector<UnattributedModification>>
  FindUnattributedModificationsPrebound(size_t* deleted_checked,
                                        size_t* active_checked) const;
  Result<std::vector<UnattributedModification>>
  FindUnattributedModificationsReference(size_t* deleted_checked,
                                         size_t* active_checked) const;

  const CarveResult* disk_;
  const AuditLog* log_;
  const CarveResult* ram_;
  DetectiveOptions options_;
};

}  // namespace dbfa

#endif  // DBFA_DETECTIVE_DBDETECTIVE_H_
