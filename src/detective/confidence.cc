#include "detective/confidence.h"

#include <algorithm>

#include "common/strings.h"
#include "sql/parser.h"

namespace dbfa {

std::string ConfidenceReport::ToString() const {
  std::string out = StrFormat("detection confidence %.2f\n", score);
  for (const std::string& f : factors) {
    out += "  - " + f + "\n";
  }
  return out;
}

ConfidenceReport EstimateDetectionConfidence(const CarveResult& disk,
                                             const AuditLog& log) {
  ConfidenceReport report;

  size_t logged_mutations = 0;
  size_t vacuums = 0;
  for (const AuditEntry& e : log.entries()) {
    auto stmt = sql::ParseStatement(e.sql);
    if (!stmt.ok()) continue;
    if (std::holds_alternative<sql::DeleteStmt>(*stmt) ||
        std::holds_alternative<sql::UpdateStmt>(*stmt)) {
      ++logged_mutations;
    }
    if (std::holds_alternative<sql::VacuumStmt>(*stmt)) ++vacuums;
  }
  size_t deleted_found = disk.CountRecords(RowStatus::kDeleted);
  size_t data_pages = 0;
  size_t bad_checksums = 0;
  for (const CarvedPage& p : disk.pages) {
    if (p.type == PageType::kData) ++data_pages;
    if (!p.checksum_ok) ++bad_checksums;
  }

  // Factor 1: residue ratio. Every logged DELETE/UPDATE should have left
  // at least one delete-marked record; a large shortfall means residue was
  // reclaimed and unlogged deletions may be invisible too.
  if (logged_mutations > 0) {
    double ratio =
        std::min(1.0, static_cast<double>(deleted_found) /
                          static_cast<double>(logged_mutations));
    // Soften: predicates matching zero rows legitimately leave nothing.
    double factor = 0.4 + 0.6 * ratio;
    report.score *= factor;
    report.factors.push_back(StrFormat(
        "residue ratio: %zu delete-marked records vs %zu logged mutation "
        "statements (x%.2f)",
        deleted_found, logged_mutations, factor));
  }

  // Factor 2: defragmentation destroys residue wholesale.
  if (vacuums > 0) {
    double factor = vacuums == 1 ? 0.3 : 0.15;
    report.score *= factor;
    report.factors.push_back(StrFormat(
        "%zu VACUUM statement(s) in the log: pre-vacuum deletions are "
        "unrecoverable (x%.2f)",
        vacuums, factor));
  }

  // Factor 3: corrupt pages may hide artifacts.
  if (bad_checksums > 0 && !disk.pages.empty()) {
    double damaged = static_cast<double>(bad_checksums) /
                     static_cast<double>(disk.pages.size());
    double factor = std::max(0.3, 1.0 - damaged);
    report.score *= factor;
    report.factors.push_back(StrFormat(
        "%zu of %zu pages fail their checksum (x%.2f)", bad_checksums,
        disk.pages.size(), factor));
  }

  // Factor 4: churn pressure — many mutations per data page shorten the
  // expected evidence lifetime (Section III-D's "volume of operations").
  if (data_pages > 0 && logged_mutations > 0) {
    double churn = static_cast<double>(logged_mutations) /
                   static_cast<double>(data_pages);
    if (churn > 20.0) {
      double factor = std::max(0.5, 20.0 / churn);
      report.score *= factor;
      report.factors.push_back(StrFormat(
          "high churn: %.1f mutation statements per data page (x%.2f)",
          churn, factor));
    }
  }

  if (report.factors.empty()) {
    report.factors.push_back("no degrading signals observed (x1.00)");
  }
  return report;
}

}  // namespace dbfa
