#include "detective/evidence.h"

#include <charconv>
#include <set>

#include "common/strings.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

/// Strict full-field numeric parse for manifest fields (no leading signs,
/// no trailing junk, no silent truncation).
bool ParseField(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

Status EvidencePackage::SaveTo(const std::string& dir) const {
  DBFA_RETURN_IF_ERROR(SaveImage(dir + "/evidence.img", image));
  std::string manifest_text = Join(manifest, "\n") + "\n";
  DBFA_RETURN_IF_ERROR(SaveImage(
      dir + "/manifest.txt",
      AsByteView(manifest_text)));
  DBFA_RETURN_IF_ERROR(SaveImage(
      dir + "/carver.conf",
      AsByteView(config_text)));
  std::string findings_text = Join(claimed, "\n") + "\n";
  return SaveImage(
      dir + "/findings.txt",
      AsByteView(findings_text));
}

Result<EvidencePackage> EvidencePackage::LoadFrom(const std::string& dir) {
  EvidencePackage package;
  DBFA_ASSIGN_OR_RETURN(package.image, LoadImage(dir + "/evidence.img"));

  // The config is authoritative for the page size, so validate it first —
  // everything else is checked against it. A package is evidence handed
  // across trust boundaries; nothing here may crash or silently misparse.
  DBFA_ASSIGN_OR_RETURN(Bytes config_bytes, LoadImage(dir + "/carver.conf"));
  package.config_text.assign(config_bytes.begin(), config_bytes.end());
  DBFA_ASSIGN_OR_RETURN(CarverConfig config,
                        ConfigFromText(package.config_text));
  size_t page_size = config.params.page_size;
  if (package.image.empty()) {
    return Status::Corruption("evidence package: evidence.img is empty");
  }
  if (package.image.size() % page_size != 0) {
    return Status::Corruption(StrFormat(
        "evidence package: evidence.img is %zu bytes, not a multiple of the "
        "config page size %zu (truncated image or page-size mismatch)",
        package.image.size(), page_size));
  }

  DBFA_ASSIGN_OR_RETURN(Bytes manifest_bytes,
                        LoadImage(dir + "/manifest.txt"));
  for (const std::string& line :
       Split(std::string(manifest_bytes.begin(), manifest_bytes.end()),
             '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    // Each line must be exactly "object_id page_id original_offset".
    std::vector<std::string> fields;
    for (const std::string& f : Split(std::string(trimmed), ' ')) {
      if (!f.empty()) fields.push_back(f);
    }
    uint64_t object_id = 0;
    uint64_t page_id = 0;
    uint64_t original_offset = 0;
    if (fields.size() != 3 || !ParseField(fields[0], &object_id) ||
        !ParseField(fields[1], &page_id) ||
        !ParseField(fields[2], &original_offset) || object_id == 0 ||
        object_id > 0xFFFFFFFFull || page_id == 0 ||
        page_id > 0xFFFFFFFFull) {
      return Status::Corruption(
          "evidence package: malformed manifest.txt line: " +
          std::string(trimmed));
    }
    package.manifest.push_back(line);
  }
  if (package.manifest.size() != package.image.size() / page_size) {
    return Status::Corruption(StrFormat(
        "evidence package: manifest.txt lists %zu pages but evidence.img "
        "holds %zu",
        package.manifest.size(), package.image.size() / page_size));
  }

  DBFA_ASSIGN_OR_RETURN(Bytes findings_bytes,
                        LoadImage(dir + "/findings.txt"));
  for (const std::string& line :
       Split(std::string(findings_bytes.begin(), findings_bytes.end()),
             '\n')) {
    if (!Trim(line).empty()) package.claimed.push_back(line);
  }
  return package;
}

Result<EvidencePackage> EvidenceCollector::Collect(
    ByteView full_image, const CarveResult& carve,
    const std::vector<UnattributedModification>& findings) const {
  // Pages to include: every catalog page (schema provenance) + the page of
  // each flagged record.
  std::set<std::pair<uint32_t, uint32_t>> wanted;  // (object, page)
  for (const CarvedPage& p : carve.pages) {
    if (p.object_id == config_.catalog_object_id &&
        p.type == PageType::kData) {
      wanted.insert({p.object_id, p.page_id});
    }
  }
  for (const UnattributedModification& f : findings) {
    uint32_t object_id = carve.ObjectIdByName(f.table);
    if (object_id == 0) {
      return Status::NotFound("finding references unknown table " + f.table);
    }
    wanted.insert({object_id, f.page_id});
  }

  EvidencePackage package;
  package.config_text = ConfigToText(config_);
  for (const CarvedPage& p : carve.pages) {
    if (wanted.count({p.object_id, p.page_id}) == 0) continue;
    ByteView page = full_image.Slice(p.image_offset,
                                     config_.params.page_size);
    package.image.insert(package.image.end(), page.data(),
                         page.data() + page.size());
    package.manifest.push_back(StrFormat("%u %u %zu", p.object_id,
                                         p.page_id, p.image_offset));
  }
  for (const UnattributedModification& f : findings) {
    package.claimed.push_back(f.ToString());
  }
  if (package.image.empty()) {
    return Status::FailedPrecondition("no pages selected for the package");
  }
  return package;
}

Status EvidenceCollector::Verify(const EvidencePackage& package,
                                 const AuditLog& log) {
  DBFA_ASSIGN_OR_RETURN(CarverConfig config,
                        ConfigFromText(package.config_text));
  CarveOptions options;
  options.scan_step = config.params.page_size;  // package pages are packed
  Carver carver(config, options);
  DBFA_ASSIGN_OR_RETURN(CarveResult carve, carver.Carve(package.image));
  DbDetective detective(&carve, &log);
  DBFA_ASSIGN_OR_RETURN(auto reproduced,
                        detective.FindUnattributedModifications());
  std::set<std::string> reproduced_set;
  for (const UnattributedModification& m : reproduced) {
    reproduced_set.insert(m.ToString());
  }
  for (const std::string& claim : package.claimed) {
    if (reproduced_set.count(claim) == 0) {
      return Status::FailedPrecondition(
          "claimed finding did not reproduce from the package alone: " +
          claim);
    }
  }
  return Status::Ok();
}

}  // namespace dbfa
