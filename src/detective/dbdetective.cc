#include "detective/dbdetective.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "sql/parser.h"

namespace dbfa {
namespace {

/// Logged statements bucketed per table.
struct TableLog {
  std::vector<const sql::DeleteStmt*> deletes;
  std::vector<const sql::UpdateStmt*> updates;
  std::vector<const sql::InsertStmt*> inserts;
  bool dropped = false;
  bool mentioned = false;  // any logged statement touches the table
};

std::string TableKeyOf(const std::string& name) { return ToLower(name); }

}  // namespace

std::string UnattributedModification::ToString() const {
  return StrFormat("[%s] %s %s at page %u slot %u — %s",
                   kind == Kind::kDelete ? "unattributed delete"
                                         : "unattributed insert",
                   table.c_str(), RecordToString(values).c_str(), page_id,
                   slot, reason.c_str());
}

std::string UnloggedAccess::ToString() const {
  return StrFormat(
      "[unlogged read] %s: %s pattern (%zu data pages, %zu index pages, "
      "longest run %zu) with no logged statement touching the table",
      table.c_str(),
      pattern == Pattern::kFullScan ? "full-scan" : "index-scan",
      cached_data_pages, cached_index_pages, longest_run);
}

std::string DetectiveReport::ToString() const {
  std::string out = StrFormat(
      "DBDetective report: %zu unattributed modifications, %zu unlogged "
      "reads (checked %zu deleted / %zu active records)\n",
      modifications.size(), reads.size(), deleted_records_checked,
      active_records_checked);
  for (const auto& m : modifications) {
    out += "  " + m.ToString() + "\n";
  }
  for (const auto& r : reads) {
    out += "  " + r.ToString() + "\n";
  }
  return out;
}

Result<std::vector<UnattributedModification>>
DbDetective::FindUnattributedModifications(size_t* deleted_checked,
                                           size_t* active_checked) const {
  // Parse the log once; keep statement storage alive alongside pointers.
  std::vector<sql::Statement> statements;
  statements.reserve(log_->entries().size());
  std::map<std::string, TableLog> per_table;
  for (const AuditEntry& entry : log_->entries()) {
    auto stmt = sql::ParseStatement(entry.sql);
    if (!stmt.ok()) continue;  // unparseable entries cannot attribute
    statements.push_back(std::move(stmt).value());
  }
  for (const sql::Statement& stmt : statements) {
    if (const auto* del = std::get_if<sql::DeleteStmt>(&stmt)) {
      per_table[TableKeyOf(del->table)].deletes.push_back(del);
      per_table[TableKeyOf(del->table)].mentioned = true;
    } else if (const auto* up = std::get_if<sql::UpdateStmt>(&stmt)) {
      per_table[TableKeyOf(up->table)].updates.push_back(up);
      per_table[TableKeyOf(up->table)].mentioned = true;
    } else if (const auto* ins = std::get_if<sql::InsertStmt>(&stmt)) {
      per_table[TableKeyOf(ins->table)].inserts.push_back(ins);
      per_table[TableKeyOf(ins->table)].mentioned = true;
    } else if (const auto* drop = std::get_if<sql::DropTableStmt>(&stmt)) {
      per_table[TableKeyOf(drop->table)].dropped = true;
      per_table[TableKeyOf(drop->table)].mentioned = true;
    }
  }

  std::vector<UnattributedModification> out;
  size_t deleted_count = 0;
  size_t active_count = 0;
  for (const CarvedRecord& r : disk_->records) {
    auto schema_it = disk_->schemas.find(r.object_id);
    if (schema_it == disk_->schemas.end()) continue;
    const TableSchema& schema = schema_it->second;
    if (!r.typed || r.values.size() != schema.columns.size()) continue;
    std::vector<std::string> columns;
    for (const Column& c : schema.columns) columns.push_back(c.name);
    sql::RecordBinding binding(columns, r.values, schema.name);
    const TableLog& tlog = per_table[TableKeyOf(schema.name)];

    if (r.status == RowStatus::kDeleted) {
      ++deleted_count;
      bool attributed = tlog.dropped;
      for (const sql::DeleteStmt* del : tlog.deletes) {
        if (attributed) break;
        if (del->where == nullptr) {
          attributed = true;
          break;
        }
        auto match = sql::EvalPredicate(*del->where, binding);
        if (match.ok() && *match) attributed = true;
      }
      // The pre-image of a logged UPDATE is also a legitimate deleted
      // record: its values satisfy the UPDATE's predicate.
      for (const sql::UpdateStmt* up : tlog.updates) {
        if (attributed) break;
        if (up->where == nullptr) {
          attributed = true;
          break;
        }
        auto match = sql::EvalPredicate(*up->where, binding);
        if (match.ok() && *match) attributed = true;
      }
      if (!attributed) {
        out.push_back({UnattributedModification::Kind::kDelete, schema.name,
                       r.values, r.page_id, r.slot,
                       "no logged DELETE/UPDATE predicate matches this "
                       "deleted record"});
      }
    } else {
      ++active_count;
      bool attributed = false;
      for (const sql::InsertStmt* ins : tlog.inserts) {
        if (attributed) break;
        for (const Record& row : ins->rows) {
          if (CompareRecords(row, r.values) == 0) {
            attributed = true;
            break;
          }
        }
      }
      // The post-image of a logged UPDATE: all SET values must be present.
      for (const sql::UpdateStmt* up : tlog.updates) {
        if (attributed) break;
        bool consistent = !up->assignments.empty();
        for (const auto& [col, value] : up->assignments) {
          int ci = schema.ColumnIndex(col);
          if (ci < 0 || !(r.values[ci] == value)) {
            consistent = false;
            break;
          }
        }
        if (consistent) attributed = true;
      }
      if (!attributed) {
        out.push_back({UnattributedModification::Kind::kInsert, schema.name,
                       r.values, r.page_id, r.slot,
                       "no logged INSERT/UPDATE produces this record"});
      }
    }
  }
  if (deleted_checked != nullptr) *deleted_checked = deleted_count;
  if (active_checked != nullptr) *active_checked = active_count;
  return out;
}

Result<std::vector<UnloggedAccess>> DbDetective::FindUnloggedReads() const {
  std::vector<UnloggedAccess> out;
  if (ram_ == nullptr) return out;

  // Tables a logged statement touches (any statement kind).
  std::set<std::string> mentioned;
  for (const AuditEntry& entry : log_->entries()) {
    auto stmt = sql::ParseStatement(entry.sql);
    if (!stmt.ok()) continue;
    if (const auto* sel = std::get_if<sql::SelectStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(sel->from.table));
      for (const sql::JoinClause& j : sel->joins) {
        mentioned.insert(TableKeyOf(j.table.table));
      }
    } else if (const auto* del = std::get_if<sql::DeleteStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(del->table));
    } else if (const auto* up = std::get_if<sql::UpdateStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(up->table));
    } else if (const auto* ins = std::get_if<sql::InsertStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(ins->table));
    } else if (const auto* ct = std::get_if<sql::CreateTableStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(ct->schema.name));
    } else if (const auto* ci = std::get_if<sql::CreateIndexStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(ci->table));
    } else if (const auto* vac = std::get_if<sql::VacuumStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(vac->table));
    } else if (const auto* drop = std::get_if<sql::DropTableStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(drop->table));
    }
  }

  // Cached pages per table object (from the RAM carve) and index-page
  // counts attributed to the owning table via carved index metadata.
  std::map<uint32_t, std::set<uint32_t>> cached_data;   // table obj -> pages
  std::map<uint32_t, size_t> cached_index;              // table obj -> count
  for (const CarvedPage& p : ram_->pages) {
    if (p.type == PageType::kData) {
      cached_data[p.object_id].insert(p.page_id);
    } else if (p.type == PageType::kIndexLeaf ||
               p.type == PageType::kIndexInternal) {
      auto meta = disk_->indexes.find(p.object_id);
      if (meta != disk_->indexes.end()) {
        ++cached_index[meta->second.table_object_id];
      }
    }
  }
  // Total data pages per object on disk (for scan-coverage ratios).
  std::map<uint32_t, size_t> disk_pages;
  for (const CarvedPage& p : disk_->pages) {
    if (p.type == PageType::kData) ++disk_pages[p.object_id];
  }

  for (const auto& [object_id, schema] : disk_->schemas) {
    if (disk_->dropped_objects.count(object_id) != 0) continue;
    auto data_it = cached_data.find(object_id);
    size_t data_count =
        data_it == cached_data.end() ? 0 : data_it->second.size();
    size_t index_count = cached_index.count(object_id) != 0
                             ? cached_index[object_id]
                             : 0;
    if (data_count == 0 && index_count == 0) continue;
    if (mentioned.count(TableKeyOf(schema.name)) != 0) continue;

    // Classify the caching pattern.
    size_t longest_run = 0;
    if (data_it != cached_data.end()) {
      size_t run = 0;
      uint32_t prev = 0;
      for (uint32_t page_id : data_it->second) {  // set: ascending
        run = (prev != 0 && page_id == prev + 1) ? run + 1 : 1;
        longest_run = std::max(longest_run, run);
        prev = page_id;
      }
    }
    size_t total = disk_pages.count(object_id) != 0 ? disk_pages[object_id]
                                                    : data_count;
    UnloggedAccess access;
    access.table = schema.name;
    access.cached_data_pages = data_count;
    access.cached_index_pages = index_count;
    access.longest_run = longest_run;
    bool full_scan = total > 0 && longest_run * 10 >= total * 6;
    access.pattern = full_scan && index_count == 0
                         ? UnloggedAccess::Pattern::kFullScan
                         : UnloggedAccess::Pattern::kIndexScan;
    out.push_back(std::move(access));
  }
  return out;
}

Result<DetectiveReport> DbDetective::Analyze() const {
  DetectiveReport report;
  DBFA_ASSIGN_OR_RETURN(
      report.modifications,
      FindUnattributedModifications(&report.deleted_records_checked,
                                    &report.active_records_checked));
  DBFA_ASSIGN_OR_RETURN(report.reads, FindUnloggedReads());
  return report;
}

}  // namespace dbfa
