#include "detective/dbdetective.h"

#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "common/strings.h"
#include "sql/bound_expr.h"
#include "sql/parser.h"

namespace dbfa {
namespace {

/// Logged statements bucketed per table.
struct TableLog {
  std::vector<const sql::DeleteStmt*> deletes;
  std::vector<const sql::UpdateStmt*> updates;
  std::vector<const sql::InsertStmt*> inserts;
  bool dropped = false;
  bool mentioned = false;  // any logged statement touches the table
};

std::string TableKeyOf(const std::string& name) { return ToLower(name); }

/// Parses every log entry and buckets the modification statements per
/// (lower-cased) table name. `statements` owns the parsed statements the
/// bucket pointers reference.
std::map<std::string, TableLog> BucketLogByTable(
    const AuditLog& log, std::vector<sql::Statement>* statements) {
  statements->reserve(log.entries().size());
  for (const AuditEntry& entry : log.entries()) {
    auto stmt = sql::ParseStatement(entry.sql);
    if (!stmt.ok()) continue;  // unparseable entries cannot attribute
    statements->push_back(std::move(stmt).value());
  }
  std::map<std::string, TableLog> per_table;
  for (const sql::Statement& stmt : *statements) {
    if (const auto* del = std::get_if<sql::DeleteStmt>(&stmt)) {
      per_table[TableKeyOf(del->table)].deletes.push_back(del);
      per_table[TableKeyOf(del->table)].mentioned = true;
    } else if (const auto* up = std::get_if<sql::UpdateStmt>(&stmt)) {
      per_table[TableKeyOf(up->table)].updates.push_back(up);
      per_table[TableKeyOf(up->table)].mentioned = true;
    } else if (const auto* ins = std::get_if<sql::InsertStmt>(&stmt)) {
      per_table[TableKeyOf(ins->table)].inserts.push_back(ins);
      per_table[TableKeyOf(ins->table)].mentioned = true;
    } else if (const auto* drop = std::get_if<sql::DropTableStmt>(&stmt)) {
      per_table[TableKeyOf(drop->table)].dropped = true;
      per_table[TableKeyOf(drop->table)].mentioned = true;
    }
  }
  return per_table;
}

/// A table's logged statements compiled against its carved schema: WHERE
/// predicates bound to flat column indices, INSERT rows hashed, UPDATE
/// post-images resolved to column indices. Built once per table object;
/// the record sweep then never resolves a name or walks an unrelated
/// statement.
struct BoundTableLog {
  bool dropped = false;
  bool delete_all = false;  // a logged DELETE/UPDATE without WHERE
  // Predicates that bound successfully; unbindable ones can never match a
  // carved record (the reference path's per-row eval error) and are
  // dropped at compile time.
  std::vector<sql::BoundExprPtr> delete_preds;  // DELETE + UPDATE pre-image
  // INSERT row lookup: hash of the record -> candidate rows.
  std::unordered_map<size_t, std::vector<const Record*>> insert_rows;
  // UPDATE post-images with every SET column resolved.
  std::vector<std::vector<std::pair<size_t, const Value*>>> update_images;
};

BoundTableLog CompileTableLog(const TableLog& tlog,
                              const TableSchema& schema) {
  BoundTableLog bound;
  bound.dropped = tlog.dropped;
  std::vector<std::string> columns;
  columns.reserve(schema.columns.size());
  for (const Column& c : schema.columns) columns.push_back(c.name);
  sql::ColumnResolver resolver =
      sql::MakeSchemaResolver(std::move(columns), schema.name);

  auto compile_pred = [&](const sql::ExprPtr& where) {
    if (where == nullptr) {
      bound.delete_all = true;
      return;
    }
    auto b = sql::BindExpr(*where, resolver);
    if (b.ok()) bound.delete_preds.push_back(std::move(b).value());
  };
  for (const sql::DeleteStmt* del : tlog.deletes) compile_pred(del->where);
  // The pre-image of a logged UPDATE is also a legitimate deleted record:
  // its values satisfy the UPDATE's predicate.
  for (const sql::UpdateStmt* up : tlog.updates) compile_pred(up->where);

  for (const sql::InsertStmt* ins : tlog.inserts) {
    for (const Record& row : ins->rows) {
      bound.insert_rows[HashRecord(row)].push_back(&row);
    }
  }
  for (const sql::UpdateStmt* up : tlog.updates) {
    if (up->assignments.empty()) continue;
    std::vector<std::pair<size_t, const Value*>> image;
    image.reserve(up->assignments.size());
    bool ok = true;
    for (const auto& [col, value] : up->assignments) {
      int ci = schema.ColumnIndex(col);
      if (ci < 0) {
        ok = false;  // unresolvable SET column: post-image never matches
        break;
      }
      image.emplace_back(static_cast<size_t>(ci), &value);
    }
    if (ok) bound.update_images.push_back(std::move(image));
  }
  return bound;
}

}  // namespace

std::string UnattributedModification::Key() const {
  return StrFormat("%d|%s|%s", static_cast<int>(kind), table.c_str(),
                   RecordToString(values).c_str());
}

std::string UnattributedModification::ToString() const {
  return StrFormat("[%s] %s %s at page %u slot %u — %s",
                   kind == Kind::kDelete ? "unattributed delete"
                                         : "unattributed insert",
                   table.c_str(), RecordToString(values).c_str(), page_id,
                   slot, reason.c_str());
}

std::string UnloggedAccess::ToString() const {
  return StrFormat(
      "[unlogged read] %s: %s pattern (%zu data pages, %zu index pages, "
      "longest run %zu) with no logged statement touching the table",
      table.c_str(),
      pattern == Pattern::kFullScan ? "full-scan" : "index-scan",
      cached_data_pages, cached_index_pages, longest_run);
}

std::string DetectiveReport::ToString() const {
  std::string out = StrFormat(
      "DBDetective report: %zu unattributed modifications, %zu unlogged "
      "reads (checked %zu deleted / %zu active records)\n",
      modifications.size(), reads.size(), deleted_records_checked,
      active_records_checked);
  for (const auto& m : modifications) {
    out += "  " + m.ToString() + "\n";
  }
  for (const auto& r : reads) {
    out += "  " + r.ToString() + "\n";
  }
  return out;
}

Result<std::vector<UnattributedModification>>
DbDetective::FindUnattributedModifications(size_t* deleted_checked,
                                           size_t* active_checked) const {
  if (options_.prebind) {
    return FindUnattributedModificationsPrebound(deleted_checked,
                                                 active_checked);
  }
  return FindUnattributedModificationsReference(deleted_checked,
                                                active_checked);
}

Result<std::vector<UnattributedModification>>
DbDetective::FindUnattributedModificationsPrebound(
    size_t* deleted_checked, size_t* active_checked) const {
  std::vector<sql::Statement> statements;
  std::map<std::string, TableLog> per_table =
      BucketLogByTable(*log_, &statements);

  // Compile each carved table's logged statements once, keyed by the
  // record's object id so the sweep below does no string work at all.
  std::unordered_map<uint32_t, BoundTableLog> bound_logs;
  for (const auto& [object_id, schema] : disk_->schemas) {
    bound_logs.emplace(object_id,
                       CompileTableLog(per_table[TableKeyOf(schema.name)],
                                       schema));
  }

  std::vector<UnattributedModification> out;
  size_t deleted_count = 0;
  size_t active_count = 0;
  for (const CarvedRecord& r : disk_->records) {
    auto schema_it = disk_->schemas.find(r.object_id);
    if (schema_it == disk_->schemas.end()) continue;
    const TableSchema& schema = schema_it->second;
    if (!r.typed || r.values.size() != schema.columns.size()) continue;
    const BoundTableLog& tlog = bound_logs.find(r.object_id)->second;

    if (r.status == RowStatus::kDeleted) {
      ++deleted_count;
      bool attributed = tlog.dropped || tlog.delete_all;
      for (const sql::BoundExprPtr& pred : tlog.delete_preds) {
        if (attributed) break;
        auto match = sql::EvalBoundPredicate(*pred, r.values);
        if (match.ok() && *match) attributed = true;
      }
      if (!attributed) {
        out.push_back({UnattributedModification::Kind::kDelete, schema.name,
                       r.values, r.page_id, r.slot,
                       "no logged DELETE/UPDATE predicate matches this "
                       "deleted record"});
      }
    } else {
      ++active_count;
      bool attributed = false;
      auto bucket = tlog.insert_rows.find(HashRecord(r.values));
      if (bucket != tlog.insert_rows.end()) {
        for (const Record* row : bucket->second) {
          if (CompareRecords(*row, r.values) == 0) {
            attributed = true;
            break;
          }
        }
      }
      // The post-image of a logged UPDATE: all SET values must be present.
      for (const auto& image : tlog.update_images) {
        if (attributed) break;
        bool consistent = true;
        for (const auto& [ci, value] : image) {
          if (!(r.values[ci] == *value)) {
            consistent = false;
            break;
          }
        }
        if (consistent) attributed = true;
      }
      if (!attributed) {
        out.push_back({UnattributedModification::Kind::kInsert, schema.name,
                       r.values, r.page_id, r.slot,
                       "no logged INSERT/UPDATE produces this record"});
      }
    }
  }
  if (deleted_checked != nullptr) *deleted_checked = deleted_count;
  if (active_checked != nullptr) *active_checked = active_count;
  return out;
}

Result<std::vector<UnattributedModification>>
DbDetective::FindUnattributedModificationsReference(
    size_t* deleted_checked, size_t* active_checked) const {
  // Parse the log once; keep statement storage alive alongside pointers.
  std::vector<sql::Statement> statements;
  std::map<std::string, TableLog> per_table =
      BucketLogByTable(*log_, &statements);

  std::vector<UnattributedModification> out;
  size_t deleted_count = 0;
  size_t active_count = 0;
  for (const CarvedRecord& r : disk_->records) {
    auto schema_it = disk_->schemas.find(r.object_id);
    if (schema_it == disk_->schemas.end()) continue;
    const TableSchema& schema = schema_it->second;
    if (!r.typed || r.values.size() != schema.columns.size()) continue;
    std::vector<std::string> columns;
    for (const Column& c : schema.columns) columns.push_back(c.name);
    sql::RecordBinding binding(columns, r.values, schema.name);
    const TableLog& tlog = per_table[TableKeyOf(schema.name)];

    if (r.status == RowStatus::kDeleted) {
      ++deleted_count;
      bool attributed = tlog.dropped;
      for (const sql::DeleteStmt* del : tlog.deletes) {
        if (attributed) break;
        if (del->where == nullptr) {
          attributed = true;
          break;
        }
        auto match = sql::EvalPredicate(*del->where, binding);
        if (match.ok() && *match) attributed = true;
      }
      // The pre-image of a logged UPDATE is also a legitimate deleted
      // record: its values satisfy the UPDATE's predicate.
      for (const sql::UpdateStmt* up : tlog.updates) {
        if (attributed) break;
        if (up->where == nullptr) {
          attributed = true;
          break;
        }
        auto match = sql::EvalPredicate(*up->where, binding);
        if (match.ok() && *match) attributed = true;
      }
      if (!attributed) {
        out.push_back({UnattributedModification::Kind::kDelete, schema.name,
                       r.values, r.page_id, r.slot,
                       "no logged DELETE/UPDATE predicate matches this "
                       "deleted record"});
      }
    } else {
      ++active_count;
      bool attributed = false;
      for (const sql::InsertStmt* ins : tlog.inserts) {
        if (attributed) break;
        for (const Record& row : ins->rows) {
          if (CompareRecords(row, r.values) == 0) {
            attributed = true;
            break;
          }
        }
      }
      // The post-image of a logged UPDATE: all SET values must be present.
      for (const sql::UpdateStmt* up : tlog.updates) {
        if (attributed) break;
        bool consistent = !up->assignments.empty();
        for (const auto& [col, value] : up->assignments) {
          int ci = schema.ColumnIndex(col);
          if (ci < 0 || !(r.values[ci] == value)) {
            consistent = false;
            break;
          }
        }
        if (consistent) attributed = true;
      }
      if (!attributed) {
        out.push_back({UnattributedModification::Kind::kInsert, schema.name,
                       r.values, r.page_id, r.slot,
                       "no logged INSERT/UPDATE produces this record"});
      }
    }
  }
  if (deleted_checked != nullptr) *deleted_checked = deleted_count;
  if (active_checked != nullptr) *active_checked = active_count;
  return out;
}

Result<std::vector<UnloggedAccess>> DbDetective::FindUnloggedReads() const {
  std::vector<UnloggedAccess> out;
  if (ram_ == nullptr) return out;

  // Tables a logged statement touches (any statement kind).
  std::set<std::string> mentioned;
  for (const AuditEntry& entry : log_->entries()) {
    auto stmt = sql::ParseStatement(entry.sql);
    if (!stmt.ok()) continue;
    if (const auto* sel = std::get_if<sql::SelectStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(sel->from.table));
      for (const sql::JoinClause& j : sel->joins) {
        mentioned.insert(TableKeyOf(j.table.table));
      }
    } else if (const auto* del = std::get_if<sql::DeleteStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(del->table));
    } else if (const auto* up = std::get_if<sql::UpdateStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(up->table));
    } else if (const auto* ins = std::get_if<sql::InsertStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(ins->table));
    } else if (const auto* ct = std::get_if<sql::CreateTableStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(ct->schema.name));
    } else if (const auto* ci = std::get_if<sql::CreateIndexStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(ci->table));
    } else if (const auto* vac = std::get_if<sql::VacuumStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(vac->table));
    } else if (const auto* drop = std::get_if<sql::DropTableStmt>(&*stmt)) {
      mentioned.insert(TableKeyOf(drop->table));
    }
  }

  // Cached pages per table object (from the RAM carve) and index-page
  // counts attributed to the owning table via carved index metadata.
  std::map<uint32_t, std::set<uint32_t>> cached_data;   // table obj -> pages
  std::map<uint32_t, size_t> cached_index;              // table obj -> count
  for (const CarvedPage& p : ram_->pages) {
    if (p.type == PageType::kData) {
      cached_data[p.object_id].insert(p.page_id);
    } else if (p.type == PageType::kIndexLeaf ||
               p.type == PageType::kIndexInternal) {
      auto meta = disk_->indexes.find(p.object_id);
      if (meta != disk_->indexes.end()) {
        ++cached_index[meta->second.table_object_id];
      }
    }
  }
  // Total data pages per object on disk (for scan-coverage ratios).
  std::map<uint32_t, size_t> disk_pages;
  for (const CarvedPage& p : disk_->pages) {
    if (p.type == PageType::kData) ++disk_pages[p.object_id];
  }

  for (const auto& [object_id, schema] : disk_->schemas) {
    if (disk_->dropped_objects.count(object_id) != 0) continue;
    auto data_it = cached_data.find(object_id);
    size_t data_count =
        data_it == cached_data.end() ? 0 : data_it->second.size();
    size_t index_count = cached_index.count(object_id) != 0
                             ? cached_index[object_id]
                             : 0;
    if (data_count == 0 && index_count == 0) continue;
    if (mentioned.count(TableKeyOf(schema.name)) != 0) continue;

    // Classify the caching pattern.
    size_t longest_run = 0;
    if (data_it != cached_data.end()) {
      size_t run = 0;
      uint32_t prev = 0;
      for (uint32_t page_id : data_it->second) {  // set: ascending
        run = (prev != 0 && page_id == prev + 1) ? run + 1 : 1;
        longest_run = std::max(longest_run, run);
        prev = page_id;
      }
    }
    size_t total = disk_pages.count(object_id) != 0 ? disk_pages[object_id]
                                                    : data_count;
    UnloggedAccess access;
    access.table = schema.name;
    access.cached_data_pages = data_count;
    access.cached_index_pages = index_count;
    access.longest_run = longest_run;
    bool full_scan = total > 0 && longest_run * 10 >= total * 6;
    access.pattern = full_scan && index_count == 0
                         ? UnloggedAccess::Pattern::kFullScan
                         : UnloggedAccess::Pattern::kIndexScan;
    out.push_back(std::move(access));
  }
  return out;
}

Result<std::unique_ptr<MetaQuerySession>> DbDetective::MakeMetaQuerySession(
    std::vector<std::string>* skipped) const {
  auto session = std::make_unique<MetaQuerySession>(options_.metaquery);
  if (disk_ != nullptr) {
    DBFA_RETURN_IF_ERROR(session->RegisterCarve(*disk_, "CarvDisk", skipped));
  }
  if (ram_ != nullptr) {
    DBFA_RETURN_IF_ERROR(session->RegisterCarve(*ram_, "CarvRAM", skipped));
  }
  return session;
}

Result<DetectiveReport> DbDetective::Analyze() const {
  DetectiveReport report;
  if (disk_ != nullptr) report.string_pool = disk_->string_pool;
  DBFA_ASSIGN_OR_RETURN(
      report.modifications,
      FindUnattributedModifications(&report.deleted_records_checked,
                                    &report.active_records_checked));
  DBFA_ASSIGN_OR_RETURN(report.reads, FindUnloggedReads());
  return report;
}

}  // namespace dbfa
