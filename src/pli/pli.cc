#include "pli/pli.h"

#include <map>
#include <set>

namespace dbfa {

PhysicalLocationIndex PhysicalLocationIndex::FromOrderedRows(
    const std::vector<std::pair<uint32_t, Value>>& page_values,
    size_t pages_per_bucket) {
  PhysicalLocationIndex pli;
  if (pages_per_bucket == 0) pages_per_bucket = 1;
  std::set<uint32_t> all_pages;
  PliBucket current;
  std::set<uint32_t> current_pages;
  auto flush = [&]() {
    if (current.rows == 0) return;
    current.pages.assign(current_pages.begin(), current_pages.end());
    pli.buckets_.push_back(std::move(current));
    current = PliBucket();
    current_pages.clear();
  };
  for (const auto& [page_id, value] : page_values) {
    if (value.is_null()) continue;
    if (!current_pages.empty() && current_pages.count(page_id) == 0 &&
        current_pages.size() >= pages_per_bucket) {
      flush();
    }
    if (current.rows == 0) {
      current.min_value = value;
      current.max_value = value;
    } else {
      if (Value::Compare(value, current.min_value) < 0) {
        current.min_value = value;
      }
      if (Value::Compare(value, current.max_value) > 0) {
        current.max_value = value;
      }
    }
    ++current.rows;
    ++pli.total_rows_;
    current_pages.insert(page_id);
    all_pages.insert(page_id);
  }
  flush();
  pli.total_pages_ = all_pages.size();
  return pli;
}

Result<PhysicalLocationIndex> PhysicalLocationIndex::Build(
    const CarveResult& carve, const std::string& table,
    const std::string& column, size_t pages_per_bucket) {
  const TableSchema* schema = carve.SchemaByName(table);
  if (schema == nullptr) {
    return Status::NotFound("no carved schema for table: " + table);
  }
  int ci = schema->ColumnIndex(column);
  if (ci < 0) return Status::NotFound("no such column: " + column);
  std::vector<std::pair<uint32_t, Value>> page_values;
  for (const CarvedRecord* r :
       carve.RecordsForTable(table, RowStatus::kActive)) {
    if (static_cast<size_t>(ci) >= r->values.size()) continue;
    page_values.emplace_back(r->page_id, r->values[ci]);
  }
  return FromOrderedRows(page_values, pages_per_bucket);
}

Result<PhysicalLocationIndex> PhysicalLocationIndex::BuildFromDatabase(
    Database* db, const std::string& table, const std::string& column,
    size_t pages_per_bucket) {
  const TableInfo* info = db->catalog().Find(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  int ci = info->schema.ColumnIndex(column);
  if (ci < 0) return Status::NotFound("no such column: " + column);
  std::vector<std::pair<uint32_t, Value>> page_values;
  TableHeap* heap = db->heap(table);
  DBFA_RETURN_IF_ERROR(heap->Scan([&](RowPointer ptr, const Record& rec) {
    page_values.emplace_back(ptr.page_id, rec[ci]);
    return Status::Ok();
  }));
  return FromOrderedRows(page_values, pages_per_bucket);
}

std::vector<uint32_t> PhysicalLocationIndex::LookupPages(
    const Value& lo, const Value& hi) const {
  std::set<uint32_t> pages;
  for (const PliBucket& bucket : buckets_) {
    if (Value::Compare(bucket.max_value, lo) < 0) continue;
    if (Value::Compare(bucket.min_value, hi) > 0) continue;
    pages.insert(bucket.pages.begin(), bucket.pages.end());
  }
  return std::vector<uint32_t>(pages.begin(), pages.end());
}

double PhysicalLocationIndex::ClusteringFactor() const {
  // Fraction of bucket transitions whose minima increase. Perfectly (or
  // approximately) clustered ingest gives ~1.0; random placement gives
  // ~0.5 because each transition is a coin flip.
  if (buckets_.size() < 2) return 1.0;
  size_t ordered = 0;
  for (size_t i = 1; i < buckets_.size(); ++i) {
    if (Value::Compare(buckets_[i - 1].min_value, buckets_[i].min_value) <=
        0) {
      ++ordered;
    }
  }
  return static_cast<double>(ordered) /
         static_cast<double>(buckets_.size() - 1);
}

}  // namespace dbfa
