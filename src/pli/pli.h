// PLI — Physical Location Index (Section IV-a): exploit the carver's view
// of physical data order to answer range queries on an *approximately
// clustered* attribute without maintaining a clustered index.
//
// Build: walk the table in physical order, cut it into fixed-size page
// buckets, and record each bucket's min/max of the attribute. Lookup:
// return the pages of every bucket whose [min, max] envelope intersects
// the queried range. For naturally-ordered ingest (timestamps, serial
// ids) this reads a small superset of the exact pages while costing
// nothing at ingest time — the trade-off the PLI paper quantifies against
// a maintained clustered index and a full scan.
#ifndef DBFA_PLI_PLI_H_
#define DBFA_PLI_PLI_H_

#include <string>
#include <vector>

#include "core/artifacts.h"
#include "engine/database.h"

namespace dbfa {

struct PliBucket {
  Value min_value;
  Value max_value;
  std::vector<uint32_t> pages;
  size_t rows = 0;
};

class PhysicalLocationIndex {
 public:
  /// Builds from carved storage (the forensic route: no DBMS needed).
  static Result<PhysicalLocationIndex> Build(const CarveResult& carve,
                                             const std::string& table,
                                             const std::string& column,
                                             size_t pages_per_bucket = 4);

  /// Builds from a live database scan.
  static Result<PhysicalLocationIndex> BuildFromDatabase(
      Database* db, const std::string& table, const std::string& column,
      size_t pages_per_bucket = 4);

  /// Pages possibly holding values in [lo, hi] (inclusive).
  std::vector<uint32_t> LookupPages(const Value& lo, const Value& hi) const;

  const std::vector<PliBucket>& buckets() const { return buckets_; }
  size_t total_pages() const { return total_pages_; }
  size_t total_rows() const { return total_rows_; }

  /// Fraction of bucket transitions with increasing minima — ~1.0 for
  /// (approximately) clustered ingest, ~0.5 for random placement.
  double ClusteringFactor() const;

 private:
  static PhysicalLocationIndex FromOrderedRows(
      const std::vector<std::pair<uint32_t, Value>>& page_values,
      size_t pages_per_bucket);

  std::vector<PliBucket> buckets_;
  size_t total_pages_ = 0;
  size_t total_rows_ = 0;
};

}  // namespace dbfa

#endif  // DBFA_PLI_PLI_H_
