// Cache-aware query reordering (Section IV-c, future work — built):
// "randomly ordered queries typically result in non-optimal buffer cache
// utilization ... our future work leverages [RAM analysis] to create a
// method that analyzes RAM and reorders queries to achieve the most
// efficient I/O."
//
// Given a batch of pending SELECT statements and the current buffer-cache
// contents, the reorderer estimates the page set each query touches (full
// table scan vs. index scan, mirroring the engine's planner), then greedily
// schedules the query with the fewest uncached pages next, simulating
// cache evolution as it goes.
#ifndef DBFA_PLI_QUERY_REORDER_H_
#define DBFA_PLI_QUERY_REORDER_H_

#include <string>
#include <vector>

#include "engine/database.h"

namespace dbfa {

struct ReorderPlan {
  /// Execution order as indexes into the input query list.
  std::vector<size_t> order;
  /// Estimated page misses executing in the given order vs. reordered.
  size_t estimated_misses_original = 0;
  size_t estimated_misses_reordered = 0;

  std::string ToString() const;
};

class QueryReorderer {
 public:
  /// Plans an order for `queries` (SELECT statements over `db`'s tables),
  /// starting from the pool's current contents. Pure analysis: nothing is
  /// executed.
  static Result<ReorderPlan> Plan(Database* db,
                                  const std::vector<std::string>& queries);
};

}  // namespace dbfa

#endif  // DBFA_PLI_QUERY_REORDER_H_
