#include "pli/query_reorder.h"

#include <algorithm>
#include <list>
#include <set>
#include <vector>

#include "common/strings.h"
#include "sql/parser.h"

namespace dbfa {
namespace {

struct SimKey {
  uint32_t object_id;
  uint32_t page_id;
  bool operator<(const SimKey& o) const {
    return object_id != o.object_id ? object_id < o.object_id
                                    : page_id < o.page_id;
  }
};

/// Simulated LRU cache of page identities.
class SimCache {
 public:
  explicit SimCache(size_t capacity) : capacity_(capacity) {}

  size_t MissCount(const std::vector<SimKey>& pages) const {
    size_t misses = 0;
    for (const SimKey& k : pages) {
      if (resident_.count(k) == 0) ++misses;
    }
    return misses;
  }

  void Touch(const std::vector<SimKey>& pages) {
    for (const SimKey& k : pages) {
      auto it = resident_.find(k);
      if (it != resident_.end()) {
        lru_.erase(it->second);
      }
      lru_.push_back(k);
      resident_[k] = std::prev(lru_.end());
      while (resident_.size() > capacity_) {
        resident_.erase(lru_.front());
        lru_.pop_front();
      }
    }
  }

 private:
  size_t capacity_;
  std::list<SimKey> lru_;
  std::map<SimKey, std::list<SimKey>::iterator> resident_;
};

/// Whether `where` bounds the leading column of any index of `info`
/// (a simplified mirror of the engine's planner).
const IndexInfo* UsableIndex(const TableInfo& info, const sql::Expr* where,
                             bool* is_equality) {
  if (where == nullptr) return nullptr;
  std::vector<const sql::Expr*> stack = {where};
  while (!stack.empty()) {
    const sql::Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == sql::ExprKind::kAnd) {
      stack.push_back(e->lhs.get());
      stack.push_back(e->rhs.get());
      continue;
    }
    if (e->kind != sql::ExprKind::kCompare) continue;
    const sql::Expr* col = nullptr;
    if (e->lhs->kind == sql::ExprKind::kColumn &&
        e->rhs->kind == sql::ExprKind::kLiteral) {
      col = e->lhs.get();
    } else if (e->rhs->kind == sql::ExprKind::kColumn &&
               e->lhs->kind == sql::ExprKind::kLiteral) {
      col = e->rhs.get();
    }
    if (col == nullptr) continue;
    std::string bare = col->column;
    size_t dot = bare.find('.');
    if (dot != std::string::npos) bare = bare.substr(dot + 1);
    for (const IndexInfo& index : info.indexes) {
      if (EqualsIgnoreCase(index.columns[0], bare)) {
        *is_equality = e->compare_op == sql::CompareOp::kEq;
        return &index;
      }
    }
  }
  return nullptr;
}

}  // namespace

std::string ReorderPlan::ToString() const {
  std::string out = "order:";
  for (size_t i : order) out += StrFormat(" %zu", i);
  out += StrFormat("\nestimated misses: original=%zu reordered=%zu",
                   estimated_misses_original, estimated_misses_reordered);
  return out;
}

Result<ReorderPlan> QueryReorderer::Plan(
    Database* db, const std::vector<std::string>& queries) {
  // Estimate the page set of each query.
  std::vector<std::vector<SimKey>> page_sets;
  for (const std::string& text : queries) {
    DBFA_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(text));
    const auto* select = std::get_if<sql::SelectStmt>(&stmt);
    if (select == nullptr) {
      return Status::InvalidArgument("only SELECTs can be reordered: " +
                                     text);
    }
    const TableInfo* info = db->catalog().Find(select->from.table);
    if (info == nullptr) {
      return Status::NotFound("no such table: " + select->from.table);
    }
    const StorageFile* heap_file = db->pager().file(info->object_id);
    uint32_t heap_pages = heap_file == nullptr ? 0 : heap_file->page_count();

    std::vector<SimKey> pages;
    bool is_equality = false;
    const IndexInfo* index = UsableIndex(*info, select->where.get(),
                                         &is_equality);
    if (index != nullptr) {
      BTree* tree = db->index(info->schema.name, index->name);
      if (tree != nullptr) {
        DBFA_ASSIGN_OR_RETURN(auto index_pages, tree->ReachablePages());
        for (uint32_t p : index_pages) {
          pages.push_back({index->object_id, p});
        }
      }
      // Heap pages actually fetched: one for a point lookup, a quarter of
      // the table for a range (coarse but monotone estimate).
      uint32_t touched = is_equality
                             ? 1
                             : std::max<uint32_t>(1, heap_pages / 4);
      for (uint32_t p = 1; p <= touched && p <= heap_pages; ++p) {
        pages.push_back({info->object_id, p});
      }
    } else {
      for (uint32_t p = 1; p <= heap_pages; ++p) {
        pages.push_back({info->object_id, p});
      }
    }
    page_sets.push_back(std::move(pages));
  }

  // Seed both simulations with the real pool contents.
  std::vector<SimKey> resident;
  for (PageKey k : db->pager().pool().CachedKeys()) {
    resident.push_back({k.object_id, k.page_id});
  }
  size_t capacity = db->pager().pool().capacity();

  ReorderPlan plan;
  {
    SimCache cache(capacity);
    cache.Touch(resident);
    for (const auto& pages : page_sets) {
      plan.estimated_misses_original += cache.MissCount(pages);
      cache.Touch(pages);
    }
  }
  {
    SimCache cache(capacity);
    cache.Touch(resident);
    std::vector<bool> done(page_sets.size(), false);
    for (size_t step = 0; step < page_sets.size(); ++step) {
      size_t best = SIZE_MAX;
      size_t best_misses = SIZE_MAX;
      for (size_t i = 0; i < page_sets.size(); ++i) {
        if (done[i]) continue;
        size_t misses = cache.MissCount(page_sets[i]);
        if (misses < best_misses) {
          best = i;
          best_misses = misses;
        }
      }
      done[best] = true;
      plan.order.push_back(best);
      plan.estimated_misses_reordered += best_misses;
      cache.Touch(page_sets[best]);
    }
  }
  return plan;
}

}  // namespace dbfa
