// Backdated-log validation (paper Section III-C), replay-assisted.
//
// Wraps the timeline analyzer's two detectors (timestamp inversions against
// append order; carved row-id order against claimed time order) and adds a
// third that only the reenactor can provide: replaying the log predicts the
// row id the monotone counter *would* hand each logged INSERT at its
// claimed position, so a flagged entry carries both sides of the
// contradiction — the id storage actually stamped versus the id the claimed
// history implies. The validator also reports whether the claimed state as
// a whole matches carved storage (via the recovery diff), separating "the
// log's order is forged" from "the storage was tampered".
#ifndef DBFA_REENACT_LOG_VALIDATOR_H_
#define DBFA_REENACT_LOG_VALIDATOR_H_

#include <string>
#include <vector>

#include "core/artifacts.h"
#include "reenact/reenactor.h"
#include "timeline/log_event_analyzer.h"

namespace dbfa {

struct LogValidationReport {
  /// Detectors 1+2 (timeline/log_event_analyzer): timestamp inversions and
  /// storage row-id order violations.
  TimelineReport timeline;
  /// Detector 3: entries whose carved row id contradicts the claimed time
  /// order, with the replay-predicted id as the counter-witness.
  std::vector<BackdateFinding> replay_findings;
  /// Logged single-row INSERTs the replay located in carved storage.
  size_t inserts_matched = 0;
  /// Whether the fully-replayed claimed state matches the carved reality
  /// (false means tampering, which is recovery's problem, not backdating).
  bool state_matches_replay = false;
  /// Rows the recovery diff found corrupted (0 when state matches).
  size_t corrupted_rows = 0;

  /// No backdating evidence (state tampering is reported separately).
  bool Consistent() const {
    return timeline.Consistent() && replay_findings.empty();
  }
  std::string ToString() const;
};

class LogValidator {
 public:
  explicit LogValidator(const Reenactor& reenactor)
      : reenactor_(&reenactor) {}

  Result<LogValidationReport> Validate(const AuditLog& log,
                                       const CarveResult& disk) const;

 private:
  const Reenactor* reenactor_;
};

}  // namespace dbfa

#endif  // DBFA_REENACT_LOG_VALIDATOR_H_
