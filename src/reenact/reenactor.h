// Reenactor: replays audit-log SQL history on a fresh reference engine.
//
// The audit log is the DBMS's own claim about what happened; the reference
// engine (engine/) is deterministic, so replaying the logged statements —
// full history, any prefix, or a what-if subset — materializes the state
// the log *claims* the instance reached at that position. Everything else
// in src/reenact/ is built on comparing that claimed state against the
// carved storage reality: provenance joins per-statement effects against
// carved artifacts, recovery diffs claimed vs carved to emit a surgical
// undo script, and the log validator replays to predict storage row ids.
//
// Follows Niu et al.'s reenactment idea (replay the logged history to
// reconstruct transaction effects) specialized to the single-statement
// transactions MiniDB logs.
#ifndef DBFA_REENACT_REENACTOR_H_
#define DBFA_REENACT_REENACTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "engine/audit_log.h"
#include "engine/database.h"

namespace dbfa {

struct ReplayOptions {
  /// Replay only entries with seq <= upto_seq (0 = the whole log). This is
  /// the "state at any log position" knob: prefixes reconstruct the claimed
  /// state as of a given logged transaction.
  uint64_t upto_seq = 0;
  /// Entries to suppress — what-if replay ("history without these
  /// transactions"), the primitive surgical recovery verification uses.
  std::set<uint64_t> skip_seqs;
  /// Stop at the first statement the reference engine rejects instead of
  /// recording the error and continuing (forged logs need not replay
  /// cleanly; honest ones do).
  bool stop_on_error = false;
  /// Observer invoked with the replayed engine *before* each entry
  /// executes (the clock already holds the entry's claimed timestamp).
  /// Provenance uses it to capture pre-images; an error aborts the replay.
  std::function<Status(Database*, const AuditEntry&)> before_statement;
};

/// One replayed log entry and what the reference engine did with it.
struct StatementOutcome {
  uint64_t seq = 0;
  int64_t timestamp = 0;
  std::string sql;
  bool applied = false;
  std::string error;  // empty when applied
  /// Row-id counter value before the statement ran: the id the statement's
  /// first inserted row version received (INSERTs and the new versions
  /// UPDATEs write both consume ids). Storage-order evidence for the
  /// backdating detector.
  uint64_t row_id_before = 0;

  std::string ToString() const;
};

/// A materialized claimed state: the replayed engine plus the per-entry
/// outcome trail.
struct ReenactedState {
  std::unique_ptr<Database> db;
  std::vector<StatementOutcome> outcomes;
  size_t applied = 0;
  size_t failed = 0;

  /// CanonicalFingerprint of the replayed engine.
  Result<std::string> Fingerprint() const;
};

/// Active rows per table (catalog key → rows sorted by CompareRecords):
/// the logical state used for claimed-vs-carved diffs.
Result<std::map<std::string, std::vector<Record>>> ActiveRowsByTable(
    Database* db);

/// Canonical, byte-comparable dump of the engine's logical state: tables in
/// catalog order, rows sorted, rendered through RecordToString. Two engines
/// holding the same logical rows produce byte-identical fingerprints even
/// when their physical pages (row ids, LSNs, slot layout) differ.
Result<std::string> CanonicalFingerprint(Database* db);

/// Reference-engine options reproducing the carved instance's storage
/// dialect (the carver config is the ground truth the investigator has).
DatabaseOptions ReferenceOptionsFor(const CarverConfig& config);

class Reenactor {
 public:
  /// `base` configures every reference instance Replay() opens; the audit
  /// log of the replayed engine itself is disabled (it would only echo the
  /// input).
  explicit Reenactor(DatabaseOptions base) : base_(std::move(base)) {}
  explicit Reenactor(const CarverConfig& config)
      : base_(ReferenceOptionsFor(config)) {}

  /// Replays `log` on a fresh reference instance. The virtual clock is set
  /// to each entry's claimed timestamp before execution, so storage LSNs in
  /// the replayed engine reflect the *claimed* times.
  Result<ReenactedState> Replay(const AuditLog& log,
                                const ReplayOptions& options = {}) const;

  const DatabaseOptions& base_options() const { return base_; }

 private:
  DatabaseOptions base_;
};

}  // namespace dbfa

#endif  // DBFA_REENACT_REENACTOR_H_
