// Surgical recovery: diff the claimed (replayed) state against the carved
// reality, pinpoint the corrupted rows, and emit a minimal ordered SQL
// script undoing the corruption.
//
// Ancora's bar for intrusion recovery is to undo the attacker's effects
// while *preserving legitimate later writes*. Here that falls out of the
// construction: the claimed state is the full replay of the audit log, so
// every logged post-tampering write is already part of the target state,
// and the diff touches exactly the rows where unlogged tampering pushed
// storage off the claimed trajectory. The script is verified by
// materializing the carved reality on a reference engine, applying the
// script, and byte-comparing canonical fingerprints against the replay.
#ifndef DBFA_REENACT_RECOVERY_H_
#define DBFA_REENACT_RECOVERY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "reenact/reenactor.h"

namespace dbfa {

/// One row where carved storage disagrees with the claimed state.
struct RowCorruption {
  enum class Kind {
    kExtraneous,  // present in storage, absent from the claimed state
    kMissing,     // claimed, but absent from storage
    kAltered,     // same primary key, different non-key values
  };

  Kind kind = Kind::kExtraneous;
  std::string table;  // catalog key (lower-cased)
  Record claimed;     // empty for kExtraneous
  Record actual;      // empty for kMissing

  std::string ToString() const;
};

/// The corruption inventory plus the ordered undo script. Statement order
/// is DELETEs, then UPDATEs, then INSERTs, each deterministically sorted —
/// extraneous rows leave before their legitimate versions return, so the
/// script replays cleanly even under primary-key uniqueness.
struct RecoveryScript {
  std::vector<RowCorruption> corruptions;
  std::vector<std::string> statements;

  /// Storage already matches the claimed state.
  bool Clean() const { return corruptions.empty(); }
  /// Statements joined as an executable script, one per line, ';'-closed.
  std::string ToSql() const;
  std::string ToString() const;
};

/// Outcome of replaying the script against the materialized carved state.
struct RecoveryVerification {
  bool byte_identical = false;
  std::string claimed_fingerprint;    // full replay of the audit log
  std::string recovered_fingerprint;  // carved state + recovery script
};

class RecoveryPlanner {
 public:
  explicit RecoveryPlanner(const Reenactor& reenactor)
      : reenactor_(&reenactor) {}

  /// Diffs the full replay of `log` against the carved active records of
  /// `disk` and emits the undo script. Tables with a usable primary key
  /// diff per-key (detecting in-place alterations); the rest fall back to
  /// full-row multiset comparison.
  Result<RecoveryScript> Plan(const AuditLog& log,
                              const CarveResult& disk) const;

  /// Rebuilds the carved reality on a reference engine: every non-dropped
  /// carved schema, loaded with the typed active (non-orphan) records.
  /// Constraint enforcement is off — tampered storage owes us nothing.
  Result<std::unique_ptr<Database>> MaterializeCarvedState(
      const CarveResult& disk) const;

  /// Applies `script` to the materialized carved state and byte-compares
  /// the result's canonical fingerprint against the full replay of `log`.
  Result<RecoveryVerification> Verify(const RecoveryScript& script,
                                      const AuditLog& log,
                                      const CarveResult& disk) const;

 private:
  const Reenactor* reenactor_;
};

}  // namespace dbfa

#endif  // DBFA_REENACT_RECOVERY_H_
