#include "reenact/log_validator.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "reenact/recovery.h"
#include "sql/parser.h"

namespace dbfa {

std::string LogValidationReport::ToString() const {
  std::string out = StrFormat(
      "LogValidation: %s (%zu timeline findings, %zu replay findings, "
      "%zu inserts matched); state %s replay (%zu corrupted rows)\n",
      Consistent() ? "consistent" : "BACKDATING SUSPECTED",
      timeline.findings.size(), replay_findings.size(), inserts_matched,
      state_matches_replay ? "matches" : "DIVERGES FROM", corrupted_rows);
  for (const BackdateFinding& f : timeline.findings) {
    out += "  " + f.ToString() + "\n";
  }
  for (const BackdateFinding& f : replay_findings) {
    out += "  " + f.ToString() + "\n";
  }
  return out;
}

Result<LogValidationReport> LogValidator::Validate(
    const AuditLog& log, const CarveResult& disk) const {
  LogValidationReport report;

  // Detectors 1+2: log-internal and storage-order analysis.
  LogEventAnalyzer analyzer(&disk, &log);
  DBFA_ASSIGN_OR_RETURN(report.timeline, analyzer.Analyze());
  std::set<uint64_t> flagged;
  for (const BackdateFinding& f : report.timeline.findings) {
    flagged.insert(f.seq);
  }

  // Detector 3: replay the claimed history; the outcome trail records the
  // row id the counter held before each statement — the id an honest
  // history would have stamped on that INSERT's record.
  DBFA_ASSIGN_OR_RETURN(ReenactedState state, reenactor_->Replay(log));
  struct MatchedInsert {
    const StatementOutcome* outcome;
    uint64_t carved_row_id;
  };
  std::vector<MatchedInsert> matched;
  for (const StatementOutcome& outcome : state.outcomes) {
    if (!outcome.applied) continue;
    auto stmt = sql::ParseStatement(outcome.sql);
    if (!stmt.ok()) continue;
    const auto* ins = std::get_if<sql::InsertStmt>(&*stmt);
    if (ins == nullptr || ins->rows.size() != 1) continue;
    uint32_t object_id = disk.ObjectIdByName(ins->table);
    if (object_id == 0) continue;
    for (const CarvedRecord& r : disk.records) {
      if (r.object_id != object_id || r.row_id == 0 || !r.typed) continue;
      if (CompareRecords(r.values, ins->rows[0]) == 0) {
        matched.push_back({&outcome, r.row_id});
        break;
      }
    }
  }
  report.inserts_matched = matched.size();
  std::stable_sort(matched.begin(), matched.end(),
                   [](const MatchedInsert& a, const MatchedInsert& b) {
                     if (a.outcome->timestamp != b.outcome->timestamp) {
                       return a.outcome->timestamp < b.outcome->timestamp;
                     }
                     return a.outcome->seq < b.outcome->seq;
                   });
  std::vector<uint64_t> carved_ids;
  carved_ids.reserve(matched.size());
  for (const MatchedInsert& m : matched) carved_ids.push_back(m.carved_row_id);
  std::vector<size_t> consistent = LongestNonDecreasingIndexes(carved_ids);
  std::vector<bool> keep(matched.size(), false);
  for (size_t i : consistent) keep[i] = true;
  for (size_t i = 0; i < matched.size(); ++i) {
    if (keep[i]) continue;
    if (flagged.count(matched[i].outcome->seq) != 0) continue;
    report.replay_findings.push_back(
        {matched[i].outcome->seq, matched[i].outcome->timestamp,
         matched[i].outcome->sql,
         StrFormat("storage stamped row id %llu, out of order for the "
                   "claimed time; replaying the claimed history predicts "
                   "id %llu at this position",
                   static_cast<unsigned long long>(matched[i].carved_row_id),
                   static_cast<unsigned long long>(
                       matched[i].outcome->row_id_before))});
  }

  // State-level cross-check: does the claimed history even lead to the
  // carved reality? (Divergence is tampering — recovery's department.)
  RecoveryPlanner planner(*reenactor_);
  DBFA_ASSIGN_OR_RETURN(RecoveryScript diff, planner.Plan(log, disk));
  report.state_matches_replay = diff.Clean();
  report.corrupted_rows = diff.corruptions.size();
  return report;
}

}  // namespace dbfa
