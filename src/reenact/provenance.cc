#include "reenact/provenance.h"

#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "sql/parser.h"

namespace dbfa {
namespace {

/// Column-name list of a schema, for binding WHERE predicates.
std::vector<std::string> ColumnNames(const TableSchema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.columns.size());
  for (const Column& c : schema.columns) names.push_back(c.name);
  return names;
}

/// Rows of `table` matching `where` (nullptr = all) in the replayed engine
/// right now — the pre-images a DELETE/UPDATE is about to consume.
Result<std::vector<Record>> MatchingRows(Database* db,
                                         const std::string& table,
                                         const sql::ExprPtr& where) {
  const TableInfo* info = db->catalog().Find(table);
  if (info == nullptr) return std::vector<Record>{};
  TableHeap* heap = db->heap(table);
  if (heap == nullptr) return std::vector<Record>{};
  std::vector<std::string> names = ColumnNames(info->schema);
  std::vector<Record> rows;
  Status scan = heap->Scan([&](RowPointer, const Record& r) {
    if (where != nullptr) {
      sql::RecordBinding binding(names, r, info->schema.name);
      DBFA_ASSIGN_OR_RETURN(bool match, sql::EvalPredicate(*where, binding));
      if (!match) return Status::Ok();
    }
    rows.push_back(r);
    return Status::Ok();
  });
  DBFA_RETURN_IF_ERROR(scan);
  return rows;
}

/// Carved evidence for one table: display-rendered record sets. Rendering
/// through RecordToString makes replayed and carved rows comparable without
/// caring about physical representation.
struct TableEvidence {
  std::unordered_set<std::string> active;
  std::unordered_set<std::string> deleted;
};

std::map<std::string, TableEvidence> IndexEvidence(const CarveResult& disk) {
  std::map<std::string, TableEvidence> by_table;
  std::map<uint32_t, std::string> names;
  for (const auto& [object_id, schema] : disk.schemas) {
    names[object_id] = ToLower(schema.name);
  }
  for (const CarvedRecord& r : disk.records) {
    if (!r.typed) continue;
    auto it = names.find(r.object_id);
    if (it == names.end()) continue;
    TableEvidence& ev = by_table[it->second];
    if (r.status == RowStatus::kActive) {
      ev.active.insert(RecordToString(r.values));
    } else {
      ev.deleted.insert(RecordToString(r.values));
    }
  }
  return by_table;
}

}  // namespace

const char* EffectKindName(EffectKind kind) {
  switch (kind) {
    case EffectKind::kInsert:
      return "insert";
    case EffectKind::kDelete:
      return "delete";
    case EffectKind::kUpdateBefore:
      return "update-before";
    case EffectKind::kUpdateAfter:
      return "update-after";
  }
  return "?";
}

const char* EvidenceVerdictName(EvidenceVerdict verdict) {
  switch (verdict) {
    case EvidenceVerdict::kConfirmed:
      return "confirmed";
    case EvidenceVerdict::kContradicted:
      return "contradicted";
    case EvidenceVerdict::kMissing:
      return "missing";
    case EvidenceVerdict::kUnverifiable:
      return "unverifiable";
  }
  return "?";
}

std::string RowEffect::ToString() const {
  return StrFormat("%s %s %s", EffectKindName(kind), table.c_str(),
                   RecordToString(values).c_str());
}

std::string TransactionFootprint::ToString() const {
  std::string out = StrFormat(
      "seq %llu ts %lld [%s] %s", static_cast<unsigned long long>(seq),
      static_cast<long long>(timestamp), EvidenceVerdictName(verdict),
      sql.c_str());
  if (!evidence.empty()) out += " — " + evidence;
  for (const RowEffect& w : writes) out += "\n    " + w.ToString();
  return out;
}

std::string ProvenanceReport::ToString() const {
  std::string out = StrFormat(
      "Provenance: %zu transactions (%zu confirmed, %zu contradicted, "
      "%zu missing, %zu unverifiable)\n",
      transactions.size(), confirmed, contradicted, missing, unverifiable);
  for (const TransactionFootprint& t : transactions) {
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

Result<ProvenanceReport> ProvenanceAnalyzer::Analyze(
    const AuditLog& log, const CarveResult& disk) const {
  ProvenanceReport report;

  // Phase 1: replay, capturing each statement's footprint against the
  // claimed state it executes in. The before_statement hook sees the engine
  // immediately before the entry runs, which is the only point where
  // DELETE/UPDATE pre-images exist.
  ReplayOptions replay_options;
  replay_options.before_statement = [&report](Database* db,
                                              const AuditEntry& entry) {
    TransactionFootprint fp;
    fp.seq = entry.seq;
    fp.timestamp = entry.timestamp;
    fp.sql = entry.sql;
    auto stmt = sql::ParseStatement(entry.sql);
    if (stmt.ok()) {
      if (const auto* ins = std::get_if<sql::InsertStmt>(&*stmt)) {
        std::string key = ToLower(ins->table);
        for (const Record& row : ins->rows) {
          fp.writes.push_back({EffectKind::kInsert, key, row});
        }
      } else if (const auto* del = std::get_if<sql::DeleteStmt>(&*stmt)) {
        std::string key = ToLower(del->table);
        fp.reads.push_back(key);
        DBFA_ASSIGN_OR_RETURN(auto rows, MatchingRows(db, del->table,
                                                      del->where));
        for (Record& row : rows) {
          fp.writes.push_back({EffectKind::kDelete, key, std::move(row)});
        }
      } else if (const auto* up = std::get_if<sql::UpdateStmt>(&*stmt)) {
        std::string key = ToLower(up->table);
        fp.reads.push_back(key);
        DBFA_ASSIGN_OR_RETURN(auto rows, MatchingRows(db, up->table,
                                                      up->where));
        const TableInfo* info = db->catalog().Find(up->table);
        for (Record& row : rows) {
          Record after = row;
          if (info != nullptr) {
            for (const auto& [column, value] : up->assignments) {
              int index = info->schema.ColumnIndex(column);
              if (index >= 0) after[static_cast<size_t>(index)] = value;
            }
          }
          fp.writes.push_back(
              {EffectKind::kUpdateBefore, key, std::move(row)});
          fp.writes.push_back({EffectKind::kUpdateAfter, key,
                               std::move(after)});
        }
      } else if (const auto* sel = std::get_if<sql::SelectStmt>(&*stmt)) {
        fp.reads.push_back(ToLower(sel->from.table));
        for (const sql::JoinClause& join : sel->joins) {
          fp.reads.push_back(ToLower(join.table.table));
        }
      }
    }
    report.transactions.push_back(std::move(fp));
    return Status::Ok();
  };
  DBFA_ASSIGN_OR_RETURN(ReenactedState state,
                        reenactor_->Replay(log, replay_options));

  // The hook ran once per replayed entry, in order; fold in the outcomes.
  for (size_t i = 0;
       i < state.outcomes.size() && i < report.transactions.size(); ++i) {
    report.transactions[i].applied = state.outcomes[i].applied;
  }

  // Phase 2: join footprints against carved evidence. A write's *final*
  // effect (still live in the fully-replayed claimed state) must appear in
  // the carved active records; superseded effects should appear as carved
  // delete-marked records where the dialect preserves them.
  std::map<std::string, TableEvidence> evidence = IndexEvidence(disk);
  DBFA_ASSIGN_OR_RETURN(auto final_tables, ActiveRowsByTable(state.db.get()));
  std::map<std::string, std::unordered_set<std::string>> final_rows;
  for (const auto& [table, rows] : final_tables) {
    std::unordered_set<std::string>& set = final_rows[table];
    for (const Record& r : rows) set.insert(RecordToString(r));
  }

  for (TransactionFootprint& fp : report.transactions) {
    if (!fp.applied || fp.writes.empty()) {
      fp.verdict = EvidenceVerdict::kUnverifiable;
      if (!fp.applied) fp.evidence = "statement did not replay";
      ++report.unverifiable;
      continue;
    }
    size_t confirmed_effects = 0;
    std::string contradiction;
    std::string missing;
    for (const RowEffect& w : fp.writes) {
      std::string rendered = RecordToString(w.values);
      auto ev_it = evidence.find(w.table);
      const TableEvidence* ev =
          ev_it == evidence.end() ? nullptr : &ev_it->second;
      bool in_active = ev != nullptr && ev->active.count(rendered) != 0;
      bool in_deleted = ev != nullptr && ev->deleted.count(rendered) != 0;
      bool is_post_image = w.kind == EffectKind::kInsert ||
                           w.kind == EffectKind::kUpdateAfter;
      if (is_post_image) {
        auto fr = final_rows.find(w.table);
        bool still_final = fr != final_rows.end() &&
                           fr->second.count(rendered) != 0;
        if (still_final) {
          if (in_active) {
            ++confirmed_effects;
          } else if (missing.empty()) {
            missing = StrFormat("claimed row %s not carved from %s",
                                rendered.c_str(), w.table.c_str());
          }
        } else if (in_deleted) {
          ++confirmed_effects;  // superseded version survives delete-marked
        }
      } else {  // pre-image of a DELETE or UPDATE
        if (in_active) {
          auto fr = final_rows.find(w.table);
          bool resurrected = fr != final_rows.end() &&
                             fr->second.count(rendered) != 0;
          // Live in storage *and* not supposed to be live at the end:
          // storage contradicts the logged delete/update.
          if (!resurrected && contradiction.empty()) {
            contradiction =
                StrFormat("row %s still active in storage despite logged %s",
                          rendered.c_str(), EffectKindName(w.kind));
          }
        } else if (in_deleted) {
          ++confirmed_effects;
        }
      }
    }
    if (!contradiction.empty()) {
      fp.verdict = EvidenceVerdict::kContradicted;
      fp.evidence = contradiction;
      ++report.contradicted;
    } else if (!missing.empty()) {
      fp.verdict = EvidenceVerdict::kMissing;
      fp.evidence = missing;
      ++report.missing;
    } else if (confirmed_effects > 0) {
      fp.verdict = EvidenceVerdict::kConfirmed;
      fp.evidence = StrFormat("%zu of %zu row effects located in storage",
                              confirmed_effects, fp.writes.size());
      ++report.confirmed;
    } else {
      fp.verdict = EvidenceVerdict::kUnverifiable;
      fp.evidence = "no surviving storage evidence for this statement";
      ++report.unverifiable;
    }
  }
  return report;
}

}  // namespace dbfa
