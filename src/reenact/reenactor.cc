#include "reenact/reenactor.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace dbfa {

std::string StatementOutcome::ToString() const {
  if (applied) {
    return StrFormat("seq %llu ts %lld row-id %llu: %s",
                     static_cast<unsigned long long>(seq),
                     static_cast<long long>(timestamp),
                     static_cast<unsigned long long>(row_id_before),
                     sql.c_str());
  }
  return StrFormat("seq %llu ts %lld REJECTED (%s): %s",
                   static_cast<unsigned long long>(seq),
                   static_cast<long long>(timestamp), error.c_str(),
                   sql.c_str());
}

Result<std::string> ReenactedState::Fingerprint() const {
  return CanonicalFingerprint(db.get());
}

Result<std::map<std::string, std::vector<Record>>> ActiveRowsByTable(
    Database* db) {
  std::map<std::string, std::vector<Record>> out;
  for (const auto& [key, info] : db->catalog().tables()) {
    std::vector<Record>& rows = out[key];
    TableHeap* heap = db->heap(info.schema.name);
    if (heap == nullptr) continue;  // registered but never materialized
    DBFA_RETURN_IF_ERROR(heap->Scan([&rows](RowPointer, const Record& r) {
      rows.push_back(r);
      return Status::Ok();
    }));
    std::sort(rows.begin(), rows.end(), [](const Record& a, const Record& b) {
      return CompareRecords(a, b) < 0;
    });
  }
  return out;
}

Result<std::string> CanonicalFingerprint(Database* db) {
  DBFA_ASSIGN_OR_RETURN(auto tables, ActiveRowsByTable(db));
  std::string out = "dbfa-state-fingerprint v1\n";
  for (const auto& [key, rows] : tables) {
    out += "table " + key + "\n";
    for (const Record& r : rows) {
      out += "row " + RecordToString(r) + "\n";
    }
  }
  out += "end\n";
  return out;
}

DatabaseOptions ReferenceOptionsFor(const CarverConfig& config) {
  DatabaseOptions options;
  // The carver config carries the full layout parameter set; using it as
  // custom_params reproduces the instance's storage dialect exactly even
  // for engines outside the built-in eight.
  options.custom_params = config.params;
  return options;
}

Result<ReenactedState> Reenactor::Replay(const AuditLog& log,
                                         const ReplayOptions& options) const {
  ReenactedState state;
  DBFA_ASSIGN_OR_RETURN(state.db, Database::Open(base_));
  // The replayed engine's own log would only echo the input history.
  state.db->audit_log().SetEnabled(false);
  state.outcomes.reserve(log.entries().size());
  for (const AuditEntry& entry : log.entries()) {
    if (options.upto_seq != 0 && entry.seq > options.upto_seq) continue;
    if (options.skip_seqs.count(entry.seq) != 0) continue;
    StatementOutcome outcome;
    outcome.seq = entry.seq;
    outcome.timestamp = entry.timestamp;
    outcome.sql = entry.sql;
    outcome.row_id_before = state.db->next_row_id();
    // Replay under the claimed clock so storage LSNs carry claimed times.
    state.db->clock().Set(entry.timestamp);
    if (options.before_statement) {
      DBFA_RETURN_IF_ERROR(options.before_statement(state.db.get(), entry));
    }
    auto result = state.db->ExecuteSql(entry.sql);
    if (result.ok()) {
      outcome.applied = true;
      ++state.applied;
    } else {
      outcome.error = result.status().ToString();
      ++state.failed;
    }
    bool stop = options.stop_on_error && !outcome.applied;
    state.outcomes.push_back(std::move(outcome));
    if (stop) break;
  }
  return state;
}

}  // namespace dbfa
