// Per-transaction provenance: read/write footprints joined against carved
// storage evidence.
//
// Replaying the log entry-by-entry lets us capture each statement's exact
// effect set *as of the claimed state it executed in*: INSERT post-images,
// DELETE pre-images, UPDATE before/after pairs, and the tables each
// statement read. Joining those effects against the carved before/after
// artifacts (active and delete-marked records) classifies every logged
// transaction: its effects are confirmed by storage, contradicted by it,
// missing from it, or simply unverifiable (the dialect purged the
// evidence). A log whose transactions all confirm is consistent with the
// disk; contradictions and missing effects are where tampering or log
// forgery shows.
#ifndef DBFA_REENACT_PROVENANCE_H_
#define DBFA_REENACT_PROVENANCE_H_

#include <string>
#include <vector>

#include "core/artifacts.h"
#include "reenact/reenactor.h"

namespace dbfa {

enum class EffectKind { kInsert, kDelete, kUpdateBefore, kUpdateAfter };

const char* EffectKindName(EffectKind kind);

/// One row-level write a statement performed during replay.
struct RowEffect {
  EffectKind kind = EffectKind::kInsert;
  std::string table;  // catalog key (lower-cased)
  Record values;

  std::string ToString() const;
};

/// How carved storage evidence relates to a transaction's replayed effects.
enum class EvidenceVerdict {
  kConfirmed,     // every checkable effect found where storage should hold it
  kContradicted,  // storage actively disagrees (e.g. a "deleted" row is live)
  kMissing,       // a final effect is absent from the carved active records
  kUnverifiable,  // no row effects, or the dialect purged the evidence
};

const char* EvidenceVerdictName(EvidenceVerdict verdict);

/// One logged transaction's reconstructed footprint.
struct TransactionFootprint {
  uint64_t seq = 0;
  int64_t timestamp = 0;
  std::string sql;
  bool applied = false;             // replayed cleanly on the reference engine
  std::vector<RowEffect> writes;
  std::vector<std::string> reads;   // tables the statement read (scans)
  EvidenceVerdict verdict = EvidenceVerdict::kUnverifiable;
  std::string evidence;             // justification for the verdict

  std::string ToString() const;
};

struct ProvenanceReport {
  std::vector<TransactionFootprint> transactions;
  size_t confirmed = 0;
  size_t contradicted = 0;
  size_t missing = 0;
  size_t unverifiable = 0;

  /// No transaction's effects are contradicted by or missing from storage.
  bool Consistent() const { return contradicted == 0 && missing == 0; }
  std::string ToString() const;
};

class ProvenanceAnalyzer {
 public:
  explicit ProvenanceAnalyzer(const Reenactor& reenactor)
      : reenactor_(&reenactor) {}

  /// Replays `log`, reconstructing each entry's footprint, then joins the
  /// effects against `disk` (the carved reality of the same instance).
  Result<ProvenanceReport> Analyze(const AuditLog& log,
                                   const CarveResult& disk) const;

 private:
  const Reenactor* reenactor_;
};

}  // namespace dbfa

#endif  // DBFA_REENACT_PROVENANCE_H_
