#include "reenact/recovery.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/strings.h"
#include "sql/statement.h"

namespace dbfa {
namespace {

const char* KindName(RowCorruption::Kind kind) {
  switch (kind) {
    case RowCorruption::Kind::kExtraneous:
      return "extraneous";
    case RowCorruption::Kind::kMissing:
      return "missing";
    case RowCorruption::Kind::kAltered:
      return "altered";
  }
  return "?";
}

/// "col = literal" (or "col IS NULL") comparison term.
std::string EqualityTerm(const std::string& column, const Value& value) {
  if (value.is_null()) return column + " IS NULL";
  return column + " = " + value.ToSqlLiteral();
}

/// WHERE clause pinning `record` down by the `key_indexes` columns.
std::string KeyWhere(const TableSchema& schema,
                     const std::vector<size_t>& key_indexes,
                     const Record& record) {
  std::string where;
  for (size_t index : key_indexes) {
    if (!where.empty()) where += " AND ";
    where += EqualityTerm(schema.columns[index].name, record[index]);
  }
  return where;
}

std::string InsertSql(const std::string& table, const Record& record) {
  std::string values;
  for (const Value& v : record) {
    if (!values.empty()) values += ", ";
    values += v.ToSqlLiteral();
  }
  return StrFormat("INSERT INTO %s VALUES (%s)", table.c_str(),
                   values.c_str());
}

/// Primary-key column indexes, or empty when the schema has no usable key
/// (no declared key, or a key column missing from the column list).
std::vector<size_t> KeyIndexes(const TableSchema& schema) {
  std::vector<size_t> indexes;
  for (const std::string& column : schema.primary_key) {
    int index = schema.ColumnIndex(column);
    if (index < 0) return {};
    indexes.push_back(static_cast<size_t>(index));
  }
  return indexes;
}

/// Rendered key of `record` under `key_indexes` (full row when empty).
std::string KeyOf(const std::vector<size_t>& key_indexes,
                  const Record& record) {
  if (key_indexes.empty()) return RecordToString(record);
  Record key;
  key.reserve(key_indexes.size());
  for (size_t index : key_indexes) {
    if (index < record.size()) key.push_back(record[index]);
  }
  return RecordToString(key);
}

}  // namespace

std::string RowCorruption::ToString() const {
  switch (kind) {
    case Kind::kExtraneous:
      return StrFormat("[extraneous] %s %s", table.c_str(),
                       RecordToString(actual).c_str());
    case Kind::kMissing:
      return StrFormat("[missing] %s %s", table.c_str(),
                       RecordToString(claimed).c_str());
    case Kind::kAltered:
      return StrFormat("[altered] %s %s should be %s", table.c_str(),
                       RecordToString(actual).c_str(),
                       RecordToString(claimed).c_str());
  }
  return KindName(kind);
}

std::string RecoveryScript::ToSql() const {
  std::string out;
  for (const std::string& statement : statements) {
    out += statement + ";\n";
  }
  return out;
}

std::string RecoveryScript::ToString() const {
  std::string out =
      StrFormat("RecoveryScript: %zu corrupted rows, %zu statements\n",
                corruptions.size(), statements.size());
  for (const RowCorruption& c : corruptions) {
    out += "  " + c.ToString() + "\n";
  }
  return out;
}

Result<RecoveryScript> RecoveryPlanner::Plan(const AuditLog& log,
                                             const CarveResult& disk) const {
  RecoveryScript script;
  DBFA_ASSIGN_OR_RETURN(ReenactedState state, reenactor_->Replay(log));
  DBFA_ASSIGN_OR_RETURN(auto claimed_tables,
                        ActiveRowsByTable(state.db.get()));

  // Carved reality: typed active records from parsed slots (orphans from
  // the raw scan have no live slot and are not part of the current state).
  std::map<std::string, std::vector<Record>> actual_tables;
  std::map<std::string, const TableSchema*> carved_schema;
  for (const auto& [object_id, schema] : disk.schemas) {
    if (disk.dropped_objects.count(object_id) != 0) continue;
    carved_schema[ToLower(schema.name)] = &schema;
  }
  for (const CarvedRecord& r : disk.records) {
    if (!r.typed || r.status != RowStatus::kActive) continue;
    if (r.slot == CarvedRecord::kOrphanSlot) continue;
    auto schema_it = disk.schemas.find(r.object_id);
    if (schema_it == disk.schemas.end()) continue;
    if (disk.dropped_objects.count(r.object_id) != 0) continue;
    actual_tables[ToLower(schema_it->second.name)].push_back(r.values);
  }

  std::set<std::string> table_keys;
  for (const auto& [key, rows] : claimed_tables) table_keys.insert(key);
  for (const auto& [key, rows] : actual_tables) table_keys.insert(key);

  std::vector<std::string> deletes;
  std::vector<std::string> updates;
  std::vector<std::string> inserts;
  for (const std::string& table : table_keys) {
    // Schema preference: the replayed engine's catalog (it knows the
    // claimed state), falling back to the carved catalog records.
    const TableSchema* schema = nullptr;
    const TableInfo* info = state.db->catalog().Find(table);
    if (info != nullptr) {
      schema = &info->schema;
    } else {
      auto it = carved_schema.find(table);
      if (it != carved_schema.end()) schema = it->second;
    }
    if (schema == nullptr) continue;
    std::vector<size_t> key_indexes = KeyIndexes(*schema);

    // Bucket both sides by key. With a primary key each bucket holds the
    // row version(s) for that key; without one, buckets are full-row
    // multisets and alterations surface as a missing + extraneous pair.
    std::map<std::string, std::vector<Record>> claimed_by_key;
    std::map<std::string, std::vector<Record>> actual_by_key;
    auto claimed_it = claimed_tables.find(table);
    if (claimed_it != claimed_tables.end()) {
      for (const Record& r : claimed_it->second) {
        claimed_by_key[KeyOf(key_indexes, r)].push_back(r);
      }
    }
    auto actual_it = actual_tables.find(table);
    if (actual_it != actual_tables.end()) {
      for (const Record& r : actual_it->second) {
        actual_by_key[KeyOf(key_indexes, r)].push_back(r);
      }
    }

    std::set<std::string> keys;
    for (const auto& [key, rows] : claimed_by_key) keys.insert(key);
    for (const auto& [key, rows] : actual_by_key) keys.insert(key);
    for (const std::string& key : keys) {
      auto c_it = claimed_by_key.find(key);
      auto a_it = actual_by_key.find(key);
      const std::vector<Record>* claimed_rows =
          c_it == claimed_by_key.end() ? nullptr : &c_it->second;
      const std::vector<Record>* actual_rows =
          a_it == actual_by_key.end() ? nullptr : &a_it->second;

      if (claimed_rows != nullptr && actual_rows != nullptr &&
          !key_indexes.empty() && claimed_rows->size() == 1 &&
          actual_rows->size() == 1) {
        const Record& claimed = (*claimed_rows)[0];
        const Record& actual = (*actual_rows)[0];
        if (CompareRecords(claimed, actual) == 0) continue;
        // Same key, different payload: repair in place, touching only the
        // columns tampering altered.
        std::string set_clause;
        for (size_t i = 0; i < schema->columns.size() &&
                           i < claimed.size() && i < actual.size();
             ++i) {
          if (Value::Compare(claimed[i], actual[i]) == 0) continue;
          if (!set_clause.empty()) set_clause += ", ";
          set_clause += schema->columns[i].name + " = " +
                        (claimed[i].is_null() ? std::string("NULL")
                                              : claimed[i].ToSqlLiteral());
        }
        updates.push_back(StrFormat("UPDATE %s SET %s WHERE %s",
                                    schema->name.c_str(), set_clause.c_str(),
                                    KeyWhere(*schema, key_indexes, actual)
                                        .c_str()));
        script.corruptions.push_back(
            {RowCorruption::Kind::kAltered, table, claimed, actual});
        continue;
      }

      // Multiset reconciliation (and the rare duplicate-key case): delete
      // every surplus actual copy, insert every deficit claimed copy.
      size_t claimed_count = claimed_rows == nullptr ? 0
                                                     : claimed_rows->size();
      size_t actual_count = actual_rows == nullptr ? 0 : actual_rows->size();
      if (actual_count > claimed_count) {
        const Record& actual = (*actual_rows)[0];
        // One DELETE removes every copy matched by the full-row (or key)
        // predicate; claimed copies are re-inserted below.
        std::string where =
            key_indexes.empty()
                ? [&] {
                    std::string terms;
                    for (size_t i = 0;
                         i < schema->columns.size() && i < actual.size();
                         ++i) {
                      if (!terms.empty()) terms += " AND ";
                      terms += EqualityTerm(schema->columns[i].name,
                                            actual[i]);
                    }
                    return terms;
                  }()
                : KeyWhere(*schema, key_indexes, actual);
        deletes.push_back(StrFormat("DELETE FROM %s WHERE %s",
                                    schema->name.c_str(), where.c_str()));
        // The delete removed every matched copy; re-insert the claimed ones.
        if (claimed_rows != nullptr) {
          for (const Record& r : *claimed_rows) {
            inserts.push_back(InsertSql(schema->name, r));
          }
        }
        for (size_t i = claimed_rows == nullptr ? 0 : claimed_rows->size();
             i < actual_count; ++i) {
          script.corruptions.push_back({RowCorruption::Kind::kExtraneous,
                                        table, Record{}, (*actual_rows)[0]});
        }
      } else if (claimed_count > actual_count) {
        for (size_t i = actual_count; i < claimed_count; ++i) {
          const Record& claimed = (*claimed_rows)[i];
          inserts.push_back(InsertSql(schema->name, claimed));
          script.corruptions.push_back(
              {RowCorruption::Kind::kMissing, table, claimed, Record{}});
        }
      }
    }
  }

  std::sort(deletes.begin(), deletes.end());
  std::sort(updates.begin(), updates.end());
  std::sort(inserts.begin(), inserts.end());
  script.statements.reserve(deletes.size() + updates.size() + inserts.size());
  for (auto& s : deletes) script.statements.push_back(std::move(s));
  for (auto& s : updates) script.statements.push_back(std::move(s));
  for (auto& s : inserts) script.statements.push_back(std::move(s));
  return script;
}

Result<std::unique_ptr<Database>> RecoveryPlanner::MaterializeCarvedState(
    const CarveResult& disk) const {
  DatabaseOptions options = reenactor_->base_options();
  options.enforce_constraints = false;
  DBFA_ASSIGN_OR_RETURN(auto db, Database::Open(options));
  db->audit_log().SetEnabled(false);
  for (const auto& [object_id, schema] : disk.schemas) {
    if (disk.dropped_objects.count(object_id) != 0) continue;
    DBFA_RETURN_IF_ERROR(db->CreateTable(schema));
  }
  for (const CarvedRecord& r : disk.records) {
    if (!r.typed || r.status != RowStatus::kActive) continue;
    if (r.slot == CarvedRecord::kOrphanSlot) continue;
    auto schema_it = disk.schemas.find(r.object_id);
    if (schema_it == disk.schemas.end()) continue;
    if (disk.dropped_objects.count(r.object_id) != 0) continue;
    DBFA_RETURN_IF_ERROR(
        db->Insert(schema_it->second.name, r.values).status());
  }
  return db;
}

Result<RecoveryVerification> RecoveryPlanner::Verify(
    const RecoveryScript& script, const AuditLog& log,
    const CarveResult& disk) const {
  RecoveryVerification verification;
  DBFA_ASSIGN_OR_RETURN(ReenactedState claimed, reenactor_->Replay(log));
  DBFA_ASSIGN_OR_RETURN(verification.claimed_fingerprint,
                        claimed.Fingerprint());
  DBFA_ASSIGN_OR_RETURN(auto recovered, MaterializeCarvedState(disk));
  for (const std::string& statement : script.statements) {
    DBFA_RETURN_IF_ERROR(recovered->ExecuteSql(statement).status());
  }
  DBFA_ASSIGN_OR_RETURN(verification.recovered_fingerprint,
                        CanonicalFingerprint(recovered.get()));
  verification.byte_identical =
      verification.claimed_fingerprint == verification.recovered_fingerprint;
  return verification;
}

}  // namespace dbfa
