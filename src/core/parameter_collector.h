// The parameter collector (Figure 2, component A): deduces a DBMS's page
// layout from the outside. It loads synthetic data through SQL, captures
// raw storage, and infers every PageLayoutParams field by searching for the
// planted values and differencing captures across an insert and a delete —
// with no access to the engine's code or headers.
//
// Inference pipeline (each step narrows the next):
//   1. page size + page-id field + byte order  — a u32 header field that
//      increments by one page-to-page at some (size, offset, endian).
//   2. record-count field — a u16 equal to the known per-page count of
//      planted markers; fixes the byte order.
//   3. magic — the longest constant non-zero byte run across all pages.
//   4. object-id field — constant within a table's pages, distinct across
//      tables (two probe tables + the catalog give three groups).
//   5. page-type field — one value on all data pages, another on index
//      pages, at the lowest qualifying offset.
//   6. page-LSN field — a u64, unique per page, small in magnitude, that
//      grows on the page modified between captures.
//   7. checksum — the (algorithm, offset) that validates every page.
//   8. slot directory — a self-validating array of in-page offsets, each
//      pointing just before a planted marker; yields placement, entry
//      size, and header size.
//   9. record framing — row delimiter, row-identifier presence/width,
//      string-size mode, data delimiter, record-length field, probing the
//      known column values (first column is a marker string).
//  10. free-space field — u16 equal to the data-region boundary implied by
//      the slot offsets and record lengths.
//  11. next-page field — u32 forming the known page chain.
//  12. delete strategy — byte diff of the victim's page across the delete
//      capture, classified by which structure changed (Figure 1).
//  13. index entry framing + pointer format — entries on index pages end
//      with the known key; the pointer bytes are decoded under each
//      candidate format and verified against the records they reference.
#ifndef DBFA_CORE_PARAMETER_COLLECTOR_H_
#define DBFA_CORE_PARAMETER_COLLECTOR_H_

#include <string>

#include "core/blackbox.h"
#include "core/config_io.h"

namespace dbfa {

class ParameterCollector {
 public:
  struct Options {
    /// Rows loaded into the primary probe table. Must be large enough to
    /// span several pages for the biggest page size probed (16-32 KiB).
    int probe_rows_a = 1200;
    int probe_rows_b = 400;
    /// Index of the row deleted by the delete probe.
    int delete_victim = 37;
  };

  ParameterCollector() : options_(Options()) {}
  explicit ParameterCollector(Options options) : options_(options) {}

  /// Runs the full probe workload and inference. The DBMS should be a
  /// fresh instance (the collector creates tables CarvProbeA/CarvProbeB
  /// and index carv_probe_idx, and leaves them behind).
  Result<CarverConfig> Collect(BlackBoxDbms* dbms) const;

 private:
  Options options_;
};

}  // namespace dbfa

#endif  // DBFA_CORE_PARAMETER_COLLECTOR_H_
