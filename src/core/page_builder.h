// External page building (Section IV-b, future work — built): "DBCarver
// creates parameters for the purpose of deconstructing DBMS storage ...
// our future work uses these same parameters to construct DBMS files
// externally. Once the DBMS files are constructed, we believe they can be
// appended to a database instance with minor changes to system and file
// metadata."
//
// ExternalPageBuilder writes a complete, valid heap file (chained data
// pages, correct slot directories, LSNs and checksums) for a schema and a
// row set, from a carver configuration alone — no engine involved. The
// counterpart Database::AttachExternalTable (engine/database.h) performs
// the paper's "minor changes": rewriting the object-id field of each page
// and repairing checksums, then registering the table in the catalog.
#ifndef DBFA_CORE_PAGE_BUILDER_H_
#define DBFA_CORE_PAGE_BUILDER_H_

#include <vector>

#include "core/config_io.h"
#include "storage/page_formatter.h"
#include "storage/schema.h"

namespace dbfa {

class ExternalPageBuilder {
 public:
  explicit ExternalPageBuilder(CarverConfig config)
      : config_(std::move(config)), fmt_(config_.params) {}

  /// Builds a heap file: pages 1..n chained via next-page pointers, each
  /// holding as many records as fit. `object_id` is a placeholder the
  /// attaching instance will rewrite. Row ids start at `first_row_id`.
  Result<Bytes> BuildTableFile(const TableSchema& schema,
                               const std::vector<Record>& rows,
                               uint32_t object_id = 1000,
                               uint64_t first_row_id = 1) const;

 private:
  CarverConfig config_;
  PageFormatter fmt_;
};

}  // namespace dbfa

#endif  // DBFA_CORE_PAGE_BUILDER_H_
