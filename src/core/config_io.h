// Carver configuration files (Figure 2, artifact E): the text files the
// parameter collector emits and the carver consumes. One file fully
// describes the page layout of one DBMS (version).
#ifndef DBFA_CORE_CONFIG_IO_H_
#define DBFA_CORE_CONFIG_IO_H_

#include <string>

#include "common/status.h"
#include "storage/page_layout.h"

namespace dbfa {

/// A carver configuration: the layout parameters plus engine conventions
/// discovered alongside them.
struct CarverConfig {
  PageLayoutParams params;
  /// Object id of the system catalog (discovered by locating schema text).
  uint32_t catalog_object_id = 1;

  /// Compares the fields that affect carving. Delete markers that the
  /// dialect's strategy never writes (e.g. the deleted row-delimiter value
  /// of a data-delimiter-marking DBMS) are unobservable by a black-box
  /// collector and are excluded.
  bool ForensicallyEquivalent(const CarverConfig& other) const;
};

/// Renders a configuration as an INI-style text file.
std::string ConfigToText(const CarverConfig& config);

/// Parses a configuration file; validates the result.
Result<CarverConfig> ConfigFromText(const std::string& text);

Status SaveConfig(const std::string& path, const CarverConfig& config);
Result<CarverConfig> LoadConfig(const std::string& path);

}  // namespace dbfa

#endif  // DBFA_CORE_CONFIG_IO_H_
