#include "core/artifacts.h"

#include "common/strings.h"

namespace dbfa {

double CarveStats::ThroughputMBps() const {
  double seconds = TotalSeconds();
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes_scanned) / (1024.0 * 1024.0) / seconds;
}

std::string CarveStats::ToString() const {
  return StrFormat(
      "scanned=%zuB probed=%zu accepted=%zu bad_checksum=%zu "
      "detect=%.3fs catalog=%.3fs content=%.3fs (%.1f MB/s)",
      bytes_scanned, pages_probed, pages_accepted, checksum_failures,
      detect_seconds, catalog_seconds, content_seconds, ThroughputMBps());
}

const TableSchema* CarveResult::SchemaByName(const std::string& table) const {
  for (const auto& [object_id, schema] : schemas) {
    if (EqualsIgnoreCase(schema.name, table)) return &schema;
  }
  return nullptr;
}

uint32_t CarveResult::ObjectIdByName(const std::string& table) const {
  for (const auto& [object_id, schema] : schemas) {
    if (EqualsIgnoreCase(schema.name, table)) return object_id;
  }
  return 0;
}

std::vector<const CarvedRecord*> CarveResult::RecordsForTable(
    const std::string& table, std::optional<RowStatus> status) const {
  std::vector<const CarvedRecord*> out;
  uint32_t object_id = ObjectIdByName(table);
  if (object_id == 0) return out;
  for (const CarvedRecord& r : records) {
    if (r.object_id != object_id) continue;
    if (status.has_value() && r.status != *status) continue;
    out.push_back(&r);
  }
  return out;
}

std::vector<const CarvedIndexEntry*> CarveResult::EntriesForIndex(
    uint32_t index_object_id) const {
  std::vector<const CarvedIndexEntry*> out;
  for (const CarvedIndexEntry& e : index_entries) {
    if (e.object_id == index_object_id && e.leaf) out.push_back(&e);
  }
  return out;
}

size_t CarveResult::CountRecords(RowStatus status) const {
  size_t n = 0;
  for (const CarvedRecord& r : records) {
    if (r.status == status) ++n;
  }
  return n;
}

std::string CarveResult::Summary() const {
  size_t data_pages = 0;
  size_t index_pages = 0;
  size_t bad_checksums = 0;
  for (const CarvedPage& p : pages) {
    if (p.type == PageType::kData) ++data_pages;
    if (p.type == PageType::kIndexLeaf || p.type == PageType::kIndexInternal) {
      ++index_pages;
    }
    if (!p.checksum_ok) ++bad_checksums;
  }
  return StrFormat(
      "dialect=%s image=%zuB pages=%zu (data=%zu index=%zu bad_checksum=%zu) "
      "records=%zu (active=%zu deleted=%zu) index_entries=%zu "
      "catalog_entries=%zu schemas=%zu dropped_objects=%zu",
      dialect.c_str(), image_size, pages.size(), data_pages, index_pages,
      bad_checksums, records.size(), CountRecords(RowStatus::kActive),
      CountRecords(RowStatus::kDeleted), index_entries.size(),
      catalog_entries.size(), schemas.size(), dropped_objects.size());
}

}  // namespace dbfa
