#include "core/page_builder.h"

namespace dbfa {

Result<Bytes> ExternalPageBuilder::BuildTableFile(
    const TableSchema& schema, const std::vector<Record>& rows,
    uint32_t object_id, uint64_t first_row_id) const {
  const uint32_t page_size = config_.params.page_size;
  Bytes file;
  auto start_page = [&]() -> uint8_t* {
    size_t offset = file.size();
    file.resize(offset + page_size, 0);
    uint8_t* page = file.data() + offset;
    uint32_t page_id = static_cast<uint32_t>(file.size() / page_size);
    fmt_.InitPage(page, page_id, object_id, PageType::kData);
    fmt_.SetLsn(page, page_id);  // monotone, self-consistent stamps
    return page;
  };

  uint8_t* page = start_page();
  uint64_t row_id = first_row_id;
  for (const Record& row : rows) {
    if (!schema.TypeCheck(row)) {
      return Status::InvalidArgument("row does not match schema: " +
                                     RecordToString(row));
    }
    DBFA_ASSIGN_OR_RETURN(Bytes encoded,
                          fmt_.EncodeRecord(schema, row, row_id));
    auto slot = fmt_.InsertRecordBytes(page, encoded);
    if (!slot.ok()) {
      if (slot.status().code() != StatusCode::kOutOfRange) {
        return slot.status();
      }
      // Chain a fresh page. start_page() may reallocate `file`, so link
      // afterwards through recomputed pointers.
      uint32_t full_page_id = fmt_.PageId(page);
      // dbfa-lint: allow(nodiscard-status): returns a page pointer, not a
      // Status; discarded because resize() may move `file`, so both page
      // pointers are recomputed from file.data() below.
      (void)start_page();
      uint32_t new_page_id =
          static_cast<uint32_t>(file.size() / page_size);
      uint8_t* full_page =
          file.data() + static_cast<size_t>(full_page_id - 1) * page_size;
      fmt_.SetNextPage(full_page, new_page_id);
      fmt_.UpdateChecksum(full_page);
      page = file.data() + static_cast<size_t>(new_page_id - 1) * page_size;
      auto retry = fmt_.InsertRecordBytes(page, encoded);
      if (!retry.ok()) {
        return Status::InvalidArgument(
            "record does not fit an empty page of this dialect");
      }
    }
    fmt_.UpdateChecksum(page);
    ++row_id;
  }
  return file;
}

}  // namespace dbfa
