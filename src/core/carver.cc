#include "core/carver.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>

#include "common/strings.h"

namespace dbfa {
namespace {

/// Sanity bounds for header fields of a candidate page.
constexpr uint32_t kMaxPlausibleId = 1u << 24;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool KnownPageType(uint8_t t) {
  return t == static_cast<uint8_t>(PageType::kData) ||
         t == static_cast<uint8_t>(PageType::kIndexLeaf) ||
         t == static_cast<uint8_t>(PageType::kIndexInternal) ||
         t == static_cast<uint8_t>(PageType::kFree);
}

}  // namespace

Carver::Carver(CarverConfig config, CarveOptions options)
    : config_(std::move(config)), fmt_(config_.params), options_(options) {}

bool Carver::LooksLikePage(ByteView image, size_t offset,
                           bool* checksum_ok) const {
  const PageLayoutParams& p = config_.params;
  if (offset + p.page_size > image.size()) return false;
  const uint8_t* page = image.data() + offset;
  if (std::memcmp(page + p.magic_offset, p.magic.data(), p.magic.size()) !=
      0) {
    return false;
  }
  uint32_t page_id = fmt_.PageId(page);
  uint32_t object_id = fmt_.ObjectId(page);
  if (page_id == 0 || page_id > kMaxPlausibleId) return false;
  if (object_id == 0 || object_id > kMaxPlausibleId) return false;
  if (!KnownPageType(page[p.page_type_offset])) return false;
  uint16_t count = fmt_.RecordCount(page);
  if (count > p.page_size / 2) return false;
  uint16_t boundary = fmt_.FreeBoundary(page);
  if (boundary > p.page_size) return false;
  *checksum_ok = fmt_.VerifyChecksum(page);
  return true;
}

std::optional<CarvedPage> Carver::ProbePage(ByteView image,
                                            size_t offset) const {
  bool checksum_ok = false;
  if (!LooksLikePage(image, offset, &checksum_ok)) return std::nullopt;
  const uint8_t* page = image.data() + offset;
  CarvedPage carved;
  carved.image_offset = offset;
  carved.page_id = fmt_.PageId(page);
  carved.object_id = fmt_.ObjectId(page);
  carved.type = fmt_.TypeOf(page);
  carved.record_count = fmt_.RecordCount(page);
  carved.next_page = fmt_.NextPage(page);
  carved.lsn = fmt_.Lsn(page);
  carved.checksum_ok = checksum_ok;
  return carved;
}

Result<CarveResult> Carver::Carve(ByteView image) const {
  const PageLayoutParams& p = config_.params;
  // A malformed parameter set (e.g. an oversized page_size or a header
  // field past header_size) would defeat the bounds reasoning below, so
  // reject it before touching any image byte.
  DBFA_RETURN_IF_ERROR(p.Validate());
  CarveResult result;
  result.dialect = p.dialect;
  result.image_size = image.size();
  result.stats.bytes_scanned = image.size();
  if (options_.intern_strings) {
    result.string_pool = std::make_shared<StringPool>();
  }

  // Pass 1: page detection. Accepting a page advances the cursor by a full
  // page so page-interior bytes are never re-interpreted as page starts.
  auto detect_start = std::chrono::steady_clock::now();
  size_t step = options_.scan_step == 0 ? 512 : options_.scan_step;
  size_t offset = 0;
  while (offset + p.page_size <= image.size()) {
    ++result.stats.pages_probed;
    std::optional<CarvedPage> carved = ProbePage(image, offset);
    if (!carved.has_value()) {
      offset += step;
      continue;
    }
    if (!carved->checksum_ok) ++result.stats.checksum_failures;
    result.pages.push_back(*carved);
    offset += p.page_size;
  }
  result.stats.pages_accepted = result.pages.size();
  result.stats.detect_seconds = SecondsSince(detect_start);

  // Pass 2: catalog reconstruction (schemas drive typed decoding later).
  auto catalog_start = std::chrono::steady_clock::now();
  CarveCatalog(image, &result);
  result.stats.catalog_seconds = SecondsSince(catalog_start);

  // Passes 3-4: content.
  auto content_start = std::chrono::steady_clock::now();
  CarveContentRange(image, result, 0, result.pages.size(), &result.records,
                    &result.index_entries);
  result.stats.content_seconds = SecondsSince(content_start);
  return result;
}

void Carver::CarveContentRange(ByteView image, const CarveResult& base,
                               size_t begin, size_t end,
                               std::vector<CarvedRecord>* records,
                               std::vector<CarvedIndexEntry>* entries) const {
  const PageLayoutParams& p = config_.params;
  // Interning is sharded-thread-safe, so concurrent ranges share the
  // result's pool directly.
  StringPool* pool = base.string_pool.get();
  for (size_t i = begin; i < end; ++i) {
    const CarvedPage& page_meta = base.pages[i];
    if (!page_meta.checksum_ok && !options_.parse_bad_checksum_pages) {
      continue;
    }
    ByteView page = image.Slice(page_meta.image_offset, p.page_size);
    switch (page_meta.type) {
      case PageType::kData:
        if (page_meta.object_id != config_.catalog_object_id) {
          const TableSchema* schema = nullptr;
          auto schema_it = base.schemas.find(page_meta.object_id);
          if (schema_it != base.schemas.end()) schema = &schema_it->second;
          CarveDataPage(page, i, page_meta, schema, pool, records);
        }
        break;
      case PageType::kIndexLeaf:
      case PageType::kIndexInternal:
        CarveIndexPage(page, i, page_meta, entries);
        break;
      case PageType::kFree:
        break;
    }
  }
}

void Carver::CarveCatalog(ByteView image, CarveResult* result) const {
  const PageLayoutParams& p = config_.params;
  for (const CarvedPage& page_meta : result->pages) {
    if (page_meta.object_id != config_.catalog_object_id ||
        page_meta.type != PageType::kData) {
      continue;
    }
    ByteView page = image.Slice(page_meta.image_offset, p.page_size);
    ParsedRecord parsed;  // scratch reused across slots
    for (uint16_t s = 0; s < page_meta.record_count; ++s) {
      auto slot = fmt_.GetSlot(page.data(), s);
      if (!slot.has_value()) continue;
      if (!fmt_.ParseRecordAt(page, slot->offset, &parsed).ok()) continue;
      Record values = fmt_.DecodeUntyped(parsed);
      // Catalog rows are (str, str, int, int, int, str).
      if (values.size() != 6) continue;
      if (values[0].type() != ValueType::kString ||
          values[1].type() != ValueType::kString ||
          values[2].type() != ValueType::kInt ||
          values[3].type() != ValueType::kInt ||
          values[4].type() != ValueType::kInt) {
        continue;
      }
      CarvedCatalogEntry entry;
      entry.entry_type = values[0].as_string();
      entry.name = values[1].as_string();
      entry.object_id = static_cast<uint32_t>(values[2].as_int());
      entry.table_object_id = static_cast<uint32_t>(values[3].as_int());
      entry.root_page = static_cast<uint32_t>(values[4].as_int());
      entry.info =
          values[5].type() == ValueType::kString ? values[5].as_string() : "";
      entry.status = fmt_.IsDeleted(parsed, slot->tombstoned)
                         ? RowStatus::kDeleted
                         : RowStatus::kActive;
      result->catalog_entries.push_back(std::move(entry));
    }
  }

  // Interpret: schemas, index metadata, dropped objects. Active entries
  // win; delete-marked entries fill in dropped objects.
  std::set<uint32_t> active_objects;
  for (const CarvedCatalogEntry& e : result->catalog_entries) {
    if (e.status == RowStatus::kActive) active_objects.insert(e.object_id);
  }
  for (const CarvedCatalogEntry& e : result->catalog_entries) {
    if (e.entry_type == "TABLE") {
      auto schema = TableSchema::Deserialize(e.info);
      if (schema.ok() &&
          (e.status == RowStatus::kActive ||
           result->schemas.count(e.object_id) == 0)) {
        result->schemas[e.object_id] = *schema;
      }
    } else if (e.entry_type == "INDEX") {
      auto it = result->indexes.find(e.object_id);
      if (it == result->indexes.end() || e.status == RowStatus::kActive) {
        CarvedIndexMeta meta;
        meta.name = e.name;
        meta.object_id = e.object_id;
        meta.table_object_id = e.table_object_id;
        meta.root_page = e.root_page;
        for (const std::string& col : Split(e.info, ',')) {
          if (!col.empty()) meta.columns.push_back(col);
        }
        meta.dropped = active_objects.count(e.object_id) == 0;
        result->indexes[e.object_id] = std::move(meta);
      }
    }
    if (active_objects.count(e.object_id) == 0) {
      result->dropped_objects.insert(e.object_id);
    }
  }
}

void Carver::CarveDataPage(ByteView page, size_t page_index,
                           const CarvedPage& page_meta,
                           const TableSchema* schema, StringPool* pool,
                           std::vector<CarvedRecord>* out) const {
  // Offsets the slot directory already covered, for the raw-scan dedup
  // below. A flat vector + one sort beats a std::set here: this runs per
  // record on the carve hot path, and a set pays one node allocation per
  // insert.
  std::vector<uint16_t> seen_offsets;
  size_t slot_failures = 0;
  ParsedRecord rec;  // scratch reused across slots: zero-alloc parses
  for (uint16_t s = 0; s < page_meta.record_count; ++s) {
    auto slot = fmt_.GetSlot(page.data(), s);
    if (!slot.has_value()) {
      ++slot_failures;
      continue;
    }
    if (!fmt_.ParseRecordAt(page, slot->offset, &rec).ok()) {
      ++slot_failures;
      continue;
    }
    seen_offsets.push_back(rec.offset);
    CarvedRecord carved;
    carved.page_index = page_index;
    carved.object_id = page_meta.object_id;
    carved.page_id = page_meta.page_id;
    carved.slot = s;
    carved.status = fmt_.IsDeleted(rec, slot->tombstoned)
                        ? RowStatus::kDeleted
                        : RowStatus::kActive;
    carved.row_id = rec.row_id;
    carved.page_lsn = page_meta.lsn;
    if (schema != nullptr) {
      auto typed = fmt_.DecodeTyped(rec, *schema, pool);
      if (typed.ok()) {
        carved.values = std::move(typed).value();
        carved.typed = true;
      }
    }
    if (!carved.typed) carved.values = fmt_.DecodeUntyped(rec, pool);
    out->push_back(std::move(carved));
  }

  // Raw-scan fallback: recover records the slot directory no longer
  // references (corruption, tampered directories).
  bool want_raw = options_.raw_scan_fallback &&
                  (slot_failures > 0 || !page_meta.checksum_ok);
  if (!want_raw) return;
  std::sort(seen_offsets.begin(), seen_offsets.end());
  for (const ParsedRecord& raw : fmt_.ScanRecordsRaw(page)) {
    if (std::binary_search(seen_offsets.begin(), seen_offsets.end(),
                           raw.offset)) {
      continue;
    }
    CarvedRecord carved;
    carved.page_index = page_index;
    carved.object_id = page_meta.object_id;
    carved.page_id = page_meta.page_id;
    carved.slot = CarvedRecord::kOrphanSlot;
    // A record invisible to the slot directory is unallocated storage.
    carved.status = RowStatus::kDeleted;
    carved.row_id = raw.row_id;
    carved.page_lsn = page_meta.lsn;
    if (schema != nullptr) {
      auto typed = fmt_.DecodeTyped(raw, *schema, pool);
      if (typed.ok()) {
        carved.values = std::move(typed).value();
        carved.typed = true;
      }
    }
    if (!carved.typed) carved.values = fmt_.DecodeUntyped(raw, pool);
    out->push_back(std::move(carved));
  }
}

void Carver::CarveIndexPage(ByteView page, size_t page_index,
                            const CarvedPage& page_meta,
                            std::vector<CarvedIndexEntry>* out) const {
  for (uint16_t s = 0; s < page_meta.record_count; ++s) {
    auto slot = fmt_.GetSlot(page.data(), s);
    if (!slot.has_value()) continue;
    auto entry = fmt_.ParseIndexEntryAt(page, slot->offset);
    if (!entry.ok()) continue;
    CarvedIndexEntry carved;
    carved.page_index = page_index;
    carved.object_id = page_meta.object_id;
    carved.page_id = page_meta.page_id;
    carved.leaf = page_meta.type == PageType::kIndexLeaf;
    carved.keys = std::move(entry->keys);
    carved.pointer = entry->pointer;
    out->push_back(std::move(carved));
  }
}

Result<std::vector<CarveResult>> Carver::CarveMulti(
    ByteView image, const std::vector<CarverConfig>& configs,
    CarveOptions options) {
  std::vector<CarveResult> results;
  results.reserve(configs.size());
  for (const CarverConfig& config : configs) {
    Carver carver(config, options);
    DBFA_ASSIGN_OR_RETURN(CarveResult r, carver.Carve(image));
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace dbfa
