// The parameter collector's view of a DBMS (Figure 2, components B/C):
// the collector may load synthetic data through a generic SQL interface
// and capture raw storage bytes — nothing else. This is precisely the
// access DBCarver's parameter detector has to a real, possibly
// closed-source DBMS.
#ifndef DBFA_CORE_BLACKBOX_H_
#define DBFA_CORE_BLACKBOX_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "engine/database.h"

namespace dbfa {

class BlackBoxDbms {
 public:
  virtual ~BlackBoxDbms() = default;

  /// Executes one SQL statement (DDL/DML) on the live DBMS.
  virtual Status Execute(const std::string& sql) = 0;

  /// Captures all persistent storage as one byte stream (each file flushed
  /// and whole-page aligned, files concatenated).
  virtual Result<Bytes> CaptureStorage() = 0;

  /// Vendor label for the emitted configuration file.
  virtual std::string VendorName() const = 0;
};

/// Black-box adapter over a MiniDB instance. The collector interacts with
/// the Database exclusively through SQL text and storage snapshots.
class MiniDbBlackBox : public BlackBoxDbms {
 public:
  /// Does not take ownership; `db` must outlive the adapter.
  explicit MiniDbBlackBox(Database* db) : db_(db) {}

  Status Execute(const std::string& sql) override {
    return db_->ExecuteSql(sql).status();
  }

  Result<Bytes> CaptureStorage() override { return db_->SnapshotDisk(); }

  std::string VendorName() const override { return db_->params().dialect; }

 private:
  Database* db_;
};

}  // namespace dbfa

#endif  // DBFA_CORE_BLACKBOX_H_
