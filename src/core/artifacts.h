// Storage artifacts reconstructed by the carver (Figure 2, output H):
// pages, user records (active and deleted), index entries, and system
// catalog content. These are the inputs to meta-querying (Section II-C),
// DBDetective (III-A) and DBStorageAuditor (III-B).
#ifndef DBFA_CORE_ARTIFACTS_H_
#define DBFA_CORE_ARTIFACTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/string_pool.h"

#include "storage/page_formatter.h"
#include "storage/page_layout.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace dbfa {

/// One reconstructed page.
struct CarvedPage {
  size_t image_offset = 0;  // byte offset within the carved image
  uint32_t page_id = 0;
  uint32_t object_id = 0;
  PageType type = PageType::kData;
  uint16_t record_count = 0;
  uint32_t next_page = 0;  // heap / leaf chain
  uint64_t lsn = 0;
  bool checksum_ok = true;

  bool operator==(const CarvedPage&) const = default;
};

enum class RowStatus { kActive, kDeleted };

inline const char* RowStatusName(RowStatus s) {
  return s == RowStatus::kActive ? "ACTIVE" : "DELETED";
}

/// One reconstructed record.
struct CarvedRecord {
  size_t page_index = 0;  // index into CarveResult::pages
  uint32_t object_id = 0;
  uint32_t page_id = 0;
  /// Slot within the page; kOrphanSlot when recovered by the raw scan
  /// (slot directory bypassed).
  uint16_t slot = 0;
  static constexpr uint16_t kOrphanSlot = 0xFFFF;

  RowStatus status = RowStatus::kActive;
  uint64_t row_id = 0;
  uint64_t page_lsn = 0;
  Record values;
  /// True when a reconstructed schema drove the decoding; false for
  /// best-effort untyped decoding.
  bool typed = false;

  bool operator==(const CarvedRecord&) const = default;
};

/// One reconstructed index entry ("deleted values" live here after the
/// record they point to is deleted).
struct CarvedIndexEntry {
  size_t page_index = 0;
  uint32_t object_id = 0;
  uint32_t page_id = 0;
  /// True for leaf entries (pointer = row pointer); false for internal
  /// separators (pointer.page_id = child index page).
  bool leaf = true;
  std::vector<Value> keys;
  RowPointer pointer;

  bool operator==(const CarvedIndexEntry&) const = default;
};

/// One reconstructed system-catalog row.
struct CarvedCatalogEntry {
  std::string entry_type;  // "TABLE" / "INDEX"
  std::string name;
  uint32_t object_id = 0;
  uint32_t table_object_id = 0;
  uint32_t root_page = 0;
  std::string info;  // serialized schema / index column list
  RowStatus status = RowStatus::kActive;

  bool operator==(const CarvedCatalogEntry&) const = default;
};

/// Index metadata recovered from the catalog.
struct CarvedIndexMeta {
  std::string name;
  uint32_t object_id = 0;
  uint32_t table_object_id = 0;
  uint32_t root_page = 0;
  std::vector<std::string> columns;
  bool dropped = false;

  bool operator==(const CarvedIndexMeta&) const = default;
};

/// Lightweight carve metrics, populated by both `Carver` and
/// `ParallelCarver`. Artifact outputs of the two carvers are identical;
/// only `pages_probed` may be higher for the parallel carver, because chunk
/// workers probe the full detection grid (they cannot skip accepted-page
/// interiors the way the serial cursor does). Phase wall times for the
/// parallel carver measure the whole concurrent wave.
struct CarveStats {
  size_t bytes_scanned = 0;      // image bytes the detection pass covered
  size_t pages_probed = 0;       // offsets where the magic test ran
  size_t pages_accepted = 0;     // offsets accepted as pages
  size_t checksum_failures = 0;  // accepted pages failing their checksum
  double detect_seconds = 0.0;   // pass 1: page detection
  double catalog_seconds = 0.0;  // pass 2: catalog reconstruction
  double content_seconds = 0.0;  // passes 3-4: content + raw-scan fallback

  double TotalSeconds() const {
    return detect_seconds + catalog_seconds + content_seconds;
  }
  /// Raw image MB/s through the whole pipeline; 0 when no time elapsed.
  double ThroughputMBps() const;
  std::string ToString() const;
};

/// Everything reconstructed from one image with one dialect config.
struct CarveResult {
  std::string dialect;
  size_t image_size = 0;

  /// Timing and probe counters for the carve that produced this result.
  /// Not part of the artifact output: equivalence checks compare the
  /// collections below, never stats.
  CarveStats stats;

  /// Interned-string pool backing Value::InternedStr cells in `records`.
  /// Null when carving with CarveOptions::intern_strings off, and for
  /// results assembled from the snapshot artifact cache (those decode to
  /// owning strings — equivalence checks compare content, so the two
  /// representations are interchangeable). Shared so relations and query
  /// results can keep borrowed refs alive past this result.
  std::shared_ptr<StringPool> string_pool;

  std::vector<CarvedPage> pages;
  std::vector<CarvedRecord> records;
  std::vector<CarvedIndexEntry> index_entries;
  std::vector<CarvedCatalogEntry> catalog_entries;

  /// object id -> schema, from catalog TABLE entries (active or deleted).
  std::map<uint32_t, TableSchema> schemas;
  /// index object id -> metadata, from catalog INDEX entries.
  std::map<uint32_t, CarvedIndexMeta> indexes;
  /// Objects whose catalog entries are all delete-marked: dropped tables /
  /// rebuilt indexes — the "deleted pages" category.
  std::set<uint32_t> dropped_objects;

  /// Table schema by (case-insensitive) name; nullptr when unknown.
  const TableSchema* SchemaByName(const std::string& table) const;
  /// Object id for a table name; 0 when unknown.
  uint32_t ObjectIdByName(const std::string& table) const;

  /// Records of one table (by name), optionally filtered by status.
  std::vector<const CarvedRecord*> RecordsForTable(
      const std::string& table,
      std::optional<RowStatus> status = std::nullopt) const;

  /// Index entries belonging to one index object.
  std::vector<const CarvedIndexEntry*> EntriesForIndex(
      uint32_t index_object_id) const;

  /// Counts by status for quick reporting.
  size_t CountRecords(RowStatus status) const;

  /// Human-readable inventory summary.
  std::string Summary() const;
};

}  // namespace dbfa

#endif  // DBFA_CORE_ARTIFACTS_H_
